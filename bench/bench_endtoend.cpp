// Lemmas 9/10: end-to-end AER, plus the resilience curve.
//
//   Lemma 9 (sync, non-rushing): O(1) rounds, O~(n) total messages.
//   Lemma 10 (async): O(log n / log log n) time, O~(n) total messages.
//
// First table: rounds/time and total messages vs n for both models, with
// messages normalized by n * d^3 (the Fw1 relay volume of the algorithm as
// published — see EXPERIMENTS.md for the accounting discussion).
//
// Second table: the resilience curve. At fixed n we sweep the corrupt
// fraction toward the paper's t < (1/3 - eps) n bound with quorums sized for
// the margin, showing where the quorum-majority filters give out at
// laptop-scale d (the paper's guarantee is asymptotic in d ~ log n / eps^2).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  print_banner("Lemmas 9/10: end-to-end AER + resilience curve",
               "completion time and total messages vs n; success vs t/n");

  Table table({"model", "n", "d", "time", "msgs", "msgs/(n d^3)", "bits/node",
               "agree"});
  Stopwatch watch;

  for (std::size_t n : protocol_sizes(scale)) {
    for (auto model : {aer::Model::kSyncNonRushing, aer::Model::kAsync}) {
      aer::AerConfig cfg;
      cfg.n = n;
      cfg.seed = 20130722;
      cfg.model = model;
      const aer::AerReport r = run_aer(cfg);
      const double d3 = std::pow(double(r.d), 3.0);
      table.add_row({aer::model_name(model),
                     Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(r.d)),
                     Table::num(r.completion_time, 2),
                     Table::num(r.total_messages),
                     Table::num(double(r.total_messages) / (double(n) * d3), 3),
                     Table::num(r.amortized_bits, 0),
                     r.agreement ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  // Resilience: success rate vs corrupt fraction at n = 128, d = 24.
  std::printf("\nresilience curve (n=128, d=24, knowledgeable = 95%% of"
              " correct, %s seeds/point):\n",
              scale == Scale::kQuick ? "3" : "10");
  const std::size_t seeds = scale == Scale::kQuick ? 3 : 10;
  Table resilience({"t/n", "t", "know/all", "agree rate", "mean decided",
                    "wrong decisions"});
  for (const double frac : {0.00, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    std::size_t agreed = 0, decided_sum = 0, wrong = 0, know = 0;
    std::size_t correct_sum = 0;
    for (std::size_t seed = 1; seed <= seeds; ++seed) {
      aer::AerConfig cfg;
      cfg.n = 128;
      cfg.seed = seed;
      cfg.corrupt_fraction = frac;
      cfg.d_override = 24;
      cfg.max_rounds = 60;
      const aer::AerReport r = run_aer(cfg);
      agreed += r.agreement ? 1 : 0;
      decided_sum += r.decided_count;
      correct_sum += r.correct_count;
      wrong += r.decided_count - r.decided_gstring;
      know = r.knowledgeable_count;
    }
    resilience.add_row(
        {Table::num(frac, 2),
         Table::num(static_cast<std::uint64_t>(
             std::floor(frac * 128))),
         Table::num(double(know) / 128.0, 2),
         Table::num(double(agreed) / double(seeds), 2),
         Table::num(double(decided_sum) / double(correct_sum), 3),
         Table::num(static_cast<std::uint64_t>(wrong))});
  }
  resilience.print(std::cout);
  std::printf(
      "\npaper: t < (1/3 - eps) n with d = O(log n) scaled to eps; at"
      " laptop-scale d the liveness cliff appears as the correct-and-"
      "knowledgeable fraction approaches 1/2 — safety (zero wrong"
      " decisions) holds everywhere.\n");
  std::printf("[endtoend done in %.1fs]\n", watch.seconds());
  return 0;
}
