// Lemmas 9/10: end-to-end AER, plus the resilience curve.
//
//   Lemma 9 (sync, non-rushing): O(1) rounds, O~(n) total messages.
//   Lemma 10 (async): O(log n / log log n) time, O~(n) total messages.
//
// First table: mean rounds/time and total messages vs n for both models
// over a multi-trial exp::Sweep, with messages normalized by n * d^3 (the
// Fw1 relay volume of the algorithm as published — see EXPERIMENTS.md for
// the accounting discussion).
//
// Second table: the resilience curve. At fixed n the corrupt-fraction axis
// of the grid sweeps toward the paper's t < (1/3 - eps) n bound with
// quorums sized for the margin, showing where the quorum-majority filters
// give out at laptop-scale d (the paper's guarantee is asymptotic in
// d ~ log n / eps^2).
//
// Third table: the fault-degradation matrix — every fault preset
// (exp::known_faults(): loss / jitter / partitions / churn) against both
// engines at fixed n, composable with --attack=<name>. This is the
// beyond-the-model stress direction: the paper assumes reliable channels;
// here we measure where agreement actually degrades when they are not.
// `--fault=<preset>` additionally applies one preset to the first table's
// n-sweep.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_endtoend",
                 .description =
                     "Lemmas 9/10: end-to-end AER vs n, the resilience curve"
                     " (t/n sweep) and the fault-degradation matrix",
                 .extra_usage =
                     "  --attack=<name>    compose an adversary into the"
                     " fault-degradation matrix\n"
                     "  --fault=<preset>   apply one preset to the first"
                     " table's n-sweep\n"
                     "  (--recovery=<preset> layers ack/retransmit under the"
                     " first table's n-sweep)\n",
                 .sections = {.attacks = true, .faults = true,
                              .recoveries = true}});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials();
  const std::size_t threads = opt.threads;
  print_banner("Lemmas 9/10: end-to-end AER + resilience curve",
               "completion time and total messages vs n; success vs t/n");

  Table table({"model", "n", "d", "trials", "time", "p99", "msgs",
               "msgs/(n d^3)", "bits/node", "agree"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;

  exp::Report report = make_report(
      "bench_endtoend", "endtoend",
      "Lemmas 9/10: end-to-end AER, resilience and fault degradation",
      base.seed, trials, scale);
  // The three tables vary different axes (n, corrupt fraction, fault
  // preset); index-x keeps the md/gnuplot renderings of a parsed report
  // from collapsing the non-n series onto one x position.
  report.meta().x_axis = "index";

  exp::Grid grid;
  grid.ns = protocol_sizes(scale);
  grid.models = {aer::Model::kSyncNonRushing, aer::Model::kAsync};
  grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(threads).set_procs(opt.procs);
  sweep.set_progress(progress_printer("endtoend"));
  const auto endtoend_results = sweep.run();
  add_split_series(report, base, endtoend_results,
                   [](const exp::GridPoint& p) {
                     return std::string("AER/") + aer::model_name(p.model);
                   });
  for (const exp::PointResult& r : endtoend_results) {
    const exp::Aggregate& a = r.aggregate;
    aer::AerConfig cfg = base;
    cfg.n = r.point.n;
    const double d3 = std::pow(double(cfg.resolved_d()), 3.0);
    table.add_row(
        {aer::model_name(r.point.model),
         Table::num(static_cast<std::uint64_t>(r.point.n)),
         Table::num(static_cast<std::uint64_t>(cfg.resolved_d())),
         Table::num(static_cast<std::uint64_t>(a.trials)),
         Table::num(a.completion_time.mean, 2),
         Table::num(a.completion_time.p99, 2),
         Table::num(a.total_messages.mean, 0),
         Table::num(a.total_messages.mean / (double(r.point.n) * d3), 3),
         Table::num(a.amortized_bits.mean, 0),
         Table::num(a.agreement_rate(), 2)});
  }
  table.print(std::cout);

  // Resilience: agreement rate vs corrupt fraction at n = 128, d = 24,
  // replicated across the sweep's seeded trials.
  std::printf("\nresilience curve (n=128, d=24, knowledgeable = 95%% of"
              " correct, %zu trials/point):\n", trials);
  Table resilience({"t/n", "t", "agree rate", "mean decided",
                    "wrong decisions"});
  aer::AerConfig rbase;
  rbase.n = 128;
  rbase.seed = 20130722;
  rbase.d_override = 24;
  rbase.max_rounds = 60;
  exp::Grid rgrid;
  rgrid.corrupt_fractions = {0.00, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  exp::Sweep rsweep(rbase, rgrid, trials);
  rsweep.set_threads(threads).set_procs(opt.procs);
  const auto resilience_results = rsweep.run();
  report.add_points("resilience (n=128, d=24)", rbase, resilience_results);
  for (const exp::PointResult& r : resilience_results) {
    const exp::Aggregate& a = r.aggregate;
    resilience.add_row(
        {Table::num(r.point.corrupt_fraction, 2),
         Table::num(static_cast<std::uint64_t>(
             std::floor(r.point.corrupt_fraction * 128))),
         Table::num(a.agreement_rate(), 2),
         Table::num(a.decided_fraction(), 3),
         Table::num(a.wrong_decisions)});
  }
  resilience.print(std::cout);
  std::printf(
      "\npaper: t < (1/3 - eps) n with d = O(log n) scaled to eps; at"
      " laptop-scale d the liveness cliff appears as the correct-and-"
      "knowledgeable fraction approaches 1/2 — safety (zero wrong"
      " decisions) holds everywhere.\n");

  // Fault degradation: every preset against both engines at n = 128.
  const std::string& attack = opt.attack;
  std::printf("\nfault degradation (n=128, attack=%s, %zu trials/point):\n",
              attack.c_str(), trials);
  Table faults({"fault", "model", "agree rate", "decided", "wrong",
                "dropped/trial", "delayed/trial", "time"});
  aer::AerConfig fbase;
  fbase.n = 128;
  fbase.seed = 20130722;
  fbase.max_rounds = 60;
  fbase.max_time = 60.0;
  exp::Grid fgrid;
  fgrid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  fgrid.strategies = {attack};
  fgrid.faults = exp::known_faults();
  exp::Sweep fsweep(fbase, fgrid, trials);
  fsweep.set_threads(threads).set_procs(opt.procs);
  fsweep.set_progress(progress_printer("faults"));
  const auto fault_results = fsweep.run();
  add_split_series(report, fbase, fault_results, [](const exp::GridPoint& p) {
    return std::string("faults/") + aer::model_name(p.model);
  });
  for (const exp::PointResult& r : fault_results) {
    const exp::Aggregate& a = r.aggregate;
    faults.add_row({r.point.fault, aer::model_name(r.point.model),
                    Table::num(a.agreement_rate(), 2),
                    Table::num(a.decided_fraction(), 3),
                    Table::num(a.wrong_decisions),
                    Table::num(a.fault_dropped_msgs.mean, 0),
                    Table::num(a.fault_delayed_msgs, 0),
                    Table::num(a.completion_time.mean, 2)});
  }
  faults.print(std::cout);
  std::printf(
      "\nfaults break the reliable-channel assumption the proofs rest on:"
      " expect liveness (decided fraction) to degrade first and safety"
      " (wrong = 0) to hold throughout.\n");
  std::printf("[endtoend done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
