// Lemmas 9/10: end-to-end AER, plus the resilience curve.
//
//   Lemma 9 (sync, non-rushing): O(1) rounds, O~(n) total messages.
//   Lemma 10 (async): O(log n / log log n) time, O~(n) total messages.
//
// First table: mean rounds/time and total messages vs n for both models
// over a multi-trial exp::Sweep, with messages normalized by n * d^3 (the
// Fw1 relay volume of the algorithm as published — see EXPERIMENTS.md for
// the accounting discussion).
//
// Second table: the resilience curve. At fixed n the corrupt-fraction axis
// of the grid sweeps toward the paper's t < (1/3 - eps) n bound with
// quorums sized for the margin, showing where the quorum-majority filters
// give out at laptop-scale d (the paper's guarantee is asymptotic in
// d ~ log n / eps^2).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  const std::size_t trials = trials_for(scale, argc, argv);
  const std::size_t threads = threads_for(argc, argv);
  print_banner("Lemmas 9/10: end-to-end AER + resilience curve",
               "completion time and total messages vs n; success vs t/n");

  Table table({"model", "n", "d", "trials", "time", "p99", "msgs",
               "msgs/(n d^3)", "bits/node", "agree"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;

  exp::Grid grid;
  grid.ns = protocol_sizes(scale);
  grid.models = {aer::Model::kSyncNonRushing, aer::Model::kAsync};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(threads);
  sweep.set_progress(progress_printer("endtoend"));
  for (const exp::PointResult& r : sweep.run()) {
    const exp::Aggregate& a = r.aggregate;
    aer::AerConfig cfg = base;
    cfg.n = r.point.n;
    const double d3 = std::pow(double(cfg.resolved_d()), 3.0);
    table.add_row(
        {aer::model_name(r.point.model),
         Table::num(static_cast<std::uint64_t>(r.point.n)),
         Table::num(static_cast<std::uint64_t>(cfg.resolved_d())),
         Table::num(static_cast<std::uint64_t>(a.trials)),
         Table::num(a.completion_time.mean, 2),
         Table::num(a.completion_time.p99, 2),
         Table::num(a.total_messages.mean, 0),
         Table::num(a.total_messages.mean / (double(r.point.n) * d3), 3),
         Table::num(a.amortized_bits.mean, 0),
         Table::num(a.agreement_rate(), 2)});
  }
  table.print(std::cout);

  // Resilience: agreement rate vs corrupt fraction at n = 128, d = 24,
  // replicated across the sweep's seeded trials.
  std::printf("\nresilience curve (n=128, d=24, knowledgeable = 95%% of"
              " correct, %zu trials/point):\n", trials);
  Table resilience({"t/n", "t", "agree rate", "mean decided",
                    "wrong decisions"});
  aer::AerConfig rbase;
  rbase.n = 128;
  rbase.seed = 20130722;
  rbase.d_override = 24;
  rbase.max_rounds = 60;
  exp::Grid rgrid;
  rgrid.corrupt_fractions = {0.00, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  exp::Sweep rsweep(rbase, rgrid, trials);
  rsweep.set_threads(threads);
  for (const exp::PointResult& r : rsweep.run()) {
    const exp::Aggregate& a = r.aggregate;
    resilience.add_row(
        {Table::num(r.point.corrupt_fraction, 2),
         Table::num(static_cast<std::uint64_t>(
             std::floor(r.point.corrupt_fraction * 128))),
         Table::num(a.agreement_rate(), 2),
         Table::num(a.decided_fraction(), 3),
         Table::num(a.wrong_decisions)});
  }
  resilience.print(std::cout);
  std::printf(
      "\npaper: t < (1/3 - eps) n with d = O(log n) scaled to eps; at"
      " laptop-scale d the liveness cliff appears as the correct-and-"
      "knowledgeable fraction approaches 1/2 — safety (zero wrong"
      " decisions) holds everywhere.\n");
  std::printf("[endtoend done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  return 0;
}
