// Figure 1(a): almost-everywhere to everywhere comparison.
//
// Paper columns: Time, Bits, Load-Balanced for [KLST11] (sync rushing),
// AER (sync non-rushing) and AER (async). We regenerate the table
// empirically: for each n, run
//   AER  under sync-non-rushing / sync-rushing / async,
//   SQRT-SAMPLE (the KLST11-style load-balanced comparator), and
//   FLOOD-ALL (the classical reference point),
// and report decision time (rounds / normalized async time), amortized bits
// per node, the per-node maximum, and the load-balance ratio (max/mean).
//
// Expected shapes (paper): AER's time is flat in n under a non-rushing
// adversary and grows slowly under rushing/async; AER's bits grow
// poly-logarithmically (vs ~sqrt(n) polylog for SQRT-SAMPLE and ~n for
// FLOOD-ALL — note the d^3 relay constant keeps AER's absolute bits above
// the baselines until far larger n; the growth *slopes* are the
// reproduction target, see EXPERIMENTS.md); AER is not load-balanced while
// SQRT-SAMPLE and FLOOD-ALL are.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

aer::AerConfig base_config(std::size_t n, aer::Model model) {
  aer::AerConfig cfg;
  cfg.n = n;
  cfg.seed = 20130722;  // PODC'13, July 22
  cfg.model = model;
  return cfg;
}

struct Series {
  std::string label;
  std::vector<double> bits;
};

void print_growth(const std::vector<std::size_t>& sizes,
                  const std::vector<Series>& series) {
  std::printf("\nper-node bit growth when n doubles (slope ~ 2^p per size step):\n");
  for (const auto& s : series) {
    std::printf("  %-18s", s.label.c_str());
    for (std::size_t i = 1; i < s.bits.size(); ++i) {
      const double ratio = s.bits[i] / s.bits[i - 1];
      const double step = std::log2(static_cast<double>(sizes[i]) /
                                    static_cast<double>(sizes[i - 1]));
      std::printf("  x%.2f (n^%.2f)", ratio, std::log2(ratio) / step);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  print_banner("Figure 1(a): almost-everywhere to everywhere comparison",
               "time / amortized bits / load balance across reductions");

  Table table({"protocol", "model", "n", "time", "bits/node", "max bits/node",
               "imbalance", "load-balanced", "decided", "agree"});
  std::vector<std::size_t> sizes = protocol_sizes(scale);
  std::vector<Series> series = {{"AER", {}},
                                {"SQRT-SAMPLE", {}},
                                {"FLOOD-ALL", {}}};

  Stopwatch watch;
  for (std::size_t n : sizes) {
    struct Row {
      const char* protocol;
      aer::AerReport report;
    };
    std::vector<Row> rows;

    for (auto model : {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                       aer::Model::kAsync}) {
      rows.push_back({"AER", run_aer(base_config(n, model))});
    }
    {
      aer::AerWorld world =
          aer::build_aer_world(base_config(n, aer::Model::kSyncRushing));
      rows.push_back({"SQRT-SAMPLE", baseline::run_sqrtsample_world(world)});
    }
    {
      aer::AerWorld world =
          aer::build_aer_world(base_config(n, aer::Model::kSyncRushing));
      rows.push_back({"FLOOD-ALL", baseline::run_flood_world(world)});
    }

    for (const auto& row : rows) {
      const auto& r = row.report;
      const bool balanced = r.sent_bits.imbalance() < 1.5;
      table.add_row({row.protocol, aer::model_name(r.model),
                     Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(r.completion_time, 2),
                     Table::num(r.amortized_bits, 0),
                     Table::num(r.sent_bits.max, 0),
                     Table::num(r.sent_bits.imbalance(), 2),
                     balanced ? "yes" : "no",
                     Table::num(static_cast<std::uint64_t>(r.decided_count)) +
                         "/" +
                         Table::num(
                             static_cast<std::uint64_t>(r.correct_count)),
                     r.agreement ? "yes" : "NO"});
    }
    // Collect the sync-rushing rows for slope reporting.
    series[0].bits.push_back(rows[1].report.amortized_bits);
    series[1].bits.push_back(rows[3].report.amortized_bits);
    series[2].bits.push_back(rows[4].report.amortized_bits);
  }

  table.print(std::cout);
  print_growth(sizes, series);

  // The "Load-Balanced: No" column: the quorum-seizure load-skew attack
  // ("force these nodes to verify an almost-linear number of strings") vs
  // SQRT-SAMPLE's reply cap under the same corruption.
  std::printf("\nload balance under the quorum-seizure attack"
              " (t/n = 0.30, victim node 0):\n");
  Table skew({"protocol", "n", "strings planted on victim",
              "victim sent bits", "mean sent bits", "victim/mean"});
  for (std::size_t n : {std::size_t(256), std::size_t(512)}) {
    aer::AerConfig cfg = base_config(n, aer::Model::kSyncRushing);
    cfg.corrupt_fraction = 0.30;
    cfg.max_rounds = 40;
    std::size_t planted = 0;
    aer::AerWorld world = aer::build_aer_world(cfg);
    std::unique_ptr<adv::LoadSkewStrategy> strategy;
    const aer::AerReport r = aer::run_aer_world(
        world, [&planted](const aer::AerWorldView& view) {
          auto s = std::make_unique<adv::LoadSkewStrategy>(view, 0, 2048);
          planted = s->strings_planted();
          return s;
        });
    // Per-node sent bits: victim (node 0) vs mean.
    const double victim_bits = r.sent_bits.max;  // victim dominates max
    skew.add_row({"AER", Table::num(static_cast<std::uint64_t>(n)),
                  Table::num(static_cast<std::uint64_t>(planted)),
                  Table::num(victim_bits, 0), Table::num(r.sent_bits.mean, 0),
                  Table::num(victim_bits / r.sent_bits.mean, 2)});

    aer::AerWorld sq_world = aer::build_aer_world(cfg);
    const aer::AerReport sq = baseline::run_sqrtsample_world(sq_world);
    skew.add_row({"SQRT-SAMPLE", Table::num(static_cast<std::uint64_t>(n)),
                  "n/a (reply cap)", Table::num(sq.sent_bits.max, 0),
                  Table::num(sq.sent_bits.mean, 0),
                  Table::num(sq.sent_bits.max / sq.sent_bits.mean, 2)});
  }
  skew.print(std::cout);

  std::printf("\npaper's asymptotic columns: AER time O(1) SNR /"
              " O(log n/log log n) async; bits O(polylog);"
              " KLST11-style bits O~(sqrt n), load-balanced.\n"
              "The victim/mean ratio is unbounded in n for AER (string"
              " search keeps paying) but capped for SQRT-SAMPLE.\n");
  std::printf("[fig1a done in %.1fs]\n", watch.seconds());
  return 0;
}
