// Figure 1(a): almost-everywhere to everywhere comparison.
//
// Paper columns: Time, Bits, Load-Balanced for [KLST11] (sync rushing),
// AER (sync non-rushing) and AER (async). We regenerate the table
// empirically: for each n, a multi-trial exp::Sweep runs
//   AER  under sync-non-rushing / sync-rushing / async,
//   SQRT-SAMPLE (the KLST11-style load-balanced comparator), and
//   FLOOD-ALL (the classical reference point),
// and reports mean decision time (rounds / normalized async time), mean
// amortized bits per node, the per-node maximum, and the load-balance ratio
// (max/mean).
//
// Expected shapes (paper): AER's time is flat in n under a non-rushing
// adversary and grows slowly under rushing/async; AER's bits grow
// poly-logarithmically (vs ~sqrt(n) polylog for SQRT-SAMPLE and ~n for
// FLOOD-ALL — note the d^3 relay constant keeps AER's absolute bits above
// the baselines until far larger n; the growth *slopes* are the
// reproduction target, see EXPERIMENTS.md); AER is not load-balanced while
// SQRT-SAMPLE and FLOOD-ALL are.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

struct Series {
  std::string label;
  std::vector<double> bits;
};

void print_growth(const std::vector<std::size_t>& sizes,
                  const std::vector<Series>& series) {
  std::printf("\nper-node bit growth when n doubles (slope ~ 2^p per size step):\n");
  for (const auto& s : series) {
    std::printf("  %-18s", s.label.c_str());
    for (std::size_t i = 1; i < s.bits.size(); ++i) {
      const double ratio = s.bits[i] / s.bits[i - 1];
      const double step = std::log2(static_cast<double>(sizes[i]) /
                                    static_cast<double>(sizes[i - 1]));
      std::printf("  x%.2f (n^%.2f)", ratio, std::log2(ratio) / step);
    }
    std::printf("\n");
  }
}

void add_rows(Table& table, const char* protocol,
              const std::vector<exp::PointResult>& results) {
  for (const exp::PointResult& r : results) {
    const exp::Aggregate& a = r.aggregate;
    const bool balanced = a.imbalance.mean < 1.5;
    table.add_row(
        {protocol, aer::model_name(r.point.model),
         Table::num(static_cast<std::uint64_t>(r.point.n)),
         Table::num(static_cast<std::uint64_t>(a.trials)),
         Table::num(a.completion_time.mean, 2),
         Table::num(a.amortized_bits.mean, 0),
         Table::num(a.max_sent_bits.mean, 0), Table::num(a.imbalance.mean, 2),
         balanced ? "yes" : "no",
         Table::num(a.decided_fraction(), 3),
         Table::num(a.agreement_rate(), 2)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_fig1a_ae2e",
                 .description =
                     "Figure 1(a): AER vs SQRT-SAMPLE vs FLOOD-ALL — time,"
                     " amortized bits, load balance vs n"});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials();
  const std::size_t threads = opt.threads;
  print_banner("Figure 1(a): almost-everywhere to everywhere comparison",
               "time / amortized bits / load balance across reductions;"
               " cells are means over seeded trials");

  Table table({"protocol", "model", "n", "trials", "time", "bits/node",
               "max bits/node", "imbalance", "load-balanced", "decided",
               "agree"});
  const std::vector<std::size_t> sizes = protocol_sizes(scale);

  aer::AerConfig base;
  base.seed = 20130722;  // PODC'13, July 22

  Stopwatch watch;

  // AER under all three timing models.
  exp::Grid aer_grid;
  aer_grid.ns = sizes;
  aer_grid.models = {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                     aer::Model::kAsync};
  exp::Sweep aer_sweep(base, aer_grid, trials);
  aer_sweep.set_threads(threads).set_procs(opt.procs);
  aer_sweep.set_progress(progress_printer("fig1a AER"));
  const auto aer_results = aer_sweep.run();

  // Baselines under sync-rushing, same world construction.
  exp::Grid base_grid;
  base_grid.ns = sizes;
  base_grid.models = {aer::Model::kSyncRushing};
  exp::Sweep sqrt_sweep(base, base_grid, trials);
  sqrt_sweep.set_threads(threads).set_procs(opt.procs);
  sqrt_sweep.set_trial(exp::run_sqrtsample_trial);
  sqrt_sweep.set_progress(progress_printer("fig1a sqrt-sample"));
  const auto sqrt_results = sqrt_sweep.run();
  exp::Sweep flood_sweep(base, base_grid, trials);
  flood_sweep.set_threads(threads).set_procs(opt.procs);
  flood_sweep.set_trial(exp::run_flood_trial);
  flood_sweep.set_progress(progress_printer("fig1a flood"));
  const auto flood_results = flood_sweep.run();

  add_rows(table, "AER", aer_results);
  add_rows(table, "SQRT-SAMPLE", sqrt_results);
  add_rows(table, "FLOOD-ALL", flood_results);
  table.print(std::cout);

  exp::Report report = make_report(
      "bench_fig1a_ae2e", "fig1a",
      "Figure 1(a): almost-everywhere to everywhere comparison", base.seed,
      trials, scale);
  report.meta().y_metric = "amortized_bits.mean";
  report.meta().y_label = "amortized bits per node";
  add_split_series(report, base, aer_results, [](const exp::GridPoint& p) {
    return std::string("AER/") + aer::model_name(p.model);
  });
  report.add_points("SQRT-SAMPLE", base, sqrt_results);
  report.add_points("FLOOD-ALL", base, flood_results);

  // Slope series from the sync-rushing rows (mean bits per point).
  std::vector<Series> series = {{"AER", {}},
                                {"SQRT-SAMPLE", {}},
                                {"FLOOD-ALL", {}}};
  for (const exp::PointResult& r : aer_results) {
    if (r.point.model == aer::Model::kSyncRushing) {
      series[0].bits.push_back(r.aggregate.amortized_bits.mean);
    }
  }
  for (const exp::PointResult& r : sqrt_results) {
    series[1].bits.push_back(r.aggregate.amortized_bits.mean);
  }
  for (const exp::PointResult& r : flood_results) {
    series[2].bits.push_back(r.aggregate.amortized_bits.mean);
  }
  print_growth(sizes, series);

  // The "Load-Balanced: No" column: the quorum-seizure load-skew attack
  // ("force these nodes to verify an almost-linear number of strings") vs
  // SQRT-SAMPLE's reply cap under the same corruption. The victim's planted
  // candidate load shows up as the max candidate-list size.
  std::printf("\nload balance under the quorum-seizure attack"
              " (t/n = 0.30, victim node 0, %zu trials/point):\n", trials);
  Table skew({"protocol", "n", "max |L| (victim)", "max sent bits",
              "mean sent bits", "imbalance"});
  aer::AerConfig skew_base = base;
  skew_base.corrupt_fraction = 0.30;
  skew_base.max_rounds = 40;
  exp::Grid skew_grid;
  skew_grid.ns = {256, 512};
  skew_grid.corrupt_fractions = {0.30};
  skew_grid.strategies = {"skew-heavy"};
  exp::Sweep skew_sweep(skew_base, skew_grid, trials);
  skew_sweep.set_threads(threads).set_procs(opt.procs);
  const auto skew_results = skew_sweep.run();
  report.add_points("AER skew-heavy", skew_base, skew_results);
  for (const exp::PointResult& r : skew_results) {
    const exp::Aggregate& a = r.aggregate;
    skew.add_row({"AER", Table::num(static_cast<std::uint64_t>(r.point.n)),
                  Table::num(static_cast<std::uint64_t>(a.max_candidate_list)),
                  Table::num(a.max_sent_bits.mean, 0),
                  Table::num(a.mean_sent_bits.mean, 0),
                  Table::num(a.imbalance.mean, 2)});
  }
  exp::Sweep skew_sqrt(skew_base, skew_grid, trials);
  skew_sqrt.set_threads(threads).set_procs(opt.procs);
  skew_sqrt.set_trial(exp::run_sqrtsample_trial);
  const auto skew_sqrt_results = skew_sqrt.run();
  report.add_points("SQRT-SAMPLE skew-heavy", skew_base, skew_sqrt_results);
  for (const exp::PointResult& r : skew_sqrt_results) {
    const exp::Aggregate& a = r.aggregate;
    skew.add_row({"SQRT-SAMPLE",
                  Table::num(static_cast<std::uint64_t>(r.point.n)),
                  "n/a (reply cap)", Table::num(a.max_sent_bits.mean, 0),
                  Table::num(a.mean_sent_bits.mean, 0),
                  Table::num(a.imbalance.mean, 2)});
  }
  skew.print(std::cout);

  std::printf("\npaper's asymptotic columns: AER time O(1) SNR /"
              " O(log n/log log n) async; bits O(polylog);"
              " KLST11-style bits O~(sqrt n), load-balanced.\n"
              "The imbalance ratio is unbounded in n for AER (string"
              " search keeps paying) but capped for SQRT-SAMPLE.\n");
  std::printf("[fig1a done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
