// Figure 1(b): Byzantine Agreement comparison.
//
// Paper columns: Time, Bits, resilience for [BOPV06], [KLST11], BA (this
// paper), [PR10], [KS13]. We regenerate the realizable rows empirically:
// the composed protocol BA = AE tournament + reduction, with the reduction
// instantiated as AER (the paper's protocol), SQRT-SAMPLE (KLST11-style) and
// FLOOD-ALL (the classical O(n) reference). For each n the bench runs a
// multi-trial exp::Sweep (the paper's time/bits claims are expectations, so
// every cell is a mean with a 95% CI) and reports end-to-end time (AE rounds
// + reduction time), amortized bits per node (both phases), and the
// agreement rate. `--trials=N` and `--threads=N` control the sweep;
// `--threads=1` is the serial reference for speedup measurements.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

ba::BaConfig ba_config_for(const aer::AerConfig& cfg) {
  ba::BaConfig out;
  out.n = cfg.n;
  out.seed = cfg.seed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  const std::size_t trials = trials_for(scale, argc, argv);
  const std::size_t threads = threads_for(argc, argv);
  print_banner("Figure 1(b): Byzantine Agreement comparison",
               "BA = AE tournament + reduction; per-row reduction varies;"
               " cells are means over seeded trials");

  Table table({"protocol", "n", "t", "trials", "time", "ci95", "ae rounds",
               "red. time", "bits/node", "ae bits", "red. bits", "agree"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;  // PODC'13, July 22
  exp::Grid grid;
  grid.ns = protocol_sizes(scale);

  for (auto reduction : {ba::Reduction::kAer, ba::Reduction::kSqrtSample,
                         ba::Reduction::kFlood}) {
    exp::Sweep sweep(base, grid, trials);
    sweep.set_threads(threads);
    sweep.set_progress(progress_printer(ba::reduction_name(reduction)));
    sweep.set_trial(
        [reduction](const aer::AerConfig& cfg, const exp::GridPoint&) {
          return exp::outcome_of(ba::run_ba(ba_config_for(cfg), reduction));
        });
    for (const exp::PointResult& r : sweep.run()) {
      const exp::Aggregate& a = r.aggregate;
      table.add_row(
          {std::string("BA/") + ba::reduction_name(reduction),
           Table::num(static_cast<std::uint64_t>(r.point.n)),
           Table::num(static_cast<std::uint64_t>(
               r.outcomes.front().correct > 0
                   ? r.point.n - r.outcomes.front().correct
                   : 0)),
           Table::num(static_cast<std::uint64_t>(a.trials)),
           Table::num(a.completion_time.mean, 1),
           "+-" + Table::num(a.completion_time.ci95, 1),
           Table::num(a.ae_rounds, 1), Table::num(a.reduction_time, 1),
           Table::num(a.amortized_bits.mean, 0), Table::num(a.ae_bits, 0),
           Table::num(a.reduction_bits, 0),
           Table::num(a.agreement_rate(), 2)});
    }
  }

  table.print(std::cout);
  std::printf(
      "\npaper row for BA (this work): model SR, time polylog, bits polylog,"
      " n >= 3t+1 asymptotically.\nAt simulation scale the corruption"
      " operating point is t/n = 0.05 (see DESIGN.md on quorum-majority"
      " margins).\n");
  std::printf("[fig1b done in %.1fs: %zu trials/point x %zu points on %zu"
              " thread(s)]\n",
              watch.seconds(), trials, grid.points() * 3, threads);
  return 0;
}
