// Figure 1(b): Byzantine Agreement comparison.
//
// Paper columns: Time, Bits, resilience for [BOPV06], [KLST11], BA (this
// paper), [PR10], [KS13]. We regenerate the realizable rows empirically:
// the composed protocol BA = AE tournament + reduction, with the reduction
// instantiated as AER (the paper's protocol), SQRT-SAMPLE (KLST11-style) and
// FLOOD-ALL (the classical O(n) reference). For each n we report end-to-end
// time (AE rounds + reduction time), amortized bits per node (both phases),
// and whether agreement held. The AE phase is common to all rows — exactly
// how the paper's table differs only in the reduction column.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

ba::BaConfig config_for(std::size_t n) {
  ba::BaConfig cfg;
  cfg.n = n;
  cfg.seed = 20130722;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  print_banner("Figure 1(b): Byzantine Agreement comparison",
               "BA = AE tournament + reduction; per-row reduction varies");

  Table table({"protocol", "n", "t", "time", "ae rounds", "red. time",
               "bits/node", "ae bits", "red. bits", "agree"});
  Stopwatch watch;

  for (std::size_t n : protocol_sizes(scale)) {
    for (auto reduction : {ba::Reduction::kAer, ba::Reduction::kSqrtSample,
                           ba::Reduction::kFlood}) {
      const ba::BaReport r = run_ba(config_for(n), reduction);
      table.add_row(
          {std::string("BA/") + ba::reduction_name(reduction),
           Table::num(static_cast<std::uint64_t>(n)),
           Table::num(static_cast<std::uint64_t>(r.ae.t)),
           Table::num(r.total_time, 1),
           Table::num(static_cast<std::uint64_t>(r.ae.rounds)),
           Table::num(r.reduction.completion_time, 1),
           Table::num(r.amortized_bits, 0),
           Table::num(r.ae.amortized_bits, 0),
           Table::num(r.reduction.amortized_bits, 0),
           r.agreement ? "yes" : "NO"});
    }
  }

  table.print(std::cout);
  std::printf(
      "\npaper row for BA (this work): model SR, time polylog, bits polylog,"
      " n >= 3t+1 asymptotically.\nAt simulation scale the corruption"
      " operating point is t/n = 0.05 (see DESIGN.md on quorum-majority"
      " margins).\n");
  std::printf("[fig1b done in %.1fs]\n", watch.seconds());
  return 0;
}
