// Figure 1(b): Byzantine Agreement comparison.
//
// Paper columns: Time, Bits, resilience for [BOPV06], [KLST11], BA (this
// paper), [PR10], [KS13]. We regenerate the realizable rows empirically:
// the composed protocol BA = AE tournament + reduction, with the reduction
// instantiated as AER (the paper's protocol), SQRT-SAMPLE (KLST11-style) and
// FLOOD-ALL (the classical O(n) reference). For each n the bench runs a
// multi-trial exp::Sweep (the paper's time/bits claims are expectations, so
// every cell is a mean with a 95% CI) and reports end-to-end time (AE rounds
// + reduction time), amortized bits per node (both phases), and the
// agreement rate. `--trials=N` and `--threads=N` control the sweep;
// `--threads=1` is the serial reference for speedup measurements.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

ba::BaConfig ba_config_for(const aer::AerConfig& cfg) {
  ba::BaConfig out;
  out.n = cfg.n;
  out.seed = cfg.seed;
  out.corrupt_fraction = cfg.corrupt_fraction;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_fig1b_ba",
                 .description =
                     "Figure 1(b): BA = AE tournament + {AER, SQRT-SAMPLE,"
                     " FLOOD-ALL} reduction vs n"});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials();
  const std::size_t threads = opt.threads;
  print_banner("Figure 1(b): Byzantine Agreement comparison",
               "BA = AE tournament + reduction; per-row reduction varies;"
               " cells are means over seeded trials");

  Table table({"protocol", "n", "t", "trials", "time", "ci95", "ae rounds",
               "red. time", "bits/node", "ae bits", "red. bits", "agree"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;  // PODC'13, July 22
  // BA's corruption operating point (BaConfig's default), recorded on the
  // base so report axes/provenance match the trials (see DESIGN note below).
  base.corrupt_fraction = 0.05;
  exp::Grid grid;
  grid.ns = protocol_sizes(scale);

  exp::Report report =
      make_report("bench_fig1b_ba", "fig1b",
                  "Figure 1(b): Byzantine Agreement comparison", base.seed,
                  trials, scale);
  report.meta().y_metric = "completion_time.mean";
  report.meta().y_label = "end-to-end time (AE rounds + reduction)";

  for (auto reduction : {ba::Reduction::kAer, ba::Reduction::kSqrtSample,
                         ba::Reduction::kFlood}) {
    exp::Sweep sweep(base, grid, trials);
    sweep.set_threads(threads).set_procs(opt.procs);
    sweep.set_progress(progress_printer(ba::reduction_name(reduction)));
    sweep.set_trial(
        [reduction](const aer::AerConfig& cfg, const exp::GridPoint&) {
          return exp::outcome_of(ba::run_ba(ba_config_for(cfg), reduction));
        });
    const auto results = sweep.run();
    report.add_points(std::string("BA/") + ba::reduction_name(reduction),
                      base, results);
    for (const exp::PointResult& r : results) {
      const exp::Aggregate& a = r.aggregate;
      table.add_row(
          {std::string("BA/") + ba::reduction_name(reduction),
           Table::num(static_cast<std::uint64_t>(r.point.n)),
           Table::num(static_cast<std::uint64_t>(
               r.outcomes.front().correct > 0
                   ? r.point.n - r.outcomes.front().correct
                   : 0)),
           Table::num(static_cast<std::uint64_t>(a.trials)),
           Table::num(a.completion_time.mean, 1),
           "+-" + Table::num(a.completion_time.ci95, 1),
           Table::num(a.ae_rounds, 1), Table::num(a.reduction_time, 1),
           Table::num(a.amortized_bits.mean, 0), Table::num(a.ae_bits, 0),
           Table::num(a.reduction_bits, 0),
           Table::num(a.agreement_rate(), 2)});
    }
  }

  table.print(std::cout);
  std::printf(
      "\npaper row for BA (this work): model SR, time polylog, bits polylog,"
      " n >= 3t+1 asymptotically.\nAt simulation scale the corruption"
      " operating point is t/n = 0.05 (see DESIGN.md on quorum-majority"
      " margins).\n");
  std::printf("[fig1b done in %.1fs: %zu trials/point x %zu points on %zu"
              " thread(s)]\n",
              watch.seconds(), trials, grid.points() * 3, threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
