// Figure 2: the push (2a) and pull (2b) message-flow structure.
//
// The paper's figure is an illustration: node x accepts string s1 (pushed by
// a majority of I(x, s1)) and ignores s2; a pull request travels
// x -> H(s, x) -> H(s, w_i) -> w_i in J(x, r) -> x. We regenerate it as a
// concrete trace on a small network: for one knowledgeable and one
// unknowledgeable node we print their quorums, the push votes they saw, and
// the per-hop message counts of their verification pulls.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

std::string show_members(const sampler::Quorum& q,
                         const std::vector<bool>& corrupt) {
  std::string out = "{";
  for (std::size_t i = 0; i < q.members.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(q.members[i]);
    if (corrupt[q.members[i]]) out += "*";
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_fig2_trace",
                 .description =
                     "Figure 2: a concrete push/pull trace (n = 64) plus the"
                     " multi-trial per-hop message-flow table"});
  print_banner("Figure 2: push and pull message flow",
               "a concrete trace of the Figure 2 structure (n = 64);"
               " '*' marks Byzantine nodes");

  aer::AerConfig cfg;
  cfg.n = 64;
  cfg.seed = 13;
  cfg.model = aer::Model::kSyncRushing;
  cfg.d_override = 11;

  aer::AerWorld world = aer::build_aer_world(cfg);
  const aer::AerShared& shared = *world.shared;
  std::vector<bool> corrupt(cfg.n, false);
  for (NodeId id : world.view.corrupt) corrupt[id] = true;

  // Pick one knowledgeable and one unknowledgeable correct node.
  NodeId knower = 0, learner = 0;
  for (NodeId id : world.correct) {
    if (world.view.knowledgeable[id]) knower = id;
    else learner = id;
  }

  const auto gkey = shared.key_of(shared.gstring);
  std::printf("gstring = %s (%zu bits), interned id %u\n",
              shared.table.get(shared.gstring).to_string().c_str(),
              shared.table.bits(shared.gstring), shared.gstring);
  std::printf("corrupt nodes (t=%zu): ", world.view.corrupt.size());
  for (NodeId id : world.view.corrupt) std::printf("%u ", id);
  std::printf("\n\n-- Figure 2a: push to node x=%u (initially ignorant) --\n",
              learner);

  const auto push_quorum = shared.samplers.push.quorum(gkey, learner);
  std::printf("I(gstring, x) = %s\n",
              show_members(push_quorum, corrupt).c_str());
  std::size_t knowledgeable_members = 0;
  for (NodeId m : push_quorum.members) {
    if (!corrupt[m] && world.view.knowledgeable[m]) ++knowledgeable_members;
  }
  std::printf("knowledgeable members: %zu of %zu -> majority %s: x %s gstring\n",
              knowledgeable_members, push_quorum.size(),
              2 * knowledgeable_members > push_quorum.size() ? "holds" : "fails",
              2 * knowledgeable_members > push_quorum.size() ? "accepts"
                                                             : "rejects");
  const auto junk_key = shared.key_of(world.view.initial[learner]);
  const auto junk_quorum = shared.samplers.push.quorum(junk_key, learner);
  std::printf("I(s_own, x)   = %s  (nobody else pushes s_own: rejected)\n",
              show_members(junk_quorum, corrupt).c_str());

  std::printf("\n-- Figure 2b: pull request from x=%u for gstring --\n", knower);
  Rng rng(99);
  const PollLabel r = shared.samplers.poll.random_label(rng);
  const auto poll_list = shared.samplers.poll.poll_list(knower, r);
  const auto pull_quorum = shared.samplers.pull.quorum(gkey, knower);
  std::printf("H(s, x)    = %s   <- Pull(s, r)\n",
              show_members(pull_quorum, corrupt).c_str());
  std::printf("J(x, r)    = %s   <- Poll(s, r), r=%llu\n",
              show_members(poll_list, corrupt).c_str(),
              static_cast<unsigned long long>(r));
  for (NodeId w : poll_list.members) {
    const auto h_w = shared.samplers.pull.quorum(gkey, w);
    std::printf("H(s, w=%2u) = %s   <- Fw1 from H(s,x); Fw2 -> w\n", w,
                show_members(h_w, corrupt).c_str());
    break;  // one proxy quorum suffices for the illustration
  }

  // Now run the protocol and report the measured per-hop flow.
  const aer::AerReport report = aer::run_aer_world(world);
  std::printf("decided: %zu/%zu on gstring, %s in %.0f rounds\n",
              report.decided_gstring, report.correct_count,
              report.agreement ? "agreement" : "NO AGREEMENT",
              report.completion_time);

  // Multi-trial per-hop table: the Aggregate's per-kind traffic axes give
  // every hop a mean and a 95% CI across seeded trials of this
  // configuration (the single-seed trace above is just the illustration).
  const std::size_t trials = opt.trials(25, 25, 25);
  exp::Sweep sweep(cfg, exp::Grid{}, trials);
  sweep.set_threads(opt.threads).set_procs(opt.procs);
  sweep.set_progress(progress_printer("fig2 sweep"));
  const auto results = sweep.run();
  const exp::Aggregate agg = results.front().aggregate;

  exp::Report flow_report =
      make_report("bench_fig2_trace", "fig2",
                  "Figure 2: push and pull message flow (per-kind traffic)",
                  cfg.seed, trials, Scale::kDefault);
  flow_report.meta().x_axis = "kind";
  flow_report.meta().y_metric = "amortized_bits.mean";
  flow_report.meta().y_label = "amortized bits per node";
  flow_report.add_points("AER n=64", cfg, results);

  std::printf("\n-- measured message flow (whole network, %zu trials) --\n",
              agg.trials);
  Table table({"hop", "kind", "msgs (mean)", "bits (mean +/- ci95)", "role"});
  const std::vector<std::pair<const char*, sim::MessageKind>> hops = {
      {"1", sim::MessageKind::kPush}, {"2", sim::MessageKind::kPoll},
      {"2", sim::MessageKind::kPull}, {"3", sim::MessageKind::kFw1},
      {"4", sim::MessageKind::kFw2},  {"5", sim::MessageKind::kAnswer},
  };
  const std::map<sim::MessageKind, const char*> roles = {
      {sim::MessageKind::kPush, "y -> x in I(s,.)"},
      {sim::MessageKind::kPoll, "x -> J(x,r)"},
      {sim::MessageKind::kPull, "x -> H(s,x)"},
      {sim::MessageKind::kFw1, "H(s,x) -> H(s,w)"},
      {sim::MessageKind::kFw2, "H(s,w) -> w"},
      {sim::MessageKind::kAnswer, "w -> x"},
  };
  for (const auto& [hop, kind] : hops) {
    const std::size_t k = sim::kind_index(kind);
    table.add_row({hop, sim::kind_name(kind),
                   Table::num(agg.msgs_by_kind[k], 1),
                   Table::num(agg.bits_by_kind[k].mean, 0) + " +/- " +
                       Table::num(agg.bits_by_kind[k].ci95, 0),
                   roles.at(kind)});
  }
  table.print(std::cout);
  std::printf("\nacross %zu seeded trials of this configuration: agreement"
              " rate %.2f, mean completion %.1f rounds (p99 %.1f), %.0f"
              " bits/node\n",
              agg.trials, agg.agreement_rate(), agg.completion_time.mean,
              agg.completion_time.p99, agg.amortized_bits.mean);
  write_json_if_requested(flow_report, opt.json);
  return 0;
}
