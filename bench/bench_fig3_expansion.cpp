// Figure 3 / Section 4.1.2: the random-digraph properties of the sampler J.
//
// The paper proves P(u, s) = o(2^-n): for every labeled set L with
// |L| <= n / log n (at most one label per node), the border
// |dL| = sum over (x,r) in L of |J(x,r) \ L*| exceeds (2/3) d |L|. We
// regenerate the result as a Monte-Carlo estimate on the concrete sampler:
//   - Property 1 (from KLST11): the fraction of labels whose poll list has
//     only a minority of good nodes;
//   - Property 2: the border ratio |dL| / (d |L|) for uniformly random L and
//     for a greedy adversarial L that tries to corner the sampler (the
//     overload-chain builder of Lemma 6). Both must stay above 2/3.
// Monte-Carlo trials fan out across threads via exp::run_indexed with
// per-trial seeds from exp::trial_seed, so results are reproducible at any
// thread count.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"
#include "fig3_common.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_fig3_expansion",
                 .description =
                     "Figure 3 / Lemma 2: Monte-Carlo border expansion of"
                     " the poll sampler J"});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials(3, 10, 10);
  const std::size_t threads = opt.threads;
  print_banner("Figure 3 / Section 4.1.2: sampler expansion (Lemma 2)",
               "border ratio |dL| / (d|L|) must exceed 2/3 for all L with"
               " |L| <= n/log n");

  Table table({"n", "d", "|L|", "set", "min ratio", "mean ratio", "bound",
               "holds"});
  Table p1_table({"n", "good frac", "bad-label frac", "samples"});
  Stopwatch watch;

  exp::Report report = make_report(
      "bench_fig3_expansion", "fig3",
      "Figure 3 / Lemma 2: sampler border expansion", 20130722, trials, scale);
  // The border ratio rides in the completion_time stat slot; y_metric names
  // the meaning (docs/output-schema.md, "figure metrics").
  report.meta().y_metric = "completion_time.min";
  report.meta().y_label = "min border ratio |dL| / (d |L|)";

  // The Monte-Carlo points run through benchutil::run_fig3_point — the
  // same code path fba_repro's fig3 driver uses, so both tools derive the
  // same per-trial seeds and fingerprints.
  std::size_t grid_point = 0;
  for (std::size_t n : light_sizes(scale)) {
    const auto params = sampler::SamplerParams::defaults(n, 1);
    const sampler::PollSampler sampler(params, 0x4a20706f6c6c0000ull);
    const std::uint64_t base_seed = 20130722 + n;

    for (const bool adversarial : {false, true}) {
      ++grid_point;
      Fig3Point point =
          run_fig3_point(n, adversarial, grid_point, 20130722, trials,
                         threads);
      const exp::SummaryStats stats = exp::summarize_sample(point.ratios);
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(point.d)),
                     Table::num(static_cast<std::uint64_t>(point.set_size)),
                     adversarial ? "greedy-adversarial" : "uniform",
                     Table::num(stats.min, 3), Table::num(stats.mean, 3),
                     "0.667", stats.min > 2.0 / 3.0 ? "yes" : "NO"});
      const std::string series = point.report_point.point.strategy;
      report.add_point(series, std::move(point.report_point));
    }

    // Property 1: bad-label fraction under a (1/2 + eps) good population.
    const std::vector<double> good_fracs = {0.55, 0.75, 0.90};
    std::vector<double> fracs(good_fracs.size(), 0);
    std::vector<std::size_t> good_counts(good_fracs.size(), 0);
    const std::size_t samples = scale == Scale::kQuick ? 4000 : 20000;
    exp::run_indexed(good_fracs.size(), threads, [&](std::size_t i) {
      Rng rng(exp::trial_seed(base_seed, 0x9001 + i, 0));
      std::vector<bool> good(n, false);
      std::size_t good_count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        good[j] = rng.chance(good_fracs[i]);
        good_count += good[j];
      }
      good_counts[i] = good_count;
      fracs[i] = bad_label_fraction(sampler, good, samples, rng);
    });
    for (std::size_t i = 0; i < good_fracs.size(); ++i) {
      p1_table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                        Table::num(double(good_counts[i]) / double(n), 2),
                        Table::num(fracs[i], 4),
                        Table::num(static_cast<std::uint64_t>(samples))});
    }
  }

  std::printf("Property 2 (border expansion):\n");
  table.print(std::cout);
  std::printf("\nProperty 1 (labels whose poll list lacks a good majority):\n");
  p1_table.print(std::cout);
  std::printf("\npaper: both properties hold w.h.p. for a random construction"
              " (P(u,s) = o(2^-n)); measured instance satisfies them.\n");
  std::printf("[fig3 done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
