// Micro-benchmarks (google-benchmark) for the primitives everything else is
// built from: SipHash, Feistel permutations, quorum/poll-list evaluation,
// the memoizing caches, and raw engine message throughput. Not a paper
// artifact; used to keep the simulator fast enough for the protocol sweeps
// and to quantify the invertible-sampler design decision (DESIGN.md §6).
#include <benchmark/benchmark.h>

#include "fba.h"

namespace {

using namespace fba;

void BM_SipHashWords(benchmark::State& state) {
  const SipKey key{1, 2};
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash_words(key, {x++, 42, 7}));
  }
}
BENCHMARK(BM_SipHashWords);

void BM_FeistelForward(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  FeistelPermutation perm(n, SipKey{3, 4});
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.forward(x));
    x = (x + 1) % n;
  }
}
BENCHMARK(BM_FeistelForward)->Arg(1024)->Arg(65536);

void BM_FeistelInverse(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  FeistelPermutation perm(n, SipKey{3, 4});
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.inverse(x));
    x = (x + 1) % n;
  }
}
BENCHMARK(BM_FeistelInverse)->Arg(1024)->Arg(65536);

void BM_QuorumEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sampler::QuorumSampler sampler(sampler::SamplerParams::defaults(n, 1), 0x11);
  NodeId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.quorum(0xabc, x));
    x = (x + 1) % n;
  }
  state.SetItemsProcessed(state.iterations() * sampler.d());
}
BENCHMARK(BM_QuorumEval)->Arg(1024)->Arg(16384);

void BM_QuorumTargets(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sampler::QuorumSampler sampler(sampler::SamplerParams::defaults(n, 1), 0x11);
  NodeId y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.targets(0xabc, y));
    y = (y + 1) % n;
  }
}
BENCHMARK(BM_QuorumTargets)->Arg(1024)->Arg(16384);

void BM_QuorumCacheHit(benchmark::State& state) {
  sampler::QuorumSampler sampler(sampler::SamplerParams::defaults(4096, 1),
                                 0x11);
  sampler::QuorumCache cache(sampler);
  cache.get(7, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.contains(7, 3, 1));
  }
}
BENCHMARK(BM_QuorumCacheHit);

void BM_PollListEval(benchmark::State& state) {
  sampler::PollSampler sampler(sampler::SamplerParams::defaults(4096, 1),
                               0x44);
  PollLabel r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.poll_list(5, r++));
  }
}
BENCHMARK(BM_PollListEval);

/// Raw engine throughput: one actor ping-pong pair, measured per delivery.
void BM_SyncEngineDelivery(benchmark::State& state) {
  struct Wire final : sim::Wire {
    std::size_t node_id_bits() const override { return 12; }
    std::size_t label_bits() const override { return 24; }
    std::size_t string_bits(StringId) const override { return 48; }
  };
  struct Ping final : sim::Payload {
    std::size_t bit_size(const sim::Wire&) const override { return 8; }
    const char* kind() const override { return "ping"; }
  };
  struct Bouncer final : sim::Actor {
    void on_start(sim::Context& ctx) override {
      ctx.send(1 - ctx.self(), std::make_shared<Ping>());
    }
    void on_message(sim::Context& ctx, const sim::Envelope& env) override {
      ctx.send(env.src, env.payload);
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    sim::SyncConfig cfg;
    cfg.n = 2;
    cfg.max_rounds = 1000;
    sim::SyncEngine engine(cfg);
    Wire wire;
    engine.set_wire(&wire);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    state.ResumeTiming();
    engine.run([] { return false; });
    benchmark::DoNotOptimize(engine.metrics().total_messages());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SyncEngineDelivery);

void BM_BitStringDigest(benchmark::State& state) {
  Rng rng(1);
  const BitString s = BitString::random(64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.digest());
  }
}
BENCHMARK(BM_BitStringDigest);

/// Per-trial seed derivation, paid once per experiment trial.
void BM_ExpTrialSeed(benchmark::State& state) {
  std::uint64_t point = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::trial_seed(20130722, point++, 7));
  }
}
BENCHMARK(BM_ExpTrialSeed);

/// Thread-pool fan-out overhead of the experiment runner: tasks are no-ops,
/// so this measures pure dispatch cost per trial slot.
void BM_ExpRunIndexed(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> sink(tasks, 0);
  for (auto _ : state) {
    exp::run_indexed(tasks, exp::default_threads(),
                     [&sink](std::size_t i) { sink[i] = i; });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ExpRunIndexed)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
