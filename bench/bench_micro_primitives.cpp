// Micro-benchmarks (google-benchmark) for the primitives everything else is
// built from: SipHash, Feistel permutations, quorum/poll-list evaluation,
// the memoizing caches, and raw engine message throughput. Not a paper
// artifact; used to keep the simulator fast enough for the protocol sweeps
// and to quantify the invertible-sampler design decision (DESIGN.md §6).
//
// The send->deliver benches also count heap allocations through an
// instrumented global allocator: the flat-message transport must perform
// ZERO steady-state allocations per send (BM_SteadyStateSendAllocations
// fails the run otherwise). Track results over time with
//   ./bench_micro_primitives --benchmark_out=BENCH_micro_primitives.json
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "fba.h"

// ----- instrumented allocator ------------------------------------------------
// Counts every global operator new while g_count_allocs is set. Replacing
// the global allocator is per-binary, so this instruments the whole process
// (engine, protocol state, benchmark framework) — the benches scope the flag
// tightly around the measured region.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

// GCC pairs the replaced operator new (malloc-backed) with the free() in the
// replaced operator delete at inlined call sites and flags the pair as a
// new/free mismatch; the pairing is exactly the contract here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  note_alloc();
  const auto align = static_cast<std::size_t>(al);
  const std::size_t rounded = ((size ? size : 1) + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace fba;

void BM_SipHashWords(benchmark::State& state) {
  const SipKey key{1, 2};
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash_words(key, {x++, 42, 7}));
  }
}
BENCHMARK(BM_SipHashWords);

void BM_FeistelForward(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  FeistelPermutation perm(n, SipKey{3, 4});
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.forward(x));
    x = (x + 1) % n;
  }
}
BENCHMARK(BM_FeistelForward)->Arg(1024)->Arg(65536);

void BM_FeistelInverse(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  FeistelPermutation perm(n, SipKey{3, 4});
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.inverse(x));
    x = (x + 1) % n;
  }
}
BENCHMARK(BM_FeistelInverse)->Arg(1024)->Arg(65536);

void BM_QuorumEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sampler::QuorumSampler sampler(sampler::SamplerParams::defaults(n, 1), 0x11);
  NodeId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.quorum(0xabc, x));
    x = (x + 1) % n;
  }
  state.SetItemsProcessed(state.iterations() * sampler.d());
}
BENCHMARK(BM_QuorumEval)->Arg(1024)->Arg(16384);

void BM_QuorumTargets(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sampler::QuorumSampler sampler(sampler::SamplerParams::defaults(n, 1), 0x11);
  NodeId y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.targets(0xabc, y));
    y = (y + 1) % n;
  }
}
BENCHMARK(BM_QuorumTargets)->Arg(1024)->Arg(16384);

/// Warm-row lookup through the dense tables: the per-delivery hot path
/// (one dense index, no hashing — what replaced the unordered_map cache).
void BM_QuorumLookupWarm(benchmark::State& state) {
  sampler::SamplerSuite suite(sampler::SamplerParams::defaults(4096, 1));
  sampler::SharedTables tables;
  tables.reset(suite, 4096);
  tables.push.row(0, 7, 3);  // build once
  for (auto _ : state) {
    const sampler::QuorumView view = tables.push.row(0, 7, 3);
    benchmark::DoNotOptimize(view.contains(1));
  }
}
BENCHMARK(BM_QuorumLookupWarm);

/// Cold-row build: table reset (re-key) plus first touch of d rows — the
/// per-trial setup cost the precomputed slot permutations amortize.
void BM_QuorumLookupCold(benchmark::State& state) {
  sampler::SamplerSuite suite(sampler::SamplerParams::defaults(4096, 1));
  sampler::SharedTables tables;
  NodeId x = 0;
  for (auto _ : state) {
    tables.reset(suite, 4096);
    for (std::size_t k = 0; k < suite.params.d; ++k) {
      benchmark::DoNotOptimize(tables.push.row(0, 7, x));
      x = (x + 1) % 4096;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(suite.params.d));
}
BENCHMARK(BM_QuorumLookupCold);

/// Warm poll-row lookup: one open-addressed probe on the packed (x, r) key.
void BM_PollLookupWarm(benchmark::State& state) {
  sampler::SamplerSuite suite(sampler::SamplerParams::defaults(4096, 1));
  sampler::SharedTables tables;
  tables.reset(suite, 4096);
  tables.poll.row(3, 777);
  for (auto _ : state) {
    const sampler::QuorumView view = tables.poll.row(3, 777);
    benchmark::DoNotOptimize(view.contains(1));
  }
}
BENCHMARK(BM_PollLookupWarm);

void BM_PollListEval(benchmark::State& state) {
  sampler::PollSampler sampler(sampler::SamplerParams::defaults(4096, 1),
                               0x44);
  PollLabel r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.poll_list(5, r++));
  }
}
BENCHMARK(BM_PollListEval);

// ----- engine send->deliver path ---------------------------------------------

sim::Wire bench_wire() {
  sim::Wire w;
  w.node_id_bits = 12;
  w.label_bits = 24;
  w.fixed_string_bits = 48;
  return w;
}

sim::Message bench_ping() {
  sim::Message m;
  m.kind = sim::MessageKind::kPing;
  return m;
}

/// Replies to every delivery: an endless ping-pong pair.
struct Bouncer final : sim::Actor {
  void on_start(sim::Context& ctx) override {
    ctx.send(1 - ctx.self(), bench_ping());
  }
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    ctx.send(env.src, env.msg);
  }
};

/// Raw engine throughput: one actor ping-pong pair, measured per delivery.
/// This is the flat-message send->deliver cost the transport refactor
/// targets (>= 2x the shared_ptr payload baseline).
void BM_SyncEngineDelivery(benchmark::State& state) {
  const sim::Wire wire = bench_wire();
  for (auto _ : state) {
    state.PauseTiming();
    sim::SyncConfig cfg;
    cfg.n = 2;
    cfg.max_rounds = 1000;
    sim::SyncEngine engine(cfg);
    engine.set_wire(&wire);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    state.ResumeTiming();
    engine.run([] { return false; });
    benchmark::DoNotOptimize(engine.metrics().total_messages());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SyncEngineDelivery);

/// Same shape under the asynchronous engine: EventQueue push/pop plus the
/// per-message delay draw dominate.
void BM_AsyncEngineDelivery(benchmark::State& state) {
  const sim::Wire wire = bench_wire();
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::AsyncConfig cfg;
    cfg.n = 2;
    cfg.max_time = 500.0;
    sim::AsyncEngine engine(cfg);
    engine.set_wire(&wire);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    state.ResumeTiming();
    const sim::AsyncResult result = engine.run([] { return false; });
    deliveries += result.deliveries;
    benchmark::DoNotOptimize(result.time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
}
BENCHMARK(BM_AsyncEngineDelivery);

/// The zero-allocation contract of the transport layer: once the event slab
/// is warm (16 rounds), a full send->queue->deliver cycle must not touch the
/// heap. Counted via the instrumented global allocator; a nonzero count
/// fails the benchmark (and the CI smoke step with it).
void BM_SteadyStateSendAllocations(benchmark::State& state) {
  const sim::Wire wire = bench_wire();
  std::size_t allocs = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    sim::SyncConfig cfg;
    cfg.n = 2;
    cfg.max_rounds = 1000;
    sim::SyncEngine engine(cfg);
    engine.set_wire(&wire);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    engine.run([&engine] {
      if (engine.current_round() == 16) {  // slab and scratch are warm now
        g_alloc_count.store(0, std::memory_order_relaxed);
        g_count_allocs.store(true, std::memory_order_relaxed);
      }
      return false;
    });
    g_count_allocs.store(false, std::memory_order_relaxed);
    allocs += g_alloc_count.load(std::memory_order_relaxed);
    messages += engine.metrics().total_messages();
  }
  state.counters["steady_allocs"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  if (allocs != 0) {
    state.SkipWithError("steady-state send path performed heap allocations");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_SteadyStateSendAllocations);

/// The same contract with the recovery sublayer engaged: tracked sends,
/// ack generation, retransmit timers and resends all run from the pooled
/// slot table and the event slab. Unlike the plain bench's constant
/// 2-messages-per-round trace, lossy ARQ traffic is bursty — the event
/// queue's lane/ring capacity high-water is only reached somewhere inside
/// the run — so this bench follows BM_WarmTrialAllocations' shape instead:
/// one engine, reset() between runs (capacity persists, as in the trial
/// arena), one unmeasured warm-up run over the identical deterministic
/// trace, then every measured run must perform zero heap allocations. The
/// loss plan forces the retransmit path to actually fire (not just the
/// tracking bookkeeping).
void BM_SteadyStateSendAllocationsRecovery(benchmark::State& state) {
  const sim::Wire wire = bench_wire();
  const sim::FaultPlan fault = exp::fault_plan_factory("lossy-5pct");
  const sim::RecoveryPlan recovery = exp::recovery_plan_factory("arq-fast");
  sim::SyncConfig cfg;
  cfg.n = 2;
  cfg.max_rounds = 1000;
  sim::SyncEngine engine(cfg);
  const auto run_once = [&] {
    engine.reset(cfg);
    engine.set_wire(&wire);
    engine.set_fault_plan(&fault);
    engine.set_recovery_plan(&recovery);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    engine.run([] { return false; });
  };
  run_once();  // warm-up: grow queue lanes/ring and the slot pool
  std::size_t allocs = 0;
  std::uint64_t messages = 0;
  std::uint64_t retransmits = 0;
  for (auto _ : state) {
    engine.reset(cfg);
    engine.set_wire(&wire);
    engine.set_fault_plan(&fault);
    engine.set_recovery_plan(&recovery);
    engine.set_actor(0, std::make_unique<Bouncer>());
    engine.set_actor(1, std::make_unique<Bouncer>());
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    engine.run([] { return false; });
    g_count_allocs.store(false, std::memory_order_relaxed);
    allocs += g_alloc_count.load(std::memory_order_relaxed);
    messages += engine.metrics().total_messages();
    retransmits += engine.metrics().recovery_retransmit_messages();
  }
  state.counters["steady_allocs_recovery"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  state.counters["retransmits"] =
      static_cast<double>(retransmits) / static_cast<double>(state.iterations());
  if (allocs != 0) {
    state.SkipWithError(
        "recovery-enabled steady-state send path performed heap allocations");
  }
  if (retransmits == 0) {
    state.SkipWithError(
        "recovery-enabled bench saw no retransmits — the gate measured"
        " nothing");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_SteadyStateSendAllocationsRecovery);

/// Full world construction through the trial arena: what exp::Sweep pays
/// per trial before the engine runs (samplers re-keyed, string table and
/// vectors reused in place).
void BM_TrialSetup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  exp::TrialArena arena;
  aer::AerConfig cfg;
  cfg.n = n;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;  // fresh setup randomness every trial, as in a sweep
    aer::build_aer_world_into(arena.world, cfg);
    benchmark::DoNotOptimize(arena.world.correct.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrialSetup)->Arg(256)->Arg(2048);

/// The trial-arena zero-allocation contract: once the arena is warm, a full
/// AER trial (world rebuild + engine run + outcome harvest) must not touch
/// the heap. Counted via the instrumented global allocator; any allocation
/// fails the benchmark (and the CI smoke step with it). Mirrors
/// BM_SteadyStateSendAllocations, one level up.
void BM_WarmTrialAllocations(benchmark::State& state) {
  exp::TrialArena arena;
  exp::GridPoint point;
  point.n = 64;
  point.model = aer::Model::kSyncRushing;
  point.strategy = "none";
  aer::AerConfig cfg;
  cfg.n = 64;
  cfg.model = aer::Model::kSyncRushing;
  exp::TrialOutcome out;
  // Warm-up: grow every pool/slab/table to these trials' working-set size.
  // The measured loop re-runs the same seeds: the zero-allocation contract
  // is that a trial whose working set the arena has already accommodated
  // performs no heap allocation (a *new* seed may legitimately push a
  // capacity high-water mark once, then joins the warm set).
  constexpr std::uint64_t kSeeds = 4;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    cfg.seed = seed;
    exp::run_aer_trial(cfg, point, arena, out);
  }
  std::size_t allocs = 0;
  std::uint64_t trials = 0;
  for (auto _ : state) {
    cfg.seed = 1 + trials % kSeeds;
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    exp::run_aer_trial(cfg, point, arena, out);
    g_count_allocs.store(false, std::memory_order_relaxed);
    allocs += g_alloc_count.load(std::memory_order_relaxed);
    ++trials;
  }
  state.counters["warm_trial_allocs"] =
      static_cast<double>(allocs) / static_cast<double>(trials);
  if (allocs != 0) {
    state.SkipWithError("warm-arena trial performed heap allocations");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials));
}
BENCHMARK(BM_WarmTrialAllocations);

/// The service-mode zero-allocation contract, one level above
/// BM_WarmTrialAllocations: once a pipeline worker's arena is warm, a full
/// service *instance* — ServicePlan::configure re-key, world rebuild, engine
/// run, outcome harvest — must not touch the heap. This is the
/// cross-instance amortization exp::Service is built on; any allocation
/// fails the benchmark (and the CI perf-smoke gate with it).
void BM_WarmInstanceAllocations(benchmark::State& state) {
  exp::ServiceConfig config;
  config.base.n = 64;
  config.base.model = aer::Model::kSyncRushing;
  const exp::ServicePlan plan(config);
  exp::TrialArena arena;
  aer::AerConfig cfg;
  exp::TrialOutcome out;
  // Warm-up over a small instance window, then re-run the same instances
  // measured — identical contract to BM_WarmTrialAllocations: a working set
  // the arena has already accommodated allocates nothing.
  constexpr std::uint64_t kInstances = 4;
  for (std::uint64_t i = 0; i < kInstances; ++i) {
    plan.run_instance(i, cfg, arena, out);
  }
  std::size_t allocs = 0;
  std::uint64_t instances = 0;
  for (auto _ : state) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    plan.run_instance(instances % kInstances, cfg, arena, out);
    g_count_allocs.store(false, std::memory_order_relaxed);
    allocs += g_alloc_count.load(std::memory_order_relaxed);
    ++instances;
  }
  state.counters["warm_instance_allocs"] =
      static_cast<double>(allocs) / static_cast<double>(instances);
  if (allocs != 0) {
    state.SkipWithError("warm service instance performed heap allocations");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_WarmInstanceAllocations);

void BM_BitStringDigest(benchmark::State& state) {
  Rng rng(1);
  const BitString s = BitString::random(64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.digest());
  }
}
BENCHMARK(BM_BitStringDigest);

/// Per-trial seed derivation, paid once per experiment trial.
void BM_ExpTrialSeed(benchmark::State& state) {
  std::uint64_t point = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::trial_seed(20130722, point++, 7));
  }
}
BENCHMARK(BM_ExpTrialSeed);

/// Thread-pool fan-out overhead of the experiment runner: tasks are no-ops,
/// so this measures pure dispatch cost per trial slot.
void BM_ExpRunIndexed(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> sink(tasks, 0);
  for (auto _ : state) {
    exp::run_indexed(tasks, exp::default_threads(),
                     [&sink](std::size_t i) { sink[i] = i; });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ExpRunIndexed)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
