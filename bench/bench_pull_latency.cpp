// Lemmas 6 and 8: pull-phase latency across adversary timing models.
//
//   Lemma 8: against a non-rushing adversary, pull requests are answered in
//            O(1) steps — decision time flat in n.
//   Lemma 6: a rushing (or asynchronous) adversary can overload the nodes a
//            requester polled (the overload-chain attack), stretching the
//            time to O(log n / log log n).
//
// The bench sweeps n under all three models with the poll-stuffing attack
// at a deliberately tight answer budget (the paper's log^2 n budget exceeds
// t at simulation scale, which would mute the attack — see DESIGN.md), and
// reports mean / max decision times. The `--no-defer` ablation removes
// Algorithm 3's deferred answering ("Wait for has_decided") to show it is
// load-bearing under attack.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

struct CaseResult {
  aer::AerReport report;
  Histogram latency{0, 12, 48};
};

CaseResult run_case(std::size_t n, aer::Model model, bool attack,
                    bool defer) {
  aer::AerConfig cfg;
  cfg.n = n;
  cfg.seed = 20130722;
  cfg.model = model;
  cfg.answer_budget = 16;  // tight but above the honest per-responder load
  cfg.defer_answers = defer;

  aer::StrategyFactory factory;
  if (attack) {
    factory = [](const aer::AerWorldView& view) {
      auto combo = std::make_unique<adv::ComboStrategy>();
      combo->add(std::make_unique<adv::PollStuffStrategy>(view, 24, 512));
      if (view.shared->config.model == aer::Model::kAsync) {
        combo->set_delay_policy(
            std::make_unique<adv::TargetedDelayStrategy>(view));
      }
      return combo;
    };
  }

  CaseResult result;
  aer::AerWorld world = aer::build_aer_world(cfg);
  result.report = aer::run_aer_world(world, factory);
  for (NodeId id : world.correct) {
    if (world.decisions.has_decided(id)) {
      result.latency.add(world.decisions.time(id));
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  const bool no_defer = has_flag(argc, argv, "--no-defer");
  print_banner("Lemmas 6/8: pull latency under overload attacks",
               no_defer ? "ABLATION: deferred answering disabled"
                        : "decision time vs n, poll-stuffing adversary");

  Table table({"model", "adversary", "n", "mean time", "p99", "max time",
               "max deferred", "decided", "agree"});
  Stopwatch watch;

  std::vector<std::size_t> sizes = protocol_sizes(scale);
  if (scale == Scale::kDefault && sizes.back() > 1024) {
    sizes.pop_back();  // three models x attack: keep the default run short
  }

  std::vector<std::pair<std::string, std::string>> histograms;
  for (std::size_t n : sizes) {
    for (auto model : {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                       aer::Model::kAsync}) {
      for (const bool attack : {false, true}) {
        const CaseResult c = run_case(n, model, attack, !no_defer);
        const aer::AerReport& r = c.report;
        table.add_row(
            {aer::model_name(model), attack ? "poll-stuff" : "none",
             Table::num(static_cast<std::uint64_t>(n)),
             Table::num(r.mean_decision_time, 2),
             Table::num(c.latency.quantile(0.99), 2),
             Table::num(r.completion_time, 2),
             Table::num(static_cast<std::uint64_t>(r.max_deferred_answers)),
             Table::num(static_cast<std::uint64_t>(r.decided_count)) + "/" +
                 Table::num(static_cast<std::uint64_t>(r.correct_count)),
             r.agreement ? "yes" : "NO"});
        if (n == sizes.back() && model == aer::Model::kAsync) {
          histograms.emplace_back(
              std::string(attack ? "async+attack " : "async        ") +
                  "n=" + std::to_string(n),
              c.latency.render(40));
        }
      }
    }
  }

  table.print(std::cout);
  std::printf("\ndecision-time distribution (the overload chain shows up as"
              " the upper tail):\n");
  for (const auto& [label, bars] : histograms) {
    std::printf("  %s %s\n", label.c_str(), bars.c_str());
  }
  std::printf(
      "\npaper: non-rushing decision time O(1) (flat); rushing/async grows"
      " O(log n / log log n) under the overload chain. Deferral keeps the"
      " attacked runs live; rerun with --no-defer for the ablation.\n");
  std::printf("[pull-latency done in %.1fs]\n", watch.seconds());
  return 0;
}
