// Lemmas 6 and 8: pull-phase latency across adversary timing models.
//
//   Lemma 8: against a non-rushing adversary, pull requests are answered in
//            O(1) steps — decision time flat in n.
//   Lemma 6: a rushing (or asynchronous) adversary can overload the nodes a
//            requester polled (the overload-chain attack), stretching the
//            time to O(log n / log log n).
//
// The bench sweeps {n} x {three models} x {none, overload} through
// exp::Sweep at a deliberately tight answer budget (the paper's log^2 n
// budget exceeds t at simulation scale, which would mute the attack — see
// DESIGN.md), and reports mean / p99 / max decision times with per-node
// latencies pooled across all trials of a point. The `--no-defer` ablation
// removes Algorithm 3's deferred answering ("Wait for has_decided") to show
// it is load-bearing under attack.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_pull_latency",
                 .description =
                     "Lemmas 6/8: pull-phase decision latency vs n under the"
                     " overload-chain adversary",
                 .extra_usage =
                     "  --no-defer         ablation: disable Algorithm 3's"
                     " deferred answering\n",
                 .extra_flags = {"--no-defer"}});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials();
  const std::size_t threads = opt.threads;
  const bool no_defer = has_flag(argc, argv, "--no-defer");
  print_banner("Lemmas 6/8: pull latency under overload attacks",
               no_defer ? "ABLATION: deferred answering disabled"
                        : "decision time vs n, poll-stuffing adversary;"
                          " latencies pooled across trials");

  Table table({"model", "adversary", "n", "trials", "mean time", "p99",
               "max time", "max deferred", "decided", "agree"});
  Stopwatch watch;

  std::vector<std::size_t> sizes = protocol_sizes(scale);
  if (scale == Scale::kDefault && sizes.back() > 1024) {
    sizes.pop_back();  // three models x attack: keep the default run short
  }

  aer::AerConfig base;
  base.seed = 20130722;
  base.answer_budget = 16;  // tight but above the honest per-responder load
  base.defer_answers = !no_defer;

  exp::Grid grid;
  grid.ns = sizes;
  grid.models = {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                 aer::Model::kAsync};
  grid.strategies = {"none", "overload"};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(threads).set_procs(opt.procs);
  const auto results = sweep.run();

  exp::Report report = make_report(
      "bench_pull_latency", no_defer ? "pull-latency-nodefer" : "pull-latency",
      "Lemmas 6/8: pull latency under overload attacks", base.seed, trials,
      scale);
  report.meta().y_metric = "mean_decision_time.mean";
  report.meta().y_label = "mean decision time";
  add_split_series(report, base, results, [](const exp::GridPoint& p) {
    return std::string(aer::model_name(p.model)) + "/" + p.strategy;
  });

  std::vector<std::pair<std::string, std::string>> histograms;
  for (const exp::PointResult& r : results) {
    const exp::Aggregate& a = r.aggregate;
    const bool attack = r.point.strategy != "none";
    table.add_row(
        {aer::model_name(r.point.model), attack ? "poll-stuff" : "none",
         Table::num(static_cast<std::uint64_t>(r.point.n)),
         Table::num(static_cast<std::uint64_t>(a.trials)),
         Table::num(a.mean_decision_time.mean, 2),
         Table::num(a.decision_time.p99, 2),
         Table::num(a.completion_time.max, 2),
         Table::num(static_cast<std::uint64_t>(a.max_deferred)),
         Table::num(a.decided_fraction(), 3),
         Table::num(a.agreement_rate(), 2)});
    if (r.point.n == sizes.back() && r.point.model == aer::Model::kAsync) {
      // Pool per-node decision latencies from every trial of this point.
      Histogram latency(0, 12, 48);
      for (const exp::TrialOutcome& o : r.outcomes) {
        for (double t : o.decision_times) latency.add(t);
      }
      histograms.emplace_back(
          std::string(attack ? "async+attack " : "async        ") +
              "n=" + std::to_string(r.point.n),
          latency.render(40));
    }
  }

  table.print(std::cout);
  std::printf("\ndecision-time distribution (the overload chain shows up as"
              " the upper tail):\n");
  for (const auto& [label, bars] : histograms) {
    std::printf("  %s %s\n", label.c_str(), bars.c_str());
  }
  std::printf(
      "\npaper: non-rushing decision time O(1) (flat); rushing/async grows"
      " O(log n / log log n) under the overload chain. Deferral keeps the"
      " attacked runs live; rerun with --no-defer for the ablation.\n");
  std::printf("[pull-latency done in %.1fs on %zu thread(s)]\n",
              watch.seconds(), threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
