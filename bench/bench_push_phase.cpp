// Lemmas 3-5: the push phase.
//
//   Lemma 3: each correct node sends O(log n) push messages of O(log n)
//            bits — push traffic per node is O(log^2 n).
//   Lemma 4: the summed candidate-list size is O(n), even under coordinated
//            junk diffusion.
//   Lemma 5: w.h.p. every correct node ends the phase with gstring in its
//            candidate list.
//
// The bench sweeps {n} x {none, junk, flood} through exp::Sweep with a
// custom push-only trial (one synchronous round suffices: pushes are sent
// at round 0 and counted during round 1; pull traffic queued for later
// rounds is never delivered, so large n stays cheap), and prints mean
// per-node push bits, Sum|L_x| / n and the number of nodes missing gstring.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

/// Runs only the diffusion and harvests the candidate-list shape directly
/// from the actors (the full-run report sections never get filled because
/// the engine stops after round 1). Runs through the worker's TrialArena:
/// world, engine and actor storage are reused across the sweep's trials.
void run_push_trial(const aer::AerConfig& base_cfg,
                    const exp::GridPoint& point, exp::TrialArena& arena,
                    exp::TrialOutcome& out) {
  aer::AerConfig cfg = base_cfg;
  cfg.max_rounds = 1;

  aer::build_aer_world_into(arena.world, cfg);
  aer::AerWorld& world = arena.world;
  const std::size_t n = cfg.n;

  sim::SyncConfig ec;
  ec.n = n;
  ec.seed = cfg.seed;
  ec.max_rounds = 1;
  if (arena.run.sync.has_value()) arena.run.sync->reset(ec);
  else arena.run.sync.emplace(ec);
  sim::SyncEngine& engine = *arena.run.sync;
  engine.set_wire(&world.shared->wire());
  engine.set_corrupt(world.view.corrupt);
  arena.run.wire_actors(engine, world);
  std::unique_ptr<adv::Strategy> strategy;
  const aer::StrategyFactory factory = exp::attack_factory(point.strategy);
  if (factory) strategy = factory(world.view);
  engine.set_strategy(strategy.get());
  engine.run([] { return false; });

  out = exp::TrialOutcome{};
  out.correct = world.correct.size();
  out.push_bits_per_node =
      double(engine.metrics().bits_of(sim::MessageKind::kPush)) / double(n);
  out.push_msgs_per_node =
      double(engine.metrics().messages_of(sim::MessageKind::kPush)) /
      double(n);
  std::size_t sum_lists = 0;
  for (aer::AerNode* node : arena.run.active) {
    if (node == nullptr) continue;
    sum_lists += node->candidate_list().size();
    out.max_candidate_list =
        std::max(out.max_candidate_list, node->candidate_list().size());
    if (!node->has_candidate(world.shared->gstring)) ++out.missing_gstring;
  }
  out.candidate_lists_per_node =
      double(sum_lists) / double(world.correct.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_push_phase",
                 .description =
                     "Lemmas 3-5: push-phase traffic, candidate-list growth"
                     " and gstring coverage vs n"});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials();
  const std::size_t threads = opt.threads;
  print_banner("Lemmas 3-5: push phase",
               "push bits per node (L3), candidate-list growth (L4),"
               " gstring coverage (L5); means over seeded trials");

  Table table({"n", "d", "adversary", "trials", "push msgs/node",
               "push bits/node", "bits/log^2 n", "|L|/node", "max |L|",
               "missing gstring"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;

  exp::Grid grid;
  grid.ns = light_sizes(scale);
  grid.strategies = {"none", "junk-light", "flood"};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(threads).set_procs(opt.procs);
  sweep.set_arena_trial(run_push_trial);
  sweep.set_progress(progress_printer("push-phase"));

  exp::Report report =
      make_report("bench_push_phase", "push-phase",
                  "Lemmas 3-5: push-phase traffic and candidate lists",
                  base.seed, trials, scale);
  report.meta().y_metric = "push_bits_per_node";
  report.meta().y_label = "push bits per node";
  const auto results = sweep.run();
  add_split_series(report, base, results, [](const exp::GridPoint& p) {
    return std::string("push/") + p.strategy;
  });

  for (const exp::PointResult& r : results) {
    const exp::Aggregate& a = r.aggregate;
    const double log2n = std::log2(double(r.point.n));
    aer::AerConfig cfg = r.point.apply(base);
    table.add_row(
        {Table::num(static_cast<std::uint64_t>(r.point.n)),
         Table::num(static_cast<std::uint64_t>(cfg.resolved_d())),
         r.point.strategy.c_str(),
         Table::num(static_cast<std::uint64_t>(a.trials)),
         Table::num(a.push_msgs_per_node, 1),
         Table::num(a.push_bits_per_node, 0),
         Table::num(a.push_bits_per_node / (log2n * log2n), 2),
         Table::num(a.candidate_lists_per_node, 2),
         Table::num(static_cast<std::uint64_t>(a.max_candidate_list)),
         Table::num(a.missing_gstring)});
  }

  table.print(std::cout);
  std::printf(
      "\npaper: push msgs/node = d = O(log n); bits/node = O(log^2 n) (flat"
      " in the normalized column); Sum|L_x| = O(n) (|L|/node ~ constant);"
      " missing = 0 w.h.p.\nNote the flood adversary buys nothing: its"
      " pushes fail the I(s,x) membership filter.\n");
  std::printf("[push-phase done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
