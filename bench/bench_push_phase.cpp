// Lemmas 3-5: the push phase.
//
//   Lemma 3: each correct node sends O(log n) push messages of O(log n)
//            bits — push traffic per node is O(log^2 n).
//   Lemma 4: the summed candidate-list size is O(n), even under coordinated
//            junk diffusion.
//   Lemma 5: w.h.p. every correct node ends the phase with gstring in its
//            candidate list.
//
// The bench runs the push phase (one synchronous round suffices: pushes are
// sent at round 0 and counted during round 1) across n, with and without
// the junk-push adversary, and prints per-node push bits, Sum|L_x| / n and
// the number of nodes missing gstring.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

struct PushOutcome {
  double push_bits_per_node = 0;
  double push_msgs_per_node = 0;
  double lists_per_node = 0;
  std::size_t max_list = 0;
  std::size_t missing = 0;
  std::size_t d = 0;
};

/// Runs only the diffusion: round 0 sends pushes, round 1 delivers them and
/// finalizes the candidate lists. Pull traffic queued for later rounds is
/// never delivered, so large n stays cheap.
PushOutcome run_push_only(std::size_t n, std::uint64_t seed,
                          const aer::StrategyFactory& strategy_factory) {
  aer::AerConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.model = aer::Model::kSyncRushing;
  cfg.max_rounds = 1;

  aer::AerWorld world = aer::build_aer_world(cfg);
  std::vector<aer::AerNode*> nodes(n, nullptr);

  sim::SyncConfig ec;
  ec.n = n;
  ec.seed = seed;
  ec.max_rounds = 1;
  sim::SyncEngine engine(ec);
  engine.set_wire(world.shared.get());
  engine.set_corrupt(world.view.corrupt);
  for (NodeId id = 0; id < n; ++id) {
    if (engine.is_corrupt(id)) continue;
    auto actor = std::make_unique<aer::AerNode>(world.shared.get(), id,
                                                world.view.initial[id]);
    nodes[id] = actor.get();
    engine.set_actor(id, std::move(actor));
  }
  std::unique_ptr<adv::Strategy> strategy;
  if (strategy_factory) strategy = strategy_factory(world.view);
  engine.set_strategy(strategy.get());
  engine.run([] { return false; });

  PushOutcome out;
  out.d = cfg.resolved_d();
  const auto& bits = engine.metrics().bits_by_kind();
  const auto& msgs = engine.metrics().messages_by_kind();
  if (bits.count("push") > 0) {
    out.push_bits_per_node = double(bits.at("push")) / double(n);
    out.push_msgs_per_node = double(msgs.at("push")) / double(n);
  }
  std::size_t sum_lists = 0;
  for (aer::AerNode* node : nodes) {
    if (node == nullptr) continue;
    sum_lists += node->candidate_list().size();
    out.max_list = std::max(out.max_list, node->candidate_list().size());
    if (!node->has_candidate(world.shared->gstring)) ++out.missing;
  }
  out.lists_per_node = double(sum_lists) / double(world.correct.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  print_banner("Lemmas 3-5: push phase",
               "push bits per node (L3), candidate-list growth (L4),"
               " gstring coverage (L5)");

  Table table({"n", "d", "adversary", "push msgs/node", "push bits/node",
               "bits/log^2 n", "|L|/node", "max |L|", "missing gstring"});
  Stopwatch watch;

  for (std::size_t n : light_sizes(scale)) {
    const double log2n = std::log2(double(n));
    struct Case {
      const char* name;
      aer::StrategyFactory factory;
    };
    const Case cases[] = {
        {"none", {}},
        {"junk-push", [](const aer::AerWorldView& view) {
           return std::make_unique<adv::JunkPushStrategy>(view, 3, 16);
         }},
        {"push-flood", [](const aer::AerWorldView& view) {
           return std::make_unique<adv::PushFloodStrategy>(view, 64);
         }},
    };
    for (const Case& c : cases) {
      const PushOutcome out = run_push_only(n, 20130722, c.factory);
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(out.d)), c.name,
                     Table::num(out.push_msgs_per_node, 1),
                     Table::num(out.push_bits_per_node, 0),
                     Table::num(out.push_bits_per_node / (log2n * log2n), 2),
                     Table::num(out.lists_per_node, 2),
                     Table::num(static_cast<std::uint64_t>(out.max_list)),
                     Table::num(static_cast<std::uint64_t>(out.missing))});
    }
  }

  table.print(std::cout);
  std::printf(
      "\npaper: push msgs/node = d = O(log n); bits/node = O(log^2 n) (flat"
      " in the normalized column); Sum|L_x| = O(n) (|L|/node ~ constant);"
      " missing = 0 w.h.p.\nNote the flood adversary buys nothing: its"
      " pushes fail the I(s,x) membership filter.\n");
  std::printf("[push-phase done in %.1fs]\n", watch.seconds());
  return 0;
}
