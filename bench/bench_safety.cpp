// Lemma 7: safety — no correct node decides on a string other than gstring.
//
// The adversary plays the strongest decision-forcing strategy we model:
// search the string domain for junk whose Push Quorums it wins, diffuse it,
// and have every corrupt poll-list member affirmatively answer polls for it
// (WrongAnswerStrategy). Across many seeded runs we count wrong decisions
// (the paper: w.h.p. zero) and also verify the failure mode when the
// precondition is violated: nodes stall rather than decide junk.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const Scale scale = parse_scale(argc, argv);
  print_banner("Lemma 7: decision safety under wrong-answer attacks",
               "wrong decisions across seeds (expect zero), plus the"
               " honest failure mode when the precondition breaks");

  const std::size_t seeds = scale == Scale::kQuick ? 5 : 25;

  Table table({"n", "model", "runs", "wrong decisions", "stalled nodes",
               "agreement rate"});
  Stopwatch watch;

  for (std::size_t n : {std::size_t(128), std::size_t(256), std::size_t(512)}) {
    for (auto model : {aer::Model::kSyncRushing, aer::Model::kAsync}) {
      std::size_t wrong = 0, stalled = 0, agreed = 0;
      for (std::size_t seed = 1; seed <= seeds; ++seed) {
        aer::AerConfig cfg;
        cfg.n = n;
        cfg.seed = seed;
        cfg.model = model;
        const aer::AerReport r =
            run_aer(cfg, [](const aer::AerWorldView& view) {
              return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
            });
        wrong += r.decided_count - r.decided_gstring;
        stalled += r.correct_count - r.decided_count;
        agreed += r.agreement ? 1 : 0;
      }
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     aer::model_name(model),
                     Table::num(static_cast<std::uint64_t>(seeds)),
                     Table::num(static_cast<std::uint64_t>(wrong)),
                     Table::num(static_cast<std::uint64_t>(stalled)),
                     Table::num(double(agreed) / double(seeds), 3)});
    }
  }

  // Precondition violation: fewer than half of the nodes know gstring. The
  // protocol must stall, never fabricate agreement on the junk string.
  Table violated({"n", "knowledgeable", "wrong decisions", "decided",
                  "verdict"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    aer::AerConfig cfg;
    cfg.n = 256;
    cfg.seed = seed;
    cfg.corrupt_fraction = 0.30;
    cfg.knowledgeable_fraction = 0.60;  // 0.7 * 0.6 < 1/2 of all nodes
    cfg.d_override = 24;  // d must scale with t/n: P[Bin(d,0.3) > d/2] small
    cfg.max_rounds = 40;
    const aer::AerReport r =
        run_aer(cfg, [](const aer::AerWorldView& view) {
          return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
        });
    const std::size_t wrong = r.decided_count - r.decided_gstring;
    violated.add_row(
        {Table::num(static_cast<std::uint64_t>(r.n)),
         Table::num(static_cast<std::uint64_t>(r.knowledgeable_count)),
         Table::num(static_cast<std::uint64_t>(wrong)),
         Table::num(static_cast<std::uint64_t>(r.decided_count)) + "/" +
             Table::num(static_cast<std::uint64_t>(r.correct_count)),
         wrong == 0 ? "stalls, never lies" : "poll-tail breach (d small)"});
  }

  table.print(std::cout);
  std::printf("\nprecondition-violated runs (t/n = 0.30, knowledgeable 42%%):\n");
  violated.print(std::cout);
  std::printf("\npaper (Lemma 7): any node decides on gstring w.h.p. — the"
              " poll list J(x, r) has a correct majority because r is chosen"
              " after the adversary committed its corruptions.\n");
  std::printf("[safety done in %.1fs]\n", watch.seconds());
  return 0;
}
