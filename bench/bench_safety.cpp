// Lemma 7: safety — no correct node decides on a string other than gstring.
//
// The adversary plays the strongest decision-forcing strategy we model:
// search the string domain for junk whose Push Quorums it wins, diffuse it,
// and have every corrupt poll-list member affirmatively answer polls for it
// (WrongAnswerStrategy). Across a seeded exp::Sweep we count wrong
// decisions (the paper: w.h.p. zero) and also verify the failure mode when
// the precondition is violated: nodes stall rather than decide junk.
#include <iostream>

#include "bench_util.h"
#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{.binary = "bench_safety",
                 .description =
                     "Lemma 7: wrong decisions under the wrong-answer attack"
                     " (expect zero), plus the precondition-violated failure"
                     " mode",
                 .extra_usage =
                     "  --fault=<preset>   compose the wrong-answer attack"
                     " with a channel fault\n",
                 .sections = {.faults = true, .recoveries = true}});
  const Scale scale = opt.scale;
  const std::size_t trials = opt.trials(5, 25, 25);
  const std::size_t threads = opt.threads;
  print_banner("Lemma 7: decision safety under wrong-answer attacks",
               "wrong decisions across seeded trials (expect zero), plus the"
               " honest failure mode when the precondition breaks");

  Table table({"n", "model", "runs", "wrong decisions", "stalled nodes",
               "agreement rate"});
  Stopwatch watch;

  aer::AerConfig base;
  base.seed = 20130722;

  exp::Grid grid;
  grid.ns = {128, 256, 512};
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"wrong"};
  // --fault=<preset> composes the wrong-answer attack with loss /
  // partitions / churn: safety must hold even on faulty channels —
  // --recovery=<preset> additionally layers ack/retransmit under them.
  grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};
  exp::Report report = make_report(
      "bench_safety", "safety",
      "Lemma 7: decision safety under wrong-answer attacks", base.seed,
      trials, scale);
  report.meta().y_metric = "wrong_decisions";
  report.meta().y_label = "wrong decisions (summed over trials)";

  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(threads).set_procs(opt.procs);
  const auto results = sweep.run();
  add_split_series(report, base, results, [](const exp::GridPoint& p) {
    return std::string("wrong/") + aer::model_name(p.model);
  });
  for (const exp::PointResult& r : results) {
    const exp::Aggregate& a = r.aggregate;
    table.add_row({Table::num(static_cast<std::uint64_t>(r.point.n)),
                   aer::model_name(r.point.model),
                   Table::num(static_cast<std::uint64_t>(a.trials)),
                   Table::num(a.wrong_decisions),
                   Table::num(a.stalled_nodes),
                   Table::num(a.agreement_rate(), 3)});
  }

  // Precondition violation: fewer than half of the nodes know gstring. The
  // protocol must stall, never fabricate agreement on the junk string.
  Table violated({"seed", "n", "knowledgeable", "wrong decisions", "decided",
                  "verdict"});
  aer::AerConfig vbase;
  vbase.n = 256;
  vbase.seed = 20130722;
  vbase.corrupt_fraction = 0.30;
  vbase.knowledgeable_fraction = 0.60;  // 0.7 * 0.6 < 1/2 of all nodes
  vbase.d_override = 24;  // d must scale with t/n: P[Bin(d,0.3) > d/2] small
  vbase.max_rounds = 40;
  exp::Grid vgrid;
  vgrid.strategies = {"wrong"};
  exp::Sweep vsweep(vbase, vgrid, 5);
  vsweep.set_threads(threads).set_procs(opt.procs);
  const auto vresults = vsweep.run();
  report.add_points("precondition-violated", vbase, vresults);
  for (const exp::PointResult& r : vresults) {
    for (const exp::TrialOutcome& o : r.outcomes) {
      violated.add_row(
          {Table::num(o.seed),
           Table::num(static_cast<std::uint64_t>(r.point.n)),
           Table::num(static_cast<std::uint64_t>(o.knowledgeable)),
           Table::num(static_cast<std::uint64_t>(o.wrong_decisions)),
           ratio(o.decided, o.correct),
           o.wrong_decisions == 0 ? "stalls, never lies"
                                  : "poll-tail breach (d small)"});
    }
  }

  table.print(std::cout);
  std::printf("\nprecondition-violated runs (t/n = 0.30, knowledgeable 42%%):\n");
  violated.print(std::cout);
  std::printf("\npaper (Lemma 7): any node decides on gstring w.h.p. — the"
              " poll list J(x, r) has a correct majority because r is chosen"
              " after the adversary committed its corruptions.\n");
  std::printf("[safety done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
