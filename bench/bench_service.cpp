// Heavy-traffic service mode: repeated consensus as a streaming pipeline
// (exp::Service), measured the way a deployed agreement service would be —
// sustained instances/sec and tail decision latency, not per-run totals.
//
// First table: the warm/cold A/B at the same (n, d). The cold lap rebuilds
// every instance's world from nothing (TrialArena::clear between
// instances); the warm lap re-keys the arenas in place, so steady-state
// cost approaches pure protocol execution (the zero-allocation contract
// BM_WarmInstanceAllocations enforces). Both laps produce bit-identical
// ServiceStats — the bench checks the fingerprints and reports the
// throughput ratio, the headline number of docs/perf.md's service section.
//
// Second table: persistent adversaries across the stream — grudge-* pins
// one corrupt roster for every instance, slow-burn-churn ramps its churn
// fraction instance to instance — versus the memoryless baseline.
//
// Decision latencies are simulated protocol time (deterministic, in the
// fingerprint); instances/sec, wall-ms quantiles and queue depth/block
// counts are wall-clock load (reported, never fingerprinted).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fba.h"

namespace {

using namespace fba;

void add_service_row(Table& table, const char* mode,
                     const exp::ServiceConfig& config,
                     const exp::ServiceResult& r) {
  const exp::ServiceStats& s = r.stats;
  table.add_row({mode, config.attack,
                 config.fault.empty() ? "none" : config.fault,
                 Table::num(s.instances),
                 Table::num(r.load.instances_per_sec, 1),
                 Table::num(s.agreement_rate(), 2), Table::num(s.wrong_decisions),
                 Table::num(s.decision_latency.quantile(0.50), 2),
                 Table::num(s.decision_latency.quantile(0.99), 2),
                 Table::num(s.decision_latency.quantile(0.999), 2),
                 Table::num(r.load.jobs.mean_depth(), 2),
                 Table::num(r.load.jobs.push_blocks + r.load.done.push_blocks)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fba::benchutil;
  const CommonOptions opt = parse_common_flags(
      argc, argv,
      CommonSpec{
          .binary = "bench_service",
          .description =
              "heavy-traffic service mode: streaming repeated consensus with"
              " warm-instance reuse (instances/sec, p99 decision latency)",
          .extra_usage =
              "  --trials=<k>       instances per service lap (the stream"
              " length)\n"
              "  --n=<nodes>        network size (default 64 quick / 128)\n"
              "  --d=<size>         poll-list size override (default: the"
              " config's resolved d)\n"
              "  --attack=<name>    adversary for the warm/cold A/B laps\n"
              "  --fault=<preset>   fault preset for the warm/cold A/B laps\n",
          .extra_flags = {"--n=", "--d="},
          .sections = {.attacks = true, .faults = true}});
  const std::size_t instances = opt.trials(24, 64, 256);
  print_banner("service mode: streaming repeated consensus",
               "warm-instance reuse vs per-instance rebuild, persistent"
               " adversaries, sustained instances/sec and decision-latency"
               " tails");

  exp::ServiceConfig base_config;
  base_config.base.n = flag_value(argc, argv, "--n",
                                  opt.scale == Scale::kQuick ? 64 : 128);
  base_config.base.d_override = flag_value(argc, argv, "--d", 0);
  base_config.base.model = aer::Model::kSyncRushing;
  base_config.base.seed = 20130722;
  base_config.attack = opt.attack;
  base_config.fault = opt.fault == "none" ? "" : opt.fault;
  base_config.instances = instances;
  base_config.workers = opt.threads;

  exp::Report report =
      make_report("bench_service", "service",
                  "Service mode: warm-instance streaming vs cold rebuild",
                  base_config.base_seed, instances, opt.scale);
  report.meta().x_axis = "index";
  report.meta().y_metric = "decision_time.p99";
  report.meta().y_label = "p99 decision latency";

  std::printf("warm/cold A/B: n=%zu d=%zu, %llu instances, %zu worker(s)\n\n",
              base_config.base.n, base_config.base.resolved_d(),
              static_cast<unsigned long long>(instances), opt.threads);
  Table table({"mode", "attack", "fault", "inst", "inst/s", "agree", "wrong",
               "dec p50", "dec p99", "dec p999", "q-depth", "blocks"});
  Stopwatch watch;

  exp::ServiceConfig cold = base_config;
  cold.warm = false;
  const exp::ServiceResult cold_result = exp::run_service(cold);
  add_service_row(table, "cold", cold, cold_result);
  report.add_point("service/cold", service_report_point(0, cold, cold_result));

  exp::ServiceConfig warm = base_config;
  warm.warm = true;
  const exp::ServiceResult warm_result = exp::run_service(warm);
  add_service_row(table, "warm", warm, warm_result);
  report.add_point("service/warm", service_report_point(0, warm, warm_result));
  table.print(std::cout);

  if (warm_result.stats.fingerprint() != cold_result.stats.fingerprint()) {
    std::fprintf(stderr,
                 "FAIL: warm and cold laps disagree (fingerprints %016llx vs"
                 " %016llx) — arena reuse changed the results\n",
                 static_cast<unsigned long long>(
                     warm_result.stats.fingerprint()),
                 static_cast<unsigned long long>(
                     cold_result.stats.fingerprint()));
    return 1;
  }
  const double speedup =
      cold_result.load.instances_per_sec > 0
          ? warm_result.load.instances_per_sec /
                cold_result.load.instances_per_sec
          : 0;
  std::printf(
      "\nwarm-instance speedup: %.2fx sustained instances/sec (%.1f vs %.1f),"
      " results bit-identical (fingerprint %016llx)\n",
      speedup, warm_result.load.instances_per_sec,
      cold_result.load.instances_per_sec,
      static_cast<unsigned long long>(warm_result.stats.fingerprint()));
  // The amortized component: a cold instance pays world + engine + actor
  // reconstruction (allocation and page churn — it lands inside the run,
  // not in build_aer_world_into, whose re-key is microseconds); a warm
  // instance pays only the protocol. Median wall latencies isolate it.
  const double cold_ms = cold_result.load.instance_wall_ms.quantile(0.50);
  const double warm_ms = warm_result.load.instance_wall_ms.quantile(0.50);
  std::printf(
      "per-instance rebuild overhead eliminated: %.2f ms (cold %.2f ms ->"
      " warm %.2f ms, %.0f%% of a cold instance); warm world re-key:"
      " %.1f us/instance\n",
      cold_ms - warm_ms, cold_ms, warm_ms,
      cold_ms > 0 ? 100.0 * (cold_ms - warm_ms) / cold_ms : 0,
      warm_result.timing.trials > 0
          ? 1e6 * warm_result.timing.setup_seconds /
                static_cast<double>(warm_result.timing.trials)
          : 0);

  // Persistent adversaries: the service threat model — state that carries
  // across instance boundaries. Same stream length and seed as the A/B.
  std::printf("\npersistent adversaries (n=%zu, %llu instances):\n",
              base_config.base.n,
              static_cast<unsigned long long>(instances));
  Table adversary({"mode", "attack", "fault", "inst", "inst/s", "agree",
                   "wrong", "dec p50", "dec p99", "dec p999", "q-depth",
                   "blocks"});
  struct AdversaryCase {
    const char* attack;
    const char* fault;
  };
  const std::vector<AdversaryCase> cases = {
      {"none", ""},
      {"grudge-wrong", ""},
      {"grudge-stuff", ""},
      {"none", "slow-burn-churn"},
  };
  std::size_t index = 0;
  for (const AdversaryCase& c : cases) {
    exp::ServiceConfig config = base_config;
    config.attack = c.attack;
    config.fault = c.fault;
    config.warm = true;
    const exp::ServiceResult r = exp::run_service(config);
    add_service_row(adversary, "warm", config, r);
    report.add_point("service/adversary", service_report_point(index++, config, r));
  }
  adversary.print(std::cout);
  std::printf(
      "\ngrudge-* pins one corrupt roster for the whole stream; slow-burn-"
      "churn ramps its churn fraction across instances. Safety (wrong = 0)"
      " must hold throughout.\n");
  std::printf("[service done in %.1fs on %zu thread(s)]\n", watch.seconds(),
              opt.threads);
  write_json_if_requested(report, opt.json);
  return 0;
}
