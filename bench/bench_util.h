// Shared bench scaffolding: sweep-size selection, trial/thread flags,
// wall-clock timing, `--help` and the `--json` report writer.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the corresponding rows. `--quick` shrinks sweeps for smoke runs;
// `--large` extends them to the biggest sizes that still fit a laptop-class
// machine. Trial replication and fan-out run through exp::Sweep:
// `--trials=N` overrides the per-scale default, `--threads=N` overrides the
// hardware default (`--threads=1` gives the serial reference run for
// speedup measurements), `--procs=N` switches to forked worker processes
// (byte-identical results — exp/procpool.h). `--json=FILE` additionally
// writes the sweep
// aggregates as an fba.report JSON document (exp/report.h,
// docs/output-schema.md) — the same schema fba_repro's figure files use.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/progress.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/service.h"
#include "exp/sweep.h"

namespace fba::benchutil {

enum class Scale { kQuick, kDefault, kLarge };

inline Scale parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return Scale::kQuick;
    if (std::strcmp(argv[i], "--large") == 0) return Scale::kLarge;
  }
  return Scale::kDefault;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Parses `--name=value` into a string; returns `fallback` when absent.
inline std::string string_flag(int argc, char** argv, const char* name,
                               const char* fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

/// Parses `--name=value` into a size_t; returns `fallback` when absent.
inline std::size_t flag_value(int argc, char** argv, const char* name,
                              std::size_t fallback) {
  const std::string value = string_flag(argc, argv, name, "");
  return value.empty() ? fallback : std::strtoull(value.c_str(), nullptr, 10);
}

/// The `--fault=<preset>` axis shared with fba_sim and exp::Grid
/// (exp::known_faults()); "none" keeps the paper's reliable channels.
inline std::string fault_for(int argc, char** argv) {
  return string_flag(argc, argv, "--fault", "none");
}

/// Strict `--recovery=<preset>` validation shared by fba_sim, fba_repro and
/// the benches (the same treatment --corrupt=/--know= got): an unknown or
/// malformed name gets recovery_plan_factory's one-line ConfigError —
/// which lists every known preset — and exit 2, instead of silently
/// running without recovery. Returns the resolved plan.
inline sim::RecoveryPlan check_recovery(const char* binary,
                                        const std::string& name) {
  try {
    return exp::recovery_plan_factory(name);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s: %s\n", binary, e.what());
    std::exit(2);
  }
}

/// Strict positive-integer flag value: every character a digit and the
/// number > 0. Zero, negatives, and garbage get a one-line error and
/// exit 2 — the same contract --corrupt=/--know= follow in fba_sim
/// (previously --trials=abc silently became the scale default and
/// --threads=0 silently became 1).
inline std::size_t positive_flag(const char* binary, const char* name,
                                 const char* value) {
  bool digits = *value != '\0';
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') digits = false;
  }
  const unsigned long long v =
      digits ? std::strtoull(value, nullptr, 10) : 0;
  if (!digits || v == 0) {
    std::fprintf(stderr, "%s: invalid %s=%s (expected a positive integer)\n",
                 binary, name, value);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

inline std::string ratio(std::size_t num, std::size_t den) {
  return std::to_string(num) + "/" + std::to_string(den);
}

/// Network sizes for full-protocol sweeps (pull phase included).
inline std::vector<std::size_t> protocol_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {128, 256};
    case Scale::kDefault:
      return {128, 256, 512, 1024, 2048};
    case Scale::kLarge:
      return {128, 256, 512, 1024, 2048, 4096};
  }
  return {};
}

/// Sizes for push-only / sampler sweeps (much cheaper per run).
inline std::vector<std::size_t> light_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {256, 1024};
    case Scale::kDefault:
      return {256, 1024, 4096, 8192};
    case Scale::kLarge:
      return {256, 1024, 4096, 8192, 16384};
  }
  return {};
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const char* artifact, const char* description) {
  std::printf("=== %s ===\n%s\n\n", artifact, description);
}

/// Handles `--help`: prints the one generated usage block (bench-specific
/// lines + the shared scenario vocabulary from exp::scenario_usage()) and
/// returns true, in which case main should exit 0. `extra` lines (may be
/// nullptr) document flags specific to this binary; `sections` restricts
/// the shared block to the flags this binary actually parses (attacks and
/// faults default to off — most benches pin their own adversary axes).
inline bool handle_help(int argc, char** argv, const char* binary,
                        const char* description, const char* extra,
                        const exp::UsageSections& sections = {}) {
  if (!has_flag(argc, argv, "--help") && !has_flag(argc, argv, "-h")) {
    return false;
  }
  std::printf("%s — %s\n\nusage: %s [--quick|--large] [flags]\n", binary,
              description, binary);
  std::printf("  --quick / --large  shrink / extend the sweep sizes\n");
  if (extra != nullptr) std::printf("%s", extra);
  std::printf("%s", exp::scenario_usage(sections).c_str());
  return true;
}

/// Everything parse_common_flags needs to validate a command line and
/// print the one generated usage block — --help and unknown-flag errors
/// share it, so the error path always shows the flags that *would* have
/// worked.
struct CommonSpec {
  const char* binary = "";
  const char* description = "";
  /// Preformatted usage lines for binary-specific flags (nullptr for
  /// none); list each such flag in extra_flags too or it is rejected.
  const char* extra_usage = nullptr;
  /// Binary-specific flags to accept: names ending in '=' take a value
  /// (prefix match, e.g. "--n="), the rest are booleans (exact match).
  /// parse_common_flags only accepts them — the binary still reads their
  /// values with string_flag/flag_value/has_flag.
  std::vector<const char*> extra_flags{};
  /// Shared-vocabulary sections this binary supports. Doubles as the
  /// accept-list: --attack / --fault / --trials / --threads / --json are
  /// unknown-flag errors when their section is off.
  exp::UsageSections sections{};
  /// The binary supports --timing (the setup-vs-run wall split printer).
  bool accept_timing = false;
  /// The binary supports --quick/--large sweep scaling (benches do;
  /// fba_sim, which sizes runs with --n/--trials directly, does not).
  bool accept_scale = true;
};

/// The flag set every bench and example shares (--quick/--large, --trials,
/// --threads, --attack, --fault, --json, --timing), parsed and validated in
/// one place by parse_common_flags.
struct CommonOptions {
  Scale scale = Scale::kDefault;
  std::size_t trials_override = 0;  ///< --trials=N; 0 = use scale default.
  std::size_t threads = 1;
  std::size_t procs = 1;  ///< --procs=N: forked sweep workers (1 = off).
  std::string attack = "none";
  std::string fault = "none";
  std::string recovery = "off";  ///< --recovery=<preset> (validated).
  std::string json;     ///< --json=FILE target; empty = not requested.
  bool timing = false;  ///< --timing: print the wall split on exit.

  /// Trials per point: the --trials override if given, else the fallback
  /// for the parsed scale. Benches with non-standard defaults pass their
  /// own numbers (e.g. fig2's flat 25).
  std::size_t trials(std::size_t quick_fallback = 3,
                     std::size_t default_fallback = 10,
                     std::size_t large_fallback = 30) const {
    if (trials_override > 0) return trials_override;
    if (scale == Scale::kQuick) return quick_fallback;
    if (scale == Scale::kLarge) return large_fallback;
    return default_fallback;
  }
};

inline void print_common_usage(const CommonSpec& spec, std::FILE* out) {
  std::fprintf(out, "%s — %s\n\nusage: %s %s[flags]\n", spec.binary,
               spec.description, spec.binary,
               spec.accept_scale ? "[--quick|--large] " : "");
  if (spec.accept_scale) {
    std::fprintf(out,
                 "  --quick / --large  shrink / extend the sweep sizes\n");
  }
  if (spec.accept_timing) {
    std::fprintf(out,
                 "  --timing           print the setup-vs-run wall-time"
                 " split (and peak RSS) on exit\n");
  }
  if (spec.extra_usage != nullptr) std::fprintf(out, "%s", spec.extra_usage);
  std::fprintf(out, "%s", exp::scenario_usage(spec.sections).c_str());
}

/// Parses (and validates) the shared flag set. --help/-h prints the usage
/// block and exits 0; an unknown flag prints it to stderr and exits 2 —
/// previously benches silently ignored typos like --trails=50 and ran the
/// default sweep instead. Binary-specific flags pass through via
/// spec.extra_flags.
inline CommonOptions parse_common_flags(int argc, char** argv,
                                        const CommonSpec& spec) {
  CommonOptions opt;
  opt.threads = exp::default_threads();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value_of = [arg](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      return nullptr;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_common_usage(spec, stdout);
      std::exit(0);
    }
    if (spec.accept_scale && std::strcmp(arg, "--quick") == 0) {
      opt.scale = Scale::kQuick;
      continue;
    }
    if (spec.accept_scale && std::strcmp(arg, "--large") == 0) {
      opt.scale = Scale::kLarge;
      continue;
    }
    if (spec.accept_timing && std::strcmp(arg, "--timing") == 0) {
      opt.timing = true;
      continue;
    }
    const char* value = nullptr;
    if (spec.sections.sweep && (value = value_of("--trials")) != nullptr) {
      opt.trials_override = positive_flag(spec.binary, "--trials", value);
      continue;
    }
    if (spec.sections.sweep && (value = value_of("--threads")) != nullptr) {
      opt.threads = positive_flag(spec.binary, "--threads", value);
      continue;
    }
    if (spec.sections.sweep && (value = value_of("--procs")) != nullptr) {
      opt.procs = positive_flag(spec.binary, "--procs", value);
      continue;
    }
    if (spec.sections.attacks && (value = value_of("--attack")) != nullptr) {
      opt.attack = value;
      continue;
    }
    if (spec.sections.faults && (value = value_of("--fault")) != nullptr) {
      opt.fault = value;
      continue;
    }
    if (spec.sections.recoveries &&
        (value = value_of("--recovery")) != nullptr) {
      // Validated here, not at first use: a typo like --recovery=arq-fsat
      // must fail before the sweep runs without recovery for an hour.
      check_recovery(spec.binary, value);
      opt.recovery = value;
      continue;
    }
    if (spec.sections.json && (value = value_of("--json")) != nullptr) {
      opt.json = value;
      continue;
    }
    bool matched = false;
    for (const char* extra : spec.extra_flags) {
      const std::size_t len = std::strlen(extra);
      if (len > 0 && extra[len - 1] == '=') {
        if (std::strncmp(arg, extra, len) == 0) {
          matched = true;
          break;
        }
      } else if (std::strcmp(arg, extra) == 0) {
        matched = true;
        break;
      }
    }
    if (matched) continue;
    std::fprintf(stderr, "%s: unknown flag \"%s\"\n\n", spec.binary, arg);
    print_common_usage(spec, stderr);
    std::exit(2);
  }
  return opt;
}

/// Writes `report` to the file named by `--json=FILE` (if given). Every
/// bench funnels its sweep results through this one writer so bench output
/// and fba_repro figure output share the fba.report schema
/// (docs/output-schema.md). An unwritable path exits 1 with a clean error
/// instead of an uncaught throw — the table already went to stdout, only
/// the artifact is lost.
inline void write_json_if_requested(const exp::Report& report,
                                    const std::string& path) {
  if (path.empty()) return;
  try {
    report.write_json(path);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s (%zu series, %zu points)\n", path.c_str(),
               report.series().size(), report.total_points());
}

inline const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kDefault: return "default";
    case Scale::kLarge: return "large";
  }
  return "?";
}

/// Report skeleton with the meta every bench fills the same way.
inline exp::Report make_report(const char* tool, const char* figure,
                               const char* title, std::uint64_t base_seed,
                               std::size_t trials, Scale scale) {
  exp::ReportMeta meta;
  meta.tool = tool;
  meta.figure = figure;
  meta.title = title;
  meta.base_seed = base_seed;
  meta.trials = trials;
  meta.scale = scale_name(scale);
  return exp::Report(std::move(meta));
}

/// Splits one sweep's results into report series named by `name_of(point)`
/// (e.g. per model, per strategy); point order within a series follows the
/// expansion order.
template <typename NameFn>
inline void add_split_series(exp::Report& report, const aer::AerConfig& base,
                             const std::vector<exp::PointResult>& results,
                             NameFn&& name_of) {
  for (const exp::PointResult& r : results) {
    report.add_point(name_of(r.point),
                     exp::ReportPoint{r.point,
                                      exp::point_provenance(base, r.point),
                                      r.aggregate});
  }
}

/// Live trials-completed / ETA line for long sweeps (exp::stderr_progress).
inline exp::Sweep::Progress progress_printer(const char* label) {
  return exp::stderr_progress(label);
}

/// Bridges one service run into the report machinery (bench_service and
/// fba_repro --figure=service): deterministic stats through
/// ServiceStats::to_aggregate (fingerprinted, diffable), wall-clock load
/// into the informational schema-v3 `load` block (never fingerprinted or
/// diffed — docs/output-schema.md).
inline exp::ReportPoint service_report_point(std::size_t index,
                                             const exp::ServiceConfig& config,
                                             const exp::ServiceResult& r) {
  exp::ReportPoint rp;
  rp.point.index = index;
  rp.point.n = config.base.n;
  rp.point.model = config.base.model;
  rp.point.strategy = config.attack;
  rp.point.fault = config.fault.empty() ? "none" : config.fault;
  rp.provenance = exp::point_provenance(config.base, rp.point);
  rp.aggregate = r.stats.to_aggregate();
  rp.has_load = true;
  rp.load.wall_seconds = r.load.wall_seconds;
  rp.load.instances_per_sec = r.load.instances_per_sec;
  rp.load.wall_ms_p50 = r.load.instance_wall_ms.quantile(0.50);
  rp.load.wall_ms_p99 = r.load.instance_wall_ms.quantile(0.99);
  rp.load.wall_ms_p999 = r.load.instance_wall_ms.quantile(0.999);
  rp.load.queue_depth_mean = r.load.jobs.mean_depth();
  rp.load.queue_depth_max = r.load.jobs.depth_max;
  rp.load.push_blocks = r.load.jobs.push_blocks + r.load.done.push_blocks;
  rp.load.pop_blocks = r.load.jobs.pop_blocks + r.load.done.pop_blocks;
  return rp;
}

}  // namespace fba::benchutil
