// Shared bench scaffolding: sweep-size selection, trial/thread flags,
// wall-clock timing, `--help` and the `--json` report writer.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the corresponding rows. `--quick` shrinks sweeps for smoke runs;
// `--large` extends them to the biggest sizes that still fit a laptop-class
// machine. Trial replication and fan-out run through exp::Sweep:
// `--trials=N` overrides the per-scale default, `--threads=N` overrides the
// hardware default (`--threads=1` gives the serial reference run for
// speedup measurements). `--json=FILE` additionally writes the sweep
// aggregates as an fba.report JSON document (exp/report.h,
// docs/output-schema.md) — the same schema fba_repro's figure files use.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/progress.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"

namespace fba::benchutil {

enum class Scale { kQuick, kDefault, kLarge };

inline Scale parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return Scale::kQuick;
    if (std::strcmp(argv[i], "--large") == 0) return Scale::kLarge;
  }
  return Scale::kDefault;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Parses `--name=value` into a string; returns `fallback` when absent.
inline std::string string_flag(int argc, char** argv, const char* name,
                               const char* fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

/// Parses `--name=value` into a size_t; returns `fallback` when absent.
inline std::size_t flag_value(int argc, char** argv, const char* name,
                              std::size_t fallback) {
  const std::string value = string_flag(argc, argv, name, "");
  return value.empty() ? fallback : std::strtoull(value.c_str(), nullptr, 10);
}

/// The `--fault=<preset>` axis shared with fba_sim and exp::Grid
/// (exp::known_faults()); "none" keeps the paper's reliable channels.
inline std::string fault_for(int argc, char** argv) {
  return string_flag(argc, argv, "--fault", "none");
}

/// Trials per grid point at each scale; `--trials=N` overrides.
inline std::size_t trials_for(Scale scale, int argc, char** argv) {
  std::size_t fallback = 10;
  if (scale == Scale::kQuick) fallback = 3;
  if (scale == Scale::kLarge) fallback = 30;
  return std::max<std::size_t>(1, flag_value(argc, argv, "--trials", fallback));
}

/// Worker threads for exp::Sweep; `--threads=N` overrides the hardware
/// default (`--threads=1` is the serial reference).
inline std::size_t threads_for(int argc, char** argv) {
  return std::max<std::size_t>(
      1, flag_value(argc, argv, "--threads", exp::default_threads()));
}

inline std::string ratio(std::size_t num, std::size_t den) {
  return std::to_string(num) + "/" + std::to_string(den);
}

/// Network sizes for full-protocol sweeps (pull phase included).
inline std::vector<std::size_t> protocol_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {128, 256};
    case Scale::kDefault:
      return {128, 256, 512, 1024, 2048};
    case Scale::kLarge:
      return {128, 256, 512, 1024, 2048, 4096};
  }
  return {};
}

/// Sizes for push-only / sampler sweeps (much cheaper per run).
inline std::vector<std::size_t> light_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {256, 1024};
    case Scale::kDefault:
      return {256, 1024, 4096, 8192};
    case Scale::kLarge:
      return {256, 1024, 4096, 8192, 16384};
  }
  return {};
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const char* artifact, const char* description) {
  std::printf("=== %s ===\n%s\n\n", artifact, description);
}

/// Handles `--help`: prints the one generated usage block (bench-specific
/// lines + the shared scenario vocabulary from exp::scenario_usage()) and
/// returns true, in which case main should exit 0. `extra` lines (may be
/// nullptr) document flags specific to this binary; `sections` restricts
/// the shared block to the flags this binary actually parses (attacks and
/// faults default to off — most benches pin their own adversary axes).
inline bool handle_help(int argc, char** argv, const char* binary,
                        const char* description, const char* extra,
                        const exp::UsageSections& sections = {}) {
  if (!has_flag(argc, argv, "--help") && !has_flag(argc, argv, "-h")) {
    return false;
  }
  std::printf("%s — %s\n\nusage: %s [--quick|--large] [flags]\n", binary,
              description, binary);
  std::printf("  --quick / --large  shrink / extend the sweep sizes\n");
  if (extra != nullptr) std::printf("%s", extra);
  std::printf("%s", exp::scenario_usage(sections).c_str());
  return true;
}

/// Writes `report` to the file named by `--json=FILE` (if given). Every
/// bench funnels its sweep results through this one writer so bench output
/// and fba_repro figure output share the fba.report schema
/// (docs/output-schema.md). An unwritable path exits 1 with a clean error
/// instead of an uncaught throw — the table already went to stdout, only
/// the artifact is lost.
inline void write_json_if_requested(const exp::Report& report, int argc,
                                    char** argv) {
  const std::string path = string_flag(argc, argv, "--json", "");
  if (path.empty()) return;
  try {
    report.write_json(path);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s (%zu series, %zu points)\n", path.c_str(),
               report.series().size(), report.total_points());
}

inline const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kDefault: return "default";
    case Scale::kLarge: return "large";
  }
  return "?";
}

/// Report skeleton with the meta every bench fills the same way.
inline exp::Report make_report(const char* tool, const char* figure,
                               const char* title, std::uint64_t base_seed,
                               std::size_t trials, Scale scale) {
  exp::ReportMeta meta;
  meta.tool = tool;
  meta.figure = figure;
  meta.title = title;
  meta.base_seed = base_seed;
  meta.trials = trials;
  meta.scale = scale_name(scale);
  return exp::Report(std::move(meta));
}

/// Splits one sweep's results into report series named by `name_of(point)`
/// (e.g. per model, per strategy); point order within a series follows the
/// expansion order.
template <typename NameFn>
inline void add_split_series(exp::Report& report, const aer::AerConfig& base,
                             const std::vector<exp::PointResult>& results,
                             NameFn&& name_of) {
  for (const exp::PointResult& r : results) {
    report.add_point(name_of(r.point),
                     exp::ReportPoint{r.point,
                                      exp::point_provenance(base, r.point),
                                      r.aggregate});
  }
}

/// Live trials-completed / ETA line for long sweeps (exp::stderr_progress).
inline exp::Sweep::Progress progress_printer(const char* label) {
  return exp::stderr_progress(label);
}

}  // namespace fba::benchutil
