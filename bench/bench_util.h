// Shared bench scaffolding: sweep-size selection and wall-clock timing.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md §4) and prints the corresponding rows. `--quick` shrinks sweeps
// for smoke runs; `--large` extends them to the biggest sizes that still fit
// a laptop-class machine.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace fba::benchutil {

enum class Scale { kQuick, kDefault, kLarge };

inline Scale parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return Scale::kQuick;
    if (std::strcmp(argv[i], "--large") == 0) return Scale::kLarge;
  }
  return Scale::kDefault;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Network sizes for full-protocol sweeps (pull phase included).
inline std::vector<std::size_t> protocol_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {128, 256};
    case Scale::kDefault:
      return {128, 256, 512, 1024, 2048};
    case Scale::kLarge:
      return {128, 256, 512, 1024, 2048, 4096};
  }
  return {};
}

/// Sizes for push-only / sampler sweeps (much cheaper per run).
inline std::vector<std::size_t> light_sizes(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {256, 1024};
    case Scale::kDefault:
      return {256, 1024, 4096, 8192};
    case Scale::kLarge:
      return {256, 1024, 4096, 8192, 16384};
  }
  return {};
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const char* artifact, const char* description) {
  std::printf("=== %s ===\n%s\n\n", artifact, description);
}

}  // namespace fba::benchutil
