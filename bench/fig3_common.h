// The Figure 3 Monte-Carlo point driver shared by bench_fig3_expansion and
// fba_repro — one code path, so both tools derive the same per-trial seeds
// and, at equal trial counts, fingerprint-identical fig3 report points.
// Kept out of bench_util.h so the sampler dependency stays confined to the
// two binaries that use it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "exp/report.h"
#include "sampler/properties.h"
#include "sampler/sampler.h"
#include "support/random.h"

namespace fba::benchutil {

/// One (n, set-type) Monte-Carlo point of the Figure 3 sampler-expansion
/// sweep. The border ratio rides in the completion_time stat slot
/// (docs/output-schema.md, "figure metrics"); `ratios` keeps the raw draws
/// for table rendering.
struct Fig3Point {
  exp::ReportPoint report_point;
  std::vector<double> ratios;
  std::size_t d = 0;         ///< poll-list size of the sampler instance.
  std::size_t set_size = 0;  ///< |L| = max(4, n / ceil(log2 n)).
};

inline Fig3Point run_fig3_point(std::size_t n, bool adversarial,
                                std::size_t grid_point,
                                std::uint64_t seed_root, std::size_t trials,
                                std::size_t threads) {
  const auto params = sampler::SamplerParams::defaults(n, 1);
  const sampler::PollSampler sampler(params, 0x4a20706f6c6c0000ull);
  const std::uint64_t base_seed = seed_root + n;
  const auto log2n =
      static_cast<std::size_t>(std::ceil(std::log2(double(n))));

  Fig3Point out;
  out.d = params.d;
  out.set_size = std::max<std::size_t>(4, n / log2n);
  out.ratios.assign(trials, 0);
  std::vector<exp::TrialOutcome> outcomes(trials);
  // The sampler is a const keyed hash, so trials share it and fan out;
  // each trial derives its own Rng stream.
  exp::run_indexed(trials, threads, [&](std::size_t trial) {
    Rng rng(exp::trial_seed(base_seed, grid_point, trial));
    const sampler::BorderReport r =
        adversarial
            ? sampler::greedy_adversarial_border(sampler, out.set_size, 8,
                                                 rng)
            : sampler::random_border(sampler, out.set_size, rng);
    out.ratios[trial] = r.ratio;
    exp::TrialOutcome& o = outcomes[trial];
    o.seed = exp::trial_seed(base_seed, grid_point, trial);
    o.completion_time = r.ratio;
    o.agreement = r.ratio > 2.0 / 3.0;
    o.engine_completed = true;
    o.correct = n;
    o.decided = n;
  });
  out.report_point.point.index = grid_point - 1;
  out.report_point.point.n = n;
  out.report_point.point.strategy =
      adversarial ? "greedy-adversarial" : "uniform";
  out.report_point.provenance.d = params.d;
  out.report_point.provenance.node_id_bits = node_id_bits(n);
  out.report_point.aggregate = exp::aggregate_outcomes(outcomes);
  return out;
}

}  // namespace fba::benchutil
