// Adversary gauntlet: run AER against every strategy in the gallery and
// print a scoreboard. Each strategy realizes the attack one of the paper's
// lemmas defends against (see adversary/strategies.h).
//
//   $ ./adversary_gauntlet [n]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "fba.h"

namespace {

using namespace fba;

struct GauntletEntry {
  const char* name;
  const char* lemma;
  aer::StrategyFactory factory;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const GauntletEntry gauntlet[] = {
      {"silent (crash faults)", "intro",
       [](const aer::AerWorldView&) {
         return std::make_unique<adv::SilentStrategy>();
       }},
      {"coordinated junk push", "Lemma 4",
       [](const aer::AerWorldView& view) {
         return std::make_unique<adv::JunkPushStrategy>(view, 3, 32);
       }},
      {"blind push flooding", "3.1.1",
       [](const aer::AerWorldView& view) {
         return std::make_unique<adv::PushFloodStrategy>(view, 64);
       }},
      {"poll stuffing (overload)", "Lemma 6",
       [](const aer::AerWorldView& view) {
         return std::make_unique<adv::PollStuffStrategy>(view);
       }},
      {"wrong answers", "Lemma 7",
       [](const aer::AerWorldView& view) {
         return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
       }},
      {"combo (junk+answers+stuff)", "all",
       [](const aer::AerWorldView& view) {
         auto combo = std::make_unique<adv::ComboStrategy>();
         combo->add(std::make_unique<adv::JunkPushStrategy>(view, 2, 16));
         combo->add(std::make_unique<adv::WrongAnswerStrategy>(view, 8));
         combo->add(std::make_unique<adv::PollStuffStrategy>(view));
         return combo;
       }},
  };

  Table table({"strategy", "lemma", "decided", "wrong", "time", "bits/node",
               "verdict"});
  for (const auto& entry : gauntlet) {
    aer::AerConfig cfg;
    cfg.n = n;
    cfg.seed = 99;
    cfg.model = aer::Model::kSyncRushing;
    cfg.d_override = 16;
    const aer::AerReport r = run_aer(cfg, entry.factory);
    const std::size_t wrong = r.decided_count - r.decided_gstring;
    table.add_row(
        {entry.name, entry.lemma,
         Table::num(static_cast<std::uint64_t>(r.decided_count)) + "/" +
             Table::num(static_cast<std::uint64_t>(r.correct_count)),
         Table::num(static_cast<std::uint64_t>(wrong)),
         Table::num(r.completion_time, 1), Table::num(r.amortized_bits, 0),
         r.agreement ? "defended" : "DEGRADED"});
  }

  std::printf("AER vs the adversary gallery (n=%zu, t/n=0.08, d=16):\n\n", n);
  table.print(std::cout);
  return 0;
}
