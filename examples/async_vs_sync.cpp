// Timing-model comparison: the same AER code under the synchronous
// (rushing / non-rushing) and asynchronous engines, with and without an
// adversarial delay schedule — the paper's distinctive claim that AER
// "remains correct and efficient under asynchrony".
//
//   $ ./async_vs_sync [n]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "fba.h"

int main(int argc, char** argv) {
  using namespace fba;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  Table table({"engine", "delays", "mean decision", "completion", "decided",
               "agree"});

  struct Case {
    const char* label;
    const char* delays;
    aer::Model model;
    bool adversarial_delays;
  };
  const Case cases[] = {
      {"sync non-rushing", "lockstep", aer::Model::kSyncNonRushing, false},
      {"sync rushing", "lockstep", aer::Model::kSyncRushing, false},
      {"async", "uniform(0,1]", aer::Model::kAsync, false},
      {"async", "targeted max-delay", aer::Model::kAsync, true},
  };

  for (const Case& c : cases) {
    aer::AerConfig cfg;
    cfg.n = n;
    cfg.seed = 7;
    cfg.model = c.model;
    aer::StrategyFactory factory;
    if (c.adversarial_delays) {
      factory = [](const aer::AerWorldView& view) {
        // Decisive messages (answers, forwards) dragged to the reliability
        // bound; adversary traffic races ahead.
        return std::make_unique<adv::TargetedDelayStrategy>(view);
      };
    }
    const aer::AerReport r = run_aer(cfg, factory);
    table.add_row(
        {c.label, c.delays, Table::num(r.mean_decision_time, 2),
         Table::num(r.completion_time, 2),
         Table::num(static_cast<std::uint64_t>(r.decided_count)) + "/" +
             Table::num(static_cast<std::uint64_t>(r.correct_count)),
         r.agreement ? "yes" : "NO"});
  }

  std::printf("the same AerNode implementation under every timing model"
              " (n=%zu):\n\n", n);
  table.print(std::cout);
  std::printf("\nsync times are rounds; async times are normalized so the"
              " maximum message delay is 1.\n");
  return 0;
}
