// fba_repro: the figure-reproduction pipeline — run a named figure's sweep
// end to end and emit machine-readable results plus a rendered curve.
//
//   fba_repro --figure=fig1b --large --trials=100 --out=results/
//   fba_repro --figure=fig1b --quick --trials=20 --out=results/
//             --baseline=baselines/BENCH_fig1b.json  (one command line)
//   fba_repro --validate=results/BENCH_fig1b.json
//
// Figures (docs/paper-map.md maps each back to the paper):
//   fig1a        — almost-everywhere-to-everywhere comparison: amortized
//                  bits/node vs n for AER (three timing models),
//                  SQRT-SAMPLE and FLOOD-ALL.
//   fig1b        — Byzantine Agreement comparison: end-to-end time vs n for
//                  BA = AE tournament + {AER, SQRT-SAMPLE, FLOOD-ALL}.
//   fig2         — the push/pull message-flow structure: per-kind traffic
//                  of one n=64 configuration across trials.
//   fig3         — sampler expansion (Lemma 2): min border ratio
//                  |dL|/(d|L|) vs n for uniform and greedy-adversarial
//                  label sets (must stay above 2/3).
//   fig3-scale   — million-node scale mode: AER completion rounds and the
//                  deterministic bytes/node account vs n (10^3..10^6, the
//                  structure-of-arrays runner; docs/perf.md "scale mode").
//                  --quick stops at n=10^5 — the CI smoke configuration.
//   fault-matrix — beyond-the-model degradation: decided fraction per
//                  fault preset for both engines at n=128 (composable with
//                  --attack).
//   adaptive     — resilience boundary vs an adaptive adversary: agreement
//                  rate as the runtime corruption budget grows, for every
//                  adaptive-* attack under both engines (composable with
//                  --fault; --attack pins a single strategy).
//
// Every figure writes BENCH_<figure>.{json,csv,md,gp} under --out (JSON/CSV
// per docs/output-schema.md; .md embeds an ASCII rendering, .gp is a
// self-contained gnuplot script). --baseline=FILE runs Report::diff against
// a previously committed JSON and exits 1 on regressions beyond CI bounds.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig3_common.h"
#include "fba.h"

namespace {

using namespace fba;
using benchutil::Scale;

struct Options {
  std::string figure;
  std::string out = "results";
  std::string baseline;
  std::string validate;
  std::string attack = "none";
  std::string fault = "none";
  std::string recovery = "off";
  std::uint64_t seed = 20130722;  // PODC'13, July 22
  bool seed_set = false;          // --seed was passed explicitly
  std::size_t trials = 0;         // 0 = per-scale default
  std::size_t threads = exp::default_threads();
  std::size_t procs = 1;  ///< --procs=N: forked sweep workers (1 = off).
  std::string shard;      ///< --shard=i/N: record slice i of N and exit.
  bool merge = false;     ///< --merge file...: replay merged shard files.
  std::vector<std::string> merge_files;
  Scale scale = Scale::kDefault;
  bool timing = false;  ///< --timing: print the setup-vs-run split on exit.
};

constexpr const char* kUsageExtra =
    "  --figure=NAME      fig1a | fig1b | fig2 | fig3 | fig3-scale |\n"
    "                     fault-matrix | recovery-matrix | adaptive | service\n"
    "  --out=DIR          output directory (default results/); writes\n"
    "                     BENCH_<figure>.{json,csv,md,gp}\n"
    "  --baseline=FILE    diff this run against a committed fba.report JSON;\n"
    "                     exit 1 on regressions beyond CI bounds\n"
    "  --validate=FILE    parse FILE against the report schema (fingerprint\n"
    "                     revalidation included) and exit; no sweep runs\n"
    "  --seed=N           base seed (default 20130722)\n"
    "  --shard=I/N        run only slice I of N of the figure's (point,\n"
    "                     trial) cells and write BENCH_<figure>.shardIofN\n"
    "                     .json instead of the report (manual fan-out\n"
    "                     across machines; docs/perf.md)\n"
    "  --merge FILE...    merge independently recorded shard files, verify\n"
    "                     full coverage + fingerprints, and emit the exact\n"
    "                     report a serial run of the same flags would\n"
    "  --attack applies to fault-matrix, recovery-matrix, adaptive and\n"
    "  fig3-scale; --fault applies one preset to the fig1a/fig1b/fig2/\n"
    "  fig3-scale/adaptive sweeps; --recovery applies one preset to those\n"
    "  plus fault-matrix (fig3 is sampler-only and ignores all three;\n"
    "  service and recovery-matrix pin their own plan axes).\n";

/// The flag vocabulary, shared with every bench through
/// benchutil::parse_common_flags — a typoed --baseline must not silently
/// skip the regression gate.
benchutil::CommonSpec repro_spec() {
  benchutil::CommonSpec spec;
  spec.binary = "fba_repro";
  spec.description =
      "figure-reproduction pipeline (JSON/CSV/gnuplot/markdown per figure)";
  spec.extra_usage = kUsageExtra;
  spec.extra_flags = {"--figure=", "--out=", "--baseline=", "--validate=",
                      "--seed=", "--shard="};
  spec.sections = {.attacks = true, .faults = true, .recoveries = true,
                   .json = false};  // reports go via --out
  spec.accept_timing = true;
  return spec;
}

std::size_t default_trials(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return 5;
    case Scale::kDefault: return 30;
    case Scale::kLarge: return 100;  // the ROADMAP's >=100 trials/point bar
  }
  return 30;
}

exp::Sweep::Progress progress(const char* label) {
  return exp::stderr_progress(label);
}

/// Report skeleton shared by all figures: bench_util's meta filling plus
/// the figure's headline-curve axes.
exp::Report figure_report(const Options& opt, const char* figure,
                          const char* title, const char* x_axis,
                          const char* y_metric, const char* y_label,
                          std::size_t trials) {
  exp::Report report = benchutil::make_report("fba_repro", figure, title,
                                              opt.seed, trials, opt.scale);
  report.meta().x_axis = x_axis;
  report.meta().y_metric = y_metric;
  report.meta().y_label = y_label;
  return report;
}

/// Splits one multi-model sweep into per-model series named
/// "<prefix><model>".
void add_by_model(exp::Report& report, const std::string& prefix,
                  const aer::AerConfig& base,
                  const std::vector<exp::PointResult>& results) {
  benchutil::add_split_series(report, base, results,
                              [&prefix](const exp::GridPoint& p) {
                                return prefix + aer::model_name(p.model);
                              });
}

// ---- fig1a: a-e to everywhere comparison ------------------------------------

exp::Report run_fig1a(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fig1a", "Figure 1(a): almost-everywhere to everywhere comparison",
      "n", "amortized_bits.mean", "amortized bits per node", trials);

  aer::AerConfig base;
  base.seed = opt.seed;
  const std::vector<std::size_t> sizes = benchutil::protocol_sizes(opt.scale);

  exp::Grid aer_grid;
  aer_grid.ns = sizes;
  aer_grid.models = {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                     aer::Model::kAsync};
  if (opt.fault != "none") aer_grid.faults = {opt.fault};
  if (opt.recovery != "off") aer_grid.recoveries = {opt.recovery};
  exp::Sweep aer_sweep(base, aer_grid, trials);
  aer_sweep.set_threads(opt.threads).set_procs(opt.procs);
  aer_sweep.set_progress(progress("fig1a AER"));
  add_by_model(report, "AER/", base, aer_sweep.run());

  exp::Grid base_grid;
  base_grid.ns = sizes;
  base_grid.models = {aer::Model::kSyncRushing};
  if (opt.fault != "none") base_grid.faults = {opt.fault};
  if (opt.recovery != "off") base_grid.recoveries = {opt.recovery};
  exp::Sweep sqrt_sweep(base, base_grid, trials);
  sqrt_sweep.set_threads(opt.threads).set_procs(opt.procs);
  sqrt_sweep.set_trial(exp::run_sqrtsample_trial);
  sqrt_sweep.set_progress(progress("fig1a sqrt-sample"));
  report.add_points("SQRT-SAMPLE", base, sqrt_sweep.run());

  exp::Sweep flood_sweep(base, base_grid, trials);
  flood_sweep.set_threads(opt.threads).set_procs(opt.procs);
  flood_sweep.set_trial(exp::run_flood_trial);
  flood_sweep.set_progress(progress("fig1a flood"));
  report.add_points("FLOOD-ALL", base, flood_sweep.run());
  return report;
}

// ---- fig1b: BA comparison ---------------------------------------------------

exp::Report run_fig1b(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fig1b", "Figure 1(b): Byzantine Agreement comparison", "n",
      "completion_time.mean", "end-to-end time (AE rounds + reduction)",
      trials);

  aer::AerConfig base;
  base.seed = opt.seed;
  // BA's corruption operating point (BaConfig's default) — recorded on the
  // sweep base so the report's axes/provenance match what the trials run.
  base.corrupt_fraction = 0.05;
  exp::Grid grid;
  grid.ns = benchutil::protocol_sizes(opt.scale);
  if (opt.fault != "none") grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};

  for (const ba::Reduction reduction :
       {ba::Reduction::kAer, ba::Reduction::kSqrtSample,
        ba::Reduction::kFlood}) {
    exp::Sweep sweep(base, grid, trials);
    sweep.set_threads(opt.threads).set_procs(opt.procs);
    sweep.set_progress(progress(ba::reduction_name(reduction)));
    sweep.set_trial(
        [reduction](const aer::AerConfig& cfg, const exp::GridPoint& point) {
          ba::BaConfig run;
          run.n = cfg.n;
          run.seed = cfg.seed;
          run.corrupt_fraction = cfg.corrupt_fraction;
          if (!point.fault.empty()) {
            run.fault_plan = exp::fault_plan_factory(point.fault);
          }
          if (!point.recovery.empty()) {
            run.recovery_plan = exp::recovery_plan_factory(point.recovery);
          }
          return exp::outcome_of(ba::run_ba(run, reduction));
        });
    report.add_points(std::string("BA/") + ba::reduction_name(reduction),
                      base, sweep.run());
  }
  return report;
}

// ---- fig2: push/pull message flow -------------------------------------------

exp::Report run_fig2(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fig2", "Figure 2: push and pull message flow (per-kind traffic)",
      "kind", "amortized_bits.mean", "amortized bits per node", trials);

  aer::AerConfig cfg;
  cfg.n = 64;
  // Default seed 13 = the exact configuration bench_fig2_trace traces
  // (their reports are then fingerprint-identical); an explicit --seed
  // overrides it. Either way meta.base_seed records the seed actually run.
  cfg.seed = opt.seed_set ? opt.seed : 13;
  cfg.model = aer::Model::kSyncRushing;
  cfg.d_override = 11;
  report.meta().base_seed = cfg.seed;
  // The fault/recovery presets ride the grid axes (not cfg plans) so the
  // report's point axes record them.
  exp::Grid grid;
  if (opt.fault != "none") grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};

  exp::Sweep sweep(cfg, grid, trials);
  sweep.set_threads(opt.threads).set_procs(opt.procs);
  sweep.set_progress(progress("fig2"));
  report.add_points("AER n=64", cfg, sweep.run());
  return report;
}

// ---- fig3: sampler expansion ------------------------------------------------

exp::Report run_fig3(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fig3", "Figure 3 / Lemma 2: sampler border expansion", "n",
      "completion_time.min", "min border ratio |dL| / (d |L|)", trials);

  // The shared benchutil::run_fig3_point driver (also behind
  // bench_fig3_expansion) keeps seed derivation identical across both
  // tools — at equal --trials their fig3 points are
  // fingerprint-identical.
  std::size_t grid_point = 0;
  for (const std::size_t n : benchutil::light_sizes(opt.scale)) {
    for (const bool adversarial : {false, true}) {
      ++grid_point;
      benchutil::Fig3Point point = benchutil::run_fig3_point(
          n, adversarial, grid_point, opt.seed, trials, opt.threads);
      const std::string series = point.report_point.point.strategy;
      report.add_point(series, std::move(point.report_point));
    }
  }
  return report;
}

// ---- fig3-scale: million-node scale mode ------------------------------------

/// Per-point trial cap: a scale trial is seconds at n=10^4 but minutes (and
/// tens of GB) at n=10^6, so the largest points run fewer trials than the
/// --trials request.
std::size_t scale_trials(std::size_t trials, std::size_t n) {
  if (n >= 1000000) return 1;
  if (n >= 100000) return std::min<std::size_t>(trials, 3);
  return trials;
}

/// In-trial round progress for the minutes-long scale points: with one
/// trial per point, per-trial sweep progress is too coarse, so the SoA
/// runner reports (round just finished, events still pending) after every
/// simulated round. Gated and throttled exactly like exp::stderr_progress.
exp::ScaleTrialOptions::RoundProgress scale_round_progress(
    const std::string& label) {
  const bool tty = isatty(fileno(stderr)) != 0;
  const char* env = std::getenv("FBA_PROGRESS");
  if (!tty && (env == nullptr || std::strcmp(env, "1") != 0)) return {};

  struct State {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    double last_print = 0;
  };
  auto state = std::make_shared<State>();
  return [state, label, tty](Round round, std::size_t pending) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      state->start)
            .count();
    if (elapsed - state->last_print < 1.0) return;
    state->last_print = elapsed;
    std::fprintf(stderr, "%s%s: round %u, %zu events pending, %.0fs%s",
                 tty ? "\r" : "", label.c_str(), round, pending, elapsed,
                 tty ? "" : "\n");
    std::fflush(stderr);
  };
}

exp::Report run_fig3_scale(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fig3-scale",
      "Scale mode: AER completion rounds and bytes/node up to n = 10^6", "n",
      "completion_time.mean", "completion time (rounds)", trials);

  aer::AerConfig base;
  base.seed = opt.seed;
  base.model = aer::Model::kSyncRushing;
  // Pin d at the n=256 floor instead of the 1.5*log2(n) default: the curve
  // isolates how state and traffic grow with n at fixed quorum degree (and
  // keeps the n=10^6 point's d^2 fan-outs tractable). Recorded in every
  // point's resolved provenance.
  base.d_override = 8;

  // Decades of n; --quick stops at 10^5 (the CI smoke), the full run adds
  // the million-node point.
  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  if (opt.scale != Scale::kQuick) sizes.push_back(1000000);

  exp::Grid grid;
  grid.ns = sizes;
  grid.models = {aer::Model::kSyncRushing};
  if (opt.attack != "none") grid.strategies = {opt.attack};
  if (opt.fault != "none") grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};

  const std::vector<exp::GridPoint> points = exp::expand_grid(base, grid);
  std::size_t total = 0;
  for (const exp::GridPoint& p : points) total += scale_trials(trials, p.n);

  // Serial manual loop instead of exp::Sweep: the per-point trial caps are
  // non-uniform, and one ScaleArena (reused across all trials) bounds the
  // figure's memory to the largest point. Seeds derive exactly as Sweep's
  // (trial_seed over point.index/trial), so results match any runner that
  // executes the same (point, trial) set.
  exp::ScaleArena arena;
  const exp::Sweep::Progress trial_progress = progress("fig3-scale");
  std::size_t completed = 0;
  for (const exp::GridPoint& point : points) {
    const std::size_t point_trials = scale_trials(trials, point.n);
    std::vector<exp::TrialOutcome> outcomes(point_trials);
    exp::ScaleTrialOptions trial_opts;
    trial_opts.round_progress =
        scale_round_progress("fig3-scale " + point.label());
    for (std::size_t t = 0; t < point_trials; ++t) {
      aer::AerConfig cfg = point.apply(base);
      cfg.seed = exp::trial_seed(opt.seed, point.index, t);
      exp::run_aer_scale_trial(cfg, point, arena, outcomes[t], trial_opts);
      outcomes[t].seed = cfg.seed;
      if (trial_progress) trial_progress(++completed, total);
    }
    report.add_point(
        "AER/soa", exp::ReportPoint{point, exp::point_provenance(base, point),
                                    exp::aggregate_outcomes(outcomes)});
  }

  exp::SweepTiming timing;
  timing.setup_seconds = arena.timing.setup_seconds;
  timing.run_seconds = arena.timing.run_seconds;
  timing.trials = arena.timing.trials;
  timing.available = true;
  exp::accumulate_process_timing(timing);
  return report;
}

// ---- fault-matrix: degradation beyond the paper's model ---------------------

exp::Report run_fault_matrix(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "fault-matrix",
      "Fault degradation matrix: liveness under loss / partitions / churn",
      "fault", "decided_fraction", "decided fraction of correct nodes",
      trials);

  aer::AerConfig base;
  base.n = 128;
  base.seed = opt.seed;
  base.max_rounds = 60;
  base.max_time = 60.0;

  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {opt.attack};
  grid.faults = exp::known_faults();
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(opt.threads).set_procs(opt.procs);
  sweep.set_progress(progress("fault-matrix"));
  add_by_model(report, "AER/", base, sweep.run());
  return report;
}

// ---- recovery-matrix: buying the channel assumption back --------------------

exp::Report run_recovery_matrix(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "recovery-matrix",
      "Recovery matrix: agreement and retransmit bit-cost of ack/retransmit"
      " under loss",
      "fault", "agreement_rate", "agreement rate", trials);

  aer::AerConfig base;
  base.n = opt.scale == Scale::kQuick ? 64 : 128;
  base.seed = opt.seed;
  base.max_rounds = 60;
  base.max_time = 60.0;

  // Loss severity x recovery preset under both engines: the off column is
  // the degradation beyond the paper's model (fault-matrix's loss rows),
  // the arq-* columns show agreement restored plus the measured price —
  // recovery_retransmit_bits — of buying the reliable-channel assumption
  // back at each loss rate.
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {opt.attack};
  grid.faults = {"none", "lossy-1pct", "lossy-5pct", "lossy-20pct"};
  grid.recoveries = {"off", "arq-fast", "arq-patient", "arq-capped"};
  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(opt.threads).set_procs(opt.procs);
  sweep.set_progress(progress("recovery-matrix"));
  benchutil::add_split_series(
      report, base, sweep.run(), [](const exp::GridPoint& p) {
        return p.recovery + "/" + aer::model_name(p.model);
      });
  return report;
}

// ---- adaptive: resilience boundary under runtime corruptions ----------------

exp::Report run_adaptive(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "adaptive",
      "Adaptive adversary: agreement vs runtime corruption budget", "budget",
      "agreement_rate", "agreement rate", trials);

  aer::AerConfig base;
  base.n = opt.scale == Scale::kQuick ? 64 : 128;
  base.seed = opt.seed;
  base.max_rounds = 60;
  base.max_time = 60.0;
  // First flip only after round/time 2: the tap needs a little traffic
  // before the degree/quorum/king scores distinguish anybody.
  base.adaptive_from = 2.0;

  // Budget 0 anchors each curve at the static baseline; the rest doubles
  // through the liveness knee (around budget 8 at n=64) to the full
  // collapse past the paper's t < (1/3 - eps) n resilience boundary.
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies =
      opt.attack == "none"
          ? std::vector<std::string>{"adaptive-degree", "adaptive-quorum",
                                     "adaptive-king", "adaptive-random"}
          : std::vector<std::string>{opt.attack};
  if (opt.fault != "none") grid.faults = {opt.fault};
  if (opt.recovery != "off") grid.recoveries = {opt.recovery};
  grid.budgets = {0, 2, 4, 8, 16};

  exp::Sweep sweep(base, grid, trials);
  sweep.set_threads(opt.threads).set_procs(opt.procs);
  sweep.set_progress(progress("adaptive"));
  benchutil::add_split_series(
      report, base, sweep.run(), [](const exp::GridPoint& p) {
        return p.strategy + "/" + aer::model_name(p.model);
      });
  return report;
}

// ---- service: heavy-traffic streaming mode ----------------------------------

exp::Report run_service_figure(const Options& opt, std::size_t trials) {
  exp::Report report = figure_report(
      opt, "service",
      "Service mode: streaming repeated consensus under persistent"
      " adversaries",
      "index", "decision_time.p99", "p99 decision latency", trials);

  // The plan matrix is pinned (not --attack/--fault driven): a steady
  // honest stream, the two grudge rosters, and the slow-burn churn ramp —
  // the persistent-adversary shapes a one-shot sweep cannot express. One
  // stream per plan; deterministic stats only (counts + latency/traffic
  // histograms), so the committed baseline diffs bit-identically at any
  // worker count. The stream length scales with --trials so --quick stays
  // CI-cheap.
  struct Plan {
    const char* attack;
    const char* fault;
  };
  constexpr Plan kPlans[] = {{"none", ""},
                             {"grudge-wrong", ""},
                             {"grudge-stuff", ""},
                             {"none", "slow-burn-churn"}};
  const auto instances = static_cast<std::uint64_t>(trials) * 8;

  exp::SweepTiming timing;
  std::size_t index = 0;
  for (const Plan& plan : kPlans) {
    exp::ServiceConfig config;
    config.base.n = opt.scale == Scale::kQuick ? 64 : 128;
    config.base.model = aer::Model::kSyncRushing;
    config.base_seed = opt.seed;
    config.attack = plan.attack;
    config.fault = plan.fault;
    config.instances = instances;
    config.workers = opt.threads;
    const exp::ServiceResult r = exp::run_service(config);
    report.add_point("service",
                     benchutil::service_report_point(index++, config, r));
    timing.setup_seconds += r.timing.setup_seconds;
    timing.run_seconds += r.timing.run_seconds;
    timing.trials += r.timing.trials;
  }
  timing.available = true;
  exp::accumulate_process_timing(timing);
  return report;
}

// ---- driver -----------------------------------------------------------------

/// The figures --shard/--merge can split: exactly those whose trials run
/// through exp::Sweep (fig3 drives exp::run_indexed directly; fig3-scale
/// and service loop by hand with non-uniform trial counts).
bool shardable_figure(const std::string& figure) {
  return figure == "fig1a" || figure == "fig1b" || figure == "fig2" ||
         figure == "fault-matrix" || figure == "recovery-matrix" ||
         figure == "adaptive";
}

Scale scale_from_name(const std::string& name) {
  if (name == "quick") return Scale::kQuick;
  if (name == "large") return Scale::kLarge;
  return Scale::kDefault;
}

/// fig2 pins seed 13 unless --seed was given (see run_fig2); the shard
/// meta must record the seed the figure actually runs so --merge replays
/// the exact configuration.
std::uint64_t effective_seed(const Options& opt) {
  if (opt.figure == "fig2" && !opt.seed_set) return 13;
  return opt.seed;
}

Options parse(int argc, char** argv) {
  Options opt;

  // --merge consumes every following non-flag argument as a shard file;
  // pull those out before the shared flag validation (which rejects
  // anything it does not know).
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merge") == 0) {
      opt.merge = true;
      continue;
    }
    if (opt.merge && std::strncmp(argv[i], "--", 2) != 0) {
      opt.merge_files.push_back(argv[i]);
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  // parse_common_flags handles --help (exit 0) and unknown flags (usage +
  // exit 2); only the fba_repro-specific values are read out here.
  const benchutil::CommonOptions common =
      benchutil::parse_common_flags(argc, argv, repro_spec());

  opt.scale = common.scale;
  opt.attack = common.attack;
  opt.fault = common.fault;
  opt.recovery = common.recovery;
  opt.timing = common.timing;
  opt.trials = common.trials_override;
  opt.threads = common.threads;
  opt.procs = common.procs;
  opt.figure = benchutil::string_flag(argc, argv, "--figure", "");
  opt.out = benchutil::string_flag(argc, argv, "--out", "results");
  opt.baseline = benchutil::string_flag(argc, argv, "--baseline", "");
  opt.validate = benchutil::string_flag(argc, argv, "--validate", "");
  opt.shard = benchutil::string_flag(argc, argv, "--shard", "");
  const std::string seed = benchutil::string_flag(argc, argv, "--seed", "");
  if (!seed.empty()) {
    char* end = nullptr;
    opt.seed = std::strtoull(seed.c_str(), &end, 10);
    if (end == seed.c_str() || *end != '\0') {
      std::fprintf(stderr, "malformed --seed=%s (expected a decimal integer)\n",
                   seed.c_str());
      std::exit(2);
    }
    opt.seed_set = true;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse(argc, argv);

  try {
    if (!opt.validate.empty()) {
      const exp::Report r = exp::Report::from_json_file(opt.validate);
      std::printf("%s: valid fba.report (schema v%llu), figure %s, %zu"
                  " series, %zu points, fingerprints verified\n",
                  opt.validate.c_str(),
                  static_cast<unsigned long long>(exp::kReportSchemaVersion),
                  r.meta().figure.c_str(), r.series().size(),
                  r.total_points());
      return 0;
    }

    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    if (!opt.shard.empty() && opt.merge) {
      std::fprintf(stderr,
                   "fba_repro: --shard and --merge are mutually exclusive\n");
      return 2;
    }
    if (!opt.shard.empty()) {
      if (std::sscanf(opt.shard.c_str(), "%zu/%zu", &shard_index,
                      &shard_count) != 2 ||
          shard_count < 1 || shard_index >= shard_count) {
        std::fprintf(stderr,
                     "fba_repro: malformed --shard=%s (expected I/N with"
                     " 0 <= I < N)\n",
                     opt.shard.c_str());
        return 2;
      }
      if (!shardable_figure(opt.figure)) {
        std::fprintf(stderr,
                     "fba_repro: --shard/--merge support only the"
                     " Sweep-driven figures (fig1a, fig1b, fig2,"
                     " fault-matrix, recovery-matrix, adaptive), not"
                     " \"%s\"\n",
                     opt.figure.c_str());
        return 2;
      }
    }
    if (opt.merge) {
      if (opt.merge_files.empty()) {
        std::fprintf(stderr,
                     "fba_repro: --merge needs at least one shard file\n");
        return 2;
      }
      std::vector<exp::ShardDoc> docs;
      docs.reserve(opt.merge_files.size());
      for (const std::string& file : opt.merge_files) {
        docs.push_back(exp::ShardDoc::from_json_file(file));
      }
      exp::ShardDoc merged = exp::merge_shards(docs);
      if (!shardable_figure(merged.meta.figure)) {
        std::fprintf(stderr,
                     "fba_repro: shard files name figure \"%s\", which is"
                     " not a sharded figure\n",
                     merged.meta.figure.c_str());
        return 2;
      }
      // Replay under exactly the recorded configuration: the meta, not the
      // command line, decides figure/seed/trials/scale/attack/fault.
      opt.figure = merged.meta.figure;
      opt.seed = merged.meta.base_seed;
      opt.seed_set = true;
      opt.trials = merged.meta.trials;
      opt.scale = scale_from_name(merged.meta.scale);
      opt.attack = merged.meta.attack;
      opt.fault = merged.meta.fault;
      opt.recovery = merged.meta.recovery;
      opt.procs = 1;  // cells come from the shards, nothing runs
      std::fprintf(stderr,
                   "fba_repro: replaying %zu cells from %zu shard file(s)"
                   " (figure %s)\n",
                   merged.total_cells(), opt.merge_files.size(),
                   opt.figure.c_str());
      exp::ShardIo::instance().start_replay(std::move(merged));
    }

    // Validate scenario names before any sweep runs.
    exp::attack_factory(opt.attack);
    exp::fault_plan_factory(opt.fault);
    exp::recovery_plan_factory(opt.recovery);

    const std::size_t trials =
        opt.trials > 0 ? opt.trials : default_trials(opt.scale);
    benchutil::Stopwatch watch;

    if (!opt.shard.empty()) {
      exp::ShardMeta meta;
      meta.tool = "fba_repro";
      meta.figure = opt.figure;
      meta.scale = benchutil::scale_name(opt.scale);
      meta.attack = opt.attack;
      meta.fault = opt.fault;
      meta.recovery = opt.recovery;
      meta.base_seed = effective_seed(opt);
      meta.trials = trials;
      meta.shard_index = shard_index;
      meta.shard_count = shard_count;
      exp::ShardIo::instance().start_record(meta);
    }

    exp::Report report;
    if (opt.figure == "fig1a") {
      report = run_fig1a(opt, trials);
    } else if (opt.figure == "fig1b") {
      report = run_fig1b(opt, trials);
    } else if (opt.figure == "fig2") {
      report = run_fig2(opt, trials);
    } else if (opt.figure == "fig3") {
      report = run_fig3(opt, trials);
    } else if (opt.figure == "fig3-scale") {
      report = run_fig3_scale(opt, trials);
    } else if (opt.figure == "fault-matrix") {
      report = run_fault_matrix(opt, trials);
    } else if (opt.figure == "recovery-matrix") {
      report = run_recovery_matrix(opt, trials);
    } else if (opt.figure == "adaptive") {
      report = run_adaptive(opt, trials);
    } else if (opt.figure == "service") {
      report = run_service_figure(opt, trials);
    } else {
      std::fprintf(stderr,
                   "%s --figure=%s: unknown figure (known: fig1a, fig1b,"
                   " fig2, fig3, fig3-scale, fault-matrix, recovery-matrix,"
                   " adaptive, service; --help for details)\n",
                   argv[0], opt.figure.c_str());
      return 2;
    }

    const bool interrupted = exp::interrupt_requested();

    if (exp::ShardIo::instance().mode() == exp::ShardIo::Mode::kRecord) {
      if (interrupted) {
        std::fprintf(stderr, "fba_repro: interrupted — shard incomplete,"
                             " nothing written\n");
        return 130;
      }
      std::error_code ec;
      std::filesystem::create_directories(opt.out, ec);
      const std::string path = opt.out + "/BENCH_" + opt.figure + ".shard" +
                               std::to_string(shard_index) + "of" +
                               std::to_string(shard_count) + ".json";
      exp::ShardIo::instance().doc().write(path);
      std::printf("wrote %s (%zu of the figure's cells)\n", path.c_str(),
                  exp::ShardIo::instance().doc().total_cells());
      std::printf("[%s shard %zu/%zu done in %.1fs]\n", opt.figure.c_str(),
                  shard_index, shard_count, watch.seconds());
      return 0;
    }

    if (interrupted) {
      // SIGINT drained the process pool: the report holds every point that
      // fully completed — still a valid, fingerprinted fba.report — but
      // the baseline gate would compare apples to a partial crate.
      std::fprintf(stderr,
                   "fba_repro: interrupted — writing the %zu point(s) that"
                   " completed; skipping the baseline gate\n",
                   report.total_points());
      if (report.total_points() > 0) {
        std::fputs(report.to_markdown().c_str(), stdout);
        for (const std::string& path : report.write_all(opt.out)) {
          std::printf("wrote %s\n", path.c_str());
        }
      }
      return 130;
    }

    // The rendered curve + per-series tables, then the artifact files.
    std::fputs(report.to_markdown().c_str(), stdout);
    for (const std::string& path : report.write_all(opt.out)) {
      std::printf("wrote %s\n", path.c_str());
    }
    std::printf("[%s done in %.1fs: %zu trials/point x %zu points on %zu"
                " %s]\n",
                opt.figure.c_str(), watch.seconds(), trials,
                report.total_points(),
                opt.procs > 1 ? opt.procs : opt.threads,
                opt.procs > 1 ? "process(es)" : "thread(s)");

    if (opt.timing) {
      // One-line setup-vs-run split accumulated across this figure's
      // sweeps: how much wall time went into world/sampler setup (what the
      // shared tables + trial arenas amortize) vs engine execution.
      const std::string line = exp::format_timing(exp::process_timing());
      if (line.empty()) {
        std::fprintf(stderr, "[timing] unavailable: this figure runs no"
                             " arena-trial sweeps\n");
      } else {
        std::fprintf(stderr, "[timing] %s\n", line.c_str());
      }
      // OS-side cross-check on the MemBudget accounting (diagnostic only —
      // RSS is environment-dependent, never serialized into reports). An
      // explicit n/a beats silently omitting the line: the reader can tell
      // "not measured on this platform" from "forgot to look".
      const std::uint64_t rss = support::peak_rss_bytes();
      if (rss > 0) {
        std::fprintf(stderr, "[timing] peak RSS %.1f MiB\n",
                     static_cast<double>(rss) / (1024.0 * 1024.0));
      } else {
        std::fprintf(stderr,
                     "[timing] peak RSS n/a (not measurable on this"
                     " platform)\n");
      }
    }

    if (!opt.baseline.empty()) {
      const exp::Report baseline =
          exp::Report::from_json_file(opt.baseline);
      const exp::DiffResult diff = report.diff(baseline);
      std::printf("\n--- diff vs %s ---\n%s", opt.baseline.c_str(),
                  diff.summary().c_str());
      if (!diff.ok()) return 1;
    }
    return 0;
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
