// fba_sim: command-line driver for the whole library — run any protocol
// under any timing model and adversary, from one binary.
//
//   fba_sim --protocol=aer --n=512 --model=async --attack=stuff
//   fba_sim --protocol=aer --n=512 --model=async --fault=lossy-5pct
//   fba_sim --protocol=aer --n=512 --trials=100 --threads=8
//   fba_sim --protocol=ba --n=1024 --reduction=aer
//   fba_sim --protocol=flood|sqrt|snowball --n=256 --corrupt=0.1
//   fba_sim --protocol=ae --n=512 --attack=equivocate
//
// Flags (all optional): --n, --seed, --corrupt (fraction), --know
// (knowledgeable fraction), --d (quorum size), --budget (answer budget),
// --adaptive-budget (runtime corruptions the adversary may spend mid-run),
// --adaptive-from (round/time of the earliest runtime corruption),
// --model=sync|sync-nr|async, --attack=<exp::known_attacks()>,
// --fault=<exp::known_faults()> (loss / partition / churn presets,
// composable with any attack), --reduction=aer|sqrt|flood. With
// --trials=N > 1 the run becomes a multi-trial exp::Sweep
// (deterministically seeded from --seed, fanned across --threads worker
// threads) and prints the aggregate instead of a single report.
// --json=FILE writes the run as an fba.report document (exp/report.h,
// docs/output-schema.md); --help prints the generated usage block
// (exp::scenario_usage()).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "exp/progress.h"
#include "fba.h"

namespace {

using namespace fba;

/// Live trials-completed / ETA line on stderr for multi-trial sweeps
/// (enabled on a TTY or with FBA_PROGRESS=1).
exp::Sweep::Progress sweep_progress() { return exp::stderr_progress("trials"); }

struct Options {
  std::string protocol = "aer";
  std::size_t n = 256;
  std::uint64_t seed = 1;
  double corrupt = 0.08;
  double know = 0.95;
  std::size_t d = 0;
  std::size_t budget = 0;
  std::size_t adaptive_budget = 0;
  double adaptive_from = 1.0;
  std::string model = "sync";
  std::string attack = "none";
  std::string fault = "none";
  std::string recovery = "off";
  std::string reduction = "aer";
  std::string json;  ///< --json=FILE: write an fba.report document.
  std::size_t trials = 1;
  std::size_t threads = exp::default_threads();
  std::size_t procs = 1;  ///< --procs=N: forked sweep workers (1 = off).
  bool timing = false;  ///< --timing: print the setup-vs-run split on exit.
};

/// Prints the one-line setup-vs-run wall-time split on scope exit (the
/// sweeps accumulate it into exp::process_timing()); makes the sampler
/// precompute / trial-arena win visible without a profiler.
struct TimingPrinter {
  bool enabled = false;
  ~TimingPrinter() {
    if (!enabled) return;
    const std::string line = exp::format_timing(exp::process_timing());
    if (line.empty()) {
      std::fprintf(stderr, "[timing] unavailable: no arena-trial sweep ran\n");
    } else {
      std::fprintf(stderr, "[timing] %s\n", line.c_str());
    }
    // OS-side cross-check on the MemBudget accounting: the process peak RSS
    // (diagnostic only — RSS is environment-dependent, never serialized).
    // An explicit n/a beats silently omitting the line: the reader can tell
    // "not measured on this platform" from "forgot to look".
    const std::uint64_t rss = support::peak_rss_bytes();
    if (rss > 0) {
      std::fprintf(stderr, "[timing] peak RSS %.1f MiB\n",
                   static_cast<double>(rss) / (1024.0 * 1024.0));
    } else {
      std::fprintf(stderr,
                   "[timing] peak RSS n/a (not measurable on this"
                   " platform)\n");
    }
  }
};

/// The flag vocabulary, shared with every bench through
/// benchutil::parse_common_flags (--help and unknown-flag errors print the
/// same generated usage block).
benchutil::CommonSpec sim_spec() {
  benchutil::CommonSpec spec;
  spec.binary = "fba_sim";
  spec.description =
      "run any protocol under any timing model and adversary";
  spec.extra_usage =
      "  --protocol=NAME    aer | ba | ae | flood | sqrt | snowball"
      " (default aer)\n"
      "  --n=N              network size (default 256)\n"
      "  --seed=N           base seed (default 1)\n"
      "  --corrupt=F        corrupt fraction t/n (default 0.08)\n"
      "  --know=F           knowledgeable fraction of correct nodes"
      " (default 0.95)\n"
      "  --d=N              quorum/poll-list size override\n"
      "  --budget=N         Algorithm 3 answer-budget override\n"
      "  --adaptive-budget=N  runtime corruptions an adaptive-* attack may\n"
      "                     spend mid-run (default 0 = the paper's static"
      " model)\n"
      "  --adaptive-from=F  earliest round (sync) / time (async) of a runtime\n"
      "                     corruption (default 1)\n"
      "  --model=NAME       sync | sync-nr | async (default sync)\n"
      "  --reduction=NAME   aer | sqrt | flood (BA composition only)\n"
      "  --attack=equivocate  AE-tournament-only attack (--protocol=ae;\n"
      "                     the registry below drives the other protocols)\n";
  spec.extra_flags = {"--protocol=", "--n=",     "--seed=",
                      "--corrupt=",  "--know=",  "--d=",
                      "--budget=",   "--model=", "--reduction=",
                      "--adaptive-budget=", "--adaptive-from="};
  spec.sections = {.attacks = true, .faults = true, .recoveries = true};
  spec.accept_timing = true;
  spec.accept_scale = false;  // runs are sized with --n/--trials directly.
  return spec;
}

/// Defensive numeric flag parsing: a bare std::stod would escape as an
/// uncaught std::invalid_argument on e.g. --corrupt=abc (and silently
/// accept trailing junk like --corrupt=0.1x); reject both with the usage
/// convention every other malformed flag follows — one line, exit 2.
double double_flag(int argc, char** argv, const char* flag, double fallback) {
  const std::string text = benchutil::string_flag(argc, argv, flag, "");
  if (text.empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "malformed %s=%s (expected a number)\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

Options parse(int argc, char** argv) {
  // parse_common_flags owns --help, the shared flags and unknown-flag
  // rejection; the fba_sim-specific values are read out afterwards.
  const benchutil::CommonOptions common =
      benchutil::parse_common_flags(argc, argv, sim_spec());

  Options opt;
  opt.attack = common.attack;
  opt.fault = common.fault;
  opt.recovery = common.recovery;
  opt.json = common.json;
  opt.timing = common.timing;
  if (common.trials_override > 0) opt.trials = common.trials_override;
  opt.threads = common.threads;
  opt.procs = common.procs;

  using benchutil::flag_value;
  using benchutil::string_flag;
  opt.protocol = string_flag(argc, argv, "--protocol", opt.protocol.c_str());
  opt.n = flag_value(argc, argv, "--n", opt.n);
  opt.seed = flag_value(argc, argv, "--seed", opt.seed);
  opt.model = string_flag(argc, argv, "--model", opt.model.c_str());
  opt.reduction = string_flag(argc, argv, "--reduction", opt.reduction.c_str());
  opt.d = flag_value(argc, argv, "--d", opt.d);
  opt.budget = flag_value(argc, argv, "--budget", opt.budget);
  opt.adaptive_budget =
      flag_value(argc, argv, "--adaptive-budget", opt.adaptive_budget);
  opt.adaptive_from =
      double_flag(argc, argv, "--adaptive-from", opt.adaptive_from);
  opt.corrupt = double_flag(argc, argv, "--corrupt", opt.corrupt);
  opt.know = double_flag(argc, argv, "--know", opt.know);
  return opt;
}

aer::Model parse_model(const std::string& name) {
  if (name == "sync") return aer::Model::kSyncRushing;
  if (name == "sync-nr") return aer::Model::kSyncNonRushing;
  if (name == "async") return aer::Model::kAsync;
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(2);
}

aer::StrategyFactory make_attack(const std::string& name) {
  try {
    return exp::attack_factory(name);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

sim::FaultPlan make_fault(const std::string& name) {
  try {
    return exp::fault_plan_factory(name);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

sim::RecoveryPlan make_recovery(const std::string& name) {
  try {
    return exp::recovery_plan_factory(name);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

void print_report(const char* label, const aer::AerReport& r) {
  std::printf("%s: n=%zu t=%zu d=%zu\n", label, r.n, r.t, r.d);
  std::printf("  outcome : %zu/%zu decided, %zu on the common string -> %s\n",
              r.decided_count, r.correct_count, r.decided_gstring,
              r.agreement ? "AGREEMENT" : "no agreement");
  std::printf("  time    : completion %.2f, mean decision %.2f\n",
              r.completion_time, r.mean_decision_time);
  std::printf("  traffic : %llu msgs, %.0f bits/node (max %.0f,"
              " imbalance %.2f)\n",
              static_cast<unsigned long long>(r.total_messages),
              r.amortized_bits, r.sent_bits.max, r.sent_bits.imbalance());
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    if (r.msgs_by_kind[k] == 0) continue;
    std::printf("  %-8s: %llu msgs, %llu bits\n",
                sim::kind_name(static_cast<sim::MessageKind>(k)),
                static_cast<unsigned long long>(r.msgs_by_kind[k]),
                static_cast<unsigned long long>(r.bits_by_kind[k]));
  }
  if (r.fault_dropped_msgs > 0 || r.fault_delayed_msgs > 0) {
    std::printf("  faults  : %llu msgs dropped (",
                static_cast<unsigned long long>(r.fault_dropped_msgs));
    for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
      std::printf("%s%s %llu", c > 0 ? ", " : "",
                  sim::fault_cause_name(static_cast<sim::FaultCause>(c)),
                  static_cast<unsigned long long>(r.fault_drops_by_cause[c]));
    }
    std::printf("), %llu delayed\n",
                static_cast<unsigned long long>(r.fault_delayed_msgs));
  }
  if (r.recovery_retransmit_msgs > 0 || r.recovery_acked_msgs > 0) {
    std::printf("  recovery: %llu retransmits (%llu bits), %llu acked,"
                " %llu dead, %llu duplicates\n",
                static_cast<unsigned long long>(r.recovery_retransmit_msgs),
                static_cast<unsigned long long>(r.recovery_retransmit_bits),
                static_cast<unsigned long long>(r.recovery_acked_msgs),
                static_cast<unsigned long long>(r.recovery_dead_msgs),
                static_cast<unsigned long long>(r.recovery_dup_msgs));
  }
}

void print_aggregate(const std::string& label, const exp::Aggregate& a,
                     std::size_t threads) {
  std::printf("%s: %zu trials on %zu thread(s)\n", label.c_str(), a.trials,
              threads);
  std::printf("  agreement    : rate %.3f (%zu/%zu), %llu wrong decisions,"
              " %llu stalled nodes\n",
              a.agreement_rate(), a.agreements, a.trials,
              static_cast<unsigned long long>(a.wrong_decisions),
              static_cast<unsigned long long>(a.stalled_nodes));
  std::printf("  completion   : mean %.2f +- %.2f (95%% CI), p50 %.2f,"
              " p99 %.2f, max %.2f\n",
              a.completion_time.mean, a.completion_time.ci95,
              a.completion_time.p50, a.completion_time.p99,
              a.completion_time.max);
  if (a.decision_time.count > 0) {
    std::printf("  decision time: pooled per-node p50 %.2f, p99 %.2f over"
                " %zu decisions\n",
                a.decision_time.p50, a.decision_time.p99,
                a.decision_time.count);
  }
  std::printf("  traffic      : mean %.0f bits/node (p99 %.0f), mean %.0f"
              " msgs, imbalance %.2f\n",
              a.amortized_bits.mean, a.amortized_bits.p99,
              a.total_messages.mean, a.imbalance.mean);
  if (a.fault_dropped_msgs.mean > 0 || a.fault_delayed_msgs > 0) {
    std::printf("  faults       : mean %.1f msgs dropped/trial (churn %.1f,"
                " partition %.1f, loss %.1f), %.1f delayed\n",
                a.fault_dropped_msgs.mean,
                a.drops_by_cause[sim::fault_cause_index(
                    sim::FaultCause::kChurn)],
                a.drops_by_cause[sim::fault_cause_index(
                    sim::FaultCause::kPartition)],
                a.drops_by_cause[sim::fault_cause_index(
                    sim::FaultCause::kLoss)],
                a.fault_delayed_msgs);
  }
  if (a.recovery_retransmit_msgs.mean > 0 || a.recovery_acked_msgs > 0) {
    std::printf("  recovery     : mean %.1f retransmits/trial (%.0f bits),"
                " %.1f acked, %.1f dead, %.1f duplicates\n",
                a.recovery_retransmit_msgs.mean,
                a.recovery_retransmit_bits.mean, a.recovery_acked_msgs,
                a.recovery_dead_msgs, a.recovery_dup_msgs);
  }
  std::printf("  fingerprint  : %016llx\n",
              static_cast<unsigned long long>(a.fingerprint()));
}

/// --json=FILE: the run's aggregate as a one-point fba.report document
/// (exp/report.h) — the same schema the benches and fba_repro write.
void write_json_report(const Options& opt, const std::string& series,
                       const exp::GridPoint& point, const exp::Aggregate& agg,
                       const aer::AerConfig& base) {
  if (opt.json.empty()) return;
  exp::ReportMeta meta;
  meta.tool = "fba_sim";
  meta.figure = "sim-" + opt.protocol;
  meta.title = "fba_sim " + series;
  meta.base_seed = opt.seed;
  meta.trials = opt.trials;
  meta.x_axis = "index";
  meta.y_metric = "completion_time.mean";
  meta.y_label = "completion time";
  exp::Report report{std::move(meta)};
  report.add_point(series,
                   exp::ReportPoint{point, exp::point_provenance(base, point),
                                    agg});
  try {
    report.write_json(opt.json);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  std::fprintf(stderr, "wrote %s\n", opt.json.c_str());
}

/// The AerConfig base both BA report paths derive provenance from — one
/// place, so the recorded d/t/model cannot diverge between the single-run
/// and multi-trial branches.
aer::AerConfig ba_report_base(const Options& opt, aer::Model reduction_model) {
  aer::AerConfig base;
  base.n = opt.n;
  base.seed = opt.seed;
  base.corrupt_fraction = opt.corrupt;
  base.d_override = opt.d;
  base.model = reduction_model;
  return base;
}

/// The single-run (--trials=1) grid point for report labeling.
exp::GridPoint single_point(const Options& opt, aer::Model model) {
  exp::GridPoint p;
  p.n = opt.n;
  p.model = model;
  p.corrupt_fraction = opt.corrupt;
  p.strategy = opt.attack;
  p.fault = opt.fault;
  p.recovery = opt.recovery;
  return p;
}

int run_sim(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  TimingPrinter timing_printer{opt.timing};

  if (opt.protocol == "ae") {
    if (!opt.json.empty()) {
      std::fprintf(stderr,
                   "--json is not supported for the AE tournament (its report"
                   " shape differs); it applies to aer/ba/flood/sqrt/"
                   "snowball\n");
      return 2;
    }
    if (opt.fault != "none") {
      std::fprintf(stderr,
                   "--fault applies to the AER/baseline/BA-reduction engines;"
                   " the AE tournament keeps reliable channels\n");
      return 2;
    }
    if (opt.recovery != "off") {
      std::fprintf(stderr,
                   "--recovery applies to the AER/baseline/BA-reduction"
                   " engines; the AE tournament keeps reliable channels\n");
      return 2;
    }
    ae::AeConfig cfg;
    cfg.n = opt.n;
    cfg.seed = opt.seed;
    cfg.corrupt_fraction = opt.corrupt;
    const auto result =
        ae::run_ae(cfg, opt.attack == "equivocate" || opt.attack == "combo"
                            ? ae::ae_equivocate_strategy()
                            : ae::AeStrategyFactory{});
    const auto& r = result.report;
    std::printf("AE tournament: n=%zu t=%zu committees=%zu x %zu\n", r.n, r.t,
                r.root_size, r.committee_size);
    std::printf("  %u rounds, %.0f bits/node, knowledgeable %zu/%zu"
                " (precondition %s)\n",
                r.rounds, r.amortized_bits, r.knowledgeable_count,
                r.correct_count, r.precondition_met ? "met" : "NOT met");
    return r.precondition_met ? 0 : 1;
  }

  if (opt.protocol == "ba") {
    ba::BaConfig cfg;
    cfg.n = opt.n;
    cfg.seed = opt.seed;
    cfg.corrupt_fraction = opt.corrupt;
    cfg.reduction_model = parse_model(opt.model);
    cfg.d_override = opt.d;
    cfg.fault_plan = make_fault(opt.fault);
    cfg.recovery_plan = make_recovery(opt.recovery);
    ba::Reduction reduction = ba::Reduction::kAer;
    if (opt.reduction == "sqrt") reduction = ba::Reduction::kSqrtSample;
    if (opt.reduction == "flood") reduction = ba::Reduction::kFlood;
    make_attack(opt.attack);  // validate the name before any sweep runs
    if (opt.trials > 1) {
      const aer::AerConfig base = ba_report_base(opt, cfg.reduction_model);
      exp::Grid grid;
      grid.strategies = {opt.attack};
      grid.faults = {opt.fault};  // BaConfig carries the resolved plans;
      grid.recoveries = {opt.recovery};  // the axes are labels here.
      exp::Sweep sweep(base, grid, opt.trials);
      sweep.set_threads(opt.threads).set_procs(opt.procs);
      sweep.set_progress(sweep_progress());
      sweep.set_trial([&cfg, reduction](const aer::AerConfig& trial_cfg,
                                        const exp::GridPoint& point) {
        ba::BaConfig run = cfg;
        run.seed = trial_cfg.seed;
        return exp::outcome_of(ba::run_ba(run, reduction, {},
                                          exp::attack_factory(point.strategy)));
      });
      const std::vector<exp::PointResult> results = sweep.run();
      if (sweep.proc_stats().interrupted) {
        std::fprintf(stderr,
                     "fba_sim: interrupted — sweep incomplete, no result\n");
        return 130;
      }
      const exp::PointResult result = results.front();
      print_aggregate(std::string("BA/") + ba::reduction_name(reduction) +
                          " " + result.point.label(),
                      result.aggregate, opt.threads);
      write_json_report(opt, std::string("BA/") + ba::reduction_name(reduction),
                        result.point, result.aggregate, base);
      return result.aggregate.agreements == result.aggregate.trials ? 0 : 1;
    }
    const ba::BaReport r =
        ba::run_ba(cfg, reduction, {}, make_attack(opt.attack));
    std::printf("BA (%s reduction): total time %.1f, %.0f bits/node -> %s\n",
                ba::reduction_name(reduction), r.total_time, r.amortized_bits,
                r.agreement ? "AGREEMENT" : "no agreement");
    print_report("  reduction phase", r.reduction);
    if (!opt.json.empty()) {
      exp::TrialOutcome o = exp::outcome_of(r);
      o.seed = opt.seed;
      write_json_report(opt, std::string("BA/") + ba::reduction_name(reduction),
                        single_point(opt, cfg.reduction_model),
                        exp::aggregate_outcomes({o}),
                        ba_report_base(opt, cfg.reduction_model));
    }
    return r.agreement ? 0 : 1;
  }

  // AE->E protocols on a synthetic precondition world.
  aer::AerConfig cfg;
  cfg.n = opt.n;
  cfg.seed = opt.seed;
  cfg.model = parse_model(opt.model);
  cfg.corrupt_fraction = opt.corrupt;
  cfg.knowledgeable_fraction = opt.know;
  cfg.d_override = opt.d;
  cfg.answer_budget = opt.budget;
  cfg.adaptive_budget = opt.adaptive_budget;
  cfg.adaptive_from = opt.adaptive_from;
  cfg.fault_plan = make_fault(opt.fault);
  cfg.recovery_plan = make_recovery(opt.recovery);

  exp::Sweep::Trial trial;
  if (opt.protocol == "aer") {
    // Left null: Sweep's default trial is the arena-reusing AER runner.
  } else if (opt.protocol == "flood") {
    trial = exp::run_flood_trial;
  } else if (opt.protocol == "sqrt") {
    trial = exp::run_sqrtsample_trial;
  } else if (opt.protocol == "snowball") {
    trial = exp::run_snowball_trial;
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
    return 2;
  }
  make_attack(opt.attack);  // validate the name before running

  if (opt.trials > 1) {
    exp::Grid grid;
    grid.strategies = {opt.attack};
    grid.faults = {opt.fault};
    grid.recoveries = {opt.recovery};
    exp::Sweep sweep(cfg, grid, opt.trials);
    sweep.set_threads(opt.threads).set_procs(opt.procs);
    if (trial) sweep.set_trial(std::move(trial));
    sweep.set_progress(sweep_progress());
    const std::vector<exp::PointResult> results = sweep.run();
    if (sweep.proc_stats().interrupted) {
      std::fprintf(stderr,
                   "fba_sim: interrupted — sweep incomplete, no result\n");
      return 130;
    }
    const exp::PointResult result = results.front();
    print_aggregate(opt.protocol + " " + result.point.label(),
                    result.aggregate, opt.threads);
    write_json_report(opt, opt.protocol, result.point, result.aggregate, cfg);
    return result.aggregate.agreements == result.aggregate.trials ? 0 : 1;
  }

  aer::AerReport report;
  if (opt.protocol == "aer") {
    report = aer::run_aer(cfg, make_attack(opt.attack));
  } else if (opt.protocol == "flood") {
    report = baseline::run_flood(cfg, make_attack(opt.attack));
  } else if (opt.protocol == "sqrt") {
    report = baseline::run_sqrtsample(cfg, make_attack(opt.attack));
  } else if (opt.protocol == "snowball") {
    report = baseline::run_snowball(cfg, make_attack(opt.attack));
  }
  print_report(opt.protocol.c_str(), report);
  if (!opt.json.empty()) {
    exp::TrialOutcome o = exp::outcome_of(report);
    o.seed = opt.seed;
    write_json_report(opt, opt.protocol, single_point(opt, cfg.model),
                      exp::aggregate_outcomes({o}), cfg);
  }
  return report.agreement ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_sim(argc, argv);
  } catch (const fba::ConfigError& e) {
    // Covers mid-run failures too — e.g. the process pool giving up after
    // its retry budget (a clean partial-result error, not a crash).
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
