// Figure 2 walk-through: print one node's quorums and follow a verification
// pull hop by hop, using the sampler API directly — a smaller, example-sized
// sibling of bench/bench_fig2_trace.cpp aimed at explaining the protocol's
// message flow to a new reader.
//
//   $ ./pushpull_trace
#include <cstdio>

#include "fba.h"

int main() {
  using namespace fba;

  const std::size_t n = 32;
  sampler::SamplerParams params = sampler::SamplerParams::defaults(n, 2013);
  sampler::SamplerSuite suite(params);

  Rng rng(42);
  const BitString gstring = BitString::random(default_gstring_bits(n), rng);
  const auto skey = gstring.digest();
  const NodeId x = 5;

  std::printf("network of %zu nodes, quorum size d = %zu\n", n, params.d);
  std::printf("gstring = %s\n\n", gstring.to_string().c_str());

  // Push phase: who may push gstring to x, and where x's own pushes go.
  const auto push_quorum = suite.push.quorum(skey, x);
  std::printf("Push Quorum I(gstring, x=%u): nodes allowed to push it to x:\n  ",
              x);
  for (NodeId m : push_quorum.members) std::printf("%u ", m);
  std::printf("\n(x accepts gstring once more than %zu of these slots have"
              " pushed it)\n\n", push_quorum.size() / 2);

  std::printf("push targets of x (the nodes x' with x in I(gstring, x')):\n  ");
  for (NodeId target : suite.push.targets(skey, x)) std::printf("%u ", target);
  std::printf("\n(the permutation sampler gives both directions in O(d);"
              " every node\n fills exactly d quorum slots -> Lemma 1's"
              " no-overload clause)\n\n");

  // Pull phase: the Figure 2b cascade.
  const PollLabel r = suite.poll.random_label(rng);
  const auto poll_list = suite.poll.poll_list(x, r);
  const auto pull_quorum = suite.pull.quorum(skey, x);

  std::printf("pull request from x for gstring, label r=%llu:\n",
              static_cast<unsigned long long>(r));
  std::printf("  hop 1   Poll(s,r) -> J(x,r)    = ");
  for (NodeId w : poll_list.members) std::printf("%u ", w);
  std::printf("\n  hop 1   Pull(s,r) -> H(s,x)   = ");
  for (NodeId y : pull_quorum.members) std::printf("%u ", y);
  std::printf("\n");
  for (NodeId w : poll_list.members) {
    const auto h_w = suite.pull.quorum(skey, w);
    std::printf("  hop 2   Fw1 -> H(s,w=%-2u)      = ", w);
    for (NodeId z : h_w.members) std::printf("%u ", z);
    std::printf("\n  hop 3   Fw2: H(s,w=%u) -> w once a majority of H(s,x)"
                " vouched\n", w);
    break;  // one poll-list member suffices to show the shape
  }
  std::printf("  hop 4   Answer(s): w -> x (budget log^2 n = %zu per"
              " string)\n",
              static_cast<std::size_t>(node_id_bits(n)) *
                  static_cast<std::size_t>(node_id_bits(n)));
  std::printf("\nx decides once more than half of J(x,r) answered.\n");
  return 0;
}
