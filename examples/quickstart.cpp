// Quickstart: run the full Byzantine Agreement protocol (the paper's
// composition: almost-everywhere tournament + AER) on a simulated network
// and inspect the outcome.
//
//   $ ./quickstart [n]
//
// This is the ~40-line tour of the public API; see adversary_gauntlet.cpp
// and async_vs_sync.cpp for adversarial and timing-model variations.
#include <cstdio>
#include <cstdlib>

#include "fba.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;

  fba::ba::BaConfig config;
  config.n = n;
  config.seed = 1;
  config.corrupt_fraction = 0.05;  // non-adaptive Byzantine corruption
  config.reduction_model = fba::aer::Model::kSyncRushing;

  // Phase 1 (almost-everywhere agreement) + phase 2 (AER) in one call.
  const fba::ba::BaReport report = fba::ba::run_ba(config);

  std::printf("Byzantine Agreement on n=%zu nodes (t=%zu corrupt)\n", n,
              report.ae.t);
  std::printf("  AE tournament : %u rounds, %.0f bits/node, "
              "%zu/%zu nodes share gstring\n",
              report.ae.rounds, report.ae.amortized_bits,
              report.ae.knowledgeable_count, report.ae.correct_count);
  std::printf("  AER reduction : %.1f %s, %.0f bits/node\n",
              report.reduction.completion_time,
              config.reduction_model == fba::aer::Model::kAsync ? "time units"
                                                                : "rounds",
              report.reduction.amortized_bits);
  std::printf("  total         : %.1f time, %.0f bits/node, %llu messages\n",
              report.total_time, report.amortized_bits,
              static_cast<unsigned long long>(report.total_messages));
  std::printf("  agreement     : %s (%zu/%zu correct nodes decided the"
              " common string)\n",
              report.agreement ? "YES" : "NO",
              report.reduction.decided_gstring,
              report.reduction.correct_count);
  return report.agreement ? 0 : 1;
}
