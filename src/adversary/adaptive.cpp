#include "adversary/adaptive.h"

namespace fba::adv {

AdaptiveStrategy::AdaptiveStrategy(const aer::AerWorldView& view)
    : async_(view.shared->config.model == aer::Model::kAsync),
      from_(view.shared->config.adaptive_from),
      next_spend_at_(view.shared->config.adaptive_from) {}

void AdaptiveStrategy::on_round(AdvContext& ctx, Round round, bool rushing) {
  (void)rushing;
  if (async_) return;
  if (static_cast<double>(round) < from_) return;
  maybe_spend(ctx);
}

void AdaptiveStrategy::on_observe(AdvContext& ctx, const sim::Envelope& env) {
  observe(env);
  // The async engine has no rounds; spend off the tap instead, at most one
  // corruption per unit of sim time.
  if (!async_) return;
  if (ctx.now() < next_spend_at_) return;
  maybe_spend(ctx);
}

void AdaptiveStrategy::maybe_spend(AdvContext& ctx) {
  // Greedy spend: flip victims until the budget runs out or no still-correct
  // victim is picked. Scores were accumulated since the run began, so by the
  // first opportunity (adaptive_from) the heuristics have real signal; an
  // un-spent remainder (pick declined) is retried at the next opportunity.
  while (ctx.budget_left()) {
    const NodeId victim = pick_victim(ctx);
    if (victim >= ctx.n()) return;
    if (!ctx.corrupt_now(victim)) return;
    victims_.push_back(victim);
    next_spend_at_ = ctx.now() + 1.0;
  }
}

NodeId AdaptiveStrategy::best_correct(
    AdvContext& ctx, const std::vector<std::uint64_t>& scores) const {
  const auto n = static_cast<NodeId>(ctx.n());
  NodeId best = n;
  std::uint64_t best_score = 0;
  for (NodeId id = 0; id < n && id < scores.size(); ++id) {
    if (ctx.is_corrupt(id)) continue;
    if (best == n || scores[id] > best_score) {
      best = id;
      best_score = scores[id];
    }
  }
  return best;
}

// ----- degree ----------------------------------------------------------------

AdaptiveDegreeStrategy::AdaptiveDegreeStrategy(const aer::AerWorldView& view)
    : AdaptiveStrategy(view), sends_by_src_(view.initial.size(), 0) {}

void AdaptiveDegreeStrategy::observe(const sim::Envelope& env) {
  if (env.src < sends_by_src_.size()) ++sends_by_src_[env.src];
}

NodeId AdaptiveDegreeStrategy::pick_victim(AdvContext& ctx) {
  return best_correct(ctx, sends_by_src_);
}

// ----- quorum ----------------------------------------------------------------

AdaptiveQuorumStrategy::AdaptiveQuorumStrategy(const aer::AerWorldView& view)
    : AdaptiveStrategy(view), answers_in_(view.initial.size(), 0) {}

void AdaptiveQuorumStrategy::observe(const sim::Envelope& env) {
  if (env.msg.kind == sim::MessageKind::kAnswer &&
      env.dst < answers_in_.size()) {
    ++answers_in_[env.dst];
  }
}

NodeId AdaptiveQuorumStrategy::pick_victim(AdvContext& ctx) {
  return best_correct(ctx, answers_in_);
}

// ----- king ------------------------------------------------------------------

AdaptiveKingStrategy::AdaptiveKingStrategy(const aer::AerWorldView& view)
    : AdaptiveStrategy(view), routed_in_(view.initial.size(), 0) {}

void AdaptiveKingStrategy::observe(const sim::Envelope& env) {
  const sim::MessageKind k = env.msg.kind;
  if ((k == sim::MessageKind::kPoll || k == sim::MessageKind::kPull ||
       k == sim::MessageKind::kFw2) &&
      env.dst < routed_in_.size()) {
    ++routed_in_[env.dst];
  }
}

NodeId AdaptiveKingStrategy::pick_victim(AdvContext& ctx) {
  return best_correct(ctx, routed_in_);
}

// ----- random ----------------------------------------------------------------

AdaptiveRandomStrategy::AdaptiveRandomStrategy(const aer::AerWorldView& view)
    : AdaptiveStrategy(view) {}

NodeId AdaptiveRandomStrategy::pick_victim(AdvContext& ctx) {
  const auto n = static_cast<NodeId>(ctx.n());
  std::size_t correct = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (!ctx.is_corrupt(id)) ++correct;
  }
  if (correct == 0) return n;
  std::uint64_t k = ctx.adaptive_rng().below(correct);
  for (NodeId id = 0; id < n; ++id) {
    if (ctx.is_corrupt(id)) continue;
    if (k == 0) return id;
    --k;
  }
  return n;
}

}  // namespace fba::adv
