// Adaptive adversary strategies: spend a runtime corruption budget *during*
// the run (AdvContext::corrupt_now), probing the one assumption the paper's
// proofs never relax — that the corrupt set is fixed before execution
// (Section 2.1). Dufoulon–Pandurangan 2025 show adaptivity is exactly where
// such protocols' bounds move; this family measures how far.
//
// Spend cadence: the whole remaining budget is spent greedily at each
// opportunity — once per synchronous round (on_round) from round >=
// AerConfig::adaptive_from, or once per unit of sim time under the
// asynchronous engine (driven off the full-information tap, since async
// runs have no rounds). By the first opportunity the tap has already fed
// the scores, so the heuristics pick informed victims; this is the
// standard adaptive model (corrupt up to t' nodes at chosen moments), and
// it lets a budget beyond the paper's t < (1/3 - eps) n bound actually
// cross the resilience boundary before the run completes. The budget
// itself is enforced engine-side (EngineBase::set_corruption_budget, wired
// from AerConfig::adaptive_budget by the runners), so a strategy can never
// overspend.
//
// Victim choice is what varies:
//   - AdaptiveDegreeStrategy : the highest-degree sampler — the correct
//     node that traffic reveals as the busiest sender.
//   - AdaptiveQuorumStrategy : the node closest to quorum — the correct
//     node that has accumulated the most poll answers (about to decide).
//   - AdaptiveKingStrategy   : the emerging "king" — the correct node most
//     polled/pulled by others (the pull phase's de-facto coordinator).
//   - AdaptiveRandomStrategy : a uniform still-correct node (the ablation
//     baseline: adaptivity without information).
//
// All observation state is fed purely by the deterministic message stream,
// and random picks draw from the dedicated adaptive RNG substream
// (AdvContext::adaptive_rng), so sweep results stay bit-identical at any
// thread count — and static-strategy runs are untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.h"
#include "aer/protocol.h"

namespace fba::adv {

/// Shared machinery: cadence, budget discipline and the still-correct
/// argmax scan. Subclasses implement score-keeping + victim choice.
class AdaptiveStrategy : public Strategy {
 public:
  explicit AdaptiveStrategy(const aer::AerWorldView& view);

  void on_round(AdvContext& ctx, Round round, bool rushing) override;
  void on_observe(AdvContext& ctx, const sim::Envelope& env) override;

  /// Nodes this strategy has flipped so far (in order).
  const std::vector<NodeId>& victims() const { return victims_; }

 protected:
  /// Next victim among still-correct nodes; return ctx.n() to skip this
  /// spend opportunity.
  virtual NodeId pick_victim(AdvContext& ctx) = 0;
  /// Per-message score-keeping hook (the full-information tap).
  virtual void observe(const sim::Envelope& env) { (void)env; }

  /// Highest-scoring still-correct node, lowest id on ties; ctx.n() when
  /// `scores` is empty.
  NodeId best_correct(AdvContext& ctx,
                      const std::vector<std::uint64_t>& scores) const;

  void maybe_spend(AdvContext& ctx);

  bool async_;
  double from_;           ///< AerConfig::adaptive_from.
  double next_spend_at_;  ///< async cadence: one corruption per time unit.
  std::vector<NodeId> victims_;
};

/// Corrupt the busiest sender: per-source send counts over all observed
/// traffic.
class AdaptiveDegreeStrategy final : public AdaptiveStrategy {
 public:
  explicit AdaptiveDegreeStrategy(const aer::AerWorldView& view);

 protected:
  void observe(const sim::Envelope& env) override;
  NodeId pick_victim(AdvContext& ctx) override;

 private:
  std::vector<std::uint64_t> sends_by_src_;
};

/// Corrupt the node closest to quorum: per-destination kAnswer in-degree
/// (Algorithm 3 answers are what a requester tallies toward its decision
/// majority).
class AdaptiveQuorumStrategy final : public AdaptiveStrategy {
 public:
  explicit AdaptiveQuorumStrategy(const aer::AerWorldView& view);

 protected:
  void observe(const sim::Envelope& env) override;
  NodeId pick_victim(AdvContext& ctx) override;

 private:
  std::vector<std::uint64_t> answers_in_;
};

/// Corrupt the emerging coordinator: per-destination kPoll/kPull/kFw2
/// in-degree — the node the pull phase is routing through.
class AdaptiveKingStrategy final : public AdaptiveStrategy {
 public:
  explicit AdaptiveKingStrategy(const aer::AerWorldView& view);

 protected:
  void observe(const sim::Envelope& env) override;
  NodeId pick_victim(AdvContext& ctx) override;

 private:
  std::vector<std::uint64_t> routed_in_;
};

/// Corrupt a uniform still-correct node (information-free ablation).
class AdaptiveRandomStrategy final : public AdaptiveStrategy {
 public:
  explicit AdaptiveRandomStrategy(const aer::AerWorldView& view);

 protected:
  NodeId pick_victim(AdvContext& ctx) override;
};

}  // namespace fba::adv
