#include "adversary/adversary.h"

#include <cmath>

namespace fba::adv {

SimTime Strategy::choose_delay(AdvContext& ctx, const sim::Envelope& env) {
  (void)env;
  return ctx.rng().uniform_positive();
}

std::vector<NodeId> random_corruption(std::size_t n, std::size_t t, Rng& rng) {
  std::vector<NodeId> out;
  random_corruption_into(n, t, rng, out);
  return out;
}

void random_corruption_into(std::size_t n, std::size_t t, Rng& rng,
                            std::vector<NodeId>& out) {
  FBA_REQUIRE(t <= n, "cannot corrupt more nodes than exist");
  rng.sample_without_replacement_into(n, t, out);
}

std::size_t max_corrupt(std::size_t n, double eps) {
  const double bound = (1.0 / 3.0 - eps) * static_cast<double>(n);
  auto t = static_cast<std::size_t>(std::floor(bound));
  // The paper's bound is strict: t < (1/3 - eps) n. When the bound is
  // exactly integral, floor() lands ON it — step down one.
  if (t > 0 && static_cast<double>(t) == bound) --t;
  return t >= n ? n - 1 : t;
}

}  // namespace fba::adv
