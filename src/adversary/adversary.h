// The Byzantine adversary.
//
// Model (Section 2.1): non-adaptive (corrupt set fixed before execution),
// full information (observes all traffic, knows the public samplers and the
// whole network), coordinated (one Strategy speaks for every corrupt node).
// The harness can additionally grant a strategy a *runtime corruption
// budget* (AdvContext::corrupt_now / adversary/adaptive.h) — the adaptive
// adversary the paper's proofs exclude; the budget defaults to zero so the
// paper's model is the default.
// Corrupt nodes can deviate arbitrarily: the Strategy sends any message from
// any corrupt node to anyone; authenticated channels only guarantee it
// cannot forge a *correct* sender identity.
//
// Rushing vs non-rushing is a scheduling property enforced by the engines:
//   - rushing: the strategy's per-round action runs after correct nodes have
//     produced their round-r messages (which it has observed);
//   - non-rushing: it runs before, so its round-r messages are chosen
//     independently of correct round-r traffic.
// The asynchronous engine is inherently rushing (footnote 7 of the paper):
// the adversary picks every message's delay and thus sees sends before
// delivery.
#pragma once

#include <vector>

#include "net/envelope.h"
#include "net/network.h"
#include "support/random.h"
#include "support/types.h"

namespace fba::adv {

/// Strategy-facing view of the engine.
class AdvContext {
 public:
  explicit AdvContext(sim::EngineBase& engine) : engine_(engine) {}

  std::size_t n() const { return engine_.n(); }
  double now() const { return engine_.now(); }
  Rng& rng() { return engine_.strategy_rng(); }
  const std::vector<NodeId>& corrupt_nodes() const {
    return engine_.corrupt_nodes();
  }
  bool is_corrupt(NodeId id) const { return engine_.is_corrupt(id); }

  /// Dedicated substream for adaptive corruption choices — draws here never
  /// perturb rng()'s strategy/delay stream, so enabling adaptivity leaves
  /// static-strategy runs bit-identical.
  Rng& adaptive_rng() { return engine_.adaptive_rng(); }

  /// Runtime corruption budget granted to this run (0: the paper's
  /// non-adaptive model) and how much of it is already spent.
  std::size_t corruption_budget() const { return engine_.corruption_budget(); }
  std::size_t corruptions_spent() const { return engine_.corruptions_spent(); }
  bool budget_left() const {
    return engine_.corruptions_spent() < engine_.corruption_budget();
  }

  /// Adaptive corruption: flips `node` mid-run if it is still correct and
  /// budget remains; returns whether the corruption landed. Honored
  /// identically by both engines and both actor paths (the flipped node's
  /// actor is silenced everywhere from this instant on).
  bool corrupt_now(NodeId node) { return engine_.corrupt_now(node); }

  /// Send an arbitrary message from a corrupt node. Rejects correct senders:
  /// channels are authenticated. Forged traffic is charged through the same
  /// per-kind size table as correct traffic (EngineBase::send_from), so a
  /// strategy cannot under-charge a forgery that shadows a real kind.
  void send_from(NodeId corrupt_src, NodeId dst, const sim::Message& msg) {
    FBA_REQUIRE(engine_.is_corrupt(corrupt_src),
                "adversary can only send from corrupt nodes");
    engine_.send_from(corrupt_src, dst, msg);
  }

 private:
  sim::EngineBase& engine_;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// After corruption and actor setup, before any protocol activity.
  virtual void on_setup(AdvContext& ctx) { (void)ctx; }

  /// Synchronous engines: once per round. `rushing` tells the strategy
  /// whether correct round-`round` traffic has already been observed.
  virtual void on_round(AdvContext& ctx, Round round, bool rushing) {
    (void)ctx;
    (void)round;
    (void)rushing;
  }

  /// Full-information tap: called for every message the instant it is sent
  /// (by correct and corrupt nodes alike).
  virtual void on_observe(AdvContext& ctx, const sim::Envelope& env) {
    (void)ctx;
    (void)env;
  }

  /// A message addressed to a corrupt node arrived. The strategy may react
  /// by sending messages (asynchronous engine: immediately; synchronous:
  /// queued for the next round).
  virtual void on_deliver_to_corrupt(AdvContext& ctx,
                                     const sim::Envelope& env) {
    (void)ctx;
    (void)env;
  }

  /// Asynchronous engine: delay, in (0, 1], for a freshly sent message.
  /// Default: natural asynchrony (uniform). Attacks override to stretch
  /// specific edges to the 1.0 bound.
  virtual SimTime choose_delay(AdvContext& ctx, const sim::Envelope& env);
};

/// Picks `t` corrupt nodes uniformly at random (the default non-adaptive
/// corruption). Attack-specific corruption (e.g. seizing whole Input
/// Quorums) is done by the strategies in strategies.h.
std::vector<NodeId> random_corruption(std::size_t n, std::size_t t, Rng& rng);

/// In-place variant (identical picks; `out`'s capacity is reused).
void random_corruption_into(std::size_t n, std::size_t t, Rng& rng,
                            std::vector<NodeId>& out);

/// Largest t allowed by the paper's resilience bound t < (1/3 - eps) n.
std::size_t max_corrupt(std::size_t n, double eps = 0.02);

}  // namespace fba::adv
