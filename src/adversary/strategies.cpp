#include "adversary/strategies.h"

#include <algorithm>

#include "aer/messages.h"

namespace fba::adv {

namespace {

std::vector<NodeId> distinct(const sampler::Quorum& q) {
  std::vector<NodeId> out;
  for (NodeId m : q.members) {
    if (std::find(out.begin(), out.end(), m) == out.end()) out.push_back(m);
  }
  return out;
}

/// How many quorums I(s, .) the corrupt coalition wins for string s — the
/// adversary's yardstick when searching the string domain (Lemma 4 / 5).
/// Reads the dense sampler tables (the string is interned): slot keys are
/// derived once per string instead of once per (slot, x), and no quorum
/// vectors are allocated.
std::size_t quorums_won(const aer::AerShared& shared, StringId s,
                        const std::vector<bool>& is_corrupt) {
  std::size_t won = 0;
  const std::size_t n = shared.config.n;
  for (NodeId x = 0; x < n; ++x) {
    const sampler::QuorumView q = shared.push_quorum(s, x);
    std::size_t corrupt_slots = 0;
    for (std::uint32_t k = 0; k < q.d; ++k) {
      if (is_corrupt[q.slots[k]]) ++corrupt_slots;
    }
    if (corrupt_slots * 2 > q.size()) ++won;
  }
  return won;
}

std::vector<bool> corrupt_mask(const aer::AerWorldView& view) {
  std::vector<bool> mask(view.initial.size(), false);
  for (NodeId id : view.corrupt) mask[id] = true;
  return mask;
}

}  // namespace

// ----- JunkPushStrategy ------------------------------------------------------

JunkPushStrategy::JunkPushStrategy(const aer::AerWorldView& view,
                                   std::size_t num_strings,
                                   std::size_t search_trials)
    : shared_(view.shared) {
  FBA_REQUIRE(num_strings >= 1, "need at least one junk string");
  const std::size_t bits = shared_->table.get(view.gstring).size();
  Rng rng = Rng(shared_->config.seed).split(0xbadull);
  const std::vector<bool> is_corrupt = corrupt_mask(view);

  if (search_trials == 0) {
    for (std::size_t i = 0; i < num_strings; ++i) {
      junk_.push_back(shared_->table.intern(BitString::random(bits, rng)));
    }
    return;
  }
  // Full-information search: sample candidate strings, keep those whose Push
  // Quorums the coalition wins most often.
  std::vector<std::pair<std::size_t, StringId>> scored;
  for (std::size_t trial = 0; trial < search_trials; ++trial) {
    const StringId id = shared_->table.intern(BitString::random(bits, rng));
    const std::size_t won = quorums_won(*shared_, id, is_corrupt);
    scored.emplace_back(won, id);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < num_strings && i < scored.size(); ++i) {
    junk_.push_back(scored[i].second);
  }
}

void JunkPushStrategy::on_setup(AdvContext& ctx) {
  // Push through the legitimate channels: receivers only credit quorum
  // members, so targets(s, y) is the only send that can possibly count.
  std::vector<NodeId> targets;
  for (StringId s : junk_) {
    const sim::Message msg = aer::push_msg(s);
    for (NodeId y : ctx.corrupt_nodes()) {
      shared_->push_targets(s, y, targets);
      for (NodeId target : targets) {
        ctx.send_from(y, target, msg);
      }
    }
  }
}

// ----- PushFloodStrategy -----------------------------------------------------

PushFloodStrategy::PushFloodStrategy(const aer::AerWorldView& view,
                                     std::size_t pushes_per_node)
    : shared_(view.shared), pushes_per_node_(pushes_per_node) {}

void PushFloodStrategy::on_setup(AdvContext& ctx) {
  const std::size_t bits = shared_->table.get(shared_->gstring).size();
  for (NodeId y : ctx.corrupt_nodes()) {
    for (std::size_t i = 0; i < pushes_per_node_; ++i) {
      const StringId junk =
          shared_->table.intern(BitString::random(bits, ctx.rng()));
      ctx.send_from(y, ctx.rng().node(ctx.n()), aer::push_msg(junk));
    }
  }
}

// ----- PollStuffStrategy -----------------------------------------------------

PollStuffStrategy::PollStuffStrategy(const aer::AerWorldView& view,
                                     std::size_t budget_estimate,
                                     std::size_t label_search_budget,
                                     bool eager)
    : view_(view),
      shared_(view.shared),
      burned_(view.initial.size(), 0),
      budget_estimate_(budget_estimate > 0
                           ? budget_estimate
                           : view.shared->config.resolved_answer_budget()),
      label_search_budget_(label_search_budget),
      eager_(eager) {}

std::size_t PollStuffStrategy::victims_saturated() const {
  std::size_t count = 0;
  for (std::size_t units : burned_) count += units >= budget_estimate_;
  return count;
}

void PollStuffStrategy::on_setup(AdvContext& ctx) {
  if (!eager_) return;
  // Strike first: setup-time sends precede all honest round-0 traffic, so
  // victims burn budget on the adversary before serving anyone honest.
  launch_all(ctx);
}

void PollStuffStrategy::on_observe(AdvContext& ctx, const sim::Envelope& env) {
  // Observation-triggered mode: the first honest Poll reveals the pull
  // phase has begun; the coalition strikes (one round late under a
  // non-rushing schedule, immediately under rushing/async).
  if (launched_ || eager_) return;
  if (ctx.is_corrupt(env.src)) return;
  if (env.msg.kind != sim::MessageKind::kPoll) return;
  launch_all(ctx);
}

void PollStuffStrategy::on_round(AdvContext& ctx, Round round, bool rushing) {
  (void)round;
  (void)rushing;
  if (!launched_ && !eager_) launch_all(ctx);
}

void PollStuffStrategy::launch_all(AdvContext& ctx) {
  // launched_ makes this single-shot; every corrupt node strikes exactly
  // once (Lemma 6's "at most once per node it controls").
  launched_ = true;
  for (NodeId attacker : ctx.corrupt_nodes()) {
    strike(ctx, attacker);
  }
}

void PollStuffStrategy::strike(AdvContext& ctx, NodeId attacker) {
  // One properly routed pull per attacker (forwarders dedupe per (x, s)).
  // Full-information search: pick the label whose poll list covers the most
  // not-yet-saturated victims. Candidate lists are scored straight off the
  // keyed hash (PollSampler::member, same slot order as poll_list) — no
  // quorum materialization per candidate label, which at large n used to
  // cost t * label_search_budget vector pairs per trial.
  const sampler::PollSampler& poll_sampler = shared_->samplers.poll;
  const std::size_t d = poll_sampler.d();
  PollLabel best_r = 0;
  long best_score = -1;
  for (std::size_t trial = 0; trial < label_search_budget_; ++trial) {
    const PollLabel r = poll_sampler.random_label(ctx.rng());
    long score = 0;
    for (std::size_t k = 0; k < d; ++k) {
      const NodeId member = poll_sampler.member(attacker, r, k);
      if (!ctx.is_corrupt(member) && burned_[member] < budget_estimate_) {
        ++score;
      }
    }
    if (score > best_score) {
      best_score = score;
      best_r = r;
    }
  }
  if (best_score <= 0) return;
  ++strikes_launched_;

  // Re-evaluate the winning list into the reused scratch, first-seen
  // distinct order (exactly what dedup over Quorum::members yields).
  poll_scratch_.clear();
  for (std::size_t k = 0; k < d; ++k) {
    const NodeId member = poll_sampler.member(attacker, best_r, k);
    if (std::find(poll_scratch_.begin(), poll_scratch_.end(), member) ==
        poll_scratch_.end()) {
      poll_scratch_.push_back(member);
    }
  }
  const sim::Message poll = aer::poll_msg(shared_->gstring, best_r);
  for (NodeId member : poll_scratch_) {
    if (ctx.is_corrupt(member)) continue;
    ++burned_[member];
    // The member needs (attacker, gstring) in Polled to answer (and pay).
    ctx.send_from(attacker, member, poll);
  }
  const sim::Message pull = aer::pull_msg(shared_->gstring, best_r);
  const sampler::QuorumView h =
      shared_->pull_quorum(shared_->gstring, attacker);
  for (std::uint32_t i = 0; i < h.distinct_count; ++i) {
    ctx.send_from(attacker, h.distinct[i], pull);
  }
}

// ----- WrongAnswerStrategy ---------------------------------------------------

WrongAnswerStrategy::WrongAnswerStrategy(const aer::AerWorldView& view,
                                         std::size_t search_trials)
    : pusher_(view, 1, search_trials), gstring_(view.gstring) {
  junk_ = pusher_.junk_strings();
}

void WrongAnswerStrategy::on_setup(AdvContext& ctx) { pusher_.on_setup(ctx); }

void WrongAnswerStrategy::on_deliver_to_corrupt(AdvContext& ctx,
                                                const sim::Envelope& env) {
  // A corrupt poll-list member answers any poll for a non-gstring candidate,
  // trying to assemble a wrong majority at the requester.
  const auto* poll = env.msg.as(sim::MessageKind::kPoll);
  if (poll == nullptr || poll->s == gstring_) return;
  ctx.send_from(env.dst, env.src, aer::answer_msg(poll->s));
}

// ----- TargetedDelayStrategy -------------------------------------------------

TargetedDelayStrategy::TargetedDelayStrategy(const aer::AerWorldView& view)
    : TargetedDelayStrategy(view, Options()) {}

TargetedDelayStrategy::TargetedDelayStrategy(const aer::AerWorldView& view,
                                             Options options)
    : corrupt_(view.initial.size(), false), options_(options) {
  for (NodeId id : view.corrupt) corrupt_[id] = true;
}

SimTime TargetedDelayStrategy::choose_delay(AdvContext& ctx,
                                            const sim::Envelope& env) {
  (void)ctx;
  if (corrupt_[env.src]) return options_.fast_delay;
  if (options_.slow_everything_honest) return options_.slow_delay;
  const sim::MessageKind kind = env.msg.kind;
  const bool decisive =
      (options_.slow_answers && kind == sim::MessageKind::kAnswer) ||
      (options_.slow_forwards && (kind == sim::MessageKind::kFw1 ||
                                  kind == sim::MessageKind::kFw2));
  return decisive ? options_.slow_delay : options_.fast_delay;
}

// ----- ComboStrategy ---------------------------------------------------------

ComboStrategy& ComboStrategy::add(std::unique_ptr<Strategy> child) {
  children_.push_back(std::move(child));
  return *this;
}

ComboStrategy& ComboStrategy::set_delay_policy(
    std::unique_ptr<Strategy> policy) {
  delay_policy_ = std::move(policy);
  return *this;
}

void ComboStrategy::on_setup(AdvContext& ctx) {
  for (auto& child : children_) child->on_setup(ctx);
}

void ComboStrategy::on_round(AdvContext& ctx, Round round, bool rushing) {
  for (auto& child : children_) child->on_round(ctx, round, rushing);
}

void ComboStrategy::on_observe(AdvContext& ctx, const sim::Envelope& env) {
  for (auto& child : children_) child->on_observe(ctx, env);
}

void ComboStrategy::on_deliver_to_corrupt(AdvContext& ctx,
                                          const sim::Envelope& env) {
  for (auto& child : children_) child->on_deliver_to_corrupt(ctx, env);
}

SimTime ComboStrategy::choose_delay(AdvContext& ctx,
                                    const sim::Envelope& env) {
  if (delay_policy_) return delay_policy_->choose_delay(ctx, env);
  return Strategy::choose_delay(ctx, env);
}

// ----- LoadSkewStrategy --------------------------------------------------------

LoadSkewStrategy::LoadSkewStrategy(const aer::AerWorldView& view,
                                   NodeId victim,
                                   std::size_t string_search_budget)
    : shared_(view.shared), victim_(victim) {
  const std::vector<bool> is_corrupt = corrupt_mask(view);
  const std::size_t bits = shared_->table.get(view.gstring).size();
  Rng rng = Rng(shared_->config.seed).split(0x10adull);
  // Full-information string search: keep every string whose Push Quorum at
  // the victim has a corrupt slot majority. At t/n near 1/3 a constant
  // fraction of strings qualifies — the reason AER cannot be load-balanced
  // in the worst case.
  for (std::size_t trial = 0; trial < string_search_budget; ++trial) {
    const BitString candidate = BitString::random(bits, rng);
    const auto quorum =
        shared_->samplers.push.quorum(candidate.digest(), victim_);
    std::size_t corrupt_slots = 0;
    for (NodeId member : quorum.members) {
      corrupt_slots += is_corrupt[member] ? 1 : 0;
    }
    if (corrupt_slots * 2 > quorum.size()) {
      planted_.push_back(shared_->table.intern(candidate));
    }
  }
}

void LoadSkewStrategy::on_setup(AdvContext& ctx) {
  for (StringId s : planted_) {
    const auto skey = shared_->key_of(s);
    const sim::Message msg = aer::push_msg(s);
    // Push from exactly the corrupt members of I(s, victim): the receiver's
    // membership filter admits them, and their slot majority forces s into
    // the victim's candidate list.
    for (NodeId member :
         distinct(shared_->samplers.push.quorum(skey, victim_))) {
      if (ctx.is_corrupt(member)) {
        ctx.send_from(member, victim_, msg);
      }
    }
  }
}

// ----- corner_gstring_picker -------------------------------------------------

aer::CorruptPicker corner_gstring_picker(std::size_t victims) {
  return [victims](std::size_t n, std::size_t t, Rng& rng,
                   aer::AerShared& shared) {
    std::vector<NodeId> corrupt;
    std::vector<bool> taken(n, false);
    const auto skey = shared.key_of(shared.gstring);
    // Seize whole Push Quorums I(gstring, x) for the first `victims` nodes,
    // until the corruption budget runs out.
    for (NodeId x = 0; x < victims && x < n; ++x) {
      for (NodeId member : shared.samplers.push.quorum(skey, x).members) {
        if (corrupt.size() >= t) break;
        if (!taken[member]) {
          taken[member] = true;
          corrupt.push_back(member);
        }
      }
      if (corrupt.size() >= t) break;
    }
    // Spend the rest uniformly.
    while (corrupt.size() < t) {
      const NodeId id = rng.node(n);
      if (!taken[id]) {
        taken[id] = true;
        corrupt.push_back(id);
      }
    }
    return corrupt;
  };
}

}  // namespace fba::adv
