// Adversary strategy gallery for AER.
//
// Each strategy realizes one of the attacks the paper's analysis defends
// against:
//   - JunkPushStrategy      (Lemma 4): coordinated junk-string diffusion,
//     optionally searching the string domain for quorums it can win.
//   - PushFloodStrategy     (Section 3.1.1): blind flooding — nodes never
//     react to pushes, so this should cost the adversary only its own bits.
//   - PollStuffStrategy     (Lemma 6): the overload-chain attack — burn
//     poll-list members' log^2(n) answer budgets with pull requests for
//     gstring, targeting the nodes that honest requesters polled.
//   - WrongAnswerStrategy   (Lemma 7): corrupt poll-list members vouch for a
//     junk string, trying to push a wrong decision over the majority line.
//   - TargetedDelayStrategy (async): stretch the delivery of decisive
//     messages (answers, forwards) to the reliability bound while keeping
//     adversary traffic fast.
//   - SilentStrategy: crash faults (the "no Byzantine fault" baseline — AER
//     guarantees success in this regime).
//   - ComboStrategy: composition of the above.
//
// Strategies capture the full-information world view (public samplers,
// everyone's initial candidate, gstring) — exactly what the paper's
// adversary knows.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "aer/protocol.h"

namespace fba::adv {

/// Crash faults: corrupt nodes never send anything.
class SilentStrategy final : public Strategy {};

/// Lemma 4 attack: all corrupt nodes coordinate on `num_strings` junk
/// strings and push them through the proper Push Quorum channels (receivers
/// only count quorum members, so this is the strongest legal injection).
/// With `search_trials` > 0 the adversary samples that many candidate junk
/// strings and keeps the ones winning the most quorums.
class JunkPushStrategy : public Strategy {
 public:
  JunkPushStrategy(const aer::AerWorldView& view, std::size_t num_strings = 1,
                   std::size_t search_trials = 0);

  void on_setup(AdvContext& ctx) override;

  const std::vector<StringId>& junk_strings() const { return junk_; }

 protected:
  aer::AerShared* shared_;
  std::vector<StringId> junk_;
};

/// Blind flooding: every corrupt node sprays `pushes_per_node` pushes of
/// random fresh strings at random targets. Receivers discard them at the
/// quorum-membership filter; candidate lists must not grow.
class PushFloodStrategy final : public Strategy {
 public:
  PushFloodStrategy(const aer::AerWorldView& view,
                    std::size_t pushes_per_node = 32);

  void on_setup(AdvContext& ctx) override;

 private:
  aer::AerShared* shared_;
  std::size_t pushes_per_node_;
};

/// Lemma 6 overload attack. Each corrupt node issues one properly routed
/// pull request for gstring (quorum forwarding dedupes per (requester,
/// string), so one is all an attacker gets) and polls every member of its
/// poll list: each polled member eventually answers the attacker, burning
/// one unit of its per-string answer budget. The label is chosen by a
/// full-information search over R to cover the most not-yet-saturated
/// victims. Total burn capacity is t * d budget units — overload requires
/// t ~ log^2 n corrupt nodes, exactly the paper's margin ("the adversary
/// can send pull requests at most once for each node it controls").
class PollStuffStrategy final : public Strategy {
 public:
  /// `budget_estimate` is the responder budget the adversary assumes when
  /// deciding that a victim is saturated (it knows the protocol constants);
  /// 0 means the configured answer budget. With `eager`, strikes happen at
  /// setup so they precede all honest traffic; otherwise they are
  /// observation-triggered (a strictly weaker, non-rushing-friendly mode).
  PollStuffStrategy(const aer::AerWorldView& view,
                    std::size_t budget_estimate = 0,
                    std::size_t label_search_budget = 512, bool eager = true);

  void on_setup(AdvContext& ctx) override;
  void on_observe(AdvContext& ctx, const sim::Envelope& env) override;
  void on_round(AdvContext& ctx, Round round, bool rushing) override;

  /// Victims whose budget the coalition saturated.
  std::size_t victims_saturated() const;
  std::size_t strikes_launched() const { return strikes_launched_; }

 private:
  void strike(AdvContext& ctx, NodeId attacker);
  void launch_all(AdvContext& ctx);

  aer::AerWorldView view_;
  aer::AerShared* shared_;
  std::vector<std::size_t> burned_;  ///< budget units burned per node.
  std::vector<NodeId> poll_scratch_;  ///< reused distinct-member list.
  std::size_t budget_estimate_;
  std::size_t label_search_budget_;
  std::size_t strikes_launched_ = 0;
  bool eager_;
  bool launched_ = false;
};

/// Lemma 7 safety attack: push a junk string s* into candidate lists, then
/// have every corrupt node answer any poll for s* affirmatively, hoping some
/// requester draws a poll list with a corrupt majority.
class WrongAnswerStrategy final : public Strategy {
 public:
  explicit WrongAnswerStrategy(const aer::AerWorldView& view,
                               std::size_t search_trials = 8);

  void on_setup(AdvContext& ctx) override;
  void on_deliver_to_corrupt(AdvContext& ctx,
                             const sim::Envelope& env) override;

  StringId junk() const { return junk_.empty() ? kNoString : junk_.front(); }

 private:
  JunkPushStrategy pusher_;
  std::vector<StringId> junk_;
  StringId gstring_;
};

/// Async-only: deliver adversary-helpful traffic fast and drag decisive
/// honest messages (answers and second-hop forwards by default) to the
/// 1.0 reliability bound.
class TargetedDelayStrategy final : public Strategy {
 public:
  struct Options {
    double slow_delay = 1.0;
    double fast_delay = 0.05;
    bool slow_answers = true;
    bool slow_forwards = true;
    bool slow_everything_honest = false;
  };

  explicit TargetedDelayStrategy(const aer::AerWorldView& view);
  TargetedDelayStrategy(const aer::AerWorldView& view, Options options);

  SimTime choose_delay(AdvContext& ctx, const sim::Envelope& env) override;

 private:
  std::vector<bool> corrupt_;
  Options options_;
};

/// Fans every callback out to children; message delays are delegated to an
/// optional dedicated delay policy.
class ComboStrategy final : public Strategy {
 public:
  ComboStrategy& add(std::unique_ptr<Strategy> child);
  ComboStrategy& set_delay_policy(std::unique_ptr<Strategy> policy);

  void on_setup(AdvContext& ctx) override;
  void on_round(AdvContext& ctx, Round round, bool rushing) override;
  void on_observe(AdvContext& ctx, const sim::Envelope& env) override;
  void on_deliver_to_corrupt(AdvContext& ctx,
                             const sim::Envelope& env) override;
  SimTime choose_delay(AdvContext& ctx, const sim::Envelope& env) override;

 private:
  std::vector<std::unique_ptr<Strategy>> children_;
  std::unique_ptr<Strategy> delay_policy_;
};

/// The load-skew attack behind Figure 1(a)'s "Load-Balanced: No" column for
/// AER ("a Byzantine adversary can seize control of several Input Quorums,
/// associated to a few nodes, and force these nodes to verify an
/// almost-linear number of strings"). With a large coalition, a constant
/// fraction of random strings s has a corrupt majority in I(s, victim); the
/// coalition searches for such strings and pushes them through the proper
/// quorum channels, blowing up the victim's candidate list — every accepted
/// candidate costs the victim its own Algorithm 1 verification traffic.
class LoadSkewStrategy final : public Strategy {
 public:
  LoadSkewStrategy(const aer::AerWorldView& view, NodeId victim,
                   std::size_t string_search_budget = 512);

  void on_setup(AdvContext& ctx) override;

  std::size_t strings_planted() const { return planted_.size(); }
  NodeId victim() const { return victim_; }

 private:
  aer::AerShared* shared_;
  NodeId victim_;
  std::vector<StringId> planted_;
};

/// Corrupt picker that seizes Push Quorum I(gstring, x) slots for the first
/// `victims` nodes (an informed worst case: the real adversary cannot know
/// gstring at corruption time — Lemma 5's point — so this upper-bounds the
/// damage). Remaining budget is spent uniformly.
aer::CorruptPicker corner_gstring_picker(std::size_t victims);

}  // namespace fba::adv
