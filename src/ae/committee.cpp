#include "ae/committee.h"

#include <algorithm>
#include <cmath>

namespace fba::ae {

std::size_t AeConfig::resolved_t() const {
  if (explicit_t >= 0) return static_cast<std::size_t>(explicit_t);
  return static_cast<std::size_t>(
      std::floor(corrupt_fraction * static_cast<double>(n)));
}

std::size_t AeConfig::resolved_root_size() const {
  if (root_size > 0) return root_size;
  const double log2n = std::log2(static_cast<double>(n));
  return std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(2.0 * log2n)), 12, 32);
}

std::size_t AeConfig::resolved_committee_size() const {
  if (committee_size > 0) return committee_size;
  const double log2n = std::log2(static_cast<double>(n));
  // Phase king tolerates < g/4 corrupt members; the committee must be large
  // enough that the binomial tail P[Bin(g, t/n) >= g/4] is negligible.
  const auto g = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(4.0 * log2n)), 24, 48);
  return std::min(g, n);
}

std::size_t AeConfig::slice_bits() const {
  const std::size_t target =
      gstring_c * static_cast<std::size_t>(node_id_bits(n));
  const std::size_t r = resolved_root_size();
  const std::size_t bits = (target + r - 1) / r;
  FBA_REQUIRE(bits <= 64, "slice must fit a 64-bit word");
  return std::max<std::size_t>(1, bits);
}

std::size_t AeConfig::gstring_bits() const {
  return resolved_root_size() * slice_bits();
}

AeLayout AeLayout::build(const AeConfig& config) {
  const std::size_t n = config.n;
  const std::size_t r = config.resolved_root_size();
  const std::size_t g = config.resolved_committee_size();
  FBA_REQUIRE(r <= n, "root committee larger than the network");
  FBA_REQUIRE(g <= n, "echo committee larger than the network");

  AeLayout layout;
  Rng rng = Rng(config.seed).split(0xaeull);
  auto root = rng.sample_without_replacement(n, r);
  layout.root.assign(root.begin(), root.end());
  layout.committees.reserve(r);
  for (std::size_t i = 0; i < r; ++i) {
    auto members = rng.sample_without_replacement(n, g);
    layout.committees.emplace_back(members.begin(), members.end());
  }
  return layout;
}

long AeLayout::member_index(std::size_t slice, NodeId node) const {
  const auto& members = committees.at(slice);
  const auto it = std::find(members.begin(), members.end(), node);
  return it == members.end() ? -1 : static_cast<long>(it - members.begin());
}

AeSchedule AeSchedule::from(const AeConfig& config) {
  AeSchedule s;
  s.committee = config.resolved_committee_size();
  const std::size_t tolerance = (s.committee - 1) / 4;
  s.phases = tolerance + 1;
  return s;
}

long AeSchedule::exchange_phase_at(Round round) const {
  if (round < 2 || (round - 2) % 2 != 0) return -1;
  const auto p = static_cast<std::size_t>((round - 2) / 2);
  return p < phases ? static_cast<long>(p) : -1;
}

long AeSchedule::king_phase_at(Round round) const {
  if (round < 3 || (round - 3) % 2 != 0) return -1;
  const auto p = static_cast<std::size_t>((round - 3) / 2);
  return p < phases ? static_cast<long>(p) : -1;
}

}  // namespace fba::ae
