// Almost-everywhere agreement substrate: configuration, committee layout and
// the phase-king round schedule.
//
// The paper uses the protocol of [KSSV06] as a black box whose contract is
// the AER precondition: more than half of the nodes end up correct *and*
// holding a common string gstring whose bits are 2/3 + eps uniformly random.
// We implement a faithful-shape committee tournament (the substitution is
// recorded in DESIGN.md §3):
//
//   1. Public setup samples a root committee R of r nodes and, for each root
//      member i, an echo committee E_i of g nodes.
//   2. Root member i draws a random slice of gstring's bits and sends it to
//      E_i (round 0).
//   3. E_i agrees on the slice with the classic Phase-King Byzantine
//      agreement of Berman-Garay-Perry (n > 4t, two rounds per phase,
//      t+1 phases) — corrupt root members can pick their slice but cannot
//      keep E_i split. This is the reason only a 2/3 + eps fraction of
//      gstring's bits is random: corrupt root members control their own
//      slices.
//   4. Every E_i member broadcasts the agreed slice to all n nodes; each
//      node takes, per slice, the value announced by more than half of E_i
//      (zero otherwise) and concatenates the slices into its gstring.
//
// Per-node communication is poly-logarithmic; committees whose corrupt
// membership exceeds the phase-king tolerance floor((g-1)/4) may fail,
// which is precisely the "almost everywhere" part — the harness reports the
// achieved knowledgeable fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "support/intern.h"
#include "support/random.h"
#include "support/types.h"

namespace fba::ae {

struct AeConfig {
  std::size_t n = 0;
  std::uint64_t seed = 1;

  double corrupt_fraction = 0.05;
  long explicit_t = -1;

  /// Root committee size r (= number of gstring slices). 0 -> auto.
  std::size_t root_size = 0;
  /// Echo committee size g. 0 -> auto. Phase-king tolerates < g/4 corrupt
  /// members per committee.
  std::size_t committee_size = 0;
  /// Target gstring length: gstring_c * log2(n) bits (rounded up to a whole
  /// number of slices).
  std::size_t gstring_c = 4;

  Round max_rounds = 400;

  std::size_t resolved_t() const;
  std::size_t resolved_root_size() const;
  std::size_t resolved_committee_size() const;
  std::size_t slice_bits() const;
  std::size_t gstring_bits() const;  ///< root_size * slice_bits
};

/// Public-setup committee assignment.
struct AeLayout {
  std::vector<NodeId> root;                     ///< r root members.
  std::vector<std::vector<NodeId>> committees;  ///< E_i, each of g members.

  static AeLayout build(const AeConfig& config);

  /// Index of `node` within committee i, or -1.
  long member_index(std::size_t slice, NodeId node) const;
  bool in_committee(std::size_t slice, NodeId node) const {
    return member_index(slice, node) >= 0;
  }
};

/// Round schedule. Messages sent in round x are delivered during round x+1,
/// so each phase-king phase occupies two rounds:
///   round 0              root member i sends its slice to E_i
///   round 1 + 2p         members broadcast their value (exchange, phase p)
///   round 2 + 2p         king of phase p broadcasts its majority
///   round 1 + 2(p+1)     members adopt, next exchange begins
///   round 1 + 2P         members broadcast the agreed slice to everyone
///   round 2 + 2P         all nodes assemble gstring and finish
struct AeSchedule {
  std::size_t phases = 0;     ///< P = t_c + 1, t_c = floor((g-1)/4)
  std::size_t committee = 0;  ///< g

  static AeSchedule from(const AeConfig& config);

  Round exchange_round(std::size_t phase) const {
    return static_cast<Round>(1 + 2 * phase);
  }
  Round king_round(std::size_t phase) const {
    return static_cast<Round>(2 + 2 * phase);
  }
  Round final_broadcast_round() const {
    return static_cast<Round>(1 + 2 * phases);
  }
  Round assemble_round() const { return static_cast<Round>(2 + 2 * phases); }

  /// Phase whose exchange messages are delivered during `round`, or -1.
  long exchange_phase_at(Round round) const;
  /// Phase whose king messages are delivered during `round`, or -1.
  long king_phase_at(Round round) const;
  /// King of phase p within a committee member list.
  NodeId king(const std::vector<NodeId>& members, std::size_t phase) const {
    return members.at(phase % members.size());
  }
};

/// Shared state / wire format for the AE phase. The wire charges the
/// slice-index, phase-index and slice-value fields the tournament's
/// messages carry (see the kind table in net/message.cpp).
class AeShared {
 public:
  AeShared(const AeConfig& config)
      : config(config),
        layout(AeLayout::build(config)),
        schedule(AeSchedule::from(config)) {
    wire_.node_id_bits = fba::node_id_bits(config.n);
    wire_.slice_bits = ceil_log2(config.resolved_root_size());
    wire_.phase_bits = ceil_log2(schedule.phases + 1);
    wire_.value_bits = config.slice_bits();
    wire_.table = &table;
  }

  // wire_ points at this object's string table; copying/moving would leave
  // it dangling.
  AeShared(const AeShared&) = delete;
  AeShared& operator=(const AeShared&) = delete;

  const sim::Wire& wire() const { return wire_; }

  std::size_t slice_index_bits() const { return wire_.slice_bits; }
  std::size_t phase_bits() const { return wire_.phase_bits; }

  AeConfig config;
  AeLayout layout;
  AeSchedule schedule;
  StringTable table;  ///< assembled gstrings, interned at the final round.

 private:
  sim::Wire wire_;
};

}  // namespace fba::ae
