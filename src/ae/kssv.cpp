#include "ae/kssv.h"

#include <algorithm>

#include "net/sync_engine.h"

namespace fba::ae {

namespace {

std::uint64_t slice_mask(std::size_t slice_bits) {
  return slice_bits >= 64 ? ~0ull : ((1ull << slice_bits) - 1);
}

}  // namespace

// ----- AeNode ----------------------------------------------------------------

AeNode::AeNode(AeShared* shared, NodeId self) : shared_(shared), self_(self) {
  const AeLayout& layout = shared_->layout;
  for (std::size_t i = 0; i < layout.root.size(); ++i) {
    if (layout.root[i] == self_) root_slice_ = i;
  }
  for (std::size_t i = 0; i < layout.committees.size(); ++i) {
    if (layout.in_committee(i, self_)) {
      EchoRole role;
      role.slice = i;
      echo_.emplace(i, std::move(role));
    }
  }
  final_votes_.resize(layout.committees.size());
}

void AeNode::broadcast_to_committee(sim::Context& ctx, std::size_t slice,
                                    const sim::Message& msg) {
  for (NodeId member : shared_->layout.committees[slice]) {
    ctx.send(member, msg);
  }
}

void AeNode::on_start(sim::Context& ctx) {
  if (!root_slice_.has_value()) return;
  // Root member: draw the slice from the private RNG. This is where
  // gstring's random bits come from; corrupt root members (driven by the
  // strategy instead) may pick theirs arbitrarily.
  const std::uint64_t value =
      ctx.rng().next() & slice_mask(shared_->config.slice_bits());
  broadcast_to_committee(ctx, *root_slice_,
                         contrib_msg(*root_slice_, value));
}

void AeNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  switch (env.msg.kind) {
    case sim::MessageKind::kContrib:
      handle_contrib(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPkValue:
      handle_pk_value(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPkKing:
      handle_pk_king(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kFinalSlice:
      handle_final(ctx, env.src, env.msg);
      break;
    default:
      break;  // other protocols' kinds (adversarial garbage) are ignored
  }
}

void AeNode::handle_contrib(sim::Context& ctx, NodeId from,
                            const sim::Message& m) {
  (void)ctx;
  const auto it = echo_.find(m.slice);
  if (it == echo_.end()) return;
  if (m.slice >= shared_->layout.root.size()) return;
  if (shared_->layout.root[m.slice] != from) return;  // only the root member
  it->second.value = m.value & slice_mask(shared_->config.slice_bits());
}

void AeNode::handle_pk_value(sim::Context& ctx, NodeId from,
                             const sim::Message& m) {
  const auto it = echo_.find(m.slice);
  if (it == echo_.end()) return;
  // Only the exchange of the phase currently being delivered counts; this
  // also bounds adversarial state injection.
  const long expected =
      shared_->schedule.exchange_phase_at(static_cast<Round>(ctx.now()));
  if (expected < 0 || m.phase != static_cast<std::size_t>(expected)) return;
  if (!shared_->layout.in_committee(m.slice, from)) return;
  EchoRole& role = it->second;
  if (std::find(role.exchange_seen.begin(), role.exchange_seen.end(), from) !=
      role.exchange_seen.end()) {
    return;
  }
  role.exchange_seen.push_back(from);
  const std::size_t count = role.exchange_counts.increment(m.value);
  if (count > role.mult) {
    role.mult = count;
    role.maj = m.value;
  }
}

void AeNode::handle_pk_king(sim::Context& ctx, NodeId from,
                            const sim::Message& m) {
  const auto it = echo_.find(m.slice);
  if (it == echo_.end()) return;
  const long expected =
      shared_->schedule.king_phase_at(static_cast<Round>(ctx.now()));
  if (expected < 0 || m.phase != static_cast<std::size_t>(expected)) return;
  const auto& members = shared_->layout.committees[m.slice];
  if (shared_->schedule.king(members, m.phase) != from) return;
  it->second.king_seen = true;
  it->second.king_value = m.value & slice_mask(shared_->config.slice_bits());
}

void AeNode::handle_final(sim::Context& ctx, NodeId from,
                          const sim::Message& m) {
  (void)ctx;
  if (m.slice >= shared_->layout.committees.size()) return;
  if (!shared_->layout.in_committee(m.slice, from)) return;
  auto& voters = final_votes_[m.slice].voters(m.value);
  if (std::find(voters.begin(), voters.end(), from) != voters.end()) return;
  voters.push_back(from);
}

void AeNode::on_round(sim::Context& ctx, Round round) {
  const AeSchedule& sched = shared_->schedule;

  // Phase-king adopt + next exchange. Exchange round 1+2p doubles as the
  // adopt point of phase p-1.
  for (std::size_t p = 0; p < sched.phases; ++p) {
    if (round != sched.exchange_round(p)) continue;
    for (auto& [slice, role] : echo_) {
      if (p > 0) {
        // Adopt the outcome of phase p-1: keep the majority when it is
        // overwhelming (immune to t_c equivocators), else obey the king.
        const std::size_t g = sched.committee;
        const std::size_t t_c = (g - 1) / 4;
        if (!(role.mult > g / 2 + t_c)) {
          role.value = role.king_seen ? role.king_value : 0;
        } else {
          role.value = role.maj;
        }
        role.exchange_seen.clear();
        role.exchange_counts.clear();
        role.maj = 0;
        role.mult = 0;
        role.king_seen = false;
      }
      broadcast_to_committee(ctx, slice, pk_value_msg(slice, p, role.value));
    }
    return;
  }

  // King rounds: the phase's king announces its majority value.
  const long king_phase =
      round >= 2 && (round - 2) % 2 == 0 && (round - 2) / 2 < sched.phases
          ? static_cast<long>((round - 2) / 2)
          : -1;
  if (king_phase >= 0) {
    for (auto& [slice, role] : echo_) {
      const auto& members = shared_->layout.committees[slice];
      if (sched.king(members, static_cast<std::size_t>(king_phase)) != self_) {
        continue;
      }
      broadcast_to_committee(
          ctx, slice,
          pk_king_msg(slice, static_cast<std::size_t>(king_phase), role.maj));
    }
    return;
  }

  if (round == sched.final_broadcast_round()) {
    for (auto& [slice, role] : echo_) {
      // Final adopt of the last phase before announcing.
      const std::size_t g = sched.committee;
      const std::size_t t_c = (g - 1) / 4;
      if (!(role.mult > g / 2 + t_c)) {
        role.value = role.king_seen ? role.king_value : 0;
      } else {
        role.value = role.maj;
      }
      const sim::Message msg = final_slice_msg(slice, role.value);
      for (NodeId dst = 0; dst < ctx.n(); ++dst) ctx.send(dst, msg);
    }
    return;
  }

  if (round == sched.assemble_round()) assemble(ctx);
}

void AeNode::assemble(sim::Context& ctx) {
  if (completed_) return;
  completed_ = true;
  const std::size_t r = shared_->config.resolved_root_size();
  const std::size_t bits = shared_->config.slice_bits();
  const std::size_t g = shared_->schedule.committee;

  BitString gstring(r * bits);
  for (std::size_t slice = 0; slice < r; ++slice) {
    std::uint64_t value = 0;  // deterministic default for failed slices
    if (slice < final_votes_.size()) {
      // Ascending value order — the first majority wins, as with std::map.
      for (const auto& entry : final_votes_[slice].entries()) {
        if (entry.voters.size() * 2 > g) {
          value = entry.value;
          break;
        }
      }
    }
    for (std::size_t b = 0; b < bits; ++b) {
      gstring.set_bit(slice * bits + b, ((value >> b) & 1) != 0);
    }
  }
  assembled_ = shared_->table.intern(gstring);
  ctx.decide(assembled_);
}

// ----- AeEquivocateStrategy ----------------------------------------------------

AeEquivocateStrategy::AeEquivocateStrategy(const AeWorldView& view)
    : shared_(view.shared), corrupt_(view.shared->config.n, false) {
  for (NodeId id : view.corrupt) corrupt_[id] = true;
}

void AeEquivocateStrategy::on_setup(adv::AdvContext& ctx) {
  // Corrupt root members equivocate: a different random slice per recipient.
  const std::uint64_t mask = slice_mask(shared_->config.slice_bits());
  const AeLayout& layout = shared_->layout;
  for (std::size_t i = 0; i < layout.root.size(); ++i) {
    const NodeId root = layout.root[i];
    if (!corrupt_[root]) continue;
    for (NodeId member : layout.committees[i]) {
      ctx.send_from(root, member, contrib_msg(i, ctx.rng().next() & mask));
    }
  }
}

void AeEquivocateStrategy::on_round(adv::AdvContext& ctx, Round round,
                                    bool rushing) {
  (void)rushing;
  const AeSchedule& sched = shared_->schedule;
  const AeLayout& layout = shared_->layout;
  const std::uint64_t mask = slice_mask(shared_->config.slice_bits());

  for (std::size_t i = 0; i < layout.committees.size(); ++i) {
    const auto& members = layout.committees[i];
    for (NodeId z : members) {
      if (!corrupt_[z]) continue;
      // Exchange rounds: a different value to every member.
      for (std::size_t p = 0; p < sched.phases; ++p) {
        if (round == sched.exchange_round(p)) {
          for (NodeId dst : members) {
            ctx.send_from(z, dst, pk_value_msg(i, p, ctx.rng().next() & mask));
          }
        }
        if (round == sched.king_round(p) && sched.king(members, p) == z) {
          for (NodeId dst : members) {
            ctx.send_from(z, dst, pk_king_msg(i, p, ctx.rng().next() & mask));
          }
        }
      }
      // Final announcement: conflicting slices to different nodes.
      if (round == sched.final_broadcast_round()) {
        for (NodeId dst = 0; dst < ctx.n(); ++dst) {
          ctx.send_from(z, dst,
                        final_slice_msg(i, ctx.rng().next() & mask));
        }
      }
    }
  }
}

AeStrategyFactory ae_equivocate_strategy() {
  return [](const AeWorldView& view) {
    return std::make_unique<AeEquivocateStrategy>(view);
  };
}

// ----- run_ae ------------------------------------------------------------------

AeRunResult run_ae(const AeConfig& config, const AeStrategyFactory& make_strategy,
                   bool rushing) {
  FBA_REQUIRE(config.n >= 16, "AE tournament needs at least 16 nodes");
  AeRunResult result;

  AeShared shared(config);
  const std::size_t n = config.n;
  const std::size_t t = config.resolved_t();

  Rng corrupt_rng = Rng(config.seed).split(0xaec0ull);
  result.corrupt = adv::random_corruption(n, t, corrupt_rng);

  AeWorldView view;
  view.shared = &shared;
  view.corrupt = result.corrupt;
  std::unique_ptr<adv::Strategy> strategy;
  if (make_strategy) strategy = make_strategy(view);

  sim::SyncConfig ec;
  ec.n = n;
  ec.seed = config.seed;
  ec.rushing_adversary = rushing;
  ec.max_rounds = config.max_rounds;
  // King rounds where every committee's king is corrupt carry no traffic;
  // the tournament is round-scheduled, so keep the clock running.
  ec.min_rounds = shared.schedule.assemble_round() + 1;
  sim::SyncEngine engine(ec);
  engine.set_wire(&shared.wire());
  engine.set_corrupt(result.corrupt);
  engine.set_strategy(strategy.get());

  std::vector<AeNode*> nodes(n, nullptr);
  for (NodeId id = 0; id < n; ++id) {
    if (engine.is_corrupt(id)) continue;
    auto actor = std::make_unique<AeNode>(&shared, id);
    nodes[id] = actor.get();
    engine.set_actor(id, std::move(actor));
  }

  DecisionLog decisions(n);
  std::size_t completed = 0;
  engine.set_decision_callback(
      [&decisions, &completed](NodeId node, StringId value, double time) {
        if (!decisions.has_decided(node)) ++completed;
        decisions.record(node, value, time);
      });

  std::vector<NodeId> correct;
  for (NodeId id = 0; id < n; ++id) {
    if (!engine.is_corrupt(id)) correct.push_back(id);
  }
  const std::size_t target = correct.size();
  const auto sync_result = engine.run([&] { return completed >= target; });

  // Harvest per-node strings and find the plurality winner.
  result.assembled.assign(n, BitString());
  std::unordered_map<std::uint64_t, std::pair<std::size_t, StringId>> tally;
  for (NodeId id : correct) {
    AeNode* node = nodes[id];
    if (node == nullptr || !node->completed()) continue;
    const StringId sid = node->assembled();
    result.assembled[id] = shared.table.get(sid);
    auto& entry = tally[shared.table.digest(sid)];
    entry.first += 1;
    entry.second = sid;
  }
  std::size_t best = 0;
  StringId winner_id = kNoString;
  for (const auto& [digest, entry] : tally) {
    if (entry.first > best) {
      best = entry.first;
      winner_id = entry.second;
    }
  }
  if (winner_id != kNoString) result.winner = shared.table.get(winner_id);

  AeReport& report = result.report;
  report.n = n;
  report.t = t;
  report.root_size = config.resolved_root_size();
  report.committee_size = config.resolved_committee_size();
  report.phases = shared.schedule.phases;
  report.gstring_bits = config.gstring_bits();
  report.rounds = sync_result.rounds;
  report.total_messages = engine.metrics().total_messages();
  report.total_bits = engine.metrics().total_bits();
  report.amortized_bits = engine.metrics().amortized_bits();
  report.sent_bits = engine.metrics().sent_bits_stats();
  report.correct_count = correct.size();
  report.knowledgeable_count = best;
  report.knowledgeable_fraction =
      static_cast<double>(best) / static_cast<double>(n);
  report.precondition_met = best * 2 > n;

  std::size_t honest_slices = 0;
  std::vector<bool> is_corrupt(n, false);
  for (NodeId id : result.corrupt) is_corrupt[id] = true;
  for (NodeId root : shared.layout.root) {
    if (!is_corrupt[root]) ++honest_slices;
  }
  report.honest_slice_fraction =
      static_cast<double>(honest_slices) /
      static_cast<double>(shared.layout.root.size());

  return result;
}

}  // namespace fba::ae
