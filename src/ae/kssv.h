// The KSSV06-style almost-everywhere agreement protocol (see committee.h for
// the design overview and DESIGN.md §3 for the substitution note).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adversary/adversary.h"
#include "ae/committee.h"
#include "net/node.h"
#include "support/flat_counter.h"
#include "support/metrics.h"

namespace fba::ae {

// ----- messages --------------------------------------------------------------
// Flat message constructors; sizes come from the kind table (slice-index +
// phase-index + slice-value fields, see net/message.cpp).

/// Root member i hands its random slice to echo committee E_i.
inline sim::Message contrib_msg(std::size_t slice, std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kContrib;
  m.slice = static_cast<std::uint32_t>(slice);
  m.value = value;
  return m;
}

/// Phase-king universal exchange: member broadcasts its current value.
inline sim::Message pk_value_msg(std::size_t slice, std::size_t phase,
                                 std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kPkValue;
  m.slice = static_cast<std::uint32_t>(slice);
  m.phase = static_cast<std::uint32_t>(phase);
  m.value = value;
  return m;
}

/// Phase-king round 2: the phase's king broadcasts its majority value.
inline sim::Message pk_king_msg(std::size_t slice, std::size_t phase,
                                std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kPkKing;
  m.slice = static_cast<std::uint32_t>(slice);
  m.phase = static_cast<std::uint32_t>(phase);
  m.value = value;
  return m;
}

/// Echo committee member announces the agreed slice to the whole network.
inline sim::Message final_slice_msg(std::size_t slice, std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kFinalSlice;
  m.slice = static_cast<std::uint32_t>(slice);
  m.value = value;
  return m;
}

// ----- actor -----------------------------------------------------------------

class AeNode final : public sim::Actor {
 public:
  AeNode(AeShared* shared, NodeId self);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  void on_round(sim::Context& ctx, Round round) override;

  bool completed() const { return completed_; }
  StringId assembled() const { return assembled_; }

 private:
  struct EchoRole {
    std::size_t slice = 0;
    std::uint64_t value = 0;
    // Tally of the currently delivered phase (reset on adopt). Flat sorted
    // counter: same semantics as the old std::map tally, no per-value node
    // allocation (support/flat_counter.h).
    std::vector<NodeId> exchange_seen;
    support::TallyCounter exchange_counts;
    std::uint64_t maj = 0;
    std::size_t mult = 0;
    bool king_seen = false;
    std::uint64_t king_value = 0;
  };

  void broadcast_to_committee(sim::Context& ctx, std::size_t slice,
                              const sim::Message& msg);
  void handle_contrib(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_pk_value(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_pk_king(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_final(sim::Context& ctx, NodeId from, const sim::Message& m);
  void assemble(sim::Context& ctx);

  AeShared* shared_;
  NodeId self_;
  std::optional<std::size_t> root_slice_;  ///< my root slot, if any.
  /// slice -> my role. NOTE: iterated by on_round to *send* — its
  /// unordered_map iteration order is pinned behavior; do not flatten.
  std::unordered_map<std::size_t, EchoRole> echo_;
  /// Per slice: value -> distinct announcing committee members, iterated in
  /// ascending value order exactly as the old std::map (assemble picks the
  /// first majority value). Indexed densely by slice.
  std::vector<support::VoteSet> final_votes_;
  bool completed_ = false;
  StringId assembled_ = kNoString;
};

// ----- adversary --------------------------------------------------------------

struct AeWorldView {
  AeShared* shared = nullptr;
  std::vector<NodeId> corrupt;
};

using AeStrategyFactory =
    std::function<std::unique_ptr<adv::Strategy>(const AeWorldView&)>;

/// The strongest generic AE attack we model: corrupt root members equivocate
/// (different slice to each committee member); corrupt committee members
/// send conflicting values in every exchange and king round, and announce
/// conflicting final slices to different nodes.
class AeEquivocateStrategy final : public adv::Strategy {
 public:
  explicit AeEquivocateStrategy(const AeWorldView& view);

  void on_setup(adv::AdvContext& ctx) override;
  void on_round(adv::AdvContext& ctx, Round round, bool rushing) override;

 private:
  AeShared* shared_;
  std::vector<bool> corrupt_;
};

AeStrategyFactory ae_equivocate_strategy();

// ----- harness ----------------------------------------------------------------

struct AeReport {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t root_size = 0;
  std::size_t committee_size = 0;
  std::size_t phases = 0;
  std::size_t gstring_bits = 0;

  Round rounds = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  double amortized_bits = 0;
  LoadStats sent_bits;

  /// Correct nodes holding the plurality string (the winner).
  std::size_t knowledgeable_count = 0;
  std::size_t correct_count = 0;
  /// knowledgeable_count / n — the AER precondition needs > 1/2.
  double knowledgeable_fraction = 0;
  bool precondition_met = false;
  /// Fraction of gstring's slices contributed by correct root members (the
  /// paper's "2/3 + eps of the bits uniformly random").
  double honest_slice_fraction = 0;
};

struct AeRunResult {
  AeReport report;
  BitString winner;  ///< plurality string among correct nodes.
  /// Per-node assembled string (empty for corrupt / incomplete nodes).
  std::vector<BitString> assembled;
  std::vector<NodeId> corrupt;
};

/// Runs the AE tournament on the synchronous engine (the AE phase of the
/// composed protocol is synchronous, as in the paper, where only AER carries
/// the asynchronous guarantee).
AeRunResult run_ae(const AeConfig& config,
                   const AeStrategyFactory& make_strategy = {},
                   bool rushing = true);

}  // namespace fba::ae
