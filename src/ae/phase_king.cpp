#include "ae/phase_king.h"

#include <algorithm>

#include "net/sync_engine.h"

namespace fba::ae {

// Round schedule (messages sent in round r arrive in round r+1):
//   round 1 + 2p : exchange broadcast of phase p      (arrives at 2 + 2p)
//   round 2 + 2p : king decree of phase p             (arrives at 3 + 2p)
//   round 1 + 2(p+1) : adopt phase p, next exchange
//   round 1 + 2 * phases : final adopt; done.
// on_start doubles as round 0; the first exchange goes out in round 0 so
// every index shifts down by one relative to the comment above — the
// schedule helpers below are the single source of truth.
namespace {

constexpr Round exchange_round(std::size_t phase) {
  return static_cast<Round>(2 * phase);
}
constexpr Round decree_round(std::size_t phase) {
  return static_cast<Round>(1 + 2 * phase);
}

}  // namespace

PhaseKingNode::PhaseKingNode(const PhaseKingConfig* config, NodeId self,
                             std::uint64_t input)
    : config_(config), self_(self), value_(input) {}

void PhaseKingNode::broadcast(sim::Context& ctx, const sim::Message& msg) {
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst != self_) ctx.send(dst, msg);
  }
}

void PhaseKingNode::on_start(sim::Context& ctx) {
  // Phase 0 exchange; own vote counts without a self-message.
  seen_.push_back(self_);
  counts_.increment(value_);
  maj_ = value_;
  mult_ = 1;
  broadcast(ctx, pk_exchange_msg(0, value_));
}

void PhaseKingNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  const Round round = static_cast<Round>(ctx.now());
  if (const auto* m = env.msg.as(sim::MessageKind::kPkExchange)) {
    // Accept only the exchange of the phase currently in flight.
    if (round != exchange_round(m->phase) + 1) return;
    if (std::find(seen_.begin(), seen_.end(), env.src) != seen_.end()) return;
    seen_.push_back(env.src);
    const std::size_t count = counts_.increment(m->value);
    if (count > mult_) {
      mult_ = count;
      maj_ = m->value;
    }
    return;
  }
  if (const auto* m = env.msg.as(sim::MessageKind::kPkDecree)) {
    if (round != decree_round(m->phase) + 1) return;
    if (env.src != m->phase % ctx.n()) return;  // only the phase's king
    decree_seen_ = true;
    decree_ = m->value;
  }
}

void PhaseKingNode::adopt() {
  const std::size_t n = config_->n;
  const std::size_t t = config_->t;
  if (!(mult_ > n / 2 + t)) value_ = decree_seen_ ? decree_ : 0;
  else value_ = maj_;
  seen_.clear();
  counts_.clear();
  maj_ = 0;
  mult_ = 0;
  decree_seen_ = false;
}

void PhaseKingNode::on_round(sim::Context& ctx, Round round) {
  if (done_) return;
  // King decree for the phase whose exchange was just delivered.
  for (std::size_t p = 0; p < config_->phases(); ++p) {
    if (round == decree_round(p)) {
      if (self_ == p % ctx.n()) {
        // The king obeys its own decree (no self-message is sent).
        decree_seen_ = true;
        decree_ = maj_;
        broadcast(ctx, pk_decree_msg(p, maj_));
      }
      return;
    }
    if (p > 0 && round == exchange_round(p)) {
      adopt();  // phase p-1 concluded
      seen_.push_back(self_);
      counts_.increment(value_);
      maj_ = value_;
      mult_ = 1;
      broadcast(ctx, pk_exchange_msg(p, value_));
      return;
    }
  }
  if (round == exchange_round(config_->phases())) {
    adopt();
    done_ = true;
    ctx.decide(static_cast<StringId>(value_ & 0x7fffffffu));
  }
}

// ----- adversary ---------------------------------------------------------------

PhaseKingEquivocator::PhaseKingEquivocator(const PhaseKingConfig* config,
                                           std::vector<NodeId> corrupt)
    : config_(config), corrupt_(std::move(corrupt)) {}

void PhaseKingEquivocator::on_round(adv::AdvContext& ctx, Round round,
                                    bool rushing) {
  (void)rushing;
  for (std::size_t p = 0; p < config_->phases(); ++p) {
    if (round == exchange_round(p)) {
      for (NodeId z : corrupt_) {
        for (NodeId dst = 0; dst < ctx.n(); ++dst) {
          if (ctx.is_corrupt(dst)) continue;
          ctx.send_from(z, dst, pk_exchange_msg(p, ctx.rng().next()));
        }
      }
    }
    if (round == decree_round(p)) {
      const NodeId king = static_cast<NodeId>(p % ctx.n());
      if (!ctx.is_corrupt(king)) continue;
      for (NodeId dst = 0; dst < ctx.n(); ++dst) {
        if (ctx.is_corrupt(dst)) continue;
        ctx.send_from(king, dst, pk_decree_msg(p, ctx.rng().next()));
      }
    }
  }
}

// ----- harness -------------------------------------------------------------------

namespace {

}  // namespace

PhaseKingReport run_phase_king(const PhaseKingConfig& config,
                               const std::vector<NodeId>& corrupt,
                               adv::Strategy* strategy) {
  FBA_REQUIRE(config.n >= 5, "phase king needs at least 5 parties");
  FBA_REQUIRE(4 * config.t < config.n, "phase king requires t < n/4");
  FBA_REQUIRE(config.inputs.size() == config.n,
              "one input value per party required");
  FBA_REQUIRE(corrupt.size() <= config.t,
              "more corrupt parties than the tolerance t");

  sim::SyncConfig ec;
  ec.n = config.n;
  ec.seed = config.seed;
  ec.max_rounds = static_cast<Round>(2 * config.phases() + 4);
  // Decree rounds with a corrupt, silent king carry no traffic; the round
  // clock must still advance through them.
  ec.min_rounds = static_cast<Round>(2 * config.phases() + 1);
  sim::SyncEngine engine(ec);
  sim::Wire wire;
  wire.node_id_bits = fba::node_id_bits(config.n);
  engine.set_wire(&wire);
  engine.set_corrupt(corrupt);
  engine.set_strategy(strategy);

  std::vector<PhaseKingNode*> nodes(config.n, nullptr);
  for (NodeId id = 0; id < config.n; ++id) {
    if (engine.is_corrupt(id)) continue;
    auto actor =
        std::make_unique<PhaseKingNode>(&config, id, config.inputs[id]);
    nodes[id] = actor.get();
    engine.set_actor(id, std::move(actor));
  }

  std::size_t done_count = 0;
  engine.set_decision_callback(
      [&done_count](NodeId, StringId, double) { ++done_count; });
  const std::size_t target = config.n - corrupt.size();
  const auto result = engine.run([&] { return done_count >= target; });

  PhaseKingReport report;
  report.n = config.n;
  report.t = config.t;
  report.rounds = result.rounds;
  report.total_messages = engine.metrics().total_messages();
  report.total_bits = engine.metrics().total_bits();

  bool first = true;
  bool all_same = true;
  std::uint64_t agreed = 0;
  bool inputs_uniform = true;
  std::uint64_t common_input = 0;
  bool first_input = true;
  for (NodeId id = 0; id < config.n; ++id) {
    if (engine.is_corrupt(id)) continue;
    if (first_input) {
      common_input = config.inputs[id];
      first_input = false;
    } else if (config.inputs[id] != common_input) {
      inputs_uniform = false;
    }
    PhaseKingNode* node = nodes[id];
    if (node == nullptr || !node->done()) {
      all_same = false;
      continue;
    }
    if (first) {
      agreed = node->output();
      first = false;
    } else if (node->output() != agreed) {
      all_same = false;
    }
  }
  report.agreement = all_same && !first;
  report.output = agreed;
  report.validity_applicable = inputs_uniform;
  report.validity_held =
      inputs_uniform && report.agreement && agreed == common_input;
  return report;
}

}  // namespace fba::ae
