// Standalone Phase-King Byzantine agreement (Berman–Garay–Perry).
//
// The deterministic consensus core the committee tournament runs inside
// each echo committee, packaged as a full-network protocol in its own right:
// n parties, t < n/4 Byzantine, t+1 phases of two rounds each
// (universal exchange, then the phase king's tie-break), multi-valued.
//
//   phase p, round 1: everyone broadcasts its current value v_i;
//                     maj_i = most frequent received value, mult_i = count.
//   phase p, round 2: the king (party p) broadcasts maj_king;
//                     v_i = maj_i if mult_i > n/2 + t, else maj_king.
//
// Guarantees for t < n/4:
//   validity    — if all correct parties start with v, they end with v
//                 (mult_i >= n - t > n/2 + t for every correct i);
//   agreement   — after the first phase with a correct king all correct
//                 parties hold one value, and persistence keeps it.
//
// This module exists both as a usable substrate (small-committee BA) and as
// a reference point in tests: the in-committee agreement of ae/kssv.cpp is
// the same algorithm interleaved across many committees.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.h"
#include "net/node.h"
#include "support/flat_counter.h"
#include "support/metrics.h"

namespace fba::ae {

struct PhaseKingConfig {
  std::size_t n = 0;
  std::uint64_t seed = 1;
  std::size_t t = 0;  ///< tolerated faults; phases = t + 1. Must be < n/4.
  /// Input value per party (64-bit values; corrupt entries ignored).
  std::vector<std::uint64_t> inputs;

  std::size_t phases() const { return t + 1; }
};

/// Value broadcast in the exchange round (64 value bits + 8 framing bits,
/// charged by the kind table).
inline sim::Message pk_exchange_msg(std::size_t phase, std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kPkExchange;
  m.phase = static_cast<std::uint32_t>(phase);
  m.value = value;
  return m;
}

/// King's tie-break broadcast.
inline sim::Message pk_decree_msg(std::size_t phase, std::uint64_t value) {
  sim::Message m;
  m.kind = sim::MessageKind::kPkDecree;
  m.phase = static_cast<std::uint32_t>(phase);
  m.value = value;
  return m;
}

class PhaseKingNode final : public sim::Actor {
 public:
  PhaseKingNode(const PhaseKingConfig* config, NodeId self,
                std::uint64_t input);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  void on_round(sim::Context& ctx, Round round) override;

  bool done() const { return done_; }
  std::uint64_t output() const { return value_; }

 private:
  void broadcast(sim::Context& ctx, const sim::Message& msg);
  void adopt();

  const PhaseKingConfig* config_;
  NodeId self_;
  std::uint64_t value_;
  bool done_ = false;

  // Tally of the phase currently being delivered. The counter is a flat
  // sorted vector (support/flat_counter.h): same increment-and-read
  // semantics as the old std::map tally, no node allocation per value.
  std::vector<NodeId> seen_;
  support::TallyCounter counts_;
  std::uint64_t maj_ = 0;
  std::size_t mult_ = 0;
  bool decree_seen_ = false;
  std::uint64_t decree_ = 0;
};

struct PhaseKingReport {
  std::size_t n = 0;
  std::size_t t = 0;
  Round rounds = 0;
  bool agreement = false;       ///< all correct parties output one value.
  bool validity_applicable = false;  ///< all correct inputs were equal...
  bool validity_held = false;        ///< ...and the output matches them.
  std::uint64_t output = 0;     ///< the agreed value (if agreement).
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
};

/// Strategy for the standalone protocol: corrupt parties equivocate in every
/// exchange and decree round (worst-case king behaviour included).
class PhaseKingEquivocator final : public adv::Strategy {
 public:
  PhaseKingEquivocator(const PhaseKingConfig* config,
                       std::vector<NodeId> corrupt);

  void on_round(adv::AdvContext& ctx, Round round, bool rushing) override;

 private:
  const PhaseKingConfig* config_;
  std::vector<NodeId> corrupt_;
};

/// Runs phase king on the synchronous engine with `corrupt` parties under
/// `strategy` (null = silent corrupt parties).
PhaseKingReport run_phase_king(const PhaseKingConfig& config,
                               const std::vector<NodeId>& corrupt = {},
                               adv::Strategy* strategy = nullptr);

}  // namespace fba::ae
