// AER configuration and the shared world state (public setup) every node
// sees: the three samplers, the string table, and the wire format.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "net/message.h"
#include "net/recovery.h"
#include "sampler/sampler.h"
#include "sampler/tables.h"
#include "support/intern.h"
#include "support/types.h"

namespace fba::aer {

/// Which engine / adversary-timing combination to run under (Section 2.1).
enum class Model {
  kSyncNonRushing,  ///< Lemma 8/9 regime: O(1) expected decision time.
  kSyncRushing,     ///< synchronous, adversary sees same-round traffic.
  kAsync,           ///< Lemma 6/10 regime: O(log n / log log n) time.
};

const char* model_name(Model model);

struct AerConfig {
  std::size_t n = 0;
  Model model = Model::kSyncRushing;
  std::uint64_t seed = 1;

  /// Corrupt fraction t/n. The paper tolerates t < (1/3 - eps) n
  /// asymptotically; at simulation scale d = Theta(log n) is small, so the
  /// default operating point keeps a comfortable quorum-majority margin.
  /// Resilience stress benches sweep this toward 1/3.
  double corrupt_fraction = 0.08;
  /// Use an explicit t instead of the fraction when set (>= 0).
  long explicit_t = -1;

  /// Fraction of *correct* nodes that initially know gstring. The paper's
  /// precondition is that more than half of all nodes are correct and
  /// knowledgeable (equivalently >= 3/4 of correct nodes when t < n/3).
  double knowledgeable_fraction = 0.95;

  /// Quorum / poll-list size d = max(8, c_d * log2 n), or d_override.
  double c_d = 1.5;
  std::size_t d_override = 0;

  /// gstring is gstring_c * log2(n) bits, 2/3 of them uniformly random.
  std::size_t gstring_c = 4;
  double gstring_random_fraction = 2.0 / 3.0;

  /// Algorithm 3 answer budget; 0 means ceil(log2 n)^2 as in the paper.
  std::size_t answer_budget = 0;

  /// Ablation: when false, over-budget requests are dropped instead of
  /// deferred until decision ("Wait for has_decided").
  bool defer_answers = true;

  Round max_rounds = 300;
  double max_time = 300.0;

  /// Runtime corruption budget for adaptive-* strategies (adversary/
  /// adaptive.h): how many additional nodes the adversary may flip *during*
  /// the run, on top of the t pre-execution corruptions. 0 (the default)
  /// keeps the paper's non-adaptive model; static strategies ignore it.
  std::size_t adaptive_budget = 0;
  /// Earliest time (sync: round; async: sim time) the adaptive adversary
  /// may start spending the budget — lets sweeps separate "corrupt early"
  /// from "corrupt after observing traffic".
  double adaptive_from = 1.0;

  /// Fault conditions applied at the engines' delivery boundary (loss /
  /// partitions / churn, net/fault.h). Empty (the default) keeps the
  /// paper's reliable-channel model. Named presets live in exp/scenario.h
  /// (exp::fault_plan_factory) so benches, fba_sim and Grid sweeps share
  /// one vocabulary.
  sim::FaultPlan fault_plan;

  /// Reliable-channel recovery sublayer (ack/retransmit with adaptive
  /// timeout, net/recovery.h). Empty (the default) disables it; named
  /// presets live in exp/scenario.h (exp::recovery_plan_factory). Layered
  /// under send_from, downstream of fault_plan, so retransmissions are
  /// re-exposed to loss/partition/churn.
  sim::RecoveryPlan recovery_plan;

  std::size_t resolved_t() const;
  std::size_t resolved_d() const;
  std::size_t resolved_answer_budget() const;
  std::size_t resolved_gstring_bits() const;
};

/// Public setup shared by all nodes, plus the run-wide string table. Also
/// owns the wire format (node ids cost log2 n bits, labels come from
/// R with |R| = n^2, strings carry their true length) and the dense sampler
/// tables (sampler/tables.h) every protocol hot path reads quorums through.
class AerShared {
 public:
  AerShared(const AerConfig& config, const sampler::SamplerParams& sp)
      : config(config), samplers(sp) {
    tables.reset(samplers, config.n);
    wire_.node_id_bits = fba::node_id_bits(config.n);
    wire_.label_bits = samplers.params.label_bits;
    wire_.table = &table;
  }

  // wire_ points at this object's string table; copying/moving would leave
  // it dangling.
  AerShared(const AerShared&) = delete;
  AerShared& operator=(const AerShared&) = delete;

  /// Rebuilds this setup in place for a fresh trial (trial-arena reuse):
  /// re-keys the samplers, empties the string table, and re-binds the dense
  /// tables — all storage (table slots, quorum slabs, poll rows) is kept.
  void reset(const AerConfig& new_config, const sampler::SamplerParams& sp) {
    config = new_config;
    samplers.reset(sp);
    table.reset();
    tables.reset(samplers, new_config.n);
    gstring = kNoString;
    wire_.node_id_bits = fba::node_id_bits(new_config.n);
    wire_.label_bits = samplers.params.label_bits;
    wire_.table = &table;
  }

  const sim::Wire& wire() const { return wire_; }

  /// Sampler key for an interned string (functions of string content).
  sampler::StringKey key_of(StringId id) const { return table.digest(id); }

  // ----- dense sampler front-ends (hot path) -------------------------------
  // Quorums are functions of string *content*; the dense tables additionally
  // key on the run-local StringId so a lookup is an array index. Views stay
  // valid for the rest of the trial.

  /// I(s, x): who may push/route string s to x.
  sampler::QuorumView push_quorum(StringId s, NodeId x) const {
    return tables.push.row(s, key_of(s), x);
  }
  /// H(s, x): the Pull Quorum of x for s.
  sampler::QuorumView pull_quorum(StringId s, NodeId x) const {
    return tables.pull.row(s, key_of(s), x);
  }
  /// J(x, r): the poll list of x under label r.
  sampler::QuorumView poll_list(NodeId x, PollLabel r) const {
    return tables.poll.row(x, r);
  }
  /// { x : y in I(s, x) }, written into `out` (capacity reuse).
  void push_targets(StringId s, NodeId y, std::vector<NodeId>& out) const {
    tables.push.targets(s, key_of(s), y, out);
  }

  AerConfig config;
  sampler::SamplerSuite samplers;
  /// Dense memoized I / H / J (lazily filled; a trial is single-threaded,
  /// so the mutation is invisible to callers — see sampler/tables.h).
  mutable sampler::SharedTables tables;
  StringTable table;
  StringId gstring = kNoString;

 private:
  sim::Wire wire_;
};

}  // namespace fba::aer
