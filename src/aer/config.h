// AER configuration and the shared world state (public setup) every node
// sees: the three samplers, the string table, and the wire format.
#pragma once

#include <cstdint>
#include <memory>

#include "net/fault.h"
#include "net/message.h"
#include "sampler/sampler.h"
#include "support/intern.h"
#include "support/types.h"

namespace fba::aer {

/// Which engine / adversary-timing combination to run under (Section 2.1).
enum class Model {
  kSyncNonRushing,  ///< Lemma 8/9 regime: O(1) expected decision time.
  kSyncRushing,     ///< synchronous, adversary sees same-round traffic.
  kAsync,           ///< Lemma 6/10 regime: O(log n / log log n) time.
};

const char* model_name(Model model);

struct AerConfig {
  std::size_t n = 0;
  Model model = Model::kSyncRushing;
  std::uint64_t seed = 1;

  /// Corrupt fraction t/n. The paper tolerates t < (1/3 - eps) n
  /// asymptotically; at simulation scale d = Theta(log n) is small, so the
  /// default operating point keeps a comfortable quorum-majority margin.
  /// Resilience stress benches sweep this toward 1/3.
  double corrupt_fraction = 0.08;
  /// Use an explicit t instead of the fraction when set (>= 0).
  long explicit_t = -1;

  /// Fraction of *correct* nodes that initially know gstring. The paper's
  /// precondition is that more than half of all nodes are correct and
  /// knowledgeable (equivalently >= 3/4 of correct nodes when t < n/3).
  double knowledgeable_fraction = 0.95;

  /// Quorum / poll-list size d = max(8, c_d * log2 n), or d_override.
  double c_d = 1.5;
  std::size_t d_override = 0;

  /// gstring is gstring_c * log2(n) bits, 2/3 of them uniformly random.
  std::size_t gstring_c = 4;
  double gstring_random_fraction = 2.0 / 3.0;

  /// Algorithm 3 answer budget; 0 means ceil(log2 n)^2 as in the paper.
  std::size_t answer_budget = 0;

  /// Ablation: when false, over-budget requests are dropped instead of
  /// deferred until decision ("Wait for has_decided").
  bool defer_answers = true;

  Round max_rounds = 300;
  double max_time = 300.0;

  /// Fault conditions applied at the engines' delivery boundary (loss /
  /// partitions / churn, net/fault.h). Empty (the default) keeps the
  /// paper's reliable-channel model. Named presets live in exp/scenario.h
  /// (exp::fault_plan_factory) so benches, fba_sim and Grid sweeps share
  /// one vocabulary.
  sim::FaultPlan fault_plan;

  std::size_t resolved_t() const;
  std::size_t resolved_d() const;
  std::size_t resolved_answer_budget() const;
  std::size_t resolved_gstring_bits() const;
};

/// Public setup shared by all nodes, plus the run-wide string table. Also
/// owns the wire format (node ids cost log2 n bits, labels come from
/// R with |R| = n^2, strings carry their true length).
class AerShared {
 public:
  AerShared(const AerConfig& config, const sampler::SamplerParams& sp)
      : config(config),
        samplers(sp),
        push_cache(samplers.push),
        pull_cache(samplers.pull),
        poll_cache(samplers.poll) {
    wire_.node_id_bits = fba::node_id_bits(config.n);
    wire_.label_bits = samplers.params.label_bits;
    wire_.table = &table;
  }

  // wire_ points at this object's string table; copying/moving would leave
  // it dangling.
  AerShared(const AerShared&) = delete;
  AerShared& operator=(const AerShared&) = delete;

  const sim::Wire& wire() const { return wire_; }

  /// Sampler key for an interned string (functions of string content).
  sampler::StringKey key_of(StringId id) const { return table.digest(id); }

  AerConfig config;
  sampler::SamplerSuite samplers;
  sampler::QuorumCache push_cache;  ///< memoized I
  sampler::QuorumCache pull_cache;  ///< memoized H
  sampler::PollCache poll_cache;    ///< memoized J
  StringTable table;
  StringId gstring = kNoString;

 private:
  sim::Wire wire_;
};

}  // namespace fba::aer
