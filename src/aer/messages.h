// AER message constructors (Sections 3.1.1-3.1.2, Algorithms 1-3).
//
// Messages carry interned StringIds in memory; the per-kind table in
// net/message.cpp charges the true encoded size (string length, label from
// R, node ids) so measured communication matches a faithful wire format.
// All constructors return flat sim::Message values — sending allocates
// nothing.
#pragma once

#include "net/message.h"
#include "support/types.h"

namespace fba::aer {

/// Push phase: y diffuses its candidate to the nodes x with y in I(s, x).
inline sim::Message push_msg(StringId s) {
  sim::Message m;
  m.kind = sim::MessageKind::kPush;
  m.s = s;
  return m;
}

/// Pull phase, Algorithm 1: x polls its poll list J(x, r) about s.
inline sim::Message poll_msg(StringId s, PollLabel r) {
  sim::Message m;
  m.kind = sim::MessageKind::kPoll;
  m.s = s;
  m.r = r;
  return m;
}

/// Pull phase, Algorithm 1: x asks its Pull Quorum H(s, x) to route the
/// verification request.
inline sim::Message pull_msg(StringId s, PollLabel r) {
  sim::Message m;
  m.kind = sim::MessageKind::kPull;
  m.s = s;
  m.r = r;
  return m;
}

/// Algorithm 2 hop 1: y in H(s, x) forwards x's request toward poll-list
/// member w via w's Pull Quorum H(s, w). `a` = x, `b` = w.
inline sim::Message fw1_msg(NodeId x, StringId s, PollLabel r, NodeId w) {
  sim::Message m;
  m.kind = sim::MessageKind::kFw1;
  m.a = x;
  m.s = s;
  m.r = r;
  m.b = w;
  return m;
}

/// Algorithm 2 hop 2: z in H(s, w) delivers the request to w after a
/// majority of H(s, x) vouched for it. `a` = x.
inline sim::Message fw2_msg(NodeId x, StringId s, PollLabel r) {
  sim::Message m;
  m.kind = sim::MessageKind::kFw2;
  m.a = x;
  m.s = s;
  m.r = r;
  return m;
}

/// Algorithm 3: poll-list member w answers x's verification of s.
inline sim::Message answer_msg(StringId s) {
  sim::Message m;
  m.kind = sim::MessageKind::kAnswer;
  m.s = s;
  return m;
}

}  // namespace fba::aer
