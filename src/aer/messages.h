// AER message payloads (Sections 3.1.1-3.1.2, Algorithms 1-3).
//
// Messages carry interned StringIds in memory; bit_size() charges the true
// encoded size (string length, label from R, node ids) so measured
// communication matches a faithful wire format.
#pragma once

#include "net/payload.h"
#include "support/types.h"

namespace fba::aer {

/// Push phase: y diffuses its candidate to the nodes x with y in I(s, x).
struct PushMsg final : sim::Payload {
  StringId s;

  explicit PushMsg(StringId s) : s(s) {}
  std::size_t bit_size(const sim::Wire& w) const override {
    return w.string_bits(s);
  }
  const char* kind() const override { return "push"; }
};

/// Pull phase, Algorithm 1: x polls its poll list J(x, r) about s.
struct PollMsg final : sim::Payload {
  StringId s;
  PollLabel r;

  PollMsg(StringId s, PollLabel r) : s(s), r(r) {}
  std::size_t bit_size(const sim::Wire& w) const override {
    return w.string_bits(s) + w.label_bits();
  }
  const char* kind() const override { return "poll"; }
};

/// Pull phase, Algorithm 1: x asks its Pull Quorum H(s, x) to route the
/// verification request.
struct PullMsg final : sim::Payload {
  StringId s;
  PollLabel r;

  PullMsg(StringId s, PollLabel r) : s(s), r(r) {}
  std::size_t bit_size(const sim::Wire& w) const override {
    return w.string_bits(s) + w.label_bits();
  }
  const char* kind() const override { return "pull"; }
};

/// Algorithm 2 hop 1: y in H(s, x) forwards x's request toward poll-list
/// member w via w's Pull Quorum H(s, w).
struct Fw1Msg final : sim::Payload {
  NodeId x;
  StringId s;
  PollLabel r;
  NodeId w;

  Fw1Msg(NodeId x, StringId s, PollLabel r, NodeId w)
      : x(x), s(s), r(r), w(w) {}
  std::size_t bit_size(const sim::Wire& wire) const override {
    return wire.string_bits(s) + wire.label_bits() + 2 * wire.node_id_bits();
  }
  const char* kind() const override { return "fw1"; }
};

/// Algorithm 2 hop 2: z in H(s, w) delivers the request to w after a
/// majority of H(s, x) vouched for it.
struct Fw2Msg final : sim::Payload {
  NodeId x;
  StringId s;
  PollLabel r;

  Fw2Msg(NodeId x, StringId s, PollLabel r) : x(x), s(s), r(r) {}
  std::size_t bit_size(const sim::Wire& wire) const override {
    return wire.string_bits(s) + wire.label_bits() + wire.node_id_bits();
  }
  const char* kind() const override { return "fw2"; }
};

/// Algorithm 3: poll-list member w answers x's verification of s.
struct AnswerMsg final : sim::Payload {
  StringId s;

  explicit AnswerMsg(StringId s) : s(s) {}
  std::size_t bit_size(const sim::Wire& w) const override {
    return w.string_bits(s);
  }
  const char* kind() const override { return "answer"; }
};

}  // namespace fba::aer
