#include "aer/node.h"

#include <algorithm>

#include "net/network.h"

namespace fba::aer {

// The send loops iterate each quorum's precomputed first-seen-order distinct
// member list (duplicate slots get one message; thresholds still count
// slots) straight out of the dense sampler tables — what used to be a
// freshly allocated distinct_members() vector per send batch.

AerNode::AerNode(const AerShared* shared, NodeId self,
                 StringId initial_candidate)
    : shared_(shared),
      pending_pulls_(
          support::PoolAllocator<std::pair<const std::uint64_t, PollLabel>>(
              &pool_)),
      fw1_tallies_(support::PoolAllocator<
                   std::pair<const std::uint64_t, RetainedMap<NodeId, Fw1Tally>>>(
          &pool_)),
      responder_(
          support::PoolAllocator<std::pair<const std::uint64_t, ResponderState>>(
              &pool_)) {
  reset(shared, self, initial_candidate);
}

void AerNode::reset(const AerShared* shared, NodeId self,
                    StringId initial_candidate) {
  shared_ = shared;
  self_ = self;
  initial_ = initial_candidate;
  current_ = initial_candidate;
  has_decided_ = false;
  decided_ = kNoString;
  d_ = static_cast<std::uint32_t>(shared->config.resolved_d());

  push_tallies_.clear();
  candidates_.clear();
  in_list_.clear();
  my_pulls_.clear();
  answer_counts_.clear();
  forwarded_.clear();
  // The retained maps are *reconstructed*, not cleared: a cleared
  // unordered_map keeps its grown bucket array, which would give trial k+1
  // a different bucket-growth (and thus iteration) history than a freshly
  // built node — and serve_retained's send order must be bit-identical
  // whether or not this node came out of an arena. Move-assigning a fresh
  // map returns the old nodes to the pool's free lists.
  pending_pulls_ = decltype(pending_pulls_)(pending_pulls_.get_allocator());
  fw1_tallies_ = decltype(fw1_tallies_)(fw1_tallies_.get_allocator());
  responder_ = decltype(responder_)(responder_.get_allocator());
  deferred_.clear();
  deferred_peak_ = 0;
  counted_arena_.clear();

  candidates_.push_back(initial_);
  in_list_.insert(initial_);
}

std::uint32_t AerNode::new_counted_span() {
  const auto off = static_cast<std::uint32_t>(counted_arena_.size());
  counted_arena_.resize(counted_arena_.size() + d_);
  return off;
}

bool AerNode::already_counted(const NodeId* counted, std::uint32_t count,
                              NodeId who) {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (counted[i] == who) return true;
  }
  return false;
}

std::size_t AerNode::answers_sent(StringId s) const {
  const std::uint32_t* count = answer_counts_.find(s);
  return count == nullptr ? 0 : *count;
}

std::optional<AerNode::PullStatus> AerNode::pull_status(StringId s) const {
  const MyPull* pull = my_pulls_.find(s);
  if (pull == nullptr) return std::nullopt;
  PullStatus status;
  status.r = pull->r;
  status.answered_members = pull->answered;
  status.answered_slots = pull->slots;
  return status;
}

AerNode::ResponderStatus AerNode::responder_status(NodeId x,
                                                   StringId s) const {
  ResponderStatus status;
  const auto it = responder_.find(pack_xs(x, s));
  if (it == responder_.end()) return status;
  status.known = true;
  status.polled = it->second.polled;
  status.answered = it->second.answered;
  status.slots = it->second.slots;
  return status;
}

bool AerNode::over_budget(StringId s) const {
  return answers_sent(s) > shared_->config.resolved_answer_budget();
}

void AerNode::on_start(sim::Context& ctx) {
  // Push phase: diffuse the initial candidate to the d nodes whose Push
  // Quorum for it contains us. The permutation-based sampler gives the
  // target set directly (Lemma 3: O(log n) messages per node).
  shared_->push_targets(initial_, self_, targets_scratch_);
  for (NodeId target : targets_scratch_) {
    ctx.send(target, push_msg(initial_));
  }
  // Algorithm 1 runs over L_x, which initially holds s_x.
  start_pull(ctx, initial_);
}

void AerNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  switch (env.msg.kind) {
    case sim::MessageKind::kPush:
      handle_push(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPoll:
      handle_poll(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPull:
      handle_pull(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kFw1:
      handle_fw1(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kFw2:
      handle_fw2(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kAnswer:
      handle_answer(ctx, env.src, env.msg);
      break;
    default:
      break;  // other protocols' kinds (adversarial garbage) are ignored
  }
}

// ----- push phase ----------------------------------------------------------

void AerNode::handle_push(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (in_list_.contains(m.s)) return;  // already a candidate
  // Filter: only members of I(s, self) may push s to us; each sender is
  // credited once, with its slot multiplicity.
  const sampler::QuorumView quorum = shared_->push_quorum(m.s, self_);
  const std::size_t mult = quorum.multiplicity(from);
  if (mult == 0) return;  // not in our Push Quorum for s: ignore silently
  bool created = false;
  PushTally& tally = push_tallies_.get_or_create(m.s, created);
  if (created) tally.counted_off = new_counted_span();
  NodeId* counted = counted_at(tally.counted_off);
  if (already_counted(counted, tally.counted, from)) return;
  counted[tally.counted++] = from;
  tally.slots += static_cast<std::uint32_t>(mult);
  if (tally.slots * 2 > quorum.size()) {
    // The tally is no longer needed: membership in L_x short-circuits every
    // later push for s at the top of this handler.
    accept_candidate(ctx, m.s);
  }
}

void AerNode::accept_candidate(sim::Context& ctx, StringId s) {
  if (!in_list_.insert(s)) return;
  candidates_.push_back(s);
  if (!has_decided_) start_pull(ctx, s);
}

// ----- pull phase: requester (Algorithm 1) ---------------------------------

void AerNode::start_pull(sim::Context& ctx, StringId s) {
  if (my_pulls_.contains(s)) return;
  bool created = false;
  MyPull& pull = my_pulls_.get_or_create(s, created);
  pull.answered_off = new_counted_span();
  pull.r = shared_->samplers.poll.random_label(ctx.rng());

  const sim::Message poll = poll_msg(s, pull.r);
  const sampler::QuorumView poll_view = shared_->poll_list(self_, pull.r);
  for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
    ctx.send(poll_view.distinct[i], poll);
  }
  const sim::Message pull_req = pull_msg(s, pull.r);
  const sampler::QuorumView h = shared_->pull_quorum(s, self_);
  for (std::uint32_t i = 0; i < h.distinct_count; ++i) {
    ctx.send(h.distinct[i], pull_req);
  }
}

void AerNode::handle_answer(sim::Context& ctx, NodeId from,
                            const sim::Message& m) {
  if (has_decided_) return;
  MyPull* pull = my_pulls_.find(m.s);
  if (pull == nullptr) return;  // never asked about s
  const sampler::QuorumView poll_list = shared_->poll_list(self_, pull->r);
  const std::size_t mult = poll_list.multiplicity(from);
  if (mult == 0) return;  // answer from outside J(x, r_{x,s})
  NodeId* answered = counted_at(pull->answered_off);
  if (already_counted(answered, pull->answered, from)) return;  // one per member
  answered[pull->answered++] = from;
  pull->slots += static_cast<std::uint32_t>(mult);
  if (pull->slots * 2 > poll_list.size()) decide(ctx, m.s);
}

void AerNode::decide(sim::Context& ctx, StringId s) {
  if (has_decided_) return;
  has_decided_ = true;
  decided_ = s;
  current_ = s;  // s_this is updated accordingly (Algorithm 3's data note)
  ctx.decide(s);
  // "Wait for has_decided" resolves now: serve the deferred requests whose
  // string matches our decided belief. (emit_answer never re-defers once
  // has_decided_ is set, so indexed iteration is safe.)
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    const auto [x, str] = deferred_[i];
    if (str == current_) emit_answer(ctx, x, str);
  }
  deferred_.clear();
  serve_retained(ctx);
}

void AerNode::serve_retained(sim::Context& ctx) {
  // A node that just learned gstring starts serving the requests for it that
  // arrived while it still believed its own candidate (Algorithm 3's
  // "s_w was changed accordingly", applied to all three relay roles). This
  // is what lets nodes whose quorums contain initially-unknowledgeable
  // members still gather their majorities.
  for (const auto& [key, r] : pending_pulls_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (s == current_) forward_pull(ctx, x, s, r);
  }
  pending_pulls_.clear();

  for (auto& [key, per_w] : fw1_tallies_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    const sampler::QuorumView h_x = shared_->pull_quorum(s, x);
    for (auto& [w, tally] : per_w) {
      if (!tally.fired && tally.slots * 2 > h_x.size()) {
        tally.fired = true;
        ctx.send(w, fw2_msg(x, s, tally.r));
      }
    }
  }

  const sampler::QuorumView h_self = shared_->pull_quorum(current_, self_);
  for (auto& [key, st] : responder_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (!st.answered && st.polled && st.slots * 2 > h_self.size()) {
      st.answered = true;
      emit_answer(ctx, x, s);
    }
  }
}

// ----- pull phase: forwarder, first hop (Algorithm 2) -----------------------

void AerNode::handle_pull(sim::Context& ctx, NodeId from, const sim::Message& m) {
  // Only members of the sender's Pull Quorum for s may route the request.
  if (!shared_->pull_quorum(m.s, from).contains(self_)) return;
  if (m.s != current_) {
    // Not (yet) our belief. Retain it: if we later decide on s, we serve it
    // (post-decision answering, Algorithm 3). One slot per (x, s).
    if (!has_decided_) pending_pulls_.emplace(pack_xs(from, m.s), m.r);
    return;
  }
  forward_pull(ctx, from, m.s, m.r);
}

void AerNode::forward_pull(sim::Context& ctx, NodeId x, StringId s,
                           PollLabel r) {
  // Flooding guard ("keep track of senders"): one forward per (x, s).
  if (!forwarded_.insert(pack_xs(x, s))) return;
  const sampler::QuorumView poll_view = shared_->poll_list(x, r);
  for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
    const NodeId w = poll_view.distinct[i];
    const sim::Message fw1 = fw1_msg(x, s, r, w);
    const sampler::QuorumView h_w = shared_->pull_quorum(s, w);
    for (std::uint32_t j = 0; j < h_w.distinct_count; ++j) {
      ctx.send(h_w.distinct[j], fw1);
    }
  }
}

// ----- pull phase: relay, second hop (Algorithm 2) ---------------------------

void AerNode::handle_fw1(sim::Context& ctx, NodeId from, const sim::Message& m) {
  const sampler::QuorumView h_w = shared_->pull_quorum(m.s, m.b);
  if (!h_w.contains(self_)) return;  // this in H(s, w)
  const sampler::QuorumView h_x = shared_->pull_quorum(m.s, m.a);
  const std::size_t mult = h_x.multiplicity(from);
  if (mult == 0) return;  // y in H(s, x)
  if (!shared_->poll_list(m.a, m.r).contains(m.b)) return;  // w in J(x,r)

  // Vouching is tallied even when s is not (yet) our belief; the Fw2 is only
  // emitted while s = s_this (now or after deciding on s).
  const auto outer = fw1_tallies_.try_emplace(
      pack_xs(m.a, m.s), fw1_tallies_.get_allocator());
  const auto inner = outer.first->second.try_emplace(m.b);
  Fw1Tally& tally = inner.first->second;
  if (inner.second) tally.counted_off = new_counted_span();
  NodeId* counted = counted_at(tally.counted_off);
  if (tally.fired || already_counted(counted, tally.counted, from)) return;
  if (tally.counted == 0) tally.r = m.r;
  counted[tally.counted++] = from;
  tally.slots += static_cast<std::uint32_t>(mult);
  if (m.s == current_ && tally.slots * 2 > h_x.size()) {
    tally.fired = true;  // forward only once
    ctx.send(m.b, fw2_msg(m.a, m.s, m.r));
  }
}

// ----- pull phase: responder (Algorithm 3) -----------------------------------

void AerNode::handle_fw2(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (!shared_->poll_list(m.a, m.r).contains(self_)) return;  // in J(x,r)
  const sampler::QuorumView h_self = shared_->pull_quorum(m.s, self_);
  const std::size_t mult = h_self.multiplicity(from);
  if (mult == 0) return;  // z in H(s, this)

  // Evidence is tallied regardless of current belief; answers require
  // s = s_this (initially our candidate, after deciding the decided value).
  const auto emplaced = responder_.try_emplace(pack_xs(m.a, m.s));
  ResponderState& st = emplaced.first->second;
  if (emplaced.second) st.counted_off = new_counted_span();
  NodeId* counted = counted_at(st.counted_off);
  if (st.answered || already_counted(counted, st.counted, from)) return;
  counted[st.counted++] = from;
  st.slots += static_cast<std::uint32_t>(mult);
  if (m.s == current_ && st.slots * 2 > h_self.size() && st.polled) {
    st.answered = true;
    emit_answer(ctx, m.a, m.s);
  }
}

void AerNode::handle_poll(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (!shared_->poll_list(from, m.r).contains(self_)) return;
  const auto emplaced = responder_.try_emplace(pack_xs(from, m.s));
  ResponderState& st = emplaced.first->second;
  if (emplaced.second) st.counted_off = new_counted_span();
  if (st.polled) return;
  st.polled = true;
  // Necessary in the asynchronous case: the Fw2 majority may have formed
  // before the Poll arrived.
  const sampler::QuorumView h_self = shared_->pull_quorum(m.s, self_);
  if (m.s == current_ && !st.answered && st.slots * 2 > h_self.size()) {
    st.answered = true;
    emit_answer(ctx, from, m.s);
  }
}

void AerNode::emit_answer(sim::Context& ctx, NodeId x, StringId s) {
  // Algorithm 3's answer budget: an overloaded node stops answering until it
  // has decided (then it answers for its decided string only).
  if (!has_decided_ && over_budget(s)) {
    if (shared_->config.defer_answers) {
      deferred_.emplace_back(x, s);
      deferred_peak_ = std::max(deferred_peak_, deferred_.size());
    }
    return;
  }
  ++answer_counts_.get_or_create(s);
  ctx.send(x, answer_msg(s));
}

}  // namespace fba::aer
