#include "aer/node.h"

#include <algorithm>

#include "net/network.h"

namespace fba::aer {

namespace {

/// Distinct values of a quorum's member multiset, preserving first-seen
/// order. Duplicate slots get one message; thresholds still count slots.
std::vector<NodeId> distinct_members(const sampler::Quorum& q) {
  std::vector<NodeId> out;
  out.reserve(q.members.size());
  for (NodeId m : q.members) {
    if (std::find(out.begin(), out.end(), m) == out.end()) out.push_back(m);
  }
  return out;
}

bool already_counted(const std::vector<NodeId>& counted, NodeId who) {
  return std::find(counted.begin(), counted.end(), who) != counted.end();
}

}  // namespace

AerNode::AerNode(const AerShared* shared, NodeId self,
                 StringId initial_candidate)
    : shared_(shared),
      self_(self),
      initial_(initial_candidate),
      current_(initial_candidate) {
  candidates_.push_back(initial_);
  in_list_.insert(initial_);
}

std::size_t AerNode::answers_sent(StringId s) const {
  const auto it = answer_counts_.find(s);
  return it == answer_counts_.end() ? 0 : it->second;
}

std::optional<AerNode::PullStatus> AerNode::pull_status(StringId s) const {
  const auto it = my_pulls_.find(s);
  if (it == my_pulls_.end()) return std::nullopt;
  PullStatus status;
  status.r = it->second.r;
  status.answered_members = it->second.answered.size();
  status.answered_slots = it->second.slots;
  return status;
}

AerNode::ResponderStatus AerNode::responder_status(NodeId x,
                                                   StringId s) const {
  ResponderStatus status;
  const auto it = responder_.find(pack_xs(x, s));
  if (it == responder_.end()) return status;
  status.known = true;
  status.polled = it->second.polled;
  status.answered = it->second.answered;
  status.slots = it->second.slots;
  return status;
}

bool AerNode::over_budget(StringId s) const {
  return answers_sent(s) > shared_->config.resolved_answer_budget();
}

void AerNode::on_start(sim::Context& ctx) {
  // Push phase: diffuse the initial candidate to the d nodes whose Push
  // Quorum for it contains us. The permutation-based sampler gives the
  // target set directly (Lemma 3: O(log n) messages per node).
  const auto skey = shared_->key_of(initial_);
  for (NodeId target : shared_->samplers.push.targets(skey, self_)) {
    ctx.send(target, push_msg(initial_));
  }
  // Algorithm 1 runs over L_x, which initially holds s_x.
  start_pull(ctx, initial_);
}

void AerNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  switch (env.msg.kind) {
    case sim::MessageKind::kPush:
      handle_push(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPoll:
      handle_poll(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kPull:
      handle_pull(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kFw1:
      handle_fw1(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kFw2:
      handle_fw2(ctx, env.src, env.msg);
      break;
    case sim::MessageKind::kAnswer:
      handle_answer(ctx, env.src, env.msg);
      break;
    default:
      break;  // other protocols' kinds (adversarial garbage) are ignored
  }
}

// ----- push phase ----------------------------------------------------------

void AerNode::handle_push(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (in_list_.count(m.s) > 0) return;  // already a candidate
  // Filter: only members of I(s, self) may push s to us; each sender is
  // credited once, with its slot multiplicity.
  const auto& quorum = shared_->push_cache.get(shared_->key_of(m.s), self_);
  const std::size_t mult = quorum.multiplicity(from);
  if (mult == 0) return;  // not in our Push Quorum for s: ignore silently
  PushTally& tally = push_tallies_[m.s];
  if (already_counted(tally.counted, from)) return;
  tally.counted.push_back(from);
  tally.slots += mult;
  if (tally.slots * 2 > quorum.size()) {
    accept_candidate(ctx, m.s);
    push_tallies_.erase(m.s);  // tally no longer needed
  }
}

void AerNode::accept_candidate(sim::Context& ctx, StringId s) {
  if (!in_list_.insert(s).second) return;
  candidates_.push_back(s);
  if (!has_decided_) start_pull(ctx, s);
}

// ----- pull phase: requester (Algorithm 1) ---------------------------------

void AerNode::start_pull(sim::Context& ctx, StringId s) {
  if (my_pulls_.count(s) > 0) return;
  MyPull& pull = my_pulls_[s];
  pull.r = shared_->samplers.poll.random_label(ctx.rng());

  const sim::Message poll = poll_msg(s, pull.r);
  for (NodeId w : distinct_members(shared_->poll_cache.get(self_, pull.r))) {
    ctx.send(w, poll);
  }
  const sim::Message pull_req = pull_msg(s, pull.r);
  const auto& h = shared_->pull_cache.get(shared_->key_of(s), self_);
  for (NodeId y : distinct_members(h)) {
    ctx.send(y, pull_req);
  }
}

void AerNode::handle_answer(sim::Context& ctx, NodeId from,
                            const sim::Message& m) {
  if (has_decided_) return;
  const auto it = my_pulls_.find(m.s);
  if (it == my_pulls_.end()) return;  // never asked about s
  MyPull& pull = it->second;
  const auto& poll_list = shared_->poll_cache.get(self_, pull.r);
  const std::size_t mult = poll_list.multiplicity(from);
  if (mult == 0) return;  // answer from outside J(x, r_{x,s})
  if (already_counted(pull.answered, from)) return;  // one answer per member
  pull.answered.push_back(from);
  pull.slots += mult;
  if (pull.slots * 2 > poll_list.size()) decide(ctx, m.s);
}

void AerNode::decide(sim::Context& ctx, StringId s) {
  if (has_decided_) return;
  has_decided_ = true;
  decided_ = s;
  current_ = s;  // s_this is updated accordingly (Algorithm 3's data note)
  ctx.decide(s);
  // "Wait for has_decided" resolves now: serve the deferred requests whose
  // string matches our decided belief.
  auto pending = std::move(deferred_);
  deferred_.clear();
  for (const auto& [x, str] : pending) {
    if (str == current_) emit_answer(ctx, x, str);
  }
  serve_retained(ctx);
}

void AerNode::serve_retained(sim::Context& ctx) {
  // A node that just learned gstring starts serving the requests for it that
  // arrived while it still believed its own candidate (Algorithm 3's
  // "s_w was changed accordingly", applied to all three relay roles). This
  // is what lets nodes whose quorums contain initially-unknowledgeable
  // members still gather their majorities.
  for (const auto& [key, r] : pending_pulls_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (s == current_) forward_pull(ctx, x, s, r);
  }
  pending_pulls_.clear();

  for (auto& [key, per_w] : fw1_tallies_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    const auto& h_x = shared_->pull_cache.get(shared_->key_of(s), x);
    for (auto& [w, tally] : per_w) {
      if (!tally.fired && tally.slots * 2 > h_x.size()) {
        tally.fired = true;
        ctx.send(w, fw2_msg(x, s, tally.r));
      }
    }
  }

  const auto& h_self = shared_->pull_cache.get(shared_->key_of(current_), self_);
  for (auto& [key, st] : responder_) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (!st.answered && st.polled && st.slots * 2 > h_self.size()) {
      st.answered = true;
      emit_answer(ctx, x, s);
    }
  }
}

// ----- pull phase: forwarder, first hop (Algorithm 2) -----------------------

void AerNode::handle_pull(sim::Context& ctx, NodeId from, const sim::Message& m) {
  // Only members of the sender's Pull Quorum for s may route the request.
  const auto skey = shared_->key_of(m.s);
  if (!shared_->pull_cache.get(skey, from).contains(self_)) return;
  if (m.s != current_) {
    // Not (yet) our belief. Retain it: if we later decide on s, we serve it
    // (post-decision answering, Algorithm 3). One slot per (x, s).
    if (!has_decided_) pending_pulls_.emplace(pack_xs(from, m.s), m.r);
    return;
  }
  forward_pull(ctx, from, m.s, m.r);
}

void AerNode::forward_pull(sim::Context& ctx, NodeId x, StringId s,
                           PollLabel r) {
  // Flooding guard ("keep track of senders"): one forward per (x, s).
  if (!forwarded_.insert(pack_xs(x, s)).second) return;
  const auto skey = shared_->key_of(s);
  for (NodeId w : distinct_members(shared_->poll_cache.get(x, r))) {
    const sim::Message fw1 = fw1_msg(x, s, r, w);
    for (NodeId z : distinct_members(shared_->pull_cache.get(skey, w))) {
      ctx.send(z, fw1);
    }
  }
}

// ----- pull phase: relay, second hop (Algorithm 2) ---------------------------

void AerNode::handle_fw1(sim::Context& ctx, NodeId from, const sim::Message& m) {
  const auto skey = shared_->key_of(m.s);
  const auto& h_w = shared_->pull_cache.get(skey, m.b);
  if (!h_w.contains(self_)) return;  // this in H(s, w)
  const auto& h_x = shared_->pull_cache.get(skey, m.a);
  const std::size_t mult = h_x.multiplicity(from);
  if (mult == 0) return;  // y in H(s, x)
  if (!shared_->poll_cache.get(m.a, m.r).contains(m.b)) return;  // w in J(x,r)

  // Vouching is tallied even when s is not (yet) our belief; the Fw2 is only
  // emitted while s = s_this (now or after deciding on s).
  Fw1Tally& tally = fw1_tallies_[pack_xs(m.a, m.s)][m.b];
  if (tally.fired || already_counted(tally.counted, from)) return;
  if (tally.counted.empty()) tally.r = m.r;
  tally.counted.push_back(from);
  tally.slots += mult;
  if (m.s == current_ && tally.slots * 2 > h_x.size()) {
    tally.fired = true;  // forward only once
    ctx.send(m.b, fw2_msg(m.a, m.s, m.r));
  }
}

// ----- pull phase: responder (Algorithm 3) -----------------------------------

void AerNode::handle_fw2(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (!shared_->poll_cache.get(m.a, m.r).contains(self_)) return;  // in J(x,r)
  const auto skey = shared_->key_of(m.s);
  const auto& h_self = shared_->pull_cache.get(skey, self_);
  const std::size_t mult = h_self.multiplicity(from);
  if (mult == 0) return;  // z in H(s, this)

  // Evidence is tallied regardless of current belief; answers require
  // s = s_this (initially our candidate, after deciding the decided value).
  ResponderState& st = responder_[pack_xs(m.a, m.s)];
  if (st.answered || already_counted(st.counted, from)) return;
  st.counted.push_back(from);
  st.slots += mult;
  if (m.s == current_ && st.slots * 2 > h_self.size() && st.polled) {
    st.answered = true;
    emit_answer(ctx, m.a, m.s);
  }
}

void AerNode::handle_poll(sim::Context& ctx, NodeId from, const sim::Message& m) {
  if (!shared_->poll_cache.get(from, m.r).contains(self_)) return;
  ResponderState& st = responder_[pack_xs(from, m.s)];
  if (st.polled) return;
  st.polled = true;
  // Necessary in the asynchronous case: the Fw2 majority may have formed
  // before the Poll arrived.
  const auto& h_self = shared_->pull_cache.get(shared_->key_of(m.s), self_);
  if (m.s == current_ && !st.answered && st.slots * 2 > h_self.size()) {
    st.answered = true;
    emit_answer(ctx, from, m.s);
  }
}

void AerNode::emit_answer(sim::Context& ctx, NodeId x, StringId s) {
  // Algorithm 3's answer budget: an overloaded node stops answering until it
  // has decided (then it answers for its decided string only).
  if (!has_decided_ && over_budget(s)) {
    if (shared_->config.defer_answers) {
      deferred_.emplace_back(x, s);
      deferred_peak_ = std::max(deferred_peak_, deferred_.size());
    }
    return;
  }
  ++answer_counts_[s];
  ctx.send(x, answer_msg(s));
}

}  // namespace fba::aer
