// AerNode: one protocol participant, implementing both phases of AER
// (Section 3.1) as a pure message-reactive actor — the same code runs under
// the synchronous and asynchronous engines.
//
// Push phase (3.1.1): on start, diffuse the initial candidate s_x to the d
// nodes x' with self in I(s_x, x'). A received Push(s) from y counts toward
// the quorum I(s, self) only if y occupies a slot of it; when more than half
// of the slots have pushed s, s joins the candidate list L_x and a pull is
// started for it. Nodes never react to pushes by sending messages, so the
// phase is impervious to flooding.
//
// Pull phase (3.1.2, Algorithms 1-3): to verify candidate s, send
// Poll(s, r) to the poll list J(self, r) (r fresh and random per candidate)
// and Pull(s, r) to the Pull Quorum H(s, self). Quorum members route the
// request in two majority-filtered hops (Fw1 via H(s, w), then Fw2 to w);
// poll-list members answer subject to the log^2 n budget, deferring excess
// work until they have decided. Deciding requires answers from a majority of
// the poll list.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aer/config.h"
#include "aer/messages.h"
#include "net/node.h"

namespace fba::aer {

class AerNode final : public sim::Actor {
 public:
  AerNode(const AerShared* shared, NodeId self, StringId initial_candidate);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

  // ----- post-run introspection (read by the harness / tests) -------------

  bool has_decided() const { return has_decided_; }
  StringId decided_value() const { return decided_; }
  StringId initial_candidate() const { return initial_; }
  /// L_x, including the initial candidate.
  const std::vector<StringId>& candidate_list() const { return candidates_; }
  bool has_candidate(StringId s) const { return in_list_.count(s) > 0; }
  /// Answers emitted for each string (Algorithm 3's Counts).
  std::size_t answers_sent(StringId s) const;
  std::size_t deferred_peak() const { return deferred_peak_; }

  /// Requester-side introspection (tests / diagnostics).
  struct PullStatus {
    PollLabel r = 0;
    std::size_t answered_members = 0;
    std::size_t answered_slots = 0;
  };
  std::optional<PullStatus> pull_status(StringId s) const;

  /// Responder-side introspection for a given requester/string pair.
  struct ResponderStatus {
    bool known = false;
    bool polled = false;
    bool answered = false;
    std::size_t slots = 0;
  };
  ResponderStatus responder_status(NodeId x, StringId s) const;

 private:
  // -- handlers, one per message kind --
  void handle_push(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_poll(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_pull(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_fw1(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_fw2(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_answer(sim::Context& ctx, NodeId from, const sim::Message& m);

  /// Adds s to L_x (if new) and starts its verification pull (Algorithm 1).
  void accept_candidate(sim::Context& ctx, StringId s);
  void start_pull(sim::Context& ctx, StringId s);

  /// Answer emission with the Algorithm 3 budget: over-budget answers are
  /// deferred until this node decides ("Wait for has_decided").
  void emit_answer(sim::Context& ctx, NodeId x, StringId s);
  void decide(sim::Context& ctx, StringId s);
  bool over_budget(StringId s) const;
  void forward_pull(sim::Context& ctx, NodeId x, StringId s, PollLabel r);
  /// Post-decision service: requests for the decided string whose evidence
  /// accumulated while we still believed something else.
  void serve_retained(sim::Context& ctx);

  static std::uint64_t pack_xs(NodeId x, StringId s) {
    return (static_cast<std::uint64_t>(x) << 32) | s;
  }

  const AerShared* shared_;
  NodeId self_;
  StringId initial_;   ///< s_x: forwarding filter for the pull phase.
  StringId current_;   ///< s_this: initial candidate until decision.
  bool has_decided_ = false;
  StringId decided_ = kNoString;

  // -- push-phase state --
  struct PushTally {
    std::vector<NodeId> counted;  ///< distinct senders already credited.
    std::size_t slots = 0;        ///< quorum slots of I(s, self) that pushed.
  };
  std::unordered_map<StringId, PushTally> push_tallies_;
  std::vector<StringId> candidates_;
  std::unordered_set<StringId> in_list_;

  // -- requester state (Algorithm 1) --
  struct MyPull {
    PollLabel r = 0;
    std::vector<NodeId> answered;  ///< distinct poll-list members that replied.
    std::size_t slots = 0;         ///< poll-list slots covered by answers.
  };
  std::unordered_map<StringId, MyPull> my_pulls_;

  // -- forwarder state (Algorithm 2, first hop) --
  /// Flooding guard: forward at most one request per (x, s).
  std::unordered_set<std::uint64_t> forwarded_;
  /// Pull requests for strings we do not (yet) believe in. If we later
  /// decide on that string, we serve them — the post-decision answering of
  /// Algorithm 3 applied to the forwarding role. Keyed by (x, s).
  std::unordered_map<std::uint64_t, PollLabel> pending_pulls_;

  // -- relay state (Algorithm 2, second hop): z in H(s, w) --
  struct Fw1Tally {
    std::vector<NodeId> counted;  ///< distinct vouching y in H(s, x).
    std::size_t slots = 0;        ///< slots of H(s, x) vouching.
    bool fired = false;           ///< Fw2 already sent ("forward only once").
    PollLabel r = 0;              ///< label from the vouched request.
  };
  /// Keyed by (x, s) then by w: z may serve several poll-list members.
  std::unordered_map<std::uint64_t, std::unordered_map<NodeId, Fw1Tally>>
      fw1_tallies_;

  // -- responder state (Algorithm 3): this in J(x, r) --
  struct ResponderState {
    std::vector<NodeId> counted;  ///< distinct vouching z in H(s, this).
    std::size_t slots = 0;        ///< slots of H(s, this) vouching.
    bool polled = false;          ///< Poll(s, r) received from x.
    bool answered = false;        ///< Answer sent ("forward once").
  };
  std::unordered_map<std::uint64_t, ResponderState> responder_;
  std::unordered_map<StringId, std::size_t> answer_counts_;  ///< Counts
  std::deque<std::pair<NodeId, StringId>> deferred_;  ///< over-budget answers
  std::size_t deferred_peak_ = 0;
};

}  // namespace fba::aer
