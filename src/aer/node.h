// AerNode: one protocol participant, implementing both phases of AER
// (Section 3.1) as a pure message-reactive actor — the same code runs under
// the synchronous and asynchronous engines.
//
// Push phase (3.1.1): on start, diffuse the initial candidate s_x to the d
// nodes x' with self in I(s_x, x'). A received Push(s) from y counts toward
// the quorum I(s, self) only if y occupies a slot of it; when more than half
// of the slots have pushed s, s joins the candidate list L_x and a pull is
// started for it. Nodes never react to pushes by sending messages, so the
// phase is impervious to flooding.
//
// Pull phase (3.1.2, Algorithms 1-3): to verify candidate s, send
// Poll(s, r) to the poll list J(self, r) (r fresh and random per candidate)
// and Pull(s, r) to the Pull Quorum H(s, self). Quorum members route the
// request in two majority-filtered hops (Fw1 via H(s, w), then Fw2 to w);
// poll-list members answer subject to the log^2 n budget, deferring excess
// work until they have decided. Deciding requires answers from a majority of
// the poll list.
//
// State layout (the per-delivery hot path touches no node-based container):
//   - per-string tallies (push, my pulls, answer counts, L_x membership)
//     sit behind open-addressed FlatMap64s keyed by the dense StringId;
//     per-tally "who already counted" lists are fixed-capacity spans in one
//     bump arena (a tally credits at most d distinct members).
//   - quorum membership/multiplicity checks read the dense sampler tables
//     through AerShared (no hashing, no allocation).
//   - the three *retained* maps (pending pulls, Fw1 tallies, responder
//     state) stay std::unordered_map: serve_retained() iterates them to
//     emit messages, and simulation behavior depends on send order — their
//     libstdc++ iteration order is part of the pinned golden-fingerprint
//     behavior. They draw nodes/buckets from a per-node Pool, so warm
//     arena-reused trials still allocate nothing, and reset() reconstructs
//     them so bucket-growth history (and thus iteration order) is identical
//     to a freshly built node's.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "aer/config.h"
#include "aer/messages.h"
#include "net/node.h"
#include "support/flat_map.h"
#include "support/pool.h"

namespace fba::aer {

class AerNode final : public sim::Actor {
 public:
  AerNode(const AerShared* shared, NodeId self, StringId initial_candidate);

  /// Re-initializes this node for a fresh trial, keeping every container's
  /// capacity and the retained maps' memory pool (trial-arena reuse). A
  /// reset node behaves bit-identically to a freshly constructed one.
  void reset(const AerShared* shared, NodeId self, StringId initial_candidate);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

  // ----- post-run introspection (read by the harness / tests) -------------

  bool has_decided() const { return has_decided_; }
  StringId decided_value() const { return decided_; }
  StringId initial_candidate() const { return initial_; }
  /// L_x, including the initial candidate.
  const std::vector<StringId>& candidate_list() const { return candidates_; }
  bool has_candidate(StringId s) const { return in_list_.contains(s); }
  /// Answers emitted for each string (Algorithm 3's Counts).
  std::size_t answers_sent(StringId s) const;
  std::size_t deferred_peak() const { return deferred_peak_; }

  /// Requester-side introspection (tests / diagnostics).
  struct PullStatus {
    PollLabel r = 0;
    std::size_t answered_members = 0;
    std::size_t answered_slots = 0;
  };
  std::optional<PullStatus> pull_status(StringId s) const;

  /// Responder-side introspection for a given requester/string pair.
  struct ResponderStatus {
    bool known = false;
    bool polled = false;
    bool answered = false;
    std::size_t slots = 0;
  };
  ResponderStatus responder_status(NodeId x, StringId s) const;

 private:
  // -- handlers, one per message kind --
  void handle_push(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_poll(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_pull(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_fw1(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_fw2(sim::Context& ctx, NodeId from, const sim::Message& m);
  void handle_answer(sim::Context& ctx, NodeId from, const sim::Message& m);

  /// Adds s to L_x (if new) and starts its verification pull (Algorithm 1).
  void accept_candidate(sim::Context& ctx, StringId s);
  void start_pull(sim::Context& ctx, StringId s);

  /// Answer emission with the Algorithm 3 budget: over-budget answers are
  /// deferred until this node decides ("Wait for has_decided").
  void emit_answer(sim::Context& ctx, NodeId x, StringId s);
  void decide(sim::Context& ctx, StringId s);
  bool over_budget(StringId s) const;
  void forward_pull(sim::Context& ctx, NodeId x, StringId s, PollLabel r);
  /// Post-decision service: requests for the decided string whose evidence
  /// accumulated while we still believed something else.
  void serve_retained(sim::Context& ctx);

  static std::uint64_t pack_xs(NodeId x, StringId s) {
    return (static_cast<std::uint64_t>(x) << 32) | s;
  }

  // -- credited-sender spans: fixed d-capacity slices of counted_arena_ --
  NodeId* counted_at(std::uint32_t off) { return counted_arena_.data() + off; }
  const NodeId* counted_at(std::uint32_t off) const {
    return counted_arena_.data() + off;
  }
  std::uint32_t new_counted_span();
  static bool already_counted(const NodeId* counted, std::uint32_t count,
                              NodeId who);

  const AerShared* shared_;
  NodeId self_ = 0;
  std::uint32_t d_ = 0;  ///< resolved quorum size (counted-span stride).
  StringId initial_ = kNoString;  ///< s_x: forwarding filter for the pull phase.
  StringId current_ = kNoString;  ///< s_this: initial candidate until decision.
  bool has_decided_ = false;
  StringId decided_ = kNoString;

  /// Memory pool behind the three retained maps. Declared before them so it
  /// outlives their destructors.
  support::Pool pool_;

  // -- push-phase state --
  struct PushTally {
    std::uint32_t slots = 0;        ///< quorum slots of I(s, self) that pushed.
    std::uint32_t counted = 0;      ///< distinct senders already credited.
    std::uint32_t counted_off = 0;  ///< span in counted_arena_.
  };
  support::FlatMap64<PushTally> push_tallies_;  ///< keyed by StringId
  std::vector<StringId> candidates_;
  support::FlatSet64 in_list_;

  // -- requester state (Algorithm 1) --
  struct MyPull {
    PollLabel r = 0;
    std::uint32_t slots = 0;    ///< poll-list slots covered by answers.
    std::uint32_t answered = 0; ///< distinct poll-list members that replied.
    std::uint32_t answered_off = 0;
  };
  support::FlatMap64<MyPull> my_pulls_;  ///< keyed by StringId
  support::FlatMap64<std::uint32_t> answer_counts_;  ///< Counts, by StringId

  // -- forwarder state (Algorithm 2, first hop) --
  /// Flooding guard: forward at most one request per (x, s).
  support::FlatSet64 forwarded_;
  /// Pull requests for strings we do not (yet) believe in. If we later
  /// decide on that string, we serve them — the post-decision answering of
  /// Algorithm 3 applied to the forwarding role. Keyed by (x, s).
  /// ORDER-CRITICAL: iterated by serve_retained() to send messages.
  template <typename K, typename V>
  using RetainedMap =
      std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                         support::PoolAllocator<std::pair<const K, V>>>;
  RetainedMap<std::uint64_t, PollLabel> pending_pulls_;

  // -- relay state (Algorithm 2, second hop): z in H(s, w) --
  struct Fw1Tally {
    PollLabel r = 0;            ///< label from the vouched request.
    std::uint32_t slots = 0;    ///< slots of H(s, x) vouching.
    std::uint32_t counted = 0;  ///< distinct vouching y in H(s, x).
    std::uint32_t counted_off = 0;
    bool fired = false;         ///< Fw2 already sent ("forward only once").
  };
  /// Keyed by (x, s) then by w: z may serve several poll-list members.
  /// ORDER-CRITICAL (iterated by serve_retained, outer and inner).
  RetainedMap<std::uint64_t, RetainedMap<NodeId, Fw1Tally>> fw1_tallies_;

  // -- responder state (Algorithm 3): this in J(x, r) --
  struct ResponderState {
    std::uint32_t slots = 0;    ///< slots of H(s, this) vouching.
    std::uint32_t counted = 0;  ///< distinct vouching z in H(s, this).
    std::uint32_t counted_off = 0;
    bool polled = false;        ///< Poll(s, r) received from x.
    bool answered = false;      ///< Answer sent ("forward once").
  };
  /// Keyed by (x, s). ORDER-CRITICAL (iterated by serve_retained).
  RetainedMap<std::uint64_t, ResponderState> responder_;

  std::vector<std::pair<NodeId, StringId>> deferred_;  ///< over-budget answers
  std::size_t deferred_peak_ = 0;

  /// Backing store for all credited-sender spans (d entries per tally).
  std::vector<NodeId> counted_arena_;
  /// Scratch for push-target evaluation (on_start).
  std::vector<NodeId> targets_scratch_;
};

}  // namespace fba::aer
