#include "aer/protocol.h"

#include <algorithm>
#include <cmath>

#include "aer/runner.h"
#include "support/table.h"

namespace fba::aer {

const char* model_name(Model model) {
  switch (model) {
    case Model::kSyncNonRushing:
      return "sync-nonrushing";
    case Model::kSyncRushing:
      return "sync-rushing";
    case Model::kAsync:
      return "async";
  }
  return "?";
}

std::size_t AerConfig::resolved_t() const {
  if (explicit_t >= 0) return static_cast<std::size_t>(explicit_t);
  return static_cast<std::size_t>(
      std::floor(corrupt_fraction * static_cast<double>(n)));
}

std::size_t AerConfig::resolved_d() const {
  if (d_override > 0) return d_override;
  const double log2n = std::log2(static_cast<double>(n));
  return std::max<std::size_t>(
      8, static_cast<std::size_t>(std::lround(c_d * log2n)));
}

std::size_t AerConfig::resolved_answer_budget() const {
  if (answer_budget > 0) return answer_budget;
  const auto log2n = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(n))));
  return log2n * log2n;
}

std::size_t AerConfig::resolved_gstring_bits() const {
  return gstring_c * static_cast<std::size_t>(node_id_bits(n));
}

AerWorld build_aer_world(const AerConfig& config,
                         const CorruptPicker& pick_corrupt) {
  AerWorld world;
  build_aer_world_into(world, config, pick_corrupt);
  return world;
}

namespace {

/// Shared body of the two build_aer_world_into overloads: `fixed_corrupt`
/// (when non-null) bypasses both the picker and the random draw.
void build_world_impl(AerWorld& world, const AerConfig& config,
                      const CorruptPicker& pick_corrupt,
                      const std::vector<NodeId>* fixed_corrupt) {
  FBA_REQUIRE(config.n >= 8, "AER needs at least 8 nodes");
  const std::size_t n = config.n;
  const std::size_t t = config.resolved_t();
  FBA_REQUIRE(t < n, "cannot corrupt every node");

  sampler::SamplerParams sp =
      sampler::SamplerParams::defaults(n, config.seed, config.c_d);
  sp.d = config.resolved_d();

  if (world.shared == nullptr) {
    world.shared = std::make_unique<AerShared>(config, sp);
  } else {
    world.shared->reset(config, sp);
  }
  AerShared& shared = *world.shared;
  world.correct.clear();
  world.runtime_corrupt.clear();

  Rng setup_rng = Rng(config.seed).split(0x5e7u);

  // The agreement value: c*log n bits, of which only a 2/3 fraction needs to
  // be uniformly random; the rest is adversary-influenced (it comes from
  // Byzantine committee members in the composed protocol). We fix those bits
  // to zero, the structured worst case for an oblivious choice.
  GstringSpec gspec;
  gspec.length_bits = config.resolved_gstring_bits();
  gspec.random_fraction = config.gstring_random_fraction;
  world.scratch.adversary_bits.reset_zero(gspec.length_bits);
  Rng gstring_rng = setup_rng.split(0x65u);
  make_gstring_into(gspec, world.scratch.adversary_bits, gstring_rng,
                    world.scratch.gstring);
  shared.gstring = shared.table.intern(world.scratch.gstring);

  // Non-adaptive corruption, before any protocol activity.
  Rng corrupt_rng = setup_rng.split(0xc0u);
  if (fixed_corrupt != nullptr) {
    world.view.corrupt.assign(fixed_corrupt->begin(), fixed_corrupt->end());
  } else if (pick_corrupt) {
    world.view.corrupt = pick_corrupt(n, t, corrupt_rng, shared);
  } else {
    adv::random_corruption_into(n, t, corrupt_rng, world.view.corrupt);
  }
  FBA_REQUIRE(world.view.corrupt.size() <= t,
              "corrupt picker exceeded its budget");

  std::vector<bool>& is_corrupt = world.scratch.is_corrupt;
  is_corrupt.assign(n, false);
  for (NodeId id : world.view.corrupt) is_corrupt.at(id) = true;

  for (NodeId id = 0; id < n; ++id) {
    if (!is_corrupt[id]) world.correct.push_back(id);
  }

  // Knowledgeable assignment: a random knowledgeable_fraction of correct
  // nodes starts with gstring; the rest start with private random strings
  // (the "sx can be random or set to a default value" case).
  const auto know_count = static_cast<std::size_t>(
      std::floor(config.knowledgeable_fraction *
                 static_cast<double>(world.correct.size())));
  Rng know_rng = setup_rng.split(0x4bu);
  world.scratch.shuffled = world.correct;
  std::vector<NodeId>& shuffled = world.scratch.shuffled;
  know_rng.shuffle(shuffled);

  world.view.shared = &shared;
  world.view.gstring = shared.gstring;
  world.view.initial.assign(n, kNoString);
  world.view.knowledgeable.assign(n, false);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    const NodeId id = shuffled[i];
    if (i < know_count) {
      world.view.initial[id] = shared.gstring;
      world.view.knowledgeable[id] = true;
    } else {
      world.scratch.candidate.randomize(gspec.length_bits, know_rng);
      world.view.initial[id] = shared.table.intern(world.scratch.candidate);
    }
  }
  world.decisions.reset(n);
}

}  // namespace

void build_aer_world_into(AerWorld& world, const AerConfig& config,
                          const CorruptPicker& pick_corrupt) {
  build_world_impl(world, config, pick_corrupt, nullptr);
}

void build_aer_world_into(AerWorld& world, const AerConfig& config,
                          const std::vector<NodeId>& fixed_corrupt) {
  build_world_impl(world, config, {}, &fixed_corrupt);
}

bool note_runtime_corruption(AerWorld& world, NodeId node) {
  world.runtime_corrupt.push_back(node);
  if (world.decisions.has_decided(node)) return false;
  auto it = std::find(world.correct.begin(), world.correct.end(), node);
  if (it == world.correct.end()) return false;
  world.correct.erase(it);
  return true;
}

void fill_outcome_and_traffic(AerReport& report, const AerWorld& world,
                              const TrafficMetrics& metrics) {
  const AerShared& shared = *world.shared;
  report.correct_count = world.correct.size();
  report.knowledgeable_count = 0;
  for (bool k : world.view.knowledgeable) {
    if (k) ++report.knowledgeable_count;
  }

  report.decided_count = world.decisions.count_decided(world.correct);
  report.decided_gstring =
      world.decisions.count_correct_decisions(world.correct, shared.gstring);
  report.everyone_decided = report.decided_count == world.correct.size();
  report.agreement = report.decided_gstring == world.correct.size();
  report.completion_time = world.decisions.completion_time(world.correct);

  double time_sum = 0;
  std::size_t timed = 0;
  for (NodeId id : world.correct) {
    if (world.decisions.has_decided(id)) {
      time_sum += world.decisions.time(id);
      ++timed;
    }
  }
  report.mean_decision_time = timed > 0 ? time_sum / timed : 0;

  report.total_messages = metrics.total_messages();
  report.total_bits = metrics.total_bits();
  report.amortized_bits = metrics.amortized_bits();
  report.sent_bits = metrics.sent_bits_stats();
  report.bits_by_kind = metrics.bits_by_kind();
  report.msgs_by_kind = metrics.messages_by_kind();
  report.fault_dropped_msgs = metrics.fault_dropped_messages();
  report.fault_dropped_bits = metrics.fault_dropped_bits();
  report.fault_delayed_msgs = metrics.fault_delayed_messages();
  report.fault_drops_by_cause = metrics.drops_by_cause();
  report.recovery_retransmit_msgs = metrics.recovery_retransmit_messages();
  report.recovery_retransmit_bits = metrics.recovery_retransmit_bits();
  report.recovery_acked_msgs = metrics.recovery_acked_messages();
  report.recovery_dead_msgs = metrics.recovery_dead_messages();
  report.recovery_dup_msgs = metrics.recovery_duplicate_messages();

  report.push_bits_per_node =
      report.n > 0
          ? static_cast<double>(metrics.bits_of(sim::MessageKind::kPush)) /
                static_cast<double>(report.n)
          : 0;
}

namespace {

/// AER-specific report sections (candidate lists, deferred-answer peaks).
/// Walks world.correct (not the dense actor table) so nodes flipped by a
/// runtime corruption drop out of the harvest, matching the SoA path —
/// identical to the old whole-table walk for static runs, where `correct`
/// and the non-null entries of `nodes` coincide.
void fill_aer_specific(AerReport& report, const AerWorld& world,
                       const std::vector<AerNode*>& nodes) {
  const AerShared& shared = *world.shared;
  for (NodeId id : world.correct) {
    AerNode* node = nodes[id];
    if (node == nullptr) continue;
    report.sum_candidate_lists += node->candidate_list().size();
    report.max_candidate_list =
        std::max(report.max_candidate_list, node->candidate_list().size());
    if (!node->has_candidate(shared.gstring)) ++report.nodes_missing_gstring;
    report.max_deferred_answers =
        std::max(report.max_deferred_answers, node->deferred_peak());
  }
}

}  // namespace

AerReport run_aer(const AerConfig& config, const StrategyFactory& make_strategy,
                  const CorruptPicker& pick_corrupt) {
  AerWorld world = build_aer_world(config, pick_corrupt);
  // World-owning variant of run_aer_world: the whole run — world included —
  // is self-contained, so concurrent run_aer calls (the experiment runner's
  // trials) share nothing. Captures are by value because the world moves.
  AerShared* shared = world.shared.get();
  const std::vector<StringId> initial = world.view.initial;
  auto nodes =
      std::make_shared<std::vector<AerNode*>>(config.n, nullptr);
  return run_world_protocol(
      std::move(world),
      [shared, initial, nodes](NodeId id) {
        auto actor = std::make_unique<AerNode>(shared, id, initial[id]);
        (*nodes)[id] = actor.get();
        return actor;
      },
      make_strategy,
      [nodes](AerReport& report, AerWorld& owned) {
        fill_aer_specific(report, owned, *nodes);
      });
}

AerReport run_aer_world_arena(AerWorld& world, RunArena& arena,
                              const StrategyFactory& make_strategy) {
  // Mirrors run_world_protocol step for step (order included — the golden
  // fingerprints pin it), substituting engine reset and pooled actors for
  // fresh construction.
  const AerConfig& config = world.shared->config;
  world.decisions.reset(config.n);

  AerReport report;
  report.n = config.n;
  report.t = world.view.corrupt.size();
  report.d = config.resolved_d();
  report.model = config.model;

  std::unique_ptr<adv::Strategy> strategy;
  if (make_strategy) strategy = make_strategy(world.view);

  std::size_t decided = 0;
  std::size_t target = world.correct.size();
  auto on_decide = [&world, &decided](NodeId node, StringId value,
                                      double time) {
    if (!world.decisions.has_decided(node)) ++decided;
    world.decisions.record(node, value, time);
  };
  auto done = [&] { return decided >= target; };
  auto on_corrupt = [&world, &target](NodeId node, double /*time*/) {
    if (note_runtime_corruption(world, node)) --target;
  };

  auto wire_nodes = [&](auto& engine) {
    engine.set_wire(&world.shared->wire());
    engine.set_fault_plan(&config.fault_plan);
    engine.set_recovery_plan(&config.recovery_plan);
    engine.set_corrupt(world.view.corrupt);
    arena.wire_actors(engine, world);
    engine.set_strategy(strategy.get());
    engine.set_decision_callback(on_decide);
    engine.set_corruption_budget(config.adaptive_budget);
    engine.set_corruption_callback(on_corrupt);
  };
  auto harvest_adaptive = [&report](auto& engine) {
    report.runtime_corruptions = engine.corruptions_spent();
    report.first_corruption_time = engine.first_corruption_time();
    report.last_corruption_time = engine.last_corruption_time();
  };

  if (config.model == Model::kAsync) {
    sim::AsyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.max_time = config.max_time;
    if (arena.async.has_value()) arena.async->reset(ec);
    else arena.async.emplace(ec);
    sim::AsyncEngine& engine = *arena.async;
    wire_nodes(engine);
    const auto result = engine.run(done);
    report.engine_time = result.time;
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
  } else {
    sim::SyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.rushing_adversary = config.model == Model::kSyncRushing;
    ec.max_rounds = config.max_rounds;
    if (arena.sync.has_value()) arena.sync->reset(ec);
    else arena.sync.emplace(ec);
    sim::SyncEngine& engine = *arena.sync;
    wire_nodes(engine);
    const auto result = engine.run(done);
    report.engine_time = static_cast<double>(result.rounds);
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
  }
  fill_aer_specific(report, world, arena.active);
  return report;
}

AerReport run_aer_world(AerWorld& world, const StrategyFactory& make_strategy) {
  std::vector<AerNode*> nodes(world.shared->config.n, nullptr);
  auto make_actor = [&world, &nodes](NodeId id) {
    auto actor = std::make_unique<AerNode>(world.shared.get(), id,
                                           world.view.initial[id]);
    nodes[id] = actor.get();
    return actor;
  };
  auto post_run = [&world, &nodes](AerReport& report) {
    fill_aer_specific(report, world, nodes);
  };
  return run_world_protocol(world, make_actor, make_strategy, post_run);
}

std::vector<std::string> report_header() {
  return {"protocol", "n",         "t",          "d",       "time",
          "bits/node", "max bits", "imbalance",  "decided", "agree"};
}

std::vector<std::string> report_row(const std::string& label,
                                    const AerReport& r) {
  return {label,
          Table::num(static_cast<std::uint64_t>(r.n)),
          Table::num(static_cast<std::uint64_t>(r.t)),
          Table::num(static_cast<std::uint64_t>(r.d)),
          Table::num(r.completion_time),
          Table::num(r.amortized_bits, 0),
          Table::num(r.sent_bits.max, 0),
          Table::num(r.sent_bits.imbalance(), 2),
          Table::num(static_cast<std::uint64_t>(r.decided_count)) + "/" +
              Table::num(static_cast<std::uint64_t>(r.correct_count)),
          r.agreement ? "yes" : "NO"};
}

}  // namespace fba::aer
