// Harness: assembles a full AER run — samplers, gstring, corruption,
// knowledgeable assignment, engine, adversary — executes it, and reports the
// paper's metrics (decision outcome, time, amortized and per-node bits).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "aer/config.h"
#include "aer/node.h"
#include "support/metrics.h"

namespace fba::aer {

/// Everything the adversary may know at setup time (full information):
/// public samplers, the string table, everyone's initial candidate, the
/// corrupt roster and the value under agreement.
struct AerWorldView {
  AerShared* shared = nullptr;
  StringId gstring = kNoString;
  std::vector<StringId> initial;    ///< per-node initial candidate.
  std::vector<bool> knowledgeable;  ///< correct and initially holding gstring.
  std::vector<NodeId> corrupt;
};

/// Builds the adversary brain once the world is known.
using StrategyFactory =
    std::function<std::unique_ptr<adv::Strategy>(const AerWorldView&)>;

/// Overrides the corrupt-set choice (still non-adaptive: runs before any
/// protocol activity). Receives the shared setup so attacks can seize
/// specific quorums.
using CorruptPicker = std::function<std::vector<NodeId>(
    std::size_t n, std::size_t t, Rng& rng, AerShared& shared)>;

/// A fully assembled run environment. Exposed so that the BA composition
/// (ba/) and the baseline AE->E protocols (baseline/) can execute against
/// the *same* world — same corrupt set, same initial candidates, same wire
/// format — for apples-to-apples comparisons.
struct AerWorld {
  std::unique_ptr<AerShared> shared;
  AerWorldView view;
  std::vector<NodeId> correct;
  /// Nodes flipped *during* the run by an adaptive strategy (corrupt_now),
  /// in corruption order. Empty under the paper's non-adaptive model.
  /// Undecided victims are removed from `correct` at corruption time; a
  /// victim that had already decided stays (its decision stands).
  std::vector<NodeId> runtime_corrupt;
  DecisionLog decisions;

  /// Build-time scratch buffers, kept so that rebuilding this world for the
  /// next trial (build_aer_world_into) reuses their capacity.
  struct Scratch {
    BitString gstring;
    BitString adversary_bits;
    BitString candidate;
    std::vector<NodeId> shuffled;
    std::vector<bool> is_corrupt;
  };
  Scratch scratch;
};

/// Builds samplers, gstring, the corrupt set and the knowledgeable
/// assignment per `config`.
AerWorld build_aer_world(const AerConfig& config,
                         const CorruptPicker& pick_corrupt = {});

/// In-place variant: rebuilds `world` for a fresh trial with identical
/// semantics (same RNG draws, same results), reusing the world's storage —
/// shared setup, string table, sampler tables, vectors. The trial-arena
/// path; a warm world rebuild performs no heap allocation under the default
/// corruption picker.
void build_aer_world_into(AerWorld& world, const AerConfig& config,
                          const CorruptPicker& pick_corrupt = {});

/// Fixed-roster variant (the exp::Service grudge path): rebuilds with the
/// given corrupt set instead of drawing one. The corrupt-set RNG split is
/// still taken, so pinning a roster changes nothing else about the build's
/// randomness (gstring, knowledgeable assignment). The roster is copied into
/// view.corrupt with capacity reuse — no allocation once the world is warm,
/// so a service can hold a grudge across thousands of instances for free.
void build_aer_world_into(AerWorld& world, const AerConfig& config,
                          const std::vector<NodeId>& fixed_corrupt);

struct AerReport {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t d = 0;
  Model model = Model::kSyncRushing;

  // Outcome.
  std::size_t correct_count = 0;
  std::size_t knowledgeable_count = 0;
  std::size_t decided_count = 0;        ///< correct nodes that decided.
  std::size_t decided_gstring = 0;      ///< ... on gstring.
  bool everyone_decided = false;
  bool agreement = false;  ///< every correct node decided on gstring.

  // Time (rounds in sync models, normalized time in async).
  double completion_time = 0;  ///< latest decision among correct nodes.
  double mean_decision_time = 0;
  double engine_time = 0;
  bool engine_completed = false;

  // Communication.
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  double amortized_bits = 0;  ///< total bits / n (the paper's measure).
  LoadStats sent_bits;        ///< per-node sent-bits distribution.
  /// Per-kind traffic, indexed by sim::kind_index().
  KindCounters bits_by_kind{};
  KindCounters msgs_by_kind{};
  /// Fault-layer activity (zero under the reliable-channel default).
  std::uint64_t fault_dropped_msgs = 0;
  std::uint64_t fault_dropped_bits = 0;
  std::uint64_t fault_delayed_msgs = 0;
  FaultCounters fault_drops_by_cause{};
  /// Recovery-sublayer activity (zero with the layer off). Retransmit bits
  /// are included in total_bits too — this isolates the layer's overhead,
  /// the measured cost of restoring the reliable-channel assumption.
  std::uint64_t recovery_retransmit_msgs = 0;
  std::uint64_t recovery_retransmit_bits = 0;
  std::uint64_t recovery_acked_msgs = 0;
  std::uint64_t recovery_dead_msgs = 0;
  std::uint64_t recovery_dup_msgs = 0;
  std::uint64_t msgs_of(sim::MessageKind k) const {
    return msgs_by_kind[sim::kind_index(k)];
  }
  std::uint64_t bits_of(sim::MessageKind k) const {
    return bits_by_kind[sim::kind_index(k)];
  }

  // Push phase (Lemmas 3-5).
  std::uint64_t sum_candidate_lists = 0;  ///< sum over correct x of |L_x|.
  std::size_t max_candidate_list = 0;
  std::size_t nodes_missing_gstring = 0;  ///< correct x with gstring not in L_x.
  double push_bits_per_node = 0;

  // Responder pressure (Lemma 6 attack surface).
  std::size_t max_deferred_answers = 0;

  // Adaptive-adversary corruption timeline (zero under the paper's
  // non-adaptive model). `t` above stays the *initial* corruption count;
  // runtime flips are accounted here.
  std::size_t runtime_corruptions = 0;
  double first_corruption_time = 0;
  double last_corruption_time = 0;

  // Memory (filled by the SoA scale runner only; 0 on the pointer path).
  // A deterministic logical account of the trial's working set — actor
  // state, event-core high-water mark, sampler tables, metrics — NOT a
  // measured RSS (support/mem.h documents the accounting contract).
  std::uint64_t mem_bytes = 0;
  double mem_bytes_per_node = 0;
};

AerReport run_aer(const AerConfig& config,
                  const StrategyFactory& make_strategy = {},
                  const CorruptPicker& pick_corrupt = {});

/// Runs AER on a prebuilt (possibly externally mutated) world; used by the
/// BA composition where the AE phase dictates initial candidates.
AerReport run_aer_world(AerWorld& world, const StrategyFactory& make_strategy = {});

/// Harness bookkeeping for one runtime corruption (the engines'
/// CorruptionCallback): appends the victim to world.runtime_corrupt; if it
/// had not yet decided it leaves world.correct (it can never decide, so the
/// all-decided stop must not wait for it) and the call returns true — the
/// caller shrinks its decision target by one. A victim that already decided
/// stays in world.correct: its decision stands. Shared by the pointer-path
/// and SoA runners so both account corruption identically.
bool note_runtime_corruption(AerWorld& world, NodeId node);

/// Fills the outcome (decisions vs gstring) and traffic sections of a
/// report from a finished run. Shared with the baseline AE->E protocols so
/// all Figure 1 rows are computed identically.
void fill_outcome_and_traffic(AerReport& report, const AerWorld& world,
                              const TrafficMetrics& metrics);

/// Renders the headline fields of a report as one table row; benches use it
/// to print Figure 1-style series.
std::vector<std::string> report_row(const std::string& label,
                                    const AerReport& report);
std::vector<std::string> report_header();

}  // namespace fba::aer
