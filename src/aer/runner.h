// Generic protocol runner: executes any actor-based protocol on a prebuilt
// AerWorld under the model selected in the world's config, wiring up the
// corrupt set, adversary strategy, decision bookkeeping and the
// all-correct-nodes-decided stop condition. Fills the outcome and traffic
// sections of the report; protocol-specific sections are the caller's.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "aer/protocol.h"
#include "net/async_engine.h"
#include "net/sync_engine.h"

namespace fba::aer {

/// Reusable run machinery for back-to-back trials (the trial-arena path):
/// one engine of each flavor, reset per trial instead of reconstructed, and
/// a pool of AerNode actors whose container storage survives across trials.
/// A warm arena executes a whole trial without heap allocation; results are
/// bit-identical to the fresh-construction path (reset() replicates
/// construction semantics — golden_test and exp_test enforce it).
struct RunArena {
  std::optional<sim::SyncEngine> sync;
  std::optional<sim::AsyncEngine> async;
  std::vector<std::unique_ptr<AerNode>> node_pool;
  /// Per-trial dispatch view: active[id] is the pooled actor of correct
  /// node id (nullptr for corrupt ids), valid until the next trial.
  std::vector<AerNode*> active;

  /// Resets `count` pooled nodes for a fresh trial and registers them with
  /// `engine` (non-owning) for every correct node; fills `active`.
  template <typename Engine>
  void wire_actors(Engine& engine, const AerWorld& world) {
    const std::size_t n = world.shared->config.n;
    active.assign(n, nullptr);
    std::size_t used = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (engine.is_corrupt(id)) continue;
      if (used == node_pool.size()) {
        node_pool.push_back(std::make_unique<AerNode>(
            world.shared.get(), id, world.view.initial[id]));
      } else {
        node_pool[used]->reset(world.shared.get(), id,
                               world.view.initial[id]);
      }
      AerNode* node = node_pool[used++].get();
      active[id] = node;
      engine.set_actor(id, static_cast<sim::Actor*>(node));
    }
  }
};

/// Runs AER on a prebuilt world through `arena` (engines reset in place,
/// pooled actors). Behavior-identical to run_aer_world.
AerReport run_aer_world_arena(AerWorld& world, RunArena& arena,
                              const StrategyFactory& make_strategy = {});

/// ActorFactory: NodeId -> std::unique_ptr<sim::Actor> (correct nodes only).
/// `post_run`, if given, runs after the report's common sections are filled
/// but while the engine (and thus the actors) is still alive — use it to
/// harvest protocol-specific actor state.
template <typename ActorFactory>
AerReport run_world_protocol(
    AerWorld& world, ActorFactory&& make_actor,
    const StrategyFactory& make_strategy = {},
    const std::function<void(AerReport&)>& post_run = {}) {
  const AerConfig& config = world.shared->config;
  world.decisions.reset(config.n);

  AerReport report;
  report.n = config.n;
  report.t = world.view.corrupt.size();
  report.d = config.resolved_d();
  report.model = config.model;

  std::unique_ptr<adv::Strategy> strategy;
  if (make_strategy) strategy = make_strategy(world.view);

  std::size_t decided = 0;
  std::size_t target = world.correct.size();
  auto on_decide = [&world, &decided](NodeId node, StringId value,
                                      double time) {
    if (!world.decisions.has_decided(node)) ++decided;
    world.decisions.record(node, value, time);
  };
  auto done = [&] { return decided >= target; };
  auto on_corrupt = [&world, &target](NodeId node, double /*time*/) {
    if (note_runtime_corruption(world, node)) --target;
  };

  auto wire_nodes = [&](auto& engine) {
    engine.set_wire(&world.shared->wire());
    engine.set_fault_plan(&config.fault_plan);
    engine.set_recovery_plan(&config.recovery_plan);
    engine.set_corrupt(world.view.corrupt);
    for (NodeId id = 0; id < config.n; ++id) {
      if (engine.is_corrupt(id)) continue;
      engine.set_actor(id, make_actor(static_cast<NodeId>(id)));
    }
    engine.set_strategy(strategy.get());
    engine.set_decision_callback(on_decide);
    engine.set_corruption_budget(config.adaptive_budget);
    engine.set_corruption_callback(on_corrupt);
  };
  auto harvest_adaptive = [&report](auto& engine) {
    report.runtime_corruptions = engine.corruptions_spent();
    report.first_corruption_time = engine.first_corruption_time();
    report.last_corruption_time = engine.last_corruption_time();
  };

  if (config.model == Model::kAsync) {
    sim::AsyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.max_time = config.max_time;
    sim::AsyncEngine engine(ec);
    wire_nodes(engine);
    const auto result = engine.run(done);
    report.engine_time = result.time;
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
    if (post_run) post_run(report);
  } else {
    sim::SyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.rushing_adversary = config.model == Model::kSyncRushing;
    ec.max_rounds = config.max_rounds;
    sim::SyncEngine engine(ec);
    wire_nodes(engine);
    const auto result = engine.run(done);
    report.engine_time = static_cast<double>(result.rounds);
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
    if (post_run) post_run(report);
  }
  return report;
}

/// World-owning overload: takes the world by rvalue and keeps it alive for
/// the duration of the run, so a trial can be packaged as a single
/// self-contained callable and shipped to a worker thread (the experiment
/// runner's pattern — nothing outside the call needs to outlive the world).
/// `post_run` additionally receives the world, since the caller's copy has
/// been moved from.
template <typename ActorFactory>
AerReport run_world_protocol(
    AerWorld&& world, ActorFactory&& make_actor,
    const StrategyFactory& make_strategy = {},
    const std::function<void(AerReport&, AerWorld&)>& post_run = {}) {
  AerWorld owned = std::move(world);
  std::function<void(AerReport&)> harvest;
  if (post_run) {
    harvest = [&post_run, &owned](AerReport& report) {
      post_run(report, owned);
    };
  }
  return run_world_protocol(owned, std::forward<ActorFactory>(make_actor),
                            make_strategy, harvest);
}

}  // namespace fba::aer
