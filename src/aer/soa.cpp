#include "aer/soa.h"

#include <algorithm>

#include "aer/messages.h"
#include "aer/runner.h"

namespace fba::aer {

// Every handler below is a line-for-line port of aer/node.cpp with the
// node's identity (`self`) explicit and each per-node container replaced by
// its SoA equivalent. Any behavioral edit here must be mirrored there (and
// vice versa); tests/scale_test.cpp pins the equivalence.

void SoaAerState::reset(const AerShared* shared,
                        const std::vector<StringId>& initial,
                        sim::EngineBase& engine) {
  shared_ = shared;
  n_ = shared->config.n;
  d_ = static_cast<std::uint32_t>(shared->config.resolved_d());
  burst_engine_ = nullptr;

  initial_.assign(initial.begin(), initial.end());
  current_ = initial_;
  decided_.assign(n_, kNoString);
  has_decided_.assign(n_, 0);
  candidate_count_.assign(n_, 0);
  deferred_peak_.assign(n_, 0);

  push_tallies_.clear();
  in_list_.clear();
  my_pulls_.clear();
  answer_counts_.clear();

  if (forwarded_.size() < n_) forwarded_.resize(n_);
  for (std::size_t id = 0; id < n_; ++id) forwarded_[id].clear();

  // The retained maps are reconstructed, not cleared, for the same reason
  // AerNode::reset reconstructs them: iteration order must match a freshly
  // built node's (bucket-growth history included).
  pending_pulls_.assign(n_, {});
  fw1_tallies_.assign(n_, {});
  responder_.assign(n_, {});
  deferred_.assign(n_, {});

  counted_arena_.clear();

  for (NodeId id = 0; id < n_; ++id) {
    if (engine.is_corrupt(id)) continue;
    engine.set_actor(id, static_cast<sim::Actor*>(this));
    // AerNode construction: L_x starts as {s_x}.
    candidate_count_[id] = 1;
    in_list_.insert(pack_ns(id, initial_[id]));
  }
}

std::uint32_t SoaAerState::new_counted_span() {
  const auto off = static_cast<std::uint32_t>(counted_arena_.size());
  counted_arena_.resize(counted_arena_.size() + d_);
  return off;
}

bool SoaAerState::already_counted(const NodeId* counted, std::uint32_t count,
                                  NodeId who) {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (counted[i] == who) return true;
  }
  return false;
}

bool SoaAerState::over_budget(NodeId self, StringId s) const {
  return answers_sent(self, s) > shared_->config.resolved_answer_budget();
}

void SoaAerState::on_start(sim::Context& ctx) {
  const NodeId self = ctx.self();
  shared_->push_targets(initial_[self], self, targets_scratch_);
  for (NodeId target : targets_scratch_) {
    ctx.send(target, push_msg(initial_[self]));
  }
  start_pull(ctx, self, initial_[self]);
}

void SoaAerState::on_message(sim::Context& ctx, const sim::Envelope& env) {
  const NodeId self = ctx.self();
  switch (env.msg.kind) {
    case sim::MessageKind::kPush:
      handle_push(ctx, self, env.src, env.msg);
      break;
    case sim::MessageKind::kPoll:
      handle_poll(ctx, self, env.src, env.msg);
      break;
    case sim::MessageKind::kPull:
      handle_pull(ctx, self, env.src, env.msg);
      break;
    case sim::MessageKind::kFw1:
      handle_fw1(ctx, self, env.src, env.msg);
      break;
    case sim::MessageKind::kFw2:
      handle_fw2(ctx, self, env.src, env.msg);
      break;
    case sim::MessageKind::kAnswer:
      handle_answer(ctx, self, env.src, env.msg);
      break;
    default:
      break;  // other protocols' kinds (adversarial garbage) are ignored
  }
}

// ----- push phase ----------------------------------------------------------

void SoaAerState::handle_push(sim::Context& ctx, NodeId self, NodeId from,
                              const sim::Message& m) {
  if (in_list_.contains(pack_ns(self, m.s))) return;  // already a candidate
  const sampler::QuorumView quorum = shared_->push_quorum(m.s, self);
  const std::size_t mult = quorum.multiplicity(from);
  if (mult == 0) return;  // not in our Push Quorum for s: ignore silently
  bool created = false;
  PushTally& tally = push_tallies_.get_or_create(pack_ns(self, m.s), created);
  if (created) tally.counted_off = new_counted_span();
  NodeId* counted = counted_at(tally.counted_off);
  if (already_counted(counted, tally.counted, from)) return;
  counted[tally.counted++] = from;
  tally.slots += static_cast<std::uint32_t>(mult);
  if (tally.slots * 2 > quorum.size()) {
    accept_candidate(ctx, self, m.s);
  }
}

void SoaAerState::accept_candidate(sim::Context& ctx, NodeId self,
                                   StringId s) {
  if (!in_list_.insert(pack_ns(self, s))) return;
  ++candidate_count_[self];
  if (!has_decided_[self]) start_pull(ctx, self, s);
}

// ----- pull phase: requester (Algorithm 1) ---------------------------------

void SoaAerState::start_pull(sim::Context& ctx, NodeId self, StringId s) {
  if (my_pulls_.contains(pack_ns(self, s))) return;
  bool created = false;
  MyPull& pull = my_pulls_.get_or_create(pack_ns(self, s), created);
  pull.answered_off = new_counted_span();
  pull.r = shared_->samplers.poll.random_label(ctx.rng());

  const sim::Message poll = poll_msg(s, pull.r);
  const sampler::QuorumView poll_view = shared_->poll_list(self, pull.r);
  for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
    ctx.send(poll_view.distinct[i], poll);
  }
  const sim::Message pull_req = pull_msg(s, pull.r);
  const sampler::QuorumView h = shared_->pull_quorum(s, self);
  for (std::uint32_t i = 0; i < h.distinct_count; ++i) {
    ctx.send(h.distinct[i], pull_req);
  }
}

void SoaAerState::handle_answer(sim::Context& ctx, NodeId self, NodeId from,
                                const sim::Message& m) {
  if (has_decided_[self]) return;
  MyPull* pull = my_pulls_.find(pack_ns(self, m.s));
  if (pull == nullptr) return;  // never asked about s
  const sampler::QuorumView poll_list = shared_->poll_list(self, pull->r);
  const std::size_t mult = poll_list.multiplicity(from);
  if (mult == 0) return;  // answer from outside J(x, r_{x,s})
  NodeId* answered = counted_at(pull->answered_off);
  if (already_counted(answered, pull->answered, from)) return;
  answered[pull->answered++] = from;
  pull->slots += static_cast<std::uint32_t>(mult);
  if (pull->slots * 2 > poll_list.size()) decide(ctx, self, m.s);
}

void SoaAerState::decide(sim::Context& ctx, NodeId self, StringId s) {
  if (has_decided_[self]) return;
  has_decided_[self] = 1;
  decided_[self] = s;
  current_[self] = s;
  ctx.decide(s);
  std::vector<std::pair<NodeId, StringId>>& dq = deferred_[self];
  for (std::size_t i = 0; i < dq.size(); ++i) {
    const auto [x, str] = dq[i];
    if (str == current_[self]) emit_answer(ctx, self, x, str);
  }
  dq.clear();
  serve_retained(ctx, self);
}

void SoaAerState::serve_retained(sim::Context& ctx, NodeId self) {
  for (const auto& [key, r] : pending_pulls_[self]) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (s == current_[self]) forward_pull(ctx, self, x, s, r);
  }
  pending_pulls_[self].clear();

  for (auto& [key, per_w] : fw1_tallies_[self]) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_[self]) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    const sampler::QuorumView h_x = shared_->pull_quorum(s, x);
    for (auto& [w, tally] : per_w) {
      if (!tally.fired && tally.slots * 2 > h_x.size()) {
        tally.fired = true;
        ctx.send(w, fw2_msg(x, s, tally.r));
      }
    }
  }

  const sampler::QuorumView h_self =
      shared_->pull_quorum(current_[self], self);
  for (auto& [key, st] : responder_[self]) {
    const StringId s = static_cast<StringId>(key & 0xffffffffu);
    if (s != current_[self]) continue;
    const NodeId x = static_cast<NodeId>(key >> 32);
    if (!st.answered && st.polled && st.slots * 2 > h_self.size()) {
      st.answered = true;
      emit_answer(ctx, self, x, s);
    }
  }
}

// ----- pull phase: forwarder, first hop (Algorithm 2) -----------------------

void SoaAerState::handle_pull(sim::Context& ctx, NodeId self, NodeId from,
                              const sim::Message& m) {
  if (!shared_->pull_quorum(m.s, from).contains(self)) return;
  if (m.s != current_[self]) {
    if (!has_decided_[self]) {
      pending_pulls_[self].emplace(pack_xs(from, m.s), m.r);
    }
    return;
  }
  forward_pull(ctx, self, from, m.s, m.r);
}

void SoaAerState::forward_pull(sim::Context& ctx, NodeId self, NodeId x,
                               StringId s, PollLabel r) {
  if (!forwarded_[self].insert(pack_xs(x, s))) return;
  const sampler::QuorumView poll_view = shared_->poll_list(x, r);
  if (burst_engine_ != nullptr) {
    // Burst path: charge every expanded send now — send_from charges before
    // queueing (and before horizon culling) too, so the books match the
    // per-send path exactly — then queue one descriptor in place of the d^2
    // envelopes; expand() re-enumerates the same (w, h) pairs at delivery.
    // An Fw1's wire size does not depend on its b field (fixed-width node
    // id), so one size fits the whole fan-out.
    const sim::Wire& wire = shared_->wire();
    const sim::Message proto = fw1_msg(x, s, r, 0);
    const std::size_t bits =
        sim::message_bit_size(proto, wire) + wire.header_bits();
    TrafficMetrics& metrics = burst_engine_->metrics();
    for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
      const sampler::QuorumView h_w =
          shared_->pull_quorum(s, poll_view.distinct[i]);
      for (std::uint32_t j = 0; j < h_w.distinct_count; ++j) {
        metrics.on_message(self, h_w.distinct[j], bits,
                           sim::MessageKind::kFw1);
      }
    }
    sim::Envelope env;
    env.src = self;
    env.msg = proto;
    env.send_time = burst_engine_->now();
    burst_engine_->queue_burst(env);
    return;
  }
  for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
    const NodeId w = poll_view.distinct[i];
    const sim::Message fw1 = fw1_msg(x, s, r, w);
    const sampler::QuorumView h_w = shared_->pull_quorum(s, w);
    for (std::uint32_t j = 0; j < h_w.distinct_count; ++j) {
      ctx.send(h_w.distinct[j], fw1);
    }
  }
}

void SoaAerState::expand(const sim::Envelope& burst, sim::SyncEngine& engine) {
  // The template message carries a = x, s and r; b (the poll-list member w)
  // is filled in per expanded copy, exactly as forward_pull's send loop
  // would have built it.
  const sim::Message& t = burst.msg;
  const sampler::QuorumView poll_view = shared_->poll_list(t.a, t.r);
  sim::Envelope env;
  env.src = burst.src;
  env.send_time = burst.send_time;
  for (std::uint32_t i = 0; i < poll_view.distinct_count; ++i) {
    const NodeId w = poll_view.distinct[i];
    env.msg = fw1_msg(t.a, t.s, t.r, w);
    const sampler::QuorumView h_w = shared_->pull_quorum(t.s, w);
    for (std::uint32_t j = 0; j < h_w.distinct_count; ++j) {
      env.dst = h_w.distinct[j];
      engine.deliver_expanded(env);
    }
  }
}

// ----- pull phase: relay, second hop (Algorithm 2) ---------------------------

void SoaAerState::handle_fw1(sim::Context& ctx, NodeId self, NodeId from,
                             const sim::Message& m) {
  const sampler::QuorumView h_w = shared_->pull_quorum(m.s, m.b);
  if (!h_w.contains(self)) return;  // this in H(s, w)
  const sampler::QuorumView h_x = shared_->pull_quorum(m.s, m.a);
  const std::size_t mult = h_x.multiplicity(from);
  if (mult == 0) return;  // y in H(s, x)
  if (!shared_->poll_list(m.a, m.r).contains(m.b)) return;  // w in J(x,r)

  const auto outer = fw1_tallies_[self].try_emplace(pack_xs(m.a, m.s));
  const auto inner = outer.first->second.try_emplace(m.b);
  Fw1Tally& tally = inner.first->second;
  if (inner.second) tally.counted_off = new_counted_span();
  NodeId* counted = counted_at(tally.counted_off);
  if (tally.fired || already_counted(counted, tally.counted, from)) return;
  if (tally.counted == 0) tally.r = m.r;
  counted[tally.counted++] = from;
  tally.slots += static_cast<std::uint32_t>(mult);
  if (m.s == current_[self] && tally.slots * 2 > h_x.size()) {
    tally.fired = true;  // forward only once
    ctx.send(m.b, fw2_msg(m.a, m.s, m.r));
  }
}

// ----- pull phase: responder (Algorithm 3) -----------------------------------

void SoaAerState::handle_fw2(sim::Context& ctx, NodeId self, NodeId from,
                             const sim::Message& m) {
  if (!shared_->poll_list(m.a, m.r).contains(self)) return;  // in J(x,r)
  const sampler::QuorumView h_self = shared_->pull_quorum(m.s, self);
  const std::size_t mult = h_self.multiplicity(from);
  if (mult == 0) return;  // z in H(s, this)

  const auto emplaced = responder_[self].try_emplace(pack_xs(m.a, m.s));
  ResponderState& st = emplaced.first->second;
  if (emplaced.second) st.counted_off = new_counted_span();
  NodeId* counted = counted_at(st.counted_off);
  if (st.answered || already_counted(counted, st.counted, from)) return;
  counted[st.counted++] = from;
  st.slots += static_cast<std::uint32_t>(mult);
  if (m.s == current_[self] && st.slots * 2 > h_self.size() && st.polled) {
    st.answered = true;
    emit_answer(ctx, self, m.a, m.s);
  }
}

void SoaAerState::handle_poll(sim::Context& ctx, NodeId self, NodeId from,
                              const sim::Message& m) {
  if (!shared_->poll_list(from, m.r).contains(self)) return;
  const auto emplaced = responder_[self].try_emplace(pack_xs(from, m.s));
  ResponderState& st = emplaced.first->second;
  if (emplaced.second) st.counted_off = new_counted_span();
  if (st.polled) return;
  st.polled = true;
  const sampler::QuorumView h_self = shared_->pull_quorum(m.s, self);
  if (m.s == current_[self] && !st.answered && st.slots * 2 > h_self.size()) {
    st.answered = true;
    emit_answer(ctx, self, from, m.s);
  }
}

void SoaAerState::emit_answer(sim::Context& ctx, NodeId self, NodeId x,
                              StringId s) {
  if (!has_decided_[self] && over_budget(self, s)) {
    if (shared_->config.defer_answers) {
      deferred_[self].emplace_back(x, s);
      deferred_peak_[self] = std::max(
          deferred_peak_[self],
          static_cast<std::uint32_t>(deferred_[self].size()));
    }
    return;
  }
  ++answer_counts_.get_or_create(pack_ns(self, s));
  ctx.send(x, answer_msg(s));
}

// ----- memory accounting -----------------------------------------------------

namespace {

/// Deterministic size model for a libstdc++ unordered_map: one allocated
/// node per entry (next pointer + value; integral keys cache no hash) plus
/// the bucket array. Both entry count and bucket count are pure functions
/// of the insertion history, so warm trials report identical bytes.
template <typename K, typename V>
std::uint64_t umap_bytes(const std::unordered_map<K, V>& m) {
  return static_cast<std::uint64_t>(m.size()) *
             (sizeof(void*) + sizeof(std::pair<const K, V>)) +
         static_cast<std::uint64_t>(m.bucket_count()) * sizeof(void*);
}

std::uint64_t flat_bytes(std::size_t entries, std::size_t value_size) {
  return support::flat_table_slots(entries) *
         (sizeof(std::uint64_t) + value_size);
}

}  // namespace

void SoaAerState::charge_mem(support::MemBudget& mem) const {
  mem.charge_vector(initial_);
  mem.charge_vector(current_);
  mem.charge_vector(decided_);
  mem.charge_vector(has_decided_);
  mem.charge_vector(candidate_count_);
  mem.charge_vector(deferred_peak_);
  mem.charge_vector(counted_arena_);
  mem.charge_vector(targets_scratch_);

  mem.charge(flat_bytes(push_tallies_.size(), sizeof(PushTally)));
  mem.charge(flat_bytes(in_list_.size(), 1));
  mem.charge(flat_bytes(my_pulls_.size(), sizeof(MyPull)));
  mem.charge(flat_bytes(answer_counts_.size(), sizeof(std::uint32_t)));

  // Per-node container headers (charged at n_, not at the vectors' possibly
  // larger warm capacity, so cold and warm runs report identical bytes).
  mem.charge(static_cast<std::uint64_t>(n_) *
             (sizeof(support::FlatSet64) + sizeof(pending_pulls_[0]) +
              sizeof(fw1_tallies_[0]) + sizeof(responder_[0]) +
              sizeof(deferred_[0])));
  for (std::size_t id = 0; id < n_; ++id) {
    mem.charge(flat_bytes(forwarded_[id].size(), 1));
    mem.charge(umap_bytes(pending_pulls_[id]));
    mem.charge(umap_bytes(responder_[id]));
    const auto& outer = fw1_tallies_[id];
    mem.charge(umap_bytes(outer));
    for (const auto& [key, inner] : outer) {
      (void)key;
      mem.charge(umap_bytes(inner));
    }
    mem.charge(static_cast<std::uint64_t>(deferred_peak_[id]) *
               sizeof(std::pair<NodeId, StringId>));
  }
}

// ----- runner ----------------------------------------------------------------

namespace {

/// AER-specific report sections from the SoA state (the analogue of
/// protocol.cpp's fill_aer_specific).
void fill_aer_specific_soa(AerReport& report, const AerWorld& world,
                           const SoaAerState& state) {
  const AerShared& shared = *world.shared;
  for (NodeId id : world.correct) {
    report.sum_candidate_lists += state.candidate_list_size(id);
    report.max_candidate_list =
        std::max(report.max_candidate_list, state.candidate_list_size(id));
    if (!state.has_candidate(id, shared.gstring)) {
      ++report.nodes_missing_gstring;
    }
    report.max_deferred_answers =
        std::max(report.max_deferred_answers, state.deferred_peak(id));
  }
}

/// Trial-wide memory account shared by both engine flavors: the SoA state,
/// the event core's high-water mark, the metrics arrays, the dense sampler
/// tables and the interned strings. All terms are logical sizes or
/// capacity-rules over counts (support/mem.h), never allocator state.
void charge_trial_mem(support::MemBudget& mem, const AerWorld& world,
                      const SoaAerState& state, std::size_t queue_peak) {
  const AerShared& shared = *world.shared;
  const std::size_t n = shared.config.n;
  const std::size_t d = shared.config.resolved_d();

  state.charge_mem(mem);
  mem.charge(static_cast<std::uint64_t>(queue_peak) *
             sizeof(sim::EventQueue::Event));
  // TrafficMetrics: sent bits / received bits / sent messages per node.
  mem.charge(static_cast<std::uint64_t>(n) * 3 * sizeof(std::uint64_t));
  // Dense sampler rows (sampler/tables.cpp layout): quorum rows hold a
  // distinct-count header plus three d-sized regions; poll rows prepend a
  // 4-entry identity header. Each built row also owns one probe-index
  // entry, and each activated string slab caches its d slot permutations.
  const std::uint64_t quorum_row = (1 + 3 * d) * sizeof(NodeId);
  mem.charge(shared.tables.push.rows_built() * quorum_row);
  mem.charge(shared.tables.pull.rows_built() * quorum_row);
  mem.charge(shared.tables.poll.rows_built() *
             (quorum_row + 4 * sizeof(NodeId)));
  mem.charge(flat_bytes(shared.tables.push.rows_built(),
                        sizeof(std::uint32_t)));
  mem.charge(flat_bytes(shared.tables.pull.rows_built(),
                        sizeof(std::uint32_t)));
  mem.charge(flat_bytes(shared.tables.poll.rows_built(),
                        sizeof(std::uint32_t)));
  const std::uint64_t slab_bytes =
      64 + d * sizeof(FeistelPermutation);
  mem.charge(shared.tables.push.slab_count() * slab_bytes);
  mem.charge(shared.tables.pull.slab_count() * slab_bytes);
  // Interned strings: payload bits plus the table's per-entry bookkeeping
  // (digest, length, chain link).
  for (StringId id = 0; id < shared.table.size(); ++id) {
    mem.charge((shared.table.bits(id) + 7) / 8 + 16);
  }
  mem.charge_vector(world.view.initial);
}

}  // namespace

AerReport run_aer_world_soa(AerWorld& world, SoaArena& arena,
                            const SoaRunOptions& opts,
                            const StrategyFactory& make_strategy) {
  // Mirrors run_aer_world_arena step for step (order included — the
  // SoA-vs-pointer fingerprint equality in tests/scale_test.cpp pins it).
  const AerConfig& config = world.shared->config;
  world.decisions.reset(config.n);

  AerReport report;
  report.n = config.n;
  report.t = world.view.corrupt.size();
  report.d = config.resolved_d();
  report.model = config.model;

  std::unique_ptr<adv::Strategy> strategy;
  if (make_strategy) strategy = make_strategy(world.view);

  std::size_t decided = 0;
  std::size_t target = world.correct.size();
  auto on_decide = [&world, &decided](NodeId node, StringId value,
                                      double time) {
    if (!world.decisions.has_decided(node)) ++decided;
    world.decisions.record(node, value, time);
  };
  auto done = [&] { return decided >= target; };
  auto on_corrupt = [&world, &target](NodeId node, double /*time*/) {
    if (note_runtime_corruption(world, node)) --target;
  };

  auto wire_nodes = [&](auto& engine) {
    engine.set_wire(&world.shared->wire());
    engine.set_fault_plan(&config.fault_plan);
    engine.set_recovery_plan(&config.recovery_plan);
    engine.set_corrupt(world.view.corrupt);
    arena.state.reset(world.shared.get(), world.view.initial, engine);
    engine.set_strategy(strategy.get());
    engine.set_decision_callback(on_decide);
    engine.set_corruption_budget(config.adaptive_budget);
    engine.set_corruption_callback(on_corrupt);
  };
  auto harvest_adaptive = [&report](auto& engine) {
    report.runtime_corruptions = engine.corruptions_spent();
    report.first_corruption_time = engine.first_corruption_time();
    report.last_corruption_time = engine.last_corruption_time();
  };

  support::MemBudget mem;
  if (config.model == Model::kAsync) {
    sim::AsyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.max_time = config.max_time;
    if (arena.async.has_value()) arena.async->reset(ec);
    else arena.async.emplace(ec);
    sim::AsyncEngine& engine = *arena.async;
    wire_nodes(engine);
    const auto result = engine.run(done);
    report.engine_time = result.time;
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
    fill_aer_specific_soa(report, world, arena.state);
    charge_trial_mem(mem, world, arena.state, engine.queue_peak());
  } else {
    sim::SyncConfig ec;
    ec.n = config.n;
    ec.seed = config.seed;
    ec.rushing_adversary = config.model == Model::kSyncRushing;
    ec.max_rounds = config.max_rounds;
    ec.round_drain = opts.round_drain;
    if (arena.sync.has_value()) arena.sync->reset(ec);
    else arena.sync.emplace(ec);
    sim::SyncEngine& engine = *arena.sync;
    wire_nodes(engine);
    // Bursts skip the per-send observe/fault/recovery taps, so they are only
    // legal when all of them are no-ops.
    if (opts.bursts && strategy == nullptr && config.fault_plan.empty() &&
        config.recovery_plan.empty()) {
      engine.set_burst_source(&arena.state);
      arena.state.enable_bursts(&engine);
    }
    if (opts.round_progress) engine.set_round_progress(opts.round_progress);
    const auto result = engine.run(done);
    report.engine_time = static_cast<double>(result.rounds);
    report.engine_completed = result.completed;
    harvest_adaptive(engine);
    fill_outcome_and_traffic(report, world, engine.metrics());
    fill_aer_specific_soa(report, world, arena.state);
    charge_trial_mem(mem, world, arena.state, engine.queue_peak());
  }
  report.mem_bytes = mem.total_bytes();
  report.mem_bytes_per_node = mem.bytes_per_node(config.n);
  return report;
}

}  // namespace fba::aer
