// Structure-of-arrays AER state: the million-node scale path.
//
// AerNode keeps each participant's protocol state in its own object — per
// node, a Pool, six hash containers and a handful of vectors. At
// n = 10^5..10^6 nodes per trial, those per-object fixed costs (allocator
// pools, container headers, minimum table capacities) dominate memory and
// thrash the cache: the hot path walks a million scattered objects.
//
// SoaAerState holds the SAME protocol state for all nodes at once, one
// dense array (or shared open-addressed table) per field:
//
//   - scalar per-node fields (initial / current / decided candidate,
//     decision flag, candidate-list length, deferred-answer peak) are flat
//     arrays indexed by NodeId;
//   - the per-string tallies (push tallies, my-pulls, answer counts, L_x
//     membership) live in ONE shared FlatMap64 each, keyed by the packed
//     (node, string) pair — a single table sized to the run instead of n
//     minimum-capacity tables;
//   - credited-sender spans come from one shared bump arena (d entries per
//     tally, same layout as AerNode's per-node arena);
//   - the three ORDER-CRITICAL retained maps (pending pulls, Fw1 tallies,
//     responder state) stay per-node std::unordered_map: serve_retained()
//     iterates them to emit messages and the send order must match the
//     pointer path bit for bit (libstdc++ iteration order depends only on
//     the insertion/bucket-growth history, which is identical).
//
// One SoaAerState object is also the single sim::Actor registered for every
// correct node (handlers key off ctx.self()), and the sim::BurstSource that
// re-expands Fw1 burst descriptors on the scale path (see
// EventQueue::push_burst): instead of queueing the d^2 copies of each
// forwarded request, forward_pull charges their traffic at send time and
// queues one descriptor; the engine calls expand() at delivery time, which
// enumerates the same (w, h) pairs in the same order.
//
// Handler-for-handler, message-for-message, RNG-draw-for-RNG-draw, the SoA
// path replicates aer/node.cpp exactly; tests/scale_test.cpp pins
// fingerprint equality of whole Aggregates against the pointer path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "aer/protocol.h"
#include "net/async_engine.h"
#include "net/sync_engine.h"
#include "support/flat_map.h"
#include "support/mem.h"

namespace fba::aer {

class SoaAerState final : public sim::Actor, public sim::BurstSource {
 public:
  SoaAerState() = default;

  /// Re-initializes for a fresh trial and registers this object as the
  /// actor of every correct node of `engine` (whose corrupt set must
  /// already be installed). Dense storage is reused across trials.
  void reset(const AerShared* shared, const std::vector<StringId>& initial,
             sim::EngineBase& engine);

  /// Enables Fw1 burst descriptors. Only legal on the synchronous engines
  /// with no adversary strategy and no fault plan installed (the burst path
  /// bypasses the per-send observe/fault taps, which must therefore be
  /// no-ops). `engine` must outlive the run and have this object installed
  /// as its burst source.
  void enable_bursts(sim::SyncEngine* engine) { burst_engine_ = engine; }

  // ----- sim::Actor (one object serves every correct node) -----------------
  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

  // ----- sim::BurstSource ---------------------------------------------------
  void expand(const sim::Envelope& burst, sim::SyncEngine& engine) override;

  // ----- post-run introspection (mirrors AerNode's) -------------------------
  bool has_decided(NodeId id) const { return has_decided_[id] != 0; }
  StringId decided_value(NodeId id) const { return decided_[id]; }
  std::size_t candidate_list_size(NodeId id) const {
    return candidate_count_[id];
  }
  bool has_candidate(NodeId id, StringId s) const {
    return in_list_.contains(pack_ns(id, s));
  }
  std::size_t deferred_peak(NodeId id) const { return deferred_peak_[id]; }
  std::size_t answers_sent(NodeId id, StringId s) const {
    const std::uint32_t* count = answer_counts_.find(pack_ns(id, s));
    return count == nullptr ? 0 : *count;
  }

  /// Charges this state's memory to `mem` (support/mem.h rules: logical
  /// sizes and capacity-as-a-function-of-count only, so warm reuse reports
  /// the same bytes as a cold run).
  void charge_mem(support::MemBudget& mem) const;

 private:
  // -- handlers: faithful ports of AerNode's, with `self` explicit ----------
  void handle_push(sim::Context& ctx, NodeId self, NodeId from,
                   const sim::Message& m);
  void handle_poll(sim::Context& ctx, NodeId self, NodeId from,
                   const sim::Message& m);
  void handle_pull(sim::Context& ctx, NodeId self, NodeId from,
                   const sim::Message& m);
  void handle_fw1(sim::Context& ctx, NodeId self, NodeId from,
                  const sim::Message& m);
  void handle_fw2(sim::Context& ctx, NodeId self, NodeId from,
                  const sim::Message& m);
  void handle_answer(sim::Context& ctx, NodeId self, NodeId from,
                     const sim::Message& m);

  void accept_candidate(sim::Context& ctx, NodeId self, StringId s);
  void start_pull(sim::Context& ctx, NodeId self, StringId s);
  void emit_answer(sim::Context& ctx, NodeId self, NodeId x, StringId s);
  void decide(sim::Context& ctx, NodeId self, StringId s);
  bool over_budget(NodeId self, StringId s) const;
  void forward_pull(sim::Context& ctx, NodeId self, NodeId x, StringId s,
                    PollLabel r);
  void serve_retained(sim::Context& ctx, NodeId self);

  static std::uint64_t pack_ns(NodeId node, StringId s) {
    return (static_cast<std::uint64_t>(node) << 32) | s;
  }
  static std::uint64_t pack_xs(NodeId x, StringId s) {
    return (static_cast<std::uint64_t>(x) << 32) | s;
  }

  // -- credited-sender spans: fixed d-capacity slices of one shared arena --
  NodeId* counted_at(std::uint32_t off) { return counted_arena_.data() + off; }
  std::uint32_t new_counted_span();
  static bool already_counted(const NodeId* counted, std::uint32_t count,
                              NodeId who);

  const AerShared* shared_ = nullptr;
  std::size_t n_ = 0;
  std::uint32_t d_ = 0;
  sim::SyncEngine* burst_engine_ = nullptr;  ///< non-null => bursts on.

  // -- dense per-node scalars -----------------------------------------------
  std::vector<StringId> initial_;
  std::vector<StringId> current_;
  std::vector<StringId> decided_;
  std::vector<std::uint8_t> has_decided_;
  std::vector<std::uint32_t> candidate_count_;  ///< |L_x| (list not stored).
  std::vector<std::uint32_t> deferred_peak_;

  // -- shared lookup-only tables, keyed by packed (node, string) ------------
  struct PushTally {
    std::uint32_t slots = 0;
    std::uint32_t counted = 0;
    std::uint32_t counted_off = 0;
  };
  support::FlatMap64<PushTally> push_tallies_;
  support::FlatSet64 in_list_;

  struct MyPull {
    PollLabel r = 0;
    std::uint32_t slots = 0;
    std::uint32_t answered = 0;
    std::uint32_t answered_off = 0;
  };
  support::FlatMap64<MyPull> my_pulls_;
  mutable support::FlatMap64<std::uint32_t> answer_counts_;

  // -- per-node containers whose behavior depends on per-node history -------
  /// Flooding guard, keyed (x, s); lookup-only, so FlatSet64 is safe.
  std::vector<support::FlatSet64> forwarded_;

  struct Fw1Tally {
    PollLabel r = 0;
    std::uint32_t slots = 0;
    std::uint32_t counted = 0;
    std::uint32_t counted_off = 0;
    bool fired = false;
  };
  struct ResponderState {
    std::uint32_t slots = 0;
    std::uint32_t counted = 0;
    std::uint32_t counted_off = 0;
    bool polled = false;
    bool answered = false;
  };
  /// ORDER-CRITICAL retained maps (see aer/node.h): plain unordered_map,
  /// reconstructed per reset so iteration order matches a fresh AerNode's.
  std::vector<std::unordered_map<std::uint64_t, PollLabel>> pending_pulls_;
  std::vector<std::unordered_map<
      std::uint64_t, std::unordered_map<NodeId, Fw1Tally>>> fw1_tallies_;
  std::vector<std::unordered_map<std::uint64_t, ResponderState>> responder_;

  std::vector<std::vector<std::pair<NodeId, StringId>>> deferred_;

  std::vector<NodeId> counted_arena_;
  std::vector<NodeId> targets_scratch_;
};

/// Reusable engines + state for back-to-back SoA trials (mirrors RunArena).
struct SoaArena {
  std::optional<sim::SyncEngine> sync;
  std::optional<sim::AsyncEngine> async;
  SoaAerState state;
};

struct SoaRunOptions {
  /// Drain sync rounds in place (EventQueue::drain_due) instead of copying
  /// them into the per-round scratch vector.
  bool round_drain = true;
  /// Queue Fw1 fan-outs as burst descriptors. Applied only when eligible:
  /// synchronous model, no adversary strategy, no fault plan (the burst
  /// path skips the per-send observe/fault taps). Ineligible runs silently
  /// fall back to per-send queueing — results are identical either way.
  bool bursts = true;
  /// Invoked after every executed sync round with (round, events pending) —
  /// in-trial progress for runs where one trial takes minutes.
  std::function<void(Round, std::size_t)> round_progress;
};

/// Runs AER on a prebuilt world through the SoA state. Produces the same
/// AerReport as run_aer_world / run_aer_world_arena — bit-identical metrics
/// and decisions — plus the memory section (mem_bytes, mem_bytes_per_node),
/// which only this runner fills.
AerReport run_aer_world_soa(AerWorld& world, SoaArena& arena,
                            const SoaRunOptions& opts = {},
                            const StrategyFactory& make_strategy = {});

}  // namespace fba::aer
