#include "ba/ba.h"

#include "baseline/flood.h"
#include "baseline/sqrtsample.h"

namespace fba::ba {

const char* reduction_name(Reduction reduction) {
  switch (reduction) {
    case Reduction::kAer:
      return "AER";
    case Reduction::kSqrtSample:
      return "sqrt-sample";
    case Reduction::kFlood:
      return "flood";
  }
  return "?";
}

BaReport run_ba(const BaConfig& config, Reduction reduction,
                const ae::AeStrategyFactory& ae_strategy,
                const aer::StrategyFactory& reduction_strategy) {
  BaReport report;
  report.kind = reduction;

  // ---- Phase 1: almost-everywhere agreement ------------------------------
  ae::AeConfig ae_cfg;
  ae_cfg.n = config.n;
  ae_cfg.seed = config.seed;
  ae_cfg.corrupt_fraction = config.corrupt_fraction;
  ae_cfg.explicit_t = config.explicit_t;
  ae_cfg.root_size = config.root_size;
  ae_cfg.committee_size = config.committee_size;
  ae_cfg.gstring_c = config.gstring_c;
  ae_cfg.max_rounds = config.max_rounds;

  ae::AeRunResult ae_result = run_ae(ae_cfg, ae_strategy);
  report.ae = ae_result.report;

  FBA_ASSERT(!ae_result.winner.empty(),
             "AE phase produced no assembled string");

  // ---- Phase 2: almost-everywhere to everywhere --------------------------
  aer::AerConfig aer_cfg;
  aer_cfg.n = config.n;
  aer_cfg.seed = config.seed + 1;  // fresh protocol randomness, same world
  aer_cfg.model = config.reduction_model;
  aer_cfg.explicit_t = static_cast<long>(ae_result.corrupt.size());
  aer_cfg.c_d = config.c_d;
  aer_cfg.d_override = config.d_override;
  aer_cfg.gstring_c = config.gstring_c;
  aer_cfg.answer_budget = config.answer_budget;
  aer_cfg.max_rounds = config.max_rounds;
  aer_cfg.max_time = config.max_time;
  aer_cfg.fault_plan = config.fault_plan;
  aer_cfg.recovery_plan = config.recovery_plan;

  // The corrupt set is non-adaptive and spans both phases.
  auto same_corrupt = [&ae_result](std::size_t, std::size_t, Rng&,
                                   aer::AerShared&) {
    return ae_result.corrupt;
  };
  aer::AerWorld world = aer::build_aer_world(aer_cfg, same_corrupt);

  // Replace the synthetic precondition by the AE phase's actual outcome:
  // every node starts the reduction with whatever string it assembled.
  aer::AerShared& shared = *world.shared;
  shared.gstring = shared.table.intern(ae_result.winner);
  world.view.gstring = shared.gstring;
  const std::size_t bits = ae_result.winner.size();
  Rng filler = Rng(config.seed).split(0xf111ull);
  for (NodeId id = 0; id < config.n; ++id) {
    world.view.knowledgeable[id] = false;
    if (std::find(ae_result.corrupt.begin(), ae_result.corrupt.end(), id) !=
        ae_result.corrupt.end()) {
      world.view.initial[id] = kNoString;
      continue;
    }
    const BitString& assembled = ae_result.assembled[id];
    if (assembled.empty()) {
      // Node failed to assemble (should not happen in sync runs); give it an
      // arbitrary private string, as the AER precondition allows.
      world.view.initial[id] =
          shared.table.intern(BitString::random(bits, filler));
    } else {
      world.view.initial[id] = shared.table.intern(assembled);
      world.view.knowledgeable[id] = assembled == ae_result.winner;
    }
  }

  switch (reduction) {
    case Reduction::kAer:
      report.reduction = run_aer_world(world, reduction_strategy);
      break;
    case Reduction::kSqrtSample:
      report.reduction =
          baseline::run_sqrtsample_world(world, reduction_strategy);
      break;
    case Reduction::kFlood:
      report.reduction = baseline::run_flood_world(world, reduction_strategy);
      break;
  }

  report.total_time =
      static_cast<double>(report.ae.rounds) + report.reduction.completion_time;
  report.total_messages =
      report.ae.total_messages + report.reduction.total_messages;
  report.total_bits = report.ae.total_bits + report.reduction.total_bits;
  report.amortized_bits =
      static_cast<double>(report.total_bits) / static_cast<double>(config.n);
  report.agreement = report.reduction.agreement;
  return report;
}

}  // namespace fba::ba
