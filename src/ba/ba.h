// BA: the paper's composed Byzantine Agreement protocol.
//
// BA = almost-everywhere agreement (ae/, the KSSV06-style tournament, which
// establishes the precondition that more than half of the nodes are correct
// and share a mostly-random gstring) composed with an almost-everywhere to
// everywhere reduction. With the AER reduction this is the paper's headline
// protocol: poly-logarithmic in both time and communication. The same AE
// phase composed with the baselines yields the Figure 1(b) comparison rows.
#pragma once

#include "ae/kssv.h"
#include "aer/protocol.h"

namespace fba::ba {

/// Which AE->E reduction to compose after the AE phase.
enum class Reduction {
  kAer,         ///< the paper's protocol (polylog bits).
  kSqrtSample,  ///< KS09/KLST11-style Õ(sqrt n) reduction.
  kFlood,       ///< trivial O(n) broadcast reduction.
};

const char* reduction_name(Reduction reduction);

struct BaConfig {
  std::size_t n = 0;
  std::uint64_t seed = 1;
  double corrupt_fraction = 0.05;
  long explicit_t = -1;

  /// Model for the reduction phase (the AE tournament is synchronous, as in
  /// the paper: only AER carries the asynchronous guarantee).
  aer::Model reduction_model = aer::Model::kSyncRushing;

  // AE phase knobs (0 = auto).
  std::size_t root_size = 0;
  std::size_t committee_size = 0;
  std::size_t gstring_c = 4;

  // AER knobs.
  double c_d = 1.5;
  std::size_t d_override = 0;
  std::size_t answer_budget = 0;

  Round max_rounds = 500;
  double max_time = 500.0;

  /// Fault conditions for the reduction phase (net/fault.h); the AE
  /// tournament keeps the paper's synchronous reliable channels.
  sim::FaultPlan fault_plan;
  /// Ack/retransmit recovery sublayer for the reduction phase
  /// (net/recovery.h) — composable with any fault_plan.
  sim::RecoveryPlan recovery_plan;
};

struct BaReport {
  Reduction kind = Reduction::kAer;
  ae::AeReport ae;
  aer::AerReport reduction;

  /// AE rounds + reduction time (rounds or normalized async time).
  double total_time = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  double amortized_bits = 0;
  /// Every correct node decided on the common string produced by AE.
  bool agreement = false;
};

/// Runs the full composition. Adversary strategies are per phase; both
/// phases share one non-adaptive corrupt set.
BaReport run_ba(const BaConfig& config, Reduction reduction = Reduction::kAer,
                const ae::AeStrategyFactory& ae_strategy = {},
                const aer::StrategyFactory& reduction_strategy = {});

}  // namespace fba::ba
