#include "baseline/flood.h"

#include <algorithm>

#include "aer/runner.h"

namespace fba::baseline {

FloodNode::FloodNode(const aer::AerShared* shared, NodeId self,
                     StringId initial)
    : shared_(shared), self_(self), initial_(initial) {}

void FloodNode::on_start(sim::Context& ctx) {
  const sim::Message msg = candidate_msg(initial_);
  for (NodeId dst = 0; dst < ctx.n(); ++dst) {
    if (dst != self_) ctx.send(dst, msg);
  }
  credit(ctx, self_, initial_);  // own candidate counts as one vote
}

void FloodNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  const auto* m = env.msg.as(sim::MessageKind::kBcast);
  if (m == nullptr) return;
  credit(ctx, env.src, m->s);
}

void FloodNode::credit(sim::Context& ctx, NodeId from, StringId s) {
  if (decided_) return;
  auto& voters = votes_[s];
  if (std::find(voters.begin(), voters.end(), from) != voters.end()) return;
  voters.push_back(from);
  // More than half of all nodes hold s: by the precondition only gstring can
  // ever cross this line, and it always will (> n/2 correct knowledgeable
  // nodes broadcast reliably).
  if (voters.size() * 2 > ctx.n()) {
    decided_ = true;
    ctx.decide(s);
  }
}

aer::AerReport run_flood_world(aer::AerWorld& world,
                               const aer::StrategyFactory& make_strategy) {
  return aer::run_world_protocol(
      world,
      [&world](NodeId id) {
        return std::make_unique<FloodNode>(world.shared.get(), id,
                                           world.view.initial[id]);
      },
      make_strategy);
}

aer::AerReport run_flood(const aer::AerConfig& config,
                         const aer::StrategyFactory& make_strategy) {
  aer::AerWorld world = aer::build_aer_world(config);
  return run_flood_world(world, make_strategy);
}

}  // namespace fba::baseline
