// FLOOD-ALL: the trivial almost-everywhere to everywhere reduction.
//
// Every node broadcasts its candidate to everyone and decides on the first
// string held by more than half of all nodes. One round, O(n * |s|) bits per
// node — the classical reference point against which both AER (polylog) and
// the sqrt(n) reduction are compared in Figure 1(a).
#pragma once

#include "aer/protocol.h"
#include "net/node.h"

namespace fba::baseline {

/// Broadcast of the sender's candidate string.
inline sim::Message candidate_msg(StringId s) {
  sim::Message m;
  m.kind = sim::MessageKind::kBcast;
  m.s = s;
  return m;
}

class FloodNode final : public sim::Actor {
 public:
  FloodNode(const aer::AerShared* shared, NodeId self, StringId initial);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

 private:
  void credit(sim::Context& ctx, NodeId from, StringId s);

  const aer::AerShared* shared_;
  NodeId self_;
  StringId initial_;
  bool decided_ = false;
  std::unordered_map<StringId, std::vector<NodeId>> votes_;
};

/// Runs FLOOD-ALL on a prebuilt AER world (same corrupt set and candidate
/// assignment) under the model in the world's config.
aer::AerReport run_flood_world(aer::AerWorld& world,
                               const aer::StrategyFactory& make_strategy = {});

/// Convenience: build the world from `config` and run.
aer::AerReport run_flood(const aer::AerConfig& config,
                         const aer::StrategyFactory& make_strategy = {});

}  // namespace fba::baseline
