#include "baseline/snowball.h"

#include <algorithm>
#include <cmath>

#include "aer/runner.h"

namespace fba::baseline {

SnowballParams SnowballParams::defaults(std::size_t n) {
  SnowballParams p;
  p.k = std::min<std::size_t>(10, n - 1);
  p.alpha = 0.7;
  p.beta = 5;
  p.max_queries = 8 * p.k * p.beta;
  return p;
}

SnowballNode::SnowballNode(const aer::AerShared* shared, NodeId self,
                           StringId initial, const SnowballParams& params)
    : shared_(shared), self_(self), params_(params), preference_(initial) {
  if (params_.max_queries == 0) {
    params_.max_queries = 8 * params_.k * params_.beta;
  }
}

void SnowballNode::on_start(sim::Context& ctx) { sample(ctx); }

void SnowballNode::sample(sim::Context& ctx) {
  ++round_tag_;
  replies_.clear();
  reply_count_ = 0;
  auto picks = ctx.rng().sample_without_replacement(ctx.n(), params_.k);
  sampled_.assign(picks.begin(), picks.end());
  std::sort(sampled_.begin(), sampled_.end());
  const sim::Message query = snow_query_msg(round_tag_);
  for (NodeId dst : sampled_) ctx.send(dst, query);
  // Query + reply is two delivery hops; corrupt peers may never reply, so a
  // timer closes the sample window (sync: 3 rounds; async: 2.05 units).
  ctx.schedule_timer(2.05, round_tag_);
}

void SnowballNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  if (const auto* q = env.msg.as(sim::MessageKind::kSnowQuery)) {
    // Load cap: a Byzantine query flood cannot skew this node's traffic.
    if (queries_answered_ >= params_.max_queries) return;
    ++queries_answered_;
    ctx.send(env.src, snow_reply_msg(preference_, q->phase));
    return;
  }
  const auto* reply = env.msg.as(sim::MessageKind::kSnowReply);
  if (reply == nullptr || decided_) return;
  if (reply->phase != round_tag_) return;  // stale round
  if (!std::binary_search(sampled_.begin(), sampled_.end(), env.src)) return;
  ++replies_[reply->s];
  ++reply_count_;
  // Full sample in: no need to wait for the window timer.
  if (reply_count_ == sampled_.size()) conclude_round(ctx);
}

void SnowballNode::on_timer(sim::Context& ctx, std::uint64_t token) {
  if (decided_ || token != round_tag_) return;  // stale window
  conclude_round(ctx);
}

void SnowballNode::conclude_round(sim::Context& ctx) {
  // Evaluate the finished sample (replies from the previous round).
  const auto threshold = static_cast<std::size_t>(
      std::ceil(params_.alpha * static_cast<double>(params_.k)));
  StringId winner = kNoString;
  for (const auto& [value, count] : replies_) {
    if (count >= threshold) winner = value;
  }
  if (winner == kNoString) {
    chain_ = 0;
  } else {
    const std::size_t score = ++scores_[winner];
    if (score >= scores_[preference_]) preference_ = winner;
    chain_ = (winner == last_winner_) ? chain_ + 1 : 1;
    last_winner_ = winner;
    if (chain_ >= params_.beta) {
      decided_ = true;
      ctx.decide(preference_);
      return;
    }
  }
  sample(ctx);
}

aer::AerReport run_snowball_world(aer::AerWorld& world,
                                  const aer::StrategyFactory& make_strategy,
                                  const SnowballParams* params_override) {
  const SnowballParams params =
      params_override != nullptr
          ? *params_override
          : SnowballParams::defaults(world.shared->config.n);
  return aer::run_world_protocol(
      world,
      [&world, &params](NodeId id) {
        return std::make_unique<SnowballNode>(
            world.shared.get(), id, world.view.initial[id], params);
      },
      make_strategy);
}

aer::AerReport run_snowball(const aer::AerConfig& config,
                            const aer::StrategyFactory& make_strategy) {
  aer::AerWorld world = aer::build_aer_world(config);
  return run_snowball_world(world, make_strategy);
}

}  // namespace fba::baseline
