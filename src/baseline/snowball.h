// SNOWBALL: a practitioner-style metastable gossip reduction.
//
// The calibration note for this reproduction observes that practitioners
// reach for gossip/sampling protocols (PBFT/HotStuff for small n, Avalanche-
// family sampling for large n) rather than theoretical AE->E reductions.
// This baseline implements a Snowball-style loop as a third comparison
// point for Figure 1(a):
//
//   repeat each round (until decided):
//     query k uniformly random nodes for their current preference;
//     if >= alpha * k replies agree on v:
//         bump v's counter; chain++ if v repeats, else chain = 1;
//         adopt v as preference when its counter takes the lead;
//     else chain = 0;
//     decide v after beta consecutive agreeing rounds.
//
// Costs O(k * rounds) messages per node (polylog-ish in practice) and is
// load-balanced, but its guarantees are probabilistic/metastable rather
// than worst-case — which is exactly the gap the paper's AER closes in
// theory. Responders answer from their current preference, so the protocol
// also *converges* the ignorant minority.
#pragma once

#include "aer/protocol.h"
#include "net/node.h"

namespace fba::baseline {

/// Query for the recipient's current preference (`phase` = round tag).
inline sim::Message snow_query_msg(std::uint32_t round_tag) {
  sim::Message m;
  m.kind = sim::MessageKind::kSnowQuery;
  m.phase = round_tag;
  return m;
}

/// Reply carrying the responder's preference.
inline sim::Message snow_reply_msg(StringId s, std::uint32_t round_tag) {
  sim::Message m;
  m.kind = sim::MessageKind::kSnowReply;
  m.s = s;
  m.phase = round_tag;
  return m;
}

struct SnowballParams {
  std::size_t k = 10;        ///< sample size per round.
  double alpha = 0.7;        ///< quorum fraction within a sample.
  std::size_t beta = 5;      ///< consecutive successes required to decide.
  std::size_t max_queries = 0;  ///< responder budget; 0 = 8 * k * beta.

  static SnowballParams defaults(std::size_t n);
};

class SnowballNode final : public sim::Actor {
 public:
  SnowballNode(const aer::AerShared* shared, NodeId self, StringId initial,
               const SnowballParams& params);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  void on_timer(sim::Context& ctx, std::uint64_t token) override;

 private:
  void sample(sim::Context& ctx);
  void conclude_round(sim::Context& ctx);

  const aer::AerShared* shared_;
  NodeId self_;
  SnowballParams params_;
  StringId preference_;
  bool decided_ = false;

  std::uint32_t round_tag_ = 0;
  std::vector<NodeId> sampled_;
  std::unordered_map<StringId, std::size_t> replies_;
  std::size_t reply_count_ = 0;

  std::unordered_map<StringId, std::size_t> scores_;  ///< Snowball counters.
  StringId last_winner_ = kNoString;
  std::size_t chain_ = 0;
  std::size_t queries_answered_ = 0;
};

aer::AerReport run_snowball_world(
    aer::AerWorld& world, const aer::StrategyFactory& make_strategy = {},
    const SnowballParams* params_override = nullptr);

aer::AerReport run_snowball(const aer::AerConfig& config,
                            const aer::StrategyFactory& make_strategy = {});

}  // namespace fba::baseline
