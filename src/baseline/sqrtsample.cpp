#include "baseline/sqrtsample.h"

#include <algorithm>
#include <cmath>

#include "aer/runner.h"

namespace fba::baseline {

SqrtSampleParams SqrtSampleParams::defaults(std::size_t n) {
  SqrtSampleParams p;
  const double root = std::sqrt(static_cast<double>(n));
  const double log2n = std::log2(static_cast<double>(n));
  p.sample_size = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::ceil(root * log2n / 2.0)));
  if (p.sample_size >= n) p.sample_size = n - 1;
  p.reply_cap = 4 * p.sample_size;
  return p;
}

SqrtSampleNode::SqrtSampleNode(const aer::AerShared* shared, NodeId self,
                               StringId initial,
                               const SqrtSampleParams& params)
    : shared_(shared), self_(self), initial_(initial), params_(params) {}

void SqrtSampleNode::on_start(sim::Context& ctx) {
  auto sample =
      ctx.rng().sample_without_replacement(ctx.n(), params_.sample_size);
  queried_.assign(sample.begin(), sample.end());
  std::sort(queried_.begin(), queried_.end());
  const sim::Message query = sample_query_msg();
  for (NodeId dst : queried_) ctx.send(dst, query);
}

void SqrtSampleNode::on_message(sim::Context& ctx, const sim::Envelope& env) {
  if (env.msg.kind == sim::MessageKind::kQuery) {
    // Load-balance cap: answer at most reply_cap queries, so query flooding
    // cannot skew this node's outbound traffic past a constant factor.
    if (replies_sent_ >= params_.reply_cap) return;
    ++replies_sent_;
    ctx.send(env.src, sample_reply_msg(initial_));
    return;
  }
  const auto* reply = env.msg.as(sim::MessageKind::kReply);
  if (reply == nullptr || decided_) return;
  if (!std::binary_search(queried_.begin(), queried_.end(), env.src)) return;
  auto& voters = votes_[reply->s];
  if (std::find(voters.begin(), voters.end(), env.src) != voters.end()) return;
  voters.push_back(env.src);
  if (voters.size() * 2 > params_.sample_size) {
    decided_ = true;
    ctx.decide(reply->s);
  }
}

aer::AerReport run_sqrtsample_world(aer::AerWorld& world,
                                    const aer::StrategyFactory& make_strategy,
                                    const SqrtSampleParams* params_override) {
  const SqrtSampleParams params =
      params_override != nullptr
          ? *params_override
          : SqrtSampleParams::defaults(world.shared->config.n);
  return aer::run_world_protocol(
      world,
      [&world, &params](NodeId id) {
        return std::make_unique<SqrtSampleNode>(
            world.shared.get(), id, world.view.initial[id], params);
      },
      make_strategy);
}

aer::AerReport run_sqrtsample(const aer::AerConfig& config,
                              const aer::StrategyFactory& make_strategy) {
  aer::AerWorld world = aer::build_aer_world(config);
  return run_sqrtsample_world(world, make_strategy);
}

namespace {

class SqrtJunkReplyStrategy final : public adv::Strategy {
 public:
  explicit SqrtJunkReplyStrategy(const aer::AerWorldView& view)
      : shared_(view.shared) {
    const std::size_t bits = shared_->table.get(view.gstring).size();
    Rng rng = Rng(shared_->config.seed).split(0x6a6bull);
    junk_ = shared_->table.intern(BitString::random(bits, rng));
  }

  void on_deliver_to_corrupt(adv::AdvContext& ctx,
                             const sim::Envelope& env) override {
    if (env.msg.kind != sim::MessageKind::kQuery) return;
    ctx.send_from(env.dst, env.src, sample_reply_msg(junk_));
  }

 private:
  aer::AerShared* shared_;
  StringId junk_;
};

}  // namespace

aer::StrategyFactory sqrt_junk_reply_strategy() {
  return [](const aer::AerWorldView& view) {
    return std::make_unique<SqrtJunkReplyStrategy>(view);
  };
}

}  // namespace fba::baseline
