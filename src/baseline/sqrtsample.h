// SQRT-SAMPLE: a KS09 / KLST11-style load-balanced almost-everywhere to
// everywhere reduction, the Figure 1(a) comparator.
//
// Every node queries Theta(sqrt(n) * log n) uniformly random nodes for their
// candidate and decides on the strict majority of its sample. Responders cap
// how many queries they answer (a small multiple of the expected load), so
// the protocol stays load-balanced even under query flooding — the defining
// property the paper's AER deliberately relaxes. Bits per node grow as
// ~sqrt(n) * polylog(n), against AER's polylog — the shape the Figure 1(a)
// "Bits" column contrasts.
#pragma once

#include "aer/protocol.h"
#include "net/node.h"

namespace fba::baseline {

/// Query for the recipient's candidate string (header-only on the wire).
inline sim::Message sample_query_msg() {
  sim::Message m;
  m.kind = sim::MessageKind::kQuery;
  return m;
}

/// Reply carrying the responder's candidate.
inline sim::Message sample_reply_msg(StringId s) {
  sim::Message m;
  m.kind = sim::MessageKind::kReply;
  m.s = s;
  return m;
}

struct SqrtSampleParams {
  std::size_t sample_size = 0;  ///< k: queries per node.
  std::size_t reply_cap = 0;    ///< responder budget (load-balance cap).

  /// k = ceil(sqrt(n) * log2(n) / 2), cap = 4k.
  static SqrtSampleParams defaults(std::size_t n);
};

class SqrtSampleNode final : public sim::Actor {
 public:
  SqrtSampleNode(const aer::AerShared* shared, NodeId self, StringId initial,
                 const SqrtSampleParams& params);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

  std::size_t replies_sent() const { return replies_sent_; }

 private:
  const aer::AerShared* shared_;
  NodeId self_;
  StringId initial_;
  SqrtSampleParams params_;
  bool decided_ = false;
  std::vector<NodeId> queried_;  ///< sorted sample, for reply filtering.
  std::unordered_map<StringId, std::vector<NodeId>> votes_;
  std::size_t replies_sent_ = 0;
};

aer::AerReport run_sqrtsample_world(
    aer::AerWorld& world, const aer::StrategyFactory& make_strategy = {},
    const SqrtSampleParams* params_override = nullptr);

aer::AerReport run_sqrtsample(const aer::AerConfig& config,
                              const aer::StrategyFactory& make_strategy = {});

/// Baseline attack: corrupt nodes answer every query with a coordinated junk
/// string (the strongest reply-side deviation; silence is weaker).
aer::StrategyFactory sqrt_junk_reply_strategy();

}  // namespace fba::baseline
