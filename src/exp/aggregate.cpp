#include "exp/aggregate.h"

#include <algorithm>
#include <cstring>

#include "ba/ba.h"
#include "support/siphash.h"

namespace fba::exp {

TrialOutcome outcome_of(const aer::AerReport& r) {
  TrialOutcome o;
  o.seed = 0;
  o.correct = r.correct_count;
  o.decided = r.decided_count;
  o.wrong_decisions = r.decided_count - r.decided_gstring;
  o.knowledgeable = r.knowledgeable_count;
  o.agreement = r.agreement;
  o.engine_completed = r.engine_completed;
  o.completion_time = r.completion_time;
  o.mean_decision_time = r.mean_decision_time;
  o.engine_time = r.engine_time;
  o.total_messages = static_cast<double>(r.total_messages);
  o.amortized_bits = r.amortized_bits;
  o.max_sent_bits = r.sent_bits.max;
  o.mean_sent_bits = r.sent_bits.mean;
  o.imbalance = r.sent_bits.imbalance();
  o.push_bits_per_node = r.push_bits_per_node;
  o.candidate_lists_per_node =
      r.correct_count > 0 ? static_cast<double>(r.sum_candidate_lists) /
                                static_cast<double>(r.correct_count)
                          : 0;
  o.max_candidate_list = r.max_candidate_list;
  o.missing_gstring = r.nodes_missing_gstring;
  o.max_deferred = r.max_deferred_answers;
  o.mem_bytes_per_node = r.mem_bytes_per_node;
  o.runtime_corruptions = static_cast<double>(r.runtime_corruptions);
  o.first_corruption_time = r.first_corruption_time;
  o.last_corruption_time = r.last_corruption_time;
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    o.bits_by_kind[k] = static_cast<double>(r.bits_by_kind[k]);
    o.msgs_by_kind[k] = static_cast<double>(r.msgs_by_kind[k]);
  }
  o.fault_dropped_msgs = static_cast<double>(r.fault_dropped_msgs);
  o.fault_dropped_bits = static_cast<double>(r.fault_dropped_bits);
  o.fault_delayed_msgs = static_cast<double>(r.fault_delayed_msgs);
  o.recovery_retransmit_msgs = static_cast<double>(r.recovery_retransmit_msgs);
  o.recovery_retransmit_bits = static_cast<double>(r.recovery_retransmit_bits);
  o.recovery_acked_msgs = static_cast<double>(r.recovery_acked_msgs);
  o.recovery_dead_msgs = static_cast<double>(r.recovery_dead_msgs);
  o.recovery_dup_msgs = static_cast<double>(r.recovery_dup_msgs);
  for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
    o.drops_by_cause[c] = static_cast<double>(r.fault_drops_by_cause[c]);
  }
  if (r.n > 0) {
    o.push_msgs_per_node =
        static_cast<double>(
            r.msgs_by_kind[sim::kind_index(sim::MessageKind::kPush)]) /
        static_cast<double>(r.n);
  }
  return o;
}

TrialOutcome outcome_of(const aer::AerReport& report,
                        const aer::AerWorld& world) {
  TrialOutcome o = outcome_of(report);
  o.decision_times.reserve(world.correct.size());
  for (NodeId id : world.correct) {
    if (world.decisions.has_decided(id)) {
      o.decision_times.push_back(world.decisions.time(id));
    }
  }
  return o;
}

void outcome_into(const aer::AerReport& report, const aer::AerWorld& world,
                  TrialOutcome& out) {
  std::vector<double> times = std::move(out.decision_times);
  out = outcome_of(report);
  times.clear();
  times.reserve(world.correct.size());
  for (NodeId id : world.correct) {
    if (world.decisions.has_decided(id)) {
      times.push_back(world.decisions.time(id));
    }
  }
  out.decision_times = std::move(times);
}

TrialOutcome outcome_of(const ba::BaReport& r) {
  TrialOutcome o = outcome_of(r.reduction);
  // Whole-composition totals override the reduction-phase view.
  o.agreement = r.agreement;
  o.completion_time = r.total_time;
  o.total_messages = static_cast<double>(r.total_messages);
  o.amortized_bits = r.amortized_bits;
  o.ae_rounds = static_cast<double>(r.ae.rounds);
  o.reduction_time = r.reduction.completion_time;
  o.ae_bits = r.ae.amortized_bits;
  o.reduction_bits = r.reduction.amortized_bits;
  return o;
}

namespace {

std::vector<double> collect(const std::vector<TrialOutcome>& outcomes,
                            double TrialOutcome::* field) {
  std::vector<double> values;
  values.reserve(outcomes.size());
  for (const TrialOutcome& o : outcomes) values.push_back(o.*field);
  return values;
}

void hash_doubles(std::uint64_t& h, std::initializer_list<double> values) {
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h = siphash_words(SipKey{h, 0x41676772u}, {bits});
  }
}

void hash_stats(std::uint64_t& h, const SummaryStats& s) {
  h = siphash_words(SipKey{h, 0x53746174u}, {s.count});
  hash_doubles(h, {s.mean, s.stddev, s.min, s.max, s.p50, s.p90, s.p99,
                   s.ci95});
}

}  // namespace

std::uint64_t Aggregate::fingerprint() const {
  std::uint64_t h = 0x666261206578700aull;
  h = siphash_words(SipKey{h, 1},
                    {trials, agreements, engine_incomplete, wrong_decisions,
                     stalled_nodes, correct_nodes,
                     static_cast<std::uint64_t>(max_candidate_list),
                     missing_gstring,
                     static_cast<std::uint64_t>(max_deferred)});
  for (const SummaryStats* s :
       {&completion_time, &mean_decision_time, &engine_time, &total_messages,
        &amortized_bits, &max_sent_bits, &mean_sent_bits, &imbalance,
        &decision_time}) {
    hash_stats(h, *s);
  }
  hash_doubles(h, {push_bits_per_node, push_msgs_per_node,
                   candidate_lists_per_node, ae_rounds, reduction_time,
                   ae_bits, reduction_bits});
  // The first 19 kinds (everything up to kPing) are hashed unconditionally —
  // the pinned golden fingerprints were recorded over exactly those. Kinds
  // appended later (kAck and any successors) enter the hash only when they
  // carried traffic, so a run that never sends them — every recovery-off
  // run — fingerprints identically to a build without the kind. The skip
  // decision depends only on round-tripped values (msgs_by_kind), so a
  // JSON-reloaded Aggregate hashes the same.
  constexpr std::size_t kLegacyKinds =
      sim::kind_index(sim::MessageKind::kAck);
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    if (k >= kLegacyKinds && msgs_by_kind[k] == 0) continue;
    hash_stats(h, bits_by_kind[k]);
    hash_doubles(h, {msgs_by_kind[k]});
  }
  hash_stats(h, fault_dropped_msgs);
  hash_stats(h, fault_dropped_bits);
  hash_doubles(h, {fault_delayed_msgs});
  for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
    hash_doubles(h, {drops_by_cause[c]});
  }
  // mem_bytes_per_node is deliberately NOT hashed — see its declaration.
  // Likewise the corruption-timeline fields (runtime_corruptions,
  // first/last_corruption_time) and the recovery_* fields: zero on every
  // pinned golden.
  return h;
}

Aggregate aggregate_outcomes(const std::vector<TrialOutcome>& outcomes) {
  Aggregate agg;
  agg.trials = outcomes.size();

  std::vector<double> pooled_times;
  double push_bits = 0, push_msgs = 0, lists = 0;
  double ae_rounds = 0, red_time = 0, ae_bits = 0, red_bits = 0;
  double delayed = 0;
  double rec_acked = 0, rec_dead = 0, rec_dup = 0;
  double first_sum = 0, last_sum = 0;
  std::size_t corrupted_trials = 0;
  std::array<double, sim::kNumFaultCauses> cause_sums{};
  for (const TrialOutcome& o : outcomes) {
    agg.agreements += o.agreement ? 1 : 0;
    agg.engine_incomplete += o.engine_completed ? 0 : 1;
    agg.wrong_decisions += o.wrong_decisions;
    agg.stalled_nodes += o.correct - o.decided;
    agg.correct_nodes += o.correct;
    agg.max_candidate_list =
        std::max(agg.max_candidate_list, o.max_candidate_list);
    agg.missing_gstring += o.missing_gstring;
    agg.max_deferred = std::max(agg.max_deferred, o.max_deferred);
    push_bits += o.push_bits_per_node;
    push_msgs += o.push_msgs_per_node;
    lists += o.candidate_lists_per_node;
    ae_rounds += o.ae_rounds;
    red_time += o.reduction_time;
    ae_bits += o.ae_bits;
    red_bits += o.reduction_bits;
    delayed += o.fault_delayed_msgs;
    rec_acked += o.recovery_acked_msgs;
    rec_dead += o.recovery_dead_msgs;
    rec_dup += o.recovery_dup_msgs;
    agg.runtime_corruptions += static_cast<std::uint64_t>(o.runtime_corruptions);
    if (o.runtime_corruptions > 0) {
      ++corrupted_trials;
      first_sum += o.first_corruption_time;
      last_sum += o.last_corruption_time;
    }
    for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
      cause_sums[c] += o.drops_by_cause[c];
    }
    pooled_times.insert(pooled_times.end(), o.decision_times.begin(),
                        o.decision_times.end());
  }
  if (!outcomes.empty()) {
    const auto count = static_cast<double>(outcomes.size());
    agg.push_bits_per_node = push_bits / count;
    agg.push_msgs_per_node = push_msgs / count;
    agg.candidate_lists_per_node = lists / count;
    agg.ae_rounds = ae_rounds / count;
    agg.reduction_time = red_time / count;
    agg.ae_bits = ae_bits / count;
    agg.reduction_bits = red_bits / count;
    agg.fault_delayed_msgs = delayed / count;
    agg.recovery_acked_msgs = rec_acked / count;
    agg.recovery_dead_msgs = rec_dead / count;
    agg.recovery_dup_msgs = rec_dup / count;
    for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
      agg.drops_by_cause[c] = cause_sums[c] / count;
    }
  }
  if (corrupted_trials > 0) {
    agg.first_corruption_time =
        first_sum / static_cast<double>(corrupted_trials);
    agg.last_corruption_time = last_sum / static_cast<double>(corrupted_trials);
  }

  agg.completion_time =
      summarize_sample(collect(outcomes, &TrialOutcome::completion_time));
  agg.mean_decision_time =
      summarize_sample(collect(outcomes, &TrialOutcome::mean_decision_time));
  agg.engine_time =
      summarize_sample(collect(outcomes, &TrialOutcome::engine_time));
  agg.total_messages =
      summarize_sample(collect(outcomes, &TrialOutcome::total_messages));
  agg.amortized_bits =
      summarize_sample(collect(outcomes, &TrialOutcome::amortized_bits));
  agg.max_sent_bits =
      summarize_sample(collect(outcomes, &TrialOutcome::max_sent_bits));
  agg.mean_sent_bits =
      summarize_sample(collect(outcomes, &TrialOutcome::mean_sent_bits));
  agg.imbalance = summarize_sample(collect(outcomes, &TrialOutcome::imbalance));
  agg.mem_bytes_per_node =
      summarize_sample(collect(outcomes, &TrialOutcome::mem_bytes_per_node));
  agg.fault_dropped_msgs =
      summarize_sample(collect(outcomes, &TrialOutcome::fault_dropped_msgs));
  agg.fault_dropped_bits =
      summarize_sample(collect(outcomes, &TrialOutcome::fault_dropped_bits));
  agg.recovery_retransmit_msgs = summarize_sample(
      collect(outcomes, &TrialOutcome::recovery_retransmit_msgs));
  agg.recovery_retransmit_bits = summarize_sample(
      collect(outcomes, &TrialOutcome::recovery_retransmit_bits));
  agg.decision_time = summarize_sample(std::move(pooled_times));

  std::vector<double> kind_values(outcomes.size());
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    double msg_sum = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      kind_values[i] = outcomes[i].bits_by_kind[k];
      msg_sum += outcomes[i].msgs_by_kind[k];
    }
    agg.bits_by_kind[k] = summarize_sample(kind_values);
    if (!outcomes.empty()) {
      agg.msgs_by_kind[k] = msg_sum / static_cast<double>(outcomes.size());
    }
  }
  return agg;
}

}  // namespace fba::exp
