// Per-trial outcomes and their cross-trial reduction.
//
// A TrialOutcome is the flat, report-shaped record one protocol run leaves
// behind; Aggregate reduces a fixed-order sequence of them into the
// distributional summaries benches print (mean/p50/p99 decision time,
// traffic distributions, safety-violation counts, 95% CIs). The reduction
// is a pure fold over the outcome vector in index order, so a sweep that
// produces the same outcomes produces a bit-identical Aggregate no matter
// how many threads ran the trials.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aer/protocol.h"
#include "exp/stats.h"

namespace fba::ba {
struct BaReport;
}

namespace fba::exp {

/// Everything the aggregator needs from one finished trial.
struct TrialOutcome {
  std::uint64_t seed = 0;  ///< the derived per-trial seed actually used.

  // Outcome.
  std::size_t correct = 0;
  std::size_t decided = 0;
  std::size_t wrong_decisions = 0;  ///< correct nodes deciding != gstring.
  std::size_t knowledgeable = 0;
  bool agreement = false;
  bool engine_completed = false;

  // Time (rounds in sync models, normalized time in async).
  double completion_time = 0;
  double mean_decision_time = 0;
  double engine_time = 0;

  // Traffic.
  double total_messages = 0;
  double amortized_bits = 0;  ///< total bits / n, the paper's measure.
  double max_sent_bits = 0;
  double mean_sent_bits = 0;
  double imbalance = 0;  ///< max / mean per-node sent bits.
  /// Per-kind traffic axes (whole-run totals, indexed by sim::kind_index()).
  std::array<double, sim::kNumMessageKinds> bits_by_kind{};
  std::array<double, sim::kNumMessageKinds> msgs_by_kind{};
  /// Fault-layer activity (net/fault.h; all zero on reliable channels).
  double fault_dropped_msgs = 0;
  double fault_dropped_bits = 0;
  double fault_delayed_msgs = 0;
  std::array<double, sim::kNumFaultCauses> drops_by_cause{};
  /// Recovery-sublayer activity (net/recovery.h; all zero with it off).
  double recovery_retransmit_msgs = 0;
  double recovery_retransmit_bits = 0;
  double recovery_acked_msgs = 0;
  double recovery_dead_msgs = 0;
  double recovery_dup_msgs = 0;

  // Composed-BA phase split (zero for single-phase runs).
  double ae_rounds = 0;
  double reduction_time = 0;
  double ae_bits = 0;
  double reduction_bits = 0;

  // Push phase / responder pressure (AER-specific; zero elsewhere).
  double push_bits_per_node = 0;
  double push_msgs_per_node = 0;
  double candidate_lists_per_node = 0;
  std::size_t max_candidate_list = 0;
  std::size_t missing_gstring = 0;
  std::size_t max_deferred = 0;

  /// Deterministic per-node memory account (AerReport::mem_bytes_per_node;
  /// the SoA scale runner fills it, every other runner leaves 0).
  double mem_bytes_per_node = 0;

  // Adaptive-adversary corruption timeline (all zero under the paper's
  // non-adaptive model).
  double runtime_corruptions = 0;
  double first_corruption_time = 0;
  double last_corruption_time = 0;

  /// Per-node decision times, when the trial runner harvested them (the
  /// world-owning runners do); pooled across trials for latency quantiles.
  std::vector<double> decision_times;
};

/// Flattens an AerReport; the world-aware overload additionally harvests
/// per-node decision times from the world's decision log.
TrialOutcome outcome_of(const aer::AerReport& report);
TrialOutcome outcome_of(const aer::AerReport& report,
                        const aer::AerWorld& world);
/// In-place variant of the world-aware overload: identical result, but
/// `out`'s decision-times capacity is reused (the trial-arena path).
void outcome_into(const aer::AerReport& report, const aer::AerWorld& world,
                  TrialOutcome& out);
/// Flattens a composed-BA run: time/traffic totals cover both phases,
/// AER-specific fields come from the reduction phase.
TrialOutcome outcome_of(const ba::BaReport& report);

/// Cross-trial reduction of one grid point.
struct Aggregate {
  std::size_t trials = 0;
  std::size_t agreements = 0;
  std::size_t engine_incomplete = 0;  ///< runs stopped by max_time/rounds.
  std::uint64_t wrong_decisions = 0;  ///< summed safety violations.
  std::uint64_t stalled_nodes = 0;    ///< summed undecided correct nodes.
  std::uint64_t correct_nodes = 0;    ///< summed correct-node population.

  SummaryStats completion_time;
  SummaryStats mean_decision_time;
  SummaryStats engine_time;
  SummaryStats total_messages;
  SummaryStats amortized_bits;
  SummaryStats max_sent_bits;
  SummaryStats mean_sent_bits;
  SummaryStats imbalance;
  /// Pooled per-node decision times across all trials that recorded them.
  SummaryStats decision_time;
  /// Per-kind traffic distributions across trials (mean/CI95 per kind).
  std::array<SummaryStats, sim::kNumMessageKinds> bits_by_kind{};
  std::array<double, sim::kNumMessageKinds> msgs_by_kind{};  ///< means.

  /// Fault-layer activity across trials.
  SummaryStats fault_dropped_msgs;
  SummaryStats fault_dropped_bits;
  double fault_delayed_msgs = 0;  ///< mean per trial.
  std::array<double, sim::kNumFaultCauses> drops_by_cause{};  ///< means.

  // Composed-BA phase-split means across trials.
  double ae_rounds = 0;
  double reduction_time = 0;
  double ae_bits = 0;
  double reduction_bits = 0;

  // Push/responder means across trials.
  double push_bits_per_node = 0;
  double push_msgs_per_node = 0;
  double candidate_lists_per_node = 0;
  std::size_t max_candidate_list = 0;
  std::uint64_t missing_gstring = 0;
  std::size_t max_deferred = 0;

  /// Memory distribution across trials (bytes/node; all-zero on runners
  /// that do not account memory). Deliberately OUTSIDE fingerprint(): the
  /// pinned golden fingerprints predate the memory metric, and pointer-path
  /// and SoA-path runs of the same point must keep matching fingerprints
  /// while only one of them fills this field. Report::diff compares it
  /// explicitly instead (exp/report.cpp kDiffMetrics).
  SummaryStats mem_bytes_per_node;

  /// Adaptive-adversary corruption timeline across trials. Same placement
  /// rule as mem_bytes_per_node: deliberately OUTSIDE fingerprint(), so the
  /// pinned goldens (all recorded with budget 0) stay valid and a budget-0
  /// adaptive run fingerprints identically to its static twin.
  std::uint64_t runtime_corruptions = 0;  ///< summed over trials.
  double first_corruption_time = 0;  ///< mean over trials that corrupted.
  double last_corruption_time = 0;   ///< mean over trials that corrupted.

  /// Recovery-sublayer activity across trials. Same placement rule as
  /// mem_bytes_per_node: deliberately OUTSIDE fingerprint(), so the pinned
  /// goldens (all recorded pre-recovery) stay valid and a recovery-off run
  /// fingerprints identically to a build without the layer. Report::diff
  /// compares retransmit bits explicitly (exp/report.cpp kDiffMetrics).
  SummaryStats recovery_retransmit_msgs;
  SummaryStats recovery_retransmit_bits;
  double recovery_acked_msgs = 0;  ///< mean per trial.
  double recovery_dead_msgs = 0;   ///< mean per trial.
  double recovery_dup_msgs = 0;    ///< mean per trial.

  double agreement_rate() const {
    return trials > 0 ? static_cast<double>(agreements) /
                            static_cast<double>(trials)
                      : 0;
  }
  double decided_fraction() const {
    return correct_nodes > 0
               ? 1.0 - static_cast<double>(stalled_nodes) /
                           static_cast<double>(correct_nodes)
               : 0;
  }

  /// Order-sensitive hash of every numeric field — two Aggregates are
  /// bit-identical iff their fingerprints match (used by the determinism
  /// tests and CI).
  std::uint64_t fingerprint() const;
};

/// Folds outcomes in index order. Deterministic: no RNG, no dependence on
/// the thread interleaving that produced the vector.
Aggregate aggregate_outcomes(const std::vector<TrialOutcome>& outcomes);

}  // namespace fba::exp
