// TrialArena: one worker thread's reusable trial machinery.
//
// A sweep runs thousands of trials back to back; without an arena every
// trial reconstructs its whole world on the heap — string table, sampler
// tables, engine, n actors and their tally maps. The arena keeps all of it
// alive between trials: build_aer_world_into re-keys the world in place,
// the engines reset instead of reconstructing, and the actor pool's
// containers keep their capacity. After a warm-up trial, running a trial
// performs no heap allocation (under the default corruption picker, the
// "none" attack and an allocation-free fault plan) — the contract
// bench_micro_primitives::BM_WarmTrialAllocations enforces.
//
// Determinism: a trial's result depends only on its config (seed included),
// never on what the arena ran before — reset paths replicate construction
// semantics exactly. exp_test compares arena-path and fresh-path
// fingerprints; golden_test pins the values themselves.
#pragma once

#include <cstdint>

#include "aer/runner.h"
#include "aer/soa.h"

namespace fba::exp {

/// Wall-clock split a sweep's trials accumulate (world/sampler setup vs
/// engine execution); surfaced by fba_sim / fba_repro --timing.
struct TrialTiming {
  double setup_seconds = 0;  ///< build_aer_world_into (samplers, gstring...)
  double run_seconds = 0;    ///< engine execution + harvest
  std::uint64_t trials = 0;

  void add(const TrialTiming& other) {
    setup_seconds += other.setup_seconds;
    run_seconds += other.run_seconds;
    trials += other.trials;
  }
};

/// Everything one sweep worker reuses across the trials it runs. Workers
/// never share arenas, so no synchronization is needed inside.
class TrialArena {
 public:
  aer::AerWorld world;
  aer::RunArena run;
  TrialTiming timing;

  /// Discards every pool, slab and table: the next trial rebuilds from
  /// nothing, exactly like a first-ever trial. This is the cold baseline of
  /// the service-mode A/B (ServiceConfig::warm = false / bench_service's
  /// cold lap) — the warm path's speedup is measured against it. Timing is
  /// kept: it accounts the run, not the storage.
  void clear() {
    world = aer::AerWorld();
    run.sync.reset();
    run.async.reset();
    run.node_pool.clear();
    run.node_pool.shrink_to_fit();
    run.active.clear();
    run.active.shrink_to_fit();
  }
};

/// Scale-mode counterpart: the world plus the structure-of-arrays actor
/// state and engines (aer/soa.h) reused across the trials one worker runs.
/// Same determinism contract as TrialArena — a trial's result depends only
/// on its config, never on what the arena ran before.
class ScaleArena {
 public:
  aer::AerWorld world;
  aer::SoaArena run;
  TrialTiming timing;
};

}  // namespace fba::exp
