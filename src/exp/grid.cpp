#include "exp/grid.h"

#include <cstdio>

namespace fba::exp {

namespace {

template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, const T& fallback) {
  if (axis.empty()) return {fallback};
  return axis;
}

}  // namespace

std::size_t Grid::points() const {
  auto dim = [](std::size_t v) { return v == 0 ? std::size_t{1} : v; };
  return dim(ns.size()) * dim(models.size()) * dim(corrupt_fractions.size()) *
         dim(strategies.size()) * dim(faults.size()) * dim(budgets.size()) *
         dim(adaptive_froms.size()) * dim(recoveries.size());
}

aer::AerConfig GridPoint::apply(aer::AerConfig base) const {
  base.n = n;
  base.model = model;
  base.corrupt_fraction = corrupt_fraction;
  if (budget >= 0) base.adaptive_budget = static_cast<std::size_t>(budget);
  if (adaptive_from >= 0) base.adaptive_from = adaptive_from;
  return base;
}

std::string GridPoint::label() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu model=%s corrupt=%.2f attack=%s", n,
                aer::model_name(model), corrupt_fraction, strategy.c_str());
  std::string out = buf;
  if (!fault.empty()) {
    out += " fault=";
    out += fault;
  }
  if (!recovery.empty()) {
    out += " recovery=";
    out += recovery;
  }
  if (budget >= 0) {
    std::snprintf(buf, sizeof(buf), " budget=%ld", budget);
    out += buf;
  }
  if (adaptive_from >= 0) {
    std::snprintf(buf, sizeof(buf), " from=%g", adaptive_from);
    out += buf;
  }
  return out;
}

std::vector<GridPoint> expand_grid(const aer::AerConfig& base,
                                   const Grid& grid) {
  const auto ns = axis_or(grid.ns, base.n);
  const auto models = axis_or(grid.models, base.model);
  const auto fractions = axis_or(grid.corrupt_fractions, base.corrupt_fraction);
  const auto strategies = axis_or<std::string>(grid.strategies, "none");
  // Empty fault string = "keep the base config's fault plan", so an
  // unset axis leaves non-sweep callers untouched. Same sentinel idea for
  // the adaptive axes: -1 = "keep the base config's value" (and keep the
  // label unchanged), so every pre-adaptive sweep expands exactly as
  // before — same points, same indexes, same per-trial seeds.
  const auto faults = axis_or<std::string>(grid.faults, "");
  const auto recoveries = axis_or<std::string>(grid.recoveries, "");
  std::vector<long> budget_axis;
  budget_axis.reserve(grid.budgets.size());
  for (std::size_t b : grid.budgets) budget_axis.push_back(static_cast<long>(b));
  const auto budgets = axis_or<long>(budget_axis, -1);
  const auto froms = axis_or<double>(grid.adaptive_froms, -1);

  std::vector<GridPoint> points;
  points.reserve(ns.size() * models.size() * fractions.size() *
                 strategies.size() * faults.size() * budgets.size() *
                 froms.size() * recoveries.size());
  for (const std::string& recovery : recoveries) {
    for (double from : froms) {
      for (long budget : budgets) {
        for (const std::string& fault : faults) {
          for (const std::string& strategy : strategies) {
            for (double fraction : fractions) {
              for (aer::Model model : models) {
                for (std::size_t n : ns) {
                  GridPoint p;
                  p.index = points.size();
                  p.n = n;
                  p.model = model;
                  p.corrupt_fraction = fraction;
                  p.strategy = strategy;
                  p.fault = fault;
                  p.recovery = recovery;
                  p.budget = budget;
                  p.adaptive_from = from;
                  points.push_back(std::move(p));
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

}  // namespace fba::exp
