// Parameter grids for experiment sweeps.
//
// A Grid names the axes a sweep varies — network size, timing model,
// corrupt fraction, adversary strategy — and expands against a base
// AerConfig into the cross product of grid points. An empty axis means
// "keep the base config's value", so a Grid{.ns = {128, 256}} is a plain
// size sweep and Grid{} is a single point (pure trial replication).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "aer/config.h"

namespace fba::exp {

struct Grid {
  std::vector<std::size_t> ns;
  std::vector<aer::Model> models;
  std::vector<double> corrupt_fractions;
  /// Adversary strategy names resolved via exp::attack_factory (scenario.h);
  /// "none" is the honest run.
  std::vector<std::string> strategies;

  /// Number of grid points after expansion (>= 1; empty axes count as 1).
  std::size_t points() const;
};

/// One cell of the cross product. `index` is the point's position in the
/// expansion order (strategy-major … n-minor, see expand_grid), which also
/// keys the deterministic per-trial seed derivation.
struct GridPoint {
  std::size_t index = 0;
  std::size_t n = 0;
  aer::Model model = aer::Model::kSyncRushing;
  double corrupt_fraction = 0;
  std::string strategy = "none";

  /// The base config with this point's axes applied. The seed is left
  /// untouched: the sweep assigns per-trial seeds itself.
  aer::AerConfig apply(aer::AerConfig base) const;

  /// "n=256 model=async corrupt=0.08 attack=poll-stuff" — for table rows.
  std::string label() const;
};

/// Cross-product expansion, axes fixed in the order
/// strategy > corrupt_fraction > model > n (n varies fastest). Missing axes
/// are filled from `base`.
std::vector<GridPoint> expand_grid(const aer::AerConfig& base,
                                   const Grid& grid);

}  // namespace fba::exp
