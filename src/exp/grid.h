// Parameter grids for experiment sweeps.
//
// A Grid names the axes a sweep varies — network size, timing model,
// corrupt fraction, adversary strategy — and expands against a base
// AerConfig into the cross product of grid points. An empty axis means
// "keep the base config's value", so a Grid{.ns = {128, 256}} is a plain
// size sweep and Grid{} is a single point (pure trial replication).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "aer/config.h"

namespace fba::exp {

struct Grid {
  std::vector<std::size_t> ns;
  std::vector<aer::Model> models;
  std::vector<double> corrupt_fractions;
  /// Adversary strategy names resolved via exp::attack_factory (scenario.h);
  /// "none" is the honest run.
  std::vector<std::string> strategies;
  /// Fault-preset names resolved via exp::fault_plan_factory (scenario.h);
  /// "none" is the paper's reliable-channel model. An empty axis keeps the
  /// base config's fault plan.
  std::vector<std::string> faults;

  /// Recovery-preset names resolved via exp::recovery_plan_factory
  /// (scenario.h); "off" disables the layer. An empty axis keeps the base
  /// config's recovery plan — pre-recovery sweeps expand to identical
  /// points and labels.
  std::vector<std::string> recoveries;

  /// Runtime corruption budgets for adaptive-* strategies
  /// (AerConfig::adaptive_budget). An empty axis keeps the base config's
  /// budget — every non-adaptive sweep expands exactly as before.
  std::vector<std::size_t> budgets;
  /// Earliest spend times (AerConfig::adaptive_from). Same empty-axis rule.
  std::vector<double> adaptive_froms;

  /// Number of grid points after expansion (>= 1; empty axes count as 1).
  std::size_t points() const;
};

/// One cell of the cross product. `index` is the point's position in the
/// expansion order (strategy-major … n-minor, see expand_grid), which also
/// keys the deterministic per-trial seed derivation.
struct GridPoint {
  std::size_t index = 0;
  std::size_t n = 0;
  aer::Model model = aer::Model::kSyncRushing;
  double corrupt_fraction = 0;
  std::string strategy = "none";
  /// Fault-preset name. Empty means "keep the base config's fault plan";
  /// the name is resolved onto the trial config by the scenario trial
  /// runners (exp::fault_plan_factory), keeping grid.cpp registry-free.
  std::string fault;
  /// Recovery-preset name. Empty means "keep the base config's recovery
  /// plan" (and keeps the label unchanged); resolved by the scenario trial
  /// runners via exp::recovery_plan_factory, like `fault`.
  std::string recovery;
  /// Runtime corruption budget (adaptive-* strategies). -1 means "keep the
  /// base config's adaptive_budget" — and keeps the label unchanged, so
  /// non-adaptive baselines diff cleanly against old files.
  long budget = -1;
  /// Earliest adaptive spend time; -1 keeps the base config's value.
  double adaptive_from = -1;

  /// The base config with this point's axes applied (the fault axis is a
  /// name; the trial runners resolve it — see `fault`). The seed is left
  /// untouched: the sweep assigns per-trial seeds itself.
  aer::AerConfig apply(aer::AerConfig base) const;

  /// "n=256 model=async corrupt=0.08 attack=poll-stuff fault=lossy-1pct
  /// recovery=arq-fast budget=4" — for table rows. The fault / recovery /
  /// budget / from fields appear only when their axis is set.
  std::string label() const;
};

/// Cross-product expansion, axes fixed in the order
/// recovery > adaptive_from > budget > fault > strategy > corrupt_fraction
/// > model > n (n varies fastest). Missing axes are filled from `base`.
std::vector<GridPoint> expand_grid(const aer::AerConfig& base,
                                   const Grid& grid);

}  // namespace fba::exp
