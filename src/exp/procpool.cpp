#include "exp/procpool.h"

#include <poll.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "support/subprocess.h"
#include "support/types.h"

namespace fba::exp {

namespace {

volatile sig_atomic_t g_interrupted = 0;

void on_sigint(int) { g_interrupted = 1; }

/// Installed without SA_RESTART so a Ctrl-C breaks the parent out of
/// poll() with EINTR and the drain logic runs immediately.
void install_sigint_handler() {
  static bool installed = false;
  if (installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  installed = true;
}

double now_seconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool hook_matches(const char* value, std::size_t worker) {
  if (value == nullptr || *value == '\0') return false;
  if (std::strcmp(value, "all") == 0) return true;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  return end != value && *end == '\0' && v == worker;
}

/// The forked worker's main loop: read task lines, compute, stream the
/// result back. Never returns into the caller's stack (spawn_child _exits
/// with the return value).
int worker_main(int fd, std::size_t worker, const ProcCompute& compute) {
  const char* crash_hook = std::getenv("FBA_TEST_WORKER_CRASH");
  const char* hang_hook = std::getenv("FBA_TEST_WORKER_HANG");
  bool first_task = true;

  std::string buf;
  while (true) {
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      if (support::read_some(fd, buf, 4096) <= 0) return 1;  // parent died
      continue;
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);

    if (line == "Q") return 0;

    std::size_t begin = 0, end = 0;
    if (std::sscanf(line.c_str(), "T %zu %zu", &begin, &end) != 2) return 1;

    if (first_task) {
      first_task = false;
      if (hook_matches(crash_hook, worker)) _exit(1);
      if (hook_matches(hang_hook, worker)) {
        while (true) pause();  // no heartbeats: the parent must time us out
      }
    }

    const auto beat = [fd] {
      if (!support::write_all(fd, "B\n", 2)) _exit(1);
    };
    std::string payload;
    try {
      payload = compute(begin, end, beat);
    } catch (const std::exception& e) {
      const std::string msg = e.what();
      char header[64];
      std::snprintf(header, sizeof(header), "E %zu\n", msg.size());
      std::string out = header;
      out += msg;
      support::write_all(fd, out.data(), out.size());
      continue;  // parent aborts the run; keep the pipe open meanwhile
    }
    char header[96];
    std::snprintf(header, sizeof(header), "R %zu %zu %zu\n", begin, end,
                  payload.size());
    std::string out = header;
    out += payload;
    if (!support::write_all(fd, out.data(), out.size())) return 1;
  }
}

/// Parent-side view of one worker: its process, read buffer, in-flight
/// task, and the message-framing state machine.
struct WorkerSlot {
  support::ChildProc proc;
  std::string buf;
  long task = -1;  ///< index into tasks, -1 when idle/quitting
  double deadline = 0;
  bool quitting = false;
  // Framing: after an R/E header, how many body bytes are still owed.
  enum class Frame { kLine, kResult, kError } frame = Frame::kLine;
  std::size_t body_len = 0;
  std::size_t r_begin = 0, r_end = 0;
};

std::size_t task_cells(const std::vector<ProcTask>& tasks) {
  std::size_t n = 0;
  for (const ProcTask& t : tasks) n += t.end - t.begin;
  return n;
}

}  // namespace

bool interrupt_requested() { return g_interrupted != 0; }

void clear_interrupt() { g_interrupted = 0; }

ProcStats run_proc_tasks(const std::vector<ProcTask>& tasks,
                         std::size_t procs, const ProcOptions& options,
                         const ProcCompute& compute,
                         const ProcAccept& accept) {
  FBA_REQUIRE(procs >= 1, "process pool needs at least one worker");
  ProcStats stats;
  stats.tasks = tasks.size();
  if (tasks.empty() || interrupt_requested()) {
    stats.interrupted = interrupt_requested();
    return stats;
  }

  ProcOptions opts = options;
  if (const char* env = std::getenv("FBA_PROC_TIMEOUT")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && v > 0) opts.heartbeat_timeout = v;
  }

  install_sigint_handler();
  support::ScopedSigpipeIgnore sigpipe_guard;

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) pending.push_back(i);
  std::vector<std::size_t> retries(tasks.size(), 0);
  std::size_t done = 0;
  std::size_t done_cells = 0;

  const std::size_t n_workers = procs < tasks.size() ? procs : tasks.size();
  stats.workers = n_workers;
  std::vector<WorkerSlot> workers(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers[w].proc = support::spawn_child(
        [w, &compute](int fd) { return worker_main(fd, w, compute); });
  }

  const auto abort_run = [&](const std::string& reason) {
    for (WorkerSlot& slot : workers) {
      if (slot.proc.alive()) support::kill_and_reap(slot.proc, SIGKILL);
    }
    throw ConfigError("process sweep failed: " + reason + " (completed " +
                      std::to_string(done) + " of " +
                      std::to_string(tasks.size()) + " tasks, " +
                      std::to_string(done_cells) + " of " +
                      std::to_string(task_cells(tasks)) + " cells)");
  };

  const auto deal = [&](WorkerSlot& slot) -> bool {
    if (pending.empty() || interrupt_requested()) return false;
    const std::size_t t = pending.front();
    pending.pop_front();
    char line[96];
    std::snprintf(line, sizeof(line), "T %zu %zu\n", tasks[t].begin,
                  tasks[t].end);
    if (!support::write_all(slot.proc.fd, line, std::strlen(line))) {
      pending.push_front(t);
      return false;  // broken pipe: the poll loop reaps this worker
    }
    slot.task = static_cast<long>(t);
    slot.deadline = now_seconds() + opts.heartbeat_timeout;
    return true;
  };

  const auto quit_worker = [&](WorkerSlot& slot) {
    slot.quitting = true;
    slot.task = -1;
    support::write_all(slot.proc.fd, "Q\n", 2);
    support::reap_with_grace(slot.proc, 5.0);
  };

  // A task comes back to the queue after its worker crashed, hung, or
  // returned a corrupt payload.
  const auto redeal = [&](WorkerSlot& slot, const char* why) {
    const long t = slot.task;
    slot.task = -1;
    if (t < 0) return;
    ++stats.tasks_redealt;
    if (++retries[static_cast<std::size_t>(t)] > opts.max_retries) {
      abort_run("task [" + std::to_string(tasks[t].begin) + ", " +
                std::to_string(tasks[t].end) + ") exceeded " +
                std::to_string(opts.max_retries) + " re-deals (" + why + ")");
    }
    std::fprintf(stderr,
                 "fba: worker %s; re-dealing task [%zu, %zu) (retry %zu)\n",
                 why, tasks[t].begin, tasks[t].end,
                 retries[static_cast<std::size_t>(t)]);
    pending.push_front(static_cast<std::size_t>(t));
  };

  for (WorkerSlot& slot : workers) deal(slot);

  while (true) {
    // Drained? Every task accepted, or SIGINT dropped the pending ones and
    // no worker still holds an in-flight task.
    bool in_flight = false;
    for (WorkerSlot& slot : workers) {
      if (slot.proc.alive() && slot.task >= 0) in_flight = true;
    }
    const bool drained =
        done == tasks.size() ||
        (interrupt_requested() && !in_flight) ||
        (pending.empty() && !in_flight);
    if (drained) break;

    if (!in_flight) {
      // Tasks pending but nobody working on them: hand them out, or admit
      // defeat when every worker is gone.
      bool dealt = false;
      for (WorkerSlot& slot : workers) {
        if (slot.proc.alive() && !slot.quitting && slot.task < 0) {
          if (deal(slot)) dealt = true;
        }
      }
      if (!dealt) abort_run("all workers died");
      continue;
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    double min_deadline = -1;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerSlot& slot = workers[w];
      if (!slot.proc.alive() || slot.task < 0) continue;
      fds.push_back(pollfd{slot.proc.fd, POLLIN, 0});
      fd_owner.push_back(w);
      if (min_deadline < 0 || slot.deadline < min_deadline) {
        min_deadline = slot.deadline;
      }
    }

    int timeout_ms = 1000;
    if (min_deadline >= 0) {
      const double remain = min_deadline - now_seconds();
      timeout_ms = remain <= 0 ? 0
                               : static_cast<int>(remain * 1000.0) + 10;
      if (timeout_ms > 1000) timeout_ms = 1000;
    }
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      abort_run(std::string("poll failed: ") + std::strerror(errno));
    }

    const double now = now_seconds();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      WorkerSlot& slot = workers[fd_owner[i]];
      if (!slot.proc.alive() || slot.task < 0) continue;

      if (ready > 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        const long n = support::read_some(slot.proc.fd, slot.buf, 4096);
        if (n <= 0) {
          ++stats.worker_crashes;
          support::kill_and_reap(slot.proc, SIGKILL);
          redeal(slot, "crashed");
          continue;
        }
        slot.deadline = now + opts.heartbeat_timeout;

        // Consume every complete message in the buffer.
        bool worker_gone = false;
        while (!worker_gone) {
          if (slot.frame == WorkerSlot::Frame::kLine) {
            const std::size_t nl = slot.buf.find('\n');
            if (nl == std::string::npos) break;
            const std::string line = slot.buf.substr(0, nl);
            slot.buf.erase(0, nl + 1);
            if (line == "B") continue;
            std::size_t b = 0, e = 0, len = 0;
            if (std::sscanf(line.c_str(), "R %zu %zu %zu", &b, &e, &len) ==
                3) {
              slot.frame = WorkerSlot::Frame::kResult;
              slot.body_len = len;
              slot.r_begin = b;
              slot.r_end = e;
            } else if (std::sscanf(line.c_str(), "E %zu", &len) == 1) {
              slot.frame = WorkerSlot::Frame::kError;
              slot.body_len = len;
            } else {
              ++stats.worker_crashes;
              support::kill_and_reap(slot.proc, SIGKILL);
              redeal(slot, "sent a malformed message");
              worker_gone = true;
            }
          } else if (slot.buf.size() < slot.body_len) {
            break;  // body still streaming in
          } else {
            const std::string body = slot.buf.substr(0, slot.body_len);
            slot.buf.erase(0, slot.body_len);
            const WorkerSlot::Frame frame = slot.frame;
            slot.frame = WorkerSlot::Frame::kLine;
            if (frame == WorkerSlot::Frame::kError) {
              // Deterministic task failure: any worker would hit it too.
              abort_run("trial failed: " + body);
            }
            const long t = slot.task;
            try {
              accept(fd_owner[i], slot.r_begin, slot.r_end, body);
            } catch (const ConfigError& err) {
              std::fprintf(stderr, "fba: worker payload rejected: %s\n",
                           err.what());
              ++stats.worker_crashes;
              support::kill_and_reap(slot.proc, SIGKILL);
              redeal(slot, "returned a corrupt payload");
              worker_gone = true;
              continue;
            }
            ++done;
            if (t >= 0) {
              done_cells +=
                  tasks[static_cast<std::size_t>(t)].end -
                  tasks[static_cast<std::size_t>(t)].begin;
            }
            slot.task = -1;
            // No more pending work: stay alive but idle — a crashed peer's
            // task may still be re-dealt here. The final cleanup quits us.
            if (!deal(slot)) worker_gone = true;
          }
        }
        continue;
      }

      if (now >= slot.deadline) {
        ++stats.worker_timeouts;
        support::kill_and_reap(slot.proc, SIGKILL);
        redeal(slot, "stopped heartbeating (timed out)");
      }
    }
  }

  for (WorkerSlot& slot : workers) {
    if (slot.proc.alive() && !slot.quitting) quit_worker(slot);
  }
  stats.interrupted = interrupt_requested() && done < tasks.size();
  return stats;
}

}  // namespace fba::exp
