// Forked-worker task pool behind exp::Sweep's --procs=N mode.
//
// The parent deals contiguous task ranges to N forked workers over a
// socketpair protocol and folds each returned payload back in the order
// the caller's accept function chooses — the pool itself is payload-
// agnostic (Sweep ships exp::ShardPayload JSON through it).
//
// Wire protocol (newline-framed headers, length-prefixed bodies):
//
//   parent -> child   "T <begin> <end>\n"        run task range [begin,end)
//                     "Q\n"                      no more work, exit 0
//   child  -> parent  "B\n"                      heartbeat (one per cell)
//                     "R <begin> <end> <len>\n"  + len payload bytes
//                     "E <len>\n"                + len error-message bytes
//
// Robustness contract:
//   - A worker that exits, is killed, or whose pipe breaks mid-task is
//     detected by EOF/poll; its in-flight task is re-dealt to a survivor.
//   - A worker that stops heartbeating for longer than
//     ProcOptions::heartbeat_timeout is SIGKILLed and its task re-dealt.
//   - An accept function throwing ConfigError (corrupt payload) kills the
//     worker and re-deals, same as a crash.
//   - Each task is re-dealt at most max_retries times; exceeding that, or
//     running out of live workers, aborts with a ConfigError stating how
//     many tasks/cells completed. Workers are never respawned.
//   - "E" means the task itself threw (a deterministic failure that would
//     recur on any worker): the pool kills everything and rethrows the
//     message as a ConfigError, no re-deal.
//   - SIGINT stops dealing: in-flight tasks drain into accepted results,
//     pending ones are dropped, and the pool returns with
//     ProcStats::interrupted set so the caller can emit a valid partial
//     report. interrupt_requested() stays latched for later pool runs.
//
// Test hooks (read by the forked child from its environment):
//   FBA_TEST_WORKER_CRASH=<index|all>  _exit(1) on first task receipt.
//   FBA_TEST_WORKER_HANG=<index|all>   sleep forever on first task receipt
//                                      (no heartbeats -> parent timeout).
//   FBA_PROC_TIMEOUT=<seconds>         overrides heartbeat_timeout.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace fba::exp {

struct ProcOptions {
  /// Seconds without a heartbeat before a worker is declared hung.
  double heartbeat_timeout = 120.0;
  /// How many times one task may be re-dealt before the pool gives up.
  std::size_t max_retries = 3;
};

/// What happened during one pool run, surfaced via Sweep::proc_stats() and
/// asserted on by the crash-injection tests.
struct ProcStats {
  std::size_t workers = 0;          ///< workers forked.
  std::size_t tasks = 0;            ///< tasks dealt at least once.
  std::size_t tasks_redealt = 0;    ///< re-deals after crash/timeout.
  std::size_t worker_crashes = 0;   ///< exits/broken pipes/corrupt payloads.
  std::size_t worker_timeouts = 0;  ///< heartbeat-timeout SIGKILLs.
  bool interrupted = false;         ///< SIGINT drained to a partial result.
};

/// One contiguous task range [begin, end) in the caller's index space
/// (Sweep: indices into its owned-cell list, cut at point boundaries).
struct ProcTask {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Runs in the forked child: computes [begin, end) and returns the payload
/// to ship back. Must call `beat` after each unit of progress (Sweep: each
/// cell) — that is the liveness signal the parent's timeout watches.
using ProcCompute = std::function<std::string(
    std::size_t begin, std::size_t end, const std::function<void()>& beat)>;

/// Runs in the parent when a task's payload arrives. `worker` identifies
/// the worker (0-based fork order) for per-worker timing attribution.
/// Throwing ConfigError marks the payload corrupt: the worker is killed
/// and the task re-dealt.
using ProcAccept =
    std::function<void(std::size_t worker, std::size_t begin,
                       std::size_t end, const std::string& payload)>;

/// True once SIGINT arrived during a pool run (latched; survives across
/// subsequent sweeps so a multi-sweep figure stops as a whole).
bool interrupt_requested();
/// Unlatches the interrupt flag (tests only).
void clear_interrupt();

/// Deals `tasks` over min(procs, tasks.size()) forked workers and blocks
/// until every task is accepted, the run is interrupted, or it aborts with
/// a ConfigError per the robustness contract above.
ProcStats run_proc_tasks(const std::vector<ProcTask>& tasks,
                         std::size_t procs, const ProcOptions& options,
                         const ProcCompute& compute, const ProcAccept& accept);

}  // namespace fba::exp
