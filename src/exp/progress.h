// Shared stderr progress reporter for long sweeps, pluggable into
// exp::Sweep::set_progress. Prints "label: done/total trials (pct), ETA" at
// ~1Hz; enabled when stderr is a terminal or FBA_PROGRESS=1, so CI logs and
// piped runs stay clean. Sweep serializes the callback, so the state needs
// no locking.
#pragma once

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "exp/sweep.h"

namespace fba::exp {

inline Sweep::Progress stderr_progress(const std::string& label) {
  const bool tty = isatty(fileno(stderr)) != 0;
  const char* env = std::getenv("FBA_PROGRESS");
  if (!tty && (env == nullptr || std::strcmp(env, "1") != 0)) return {};

  struct State {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    double last_print = 0;
  };
  auto state = std::make_shared<State>();
  return [state, label, tty](std::size_t done, std::size_t total) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      state->start)
            .count();
    if (done < total && elapsed - state->last_print < 1.0) return;
    state->last_print = elapsed;
    const double rate = done > 0 ? elapsed / static_cast<double>(done) : 0;
    const double eta = rate * static_cast<double>(total - done);
    std::fprintf(stderr, "%s%s: %zu/%zu trials (%3.0f%%), ETA %.0fs%s",
                 tty ? "\r" : "", label.c_str(), done, total,
                 100.0 * static_cast<double>(done) /
                     static_cast<double>(total == 0 ? 1 : total),
                 eta, tty ? (done == total ? "\n" : "") : "\n");
    std::fflush(stderr);
  };
}

}  // namespace fba::exp
