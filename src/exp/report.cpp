#include "exp/report.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/json.h"
#include "support/types.h"

// Injected by CMake from `git describe --always --dirty` at configure time;
// stale across commits until reconfigure, which is fine for provenance.
#ifndef FBA_GIT_DESCRIBE
#define FBA_GIT_DESCRIBE "unknown"
#endif

namespace fba::exp {

namespace {

// ---- canonical number / id formatting --------------------------------------

/// Canonical number form for CSV cells and gnuplot datablocks — the JSON
/// writer's own formatting, so every artifact of one run agrees
/// byte-for-byte.
std::string canonical_num(double v) { return json::number_to_string(v); }

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string dec_u64(std::uint64_t v) { return std::to_string(v); }

std::uint64_t parse_u64(const std::string& text, int radix) {
  std::uint64_t out = 0;
  const auto r =
      std::from_chars(text.data(), text.data() + text.size(), out, radix);
  FBA_REQUIRE(r.ec == std::errc() && r.ptr == text.data() + text.size(),
              "report: malformed integer field \"" + text + "\"");
  return out;
}

/// Short human-oriented form for markdown tables (4 significant digits).
std::string pretty_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

aer::Model model_from_name(const std::string& name) {
  for (const aer::Model m :
       {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
        aer::Model::kAsync}) {
    if (name == aer::model_name(m)) return m;
  }
  throw ConfigError("report: unknown model name \"" + name + "\"");
}

// ---- the metric name tables -------------------------------------------------

struct StatField {
  const char* name;
  SummaryStats Aggregate::* stat;
};

const StatField kStatFields[] = {
    {"completion_time", &Aggregate::completion_time},
    {"mean_decision_time", &Aggregate::mean_decision_time},
    {"engine_time", &Aggregate::engine_time},
    {"total_messages", &Aggregate::total_messages},
    {"amortized_bits", &Aggregate::amortized_bits},
    {"max_sent_bits", &Aggregate::max_sent_bits},
    {"mean_sent_bits", &Aggregate::mean_sent_bits},
    {"imbalance", &Aggregate::imbalance},
    {"decision_time", &Aggregate::decision_time},
    {"fault_dropped_msgs", &Aggregate::fault_dropped_msgs},
    {"fault_dropped_bits", &Aggregate::fault_dropped_bits},
    // Schema v2: absent from v1 files, so point_from_json must tolerate a
    // missing stats entry (defaults to all-zero).
    {"mem_bytes_per_node", &Aggregate::mem_bytes_per_node},
    // Schema v5: the recovery sublayer's overhead (absent from v1–v4 files,
    // same missing-entry tolerance).
    {"recovery_retransmit_msgs", &Aggregate::recovery_retransmit_msgs},
    {"recovery_retransmit_bits", &Aggregate::recovery_retransmit_bits},
};

struct ScalarField {
  const char* name;
  double (*get)(const Aggregate&);
};

const ScalarField kScalarFields[] = {
    {"agreement_rate", [](const Aggregate& a) { return a.agreement_rate(); }},
    {"decided_fraction",
     [](const Aggregate& a) { return a.decided_fraction(); }},
    {"trials", [](const Aggregate& a) { return double(a.trials); }},
    {"agreements", [](const Aggregate& a) { return double(a.agreements); }},
    {"engine_incomplete",
     [](const Aggregate& a) { return double(a.engine_incomplete); }},
    {"wrong_decisions",
     [](const Aggregate& a) { return double(a.wrong_decisions); }},
    // Per-trial rate of the summed counter, so diffs stay meaningful when
    // the two reports ran different trial counts.
    {"wrong_decisions_per_trial",
     [](const Aggregate& a) {
       return a.trials > 0 ? double(a.wrong_decisions) / double(a.trials) : 0;
     }},
    {"stalled_nodes",
     [](const Aggregate& a) { return double(a.stalled_nodes); }},
    {"ae_rounds", [](const Aggregate& a) { return a.ae_rounds; }},
    {"reduction_time", [](const Aggregate& a) { return a.reduction_time; }},
    {"ae_bits", [](const Aggregate& a) { return a.ae_bits; }},
    {"reduction_bits", [](const Aggregate& a) { return a.reduction_bits; }},
    {"push_bits_per_node",
     [](const Aggregate& a) { return a.push_bits_per_node; }},
    {"push_msgs_per_node",
     [](const Aggregate& a) { return a.push_msgs_per_node; }},
    {"candidate_lists_per_node",
     [](const Aggregate& a) { return a.candidate_lists_per_node; }},
    {"max_candidate_list",
     [](const Aggregate& a) { return double(a.max_candidate_list); }},
    {"missing_gstring",
     [](const Aggregate& a) { return double(a.missing_gstring); }},
    {"max_deferred", [](const Aggregate& a) { return double(a.max_deferred); }},
    {"fault_delayed_msgs",
     [](const Aggregate& a) { return a.fault_delayed_msgs; }},
    // Schema v4: the adaptive-adversary corruption timeline. All zero on
    // static runs, and deliberately outside Aggregate::fingerprint().
    {"runtime_corruptions",
     [](const Aggregate& a) { return double(a.runtime_corruptions); }},
    {"runtime_corruptions_per_trial",
     [](const Aggregate& a) {
       return a.trials > 0 ? double(a.runtime_corruptions) / double(a.trials)
                           : 0;
     }},
    {"first_corruption_time",
     [](const Aggregate& a) { return a.first_corruption_time; }},
    {"last_corruption_time",
     [](const Aggregate& a) { return a.last_corruption_time; }},
    // Schema v5: recovery-sublayer scalar means. All zero with the layer
    // off, and deliberately outside Aggregate::fingerprint().
    {"recovery_acked_msgs",
     [](const Aggregate& a) { return a.recovery_acked_msgs; }},
    {"recovery_dead_msgs",
     [](const Aggregate& a) { return a.recovery_dead_msgs; }},
    {"recovery_dup_msgs",
     [](const Aggregate& a) { return a.recovery_dup_msgs; }},
};

struct StatComponent {
  const char* name;
  double (*get)(const SummaryStats&);
};

const StatComponent kStatComponents[] = {
    {"count", [](const SummaryStats& s) { return double(s.count); }},
    {"mean", [](const SummaryStats& s) { return s.mean; }},
    {"stddev", [](const SummaryStats& s) { return s.stddev; }},
    {"min", [](const SummaryStats& s) { return s.min; }},
    {"max", [](const SummaryStats& s) { return s.max; }},
    {"p50", [](const SummaryStats& s) { return s.p50; }},
    {"p90", [](const SummaryStats& s) { return s.p90; }},
    {"p99", [](const SummaryStats& s) { return s.p99; }},
    // Schema v3: absent from v1/v2 files, so stats_from_json must tolerate
    // a missing component (defaults to 0). Deliberately outside
    // Aggregate::fingerprint(), so adding it changed no golden values.
    {"p999", [](const SummaryStats& s) { return s.p999; }},
    {"ci95", [](const SummaryStats& s) { return s.ci95; }},
};

const SummaryStats* stat_by_name(const Aggregate& a, std::string_view name) {
  for (const StatField& f : kStatFields) {
    if (name == f.name) return &(a.*(f.stat));
  }
  return nullptr;
}

/// The metrics `Report::diff` compares, each with its worse-direction.
/// `fingerprint_covered` says whether Aggregate::fingerprint() hashes the
/// metric: covered metrics are provably equal when fingerprints match and
/// are skipped then; uncovered ones (the memory account) must be compared
/// either way.
struct DiffMetric {
  const char* name;
  bool higher_is_worse;
  bool fingerprint_covered;
};

const DiffMetric kDiffMetrics[] = {
    {"completion_time.mean", true, true},
    {"amortized_bits.mean", true, true},
    {"total_messages.mean", true, true},
    {"agreement_rate", false, true},
    {"decided_fraction", false, true},
    // The per-trial rate (not the summed counter): comparable across
    // reports with different trial counts; zero tolerance, so any new
    // safety-violation rate regresses.
    {"wrong_decisions_per_trial", true, true},
    // Deliberately outside the fingerprint (exp/aggregate.h) — compared
    // even on fingerprint-identical points. A zero baseline means the
    // baseline never accounted memory (v1 file or pointer-path run); the
    // comparison is skipped then rather than flagging any positive value
    // as a regression.
    {"mem_bytes_per_node.mean", true, false},
    // Also outside the fingerprint. A zero baseline means the baseline ran
    // without the recovery layer (or a pre-v5 file) — skipped then, like
    // the memory account.
    {"recovery_retransmit_bits.mean", true, false},
};

// ---- JSON (de)serialization -------------------------------------------------

json::Value stats_json(const SummaryStats& s) {
  json::Value out = json::Value::object();
  for (const StatComponent& c : kStatComponents) out.set(c.name, c.get(s));
  return out;
}

SummaryStats stats_from_json(const json::Value& v) {
  SummaryStats s;
  s.count = static_cast<std::size_t>(v.at("count").as_uint64());
  s.mean = v.at("mean").as_double();
  s.stddev = v.at("stddev").as_double();
  s.min = v.at("min").as_double();
  s.max = v.at("max").as_double();
  s.p50 = v.at("p50").as_double();
  s.p90 = v.at("p90").as_double();
  s.p99 = v.at("p99").as_double();
  // v1/v2 files predate p999: load it as 0, matching what those writers
  // would have summarized for an untracked quantile.
  const json::Value* p999 = v.find("p999");
  s.p999 = p999 != nullptr ? p999->as_double() : 0;
  s.ci95 = v.at("ci95").as_double();
  return s;
}

json::Value point_json(const ReportPoint& rp) {
  const Aggregate& a = rp.aggregate;
  json::Value out = json::Value::object();
  out.set("label", rp.point.label());

  json::Value axes = json::Value::object();
  axes.set("index", std::uint64_t{rp.point.index});
  axes.set("n", std::uint64_t{rp.point.n});
  axes.set("model", aer::model_name(rp.point.model));
  axes.set("corrupt_fraction", rp.point.corrupt_fraction);
  axes.set("attack", rp.point.strategy);
  axes.set("fault", rp.point.fault);
  // Recovery axis (schema v5), written only when the sweep set it — a
  // recovery-less report carries the same axes block as a v4 writer's.
  if (!rp.point.recovery.empty()) {
    axes.set("recovery", rp.point.recovery);
  }
  // Adaptive axes (schema v4), written only when the sweep set them, so a
  // non-adaptive report carries the same axes block as a v3 writer's.
  if (rp.point.budget >= 0) {
    axes.set("budget", std::uint64_t(rp.point.budget));
  }
  if (rp.point.adaptive_from >= 0) {
    axes.set("adaptive_from", rp.point.adaptive_from);
  }
  out.set("axes", std::move(axes));

  json::Value resolved = json::Value::object();
  resolved.set("d", std::uint64_t{rp.provenance.d});
  resolved.set("t", std::uint64_t{rp.provenance.t});
  resolved.set("gstring_bits", std::uint64_t{rp.provenance.gstring_bits});
  resolved.set("node_id_bits", std::uint64_t{rp.provenance.node_id_bits});
  resolved.set("answer_budget", std::uint64_t{rp.provenance.answer_budget});
  out.set("resolved", std::move(resolved));

  json::Value counts = json::Value::object();
  counts.set("trials", std::uint64_t{a.trials});
  counts.set("agreements", std::uint64_t{a.agreements});
  counts.set("engine_incomplete", std::uint64_t{a.engine_incomplete});
  counts.set("wrong_decisions", a.wrong_decisions);
  counts.set("stalled_nodes", a.stalled_nodes);
  counts.set("correct_nodes", a.correct_nodes);
  counts.set("max_candidate_list", std::uint64_t{a.max_candidate_list});
  counts.set("missing_gstring", a.missing_gstring);
  counts.set("max_deferred", std::uint64_t{a.max_deferred});
  out.set("counts", std::move(counts));

  // Derived convenience fields; ignored (and recomputed) on load.
  json::Value derived = json::Value::object();
  derived.set("agreement_rate", a.agreement_rate());
  derived.set("decided_fraction", a.decided_fraction());
  out.set("derived", std::move(derived));

  json::Value stats = json::Value::object();
  for (const StatField& f : kStatFields) stats.set(f.name, stats_json(a.*(f.stat)));
  out.set("stats", std::move(stats));

  json::Value scalars = json::Value::object();
  scalars.set("ae_rounds", a.ae_rounds);
  scalars.set("reduction_time", a.reduction_time);
  scalars.set("ae_bits", a.ae_bits);
  scalars.set("reduction_bits", a.reduction_bits);
  scalars.set("push_bits_per_node", a.push_bits_per_node);
  scalars.set("push_msgs_per_node", a.push_msgs_per_node);
  scalars.set("candidate_lists_per_node", a.candidate_lists_per_node);
  scalars.set("fault_delayed_msgs", a.fault_delayed_msgs);
  scalars.set("runtime_corruptions", std::uint64_t{a.runtime_corruptions});
  scalars.set("first_corruption_time", a.first_corruption_time);
  scalars.set("last_corruption_time", a.last_corruption_time);
  scalars.set("recovery_acked_msgs", a.recovery_acked_msgs);
  scalars.set("recovery_dead_msgs", a.recovery_dead_msgs);
  scalars.set("recovery_dup_msgs", a.recovery_dup_msgs);
  out.set("scalars", std::move(scalars));

  json::Value causes = json::Value::object();
  for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
    causes.set(sim::fault_cause_name(static_cast<sim::FaultCause>(c)),
               a.drops_by_cause[c]);
  }
  out.set("drops_by_cause", std::move(causes));

  // Every kind, in kind_index order (zero-traffic kinds still carry their
  // sample counts, which the fingerprint covers).
  json::Value traffic = json::Value::array();
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    json::Value entry = json::Value::object();
    entry.set("kind", sim::kind_name(static_cast<sim::MessageKind>(k)));
    entry.set("msgs_mean", a.msgs_by_kind[k]);
    entry.set("bits", stats_json(a.bits_by_kind[k]));
    traffic.push_back(std::move(entry));
  }
  out.set("traffic_by_kind", std::move(traffic));

  // Service-mode wall-clock load (schema v3). Environment-dependent by
  // definition — the one block outside the determinism contract besides
  // meta.git_version: not fingerprinted, not diffed, absent from the CSV.
  if (rp.has_load) {
    const PointLoad& l = rp.load;
    json::Value load = json::Value::object();
    load.set("wall_seconds", l.wall_seconds);
    load.set("instances_per_sec", l.instances_per_sec);
    load.set("wall_ms_p50", l.wall_ms_p50);
    load.set("wall_ms_p99", l.wall_ms_p99);
    load.set("wall_ms_p999", l.wall_ms_p999);
    load.set("queue_depth_mean", l.queue_depth_mean);
    load.set("queue_depth_max", std::uint64_t{l.queue_depth_max});
    load.set("push_blocks", std::uint64_t{l.push_blocks});
    load.set("pop_blocks", std::uint64_t{l.pop_blocks});
    out.set("load", std::move(load));
  }

  out.set("fingerprint", hex_u64(a.fingerprint()));
  return out;
}

ReportPoint point_from_json(const json::Value& v) {
  ReportPoint rp;
  const json::Value& axes = v.at("axes");
  rp.point.index = static_cast<std::size_t>(axes.at("index").as_uint64());
  rp.point.n = static_cast<std::size_t>(axes.at("n").as_uint64());
  rp.point.model = model_from_name(axes.at("model").as_string());
  rp.point.corrupt_fraction = axes.at("corrupt_fraction").as_double();
  rp.point.strategy = axes.at("attack").as_string();
  rp.point.fault = axes.at("fault").as_string();
  // Absent in pre-v5 files and recovery-less v5 reports: empty = unset.
  const json::Value* recovery = axes.find("recovery");
  rp.point.recovery = recovery != nullptr ? recovery->as_string() : "";
  // Absent in pre-v4 files and in non-adaptive v4 reports: -1 = unset.
  const json::Value* budget = axes.find("budget");
  rp.point.budget = budget != nullptr ? long(budget->as_uint64()) : -1;
  const json::Value* from = axes.find("adaptive_from");
  rp.point.adaptive_from = from != nullptr ? from->as_double() : -1;

  const json::Value& resolved = v.at("resolved");
  rp.provenance.d = static_cast<std::size_t>(resolved.at("d").as_uint64());
  rp.provenance.t = static_cast<std::size_t>(resolved.at("t").as_uint64());
  rp.provenance.gstring_bits =
      static_cast<std::size_t>(resolved.at("gstring_bits").as_uint64());
  rp.provenance.node_id_bits =
      static_cast<std::size_t>(resolved.at("node_id_bits").as_uint64());
  rp.provenance.answer_budget =
      static_cast<std::size_t>(resolved.at("answer_budget").as_uint64());

  Aggregate& a = rp.aggregate;
  const json::Value& counts = v.at("counts");
  a.trials = static_cast<std::size_t>(counts.at("trials").as_uint64());
  a.agreements = static_cast<std::size_t>(counts.at("agreements").as_uint64());
  a.engine_incomplete =
      static_cast<std::size_t>(counts.at("engine_incomplete").as_uint64());
  a.wrong_decisions = counts.at("wrong_decisions").as_uint64();
  a.stalled_nodes = counts.at("stalled_nodes").as_uint64();
  a.correct_nodes = counts.at("correct_nodes").as_uint64();
  a.max_candidate_list =
      static_cast<std::size_t>(counts.at("max_candidate_list").as_uint64());
  a.missing_gstring = counts.at("missing_gstring").as_uint64();
  a.max_deferred =
      static_cast<std::size_t>(counts.at("max_deferred").as_uint64());

  const json::Value& stats = v.at("stats");
  for (const StatField& f : kStatFields) {
    // v1 files predate mem_bytes_per_node: a missing stat loads as
    // all-zero, which is exactly what a v1 writer would have summarized.
    const json::Value* stat = stats.find(f.name);
    a.*(f.stat) = stat != nullptr ? stats_from_json(*stat) : SummaryStats{};
  }

  const json::Value& scalars = v.at("scalars");
  a.ae_rounds = scalars.at("ae_rounds").as_double();
  a.reduction_time = scalars.at("reduction_time").as_double();
  a.ae_bits = scalars.at("ae_bits").as_double();
  a.reduction_bits = scalars.at("reduction_bits").as_double();
  a.push_bits_per_node = scalars.at("push_bits_per_node").as_double();
  a.push_msgs_per_node = scalars.at("push_msgs_per_node").as_double();
  a.candidate_lists_per_node =
      scalars.at("candidate_lists_per_node").as_double();
  a.fault_delayed_msgs = scalars.at("fault_delayed_msgs").as_double();
  // Pre-v4 files predate the corruption timeline: load as zero, which is
  // what those (budget-less) runs would have recorded.
  const json::Value* rc = scalars.find("runtime_corruptions");
  a.runtime_corruptions = rc != nullptr ? rc->as_uint64() : 0;
  const json::Value* fct = scalars.find("first_corruption_time");
  a.first_corruption_time = fct != nullptr ? fct->as_double() : 0;
  const json::Value* lct = scalars.find("last_corruption_time");
  a.last_corruption_time = lct != nullptr ? lct->as_double() : 0;
  // Pre-v5 files predate the recovery sublayer: load as zero.
  const json::Value* ra = scalars.find("recovery_acked_msgs");
  a.recovery_acked_msgs = ra != nullptr ? ra->as_double() : 0;
  const json::Value* rd = scalars.find("recovery_dead_msgs");
  a.recovery_dead_msgs = rd != nullptr ? rd->as_double() : 0;
  const json::Value* rdup = scalars.find("recovery_dup_msgs");
  a.recovery_dup_msgs = rdup != nullptr ? rdup->as_double() : 0;

  const json::Value& causes = v.at("drops_by_cause");
  for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
    a.drops_by_cause[c] =
        causes.at(sim::fault_cause_name(static_cast<sim::FaultCause>(c)))
            .as_double();
  }

  // Tolerant of files written before a kind was appended (pre-v5 files
  // predate kAck): missing trailing kinds load as zero, which is exactly
  // what those runs — which could not have sent them — recorded.
  const auto& traffic = v.at("traffic_by_kind").as_array();
  FBA_REQUIRE(traffic.size() <= sim::kNumMessageKinds,
              "report: traffic_by_kind lists unknown message kinds");
  for (std::size_t k = 0; k < traffic.size(); ++k) {
    const json::Value& entry = traffic[k];
    FBA_REQUIRE(entry.at("kind").as_string() ==
                    sim::kind_name(static_cast<sim::MessageKind>(k)),
                "report: traffic_by_kind out of kind order");
    a.msgs_by_kind[k] = entry.at("msgs_mean").as_double();
    a.bits_by_kind[k] = stats_from_json(entry.at("bits"));
  }

  const json::Value* load = v.find("load");
  if (load != nullptr) {
    rp.has_load = true;
    rp.load.wall_seconds = load->at("wall_seconds").as_double();
    rp.load.instances_per_sec = load->at("instances_per_sec").as_double();
    rp.load.wall_ms_p50 = load->at("wall_ms_p50").as_double();
    rp.load.wall_ms_p99 = load->at("wall_ms_p99").as_double();
    rp.load.wall_ms_p999 = load->at("wall_ms_p999").as_double();
    rp.load.queue_depth_mean = load->at("queue_depth_mean").as_double();
    rp.load.queue_depth_max = load->at("queue_depth_max").as_uint64();
    rp.load.push_blocks = load->at("push_blocks").as_uint64();
    rp.load.pop_blocks = load->at("pop_blocks").as_uint64();
  }

  const std::string stored = v.at("fingerprint").as_string();
  const std::string recomputed = hex_u64(a.fingerprint());
  FBA_REQUIRE(stored == recomputed,
              "report: fingerprint mismatch for point \"" +
                  rp.point.label() + "\" (stored " + stored + ", recomputed " +
                  recomputed + ") — file corrupted or hand-edited; "
                  "regenerate it with the emitting tool");
  return rp;
}

// ---- curve extraction (markdown + gnuplot) ----------------------------------

struct CurvePoint {
  double x = 0;
  std::string tic;  ///< x tick label (categorical axes).
  double y = 0;
  double ci = 0;
};

std::vector<CurvePoint> curve_of(const ReportMeta& meta,
                                 const ReportSeries& series) {
  std::vector<CurvePoint> out;
  out.reserve(series.points.size());
  for (std::size_t i = 0; i < series.points.size(); ++i) {
    const ReportPoint& rp = series.points[i];
    CurvePoint c;
    if (meta.x_axis == "n") {
      c.x = double(rp.point.n);
      c.tic = std::to_string(rp.point.n);
    } else if (meta.x_axis == "corrupt") {
      c.x = rp.point.corrupt_fraction;
      c.tic = pretty_num(rp.point.corrupt_fraction);
    } else if (meta.x_axis == "fault") {
      c.x = double(i);
      c.tic = rp.point.fault.empty() ? "none" : rp.point.fault;
    } else if (meta.x_axis == "budget") {
      const double b = rp.point.budget >= 0 ? double(rp.point.budget) : 0;
      c.x = b;
      c.tic = pretty_num(b);
    } else {  // "index" (and the single-point "kind" reports)
      c.x = double(i);
      c.tic = rp.point.label();
    }
    c.y = metric_value(rp.aggregate, meta.y_metric);
    c.ci = metric_ci(rp.aggregate, meta.y_metric);
    out.push_back(std::move(c));
  }
  return out;
}

/// Text scatter plot of every series' headline curve: x spans the value
/// range, marker letters identify series ('#' on collision).
std::string ascii_chart(const ReportMeta& meta,
                        const std::vector<ReportSeries>& series) {
  constexpr int kW = 64, kH = 14;
  struct Named {
    char marker;
    const ReportSeries* s;
    std::vector<CurvePoint> curve;
  };
  std::vector<Named> curves;
  double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  bool first = true;
  for (std::size_t i = 0; i < series.size(); ++i) {
    Named n{static_cast<char>('A' + (i % 26)), &series[i],
            curve_of(meta, series[i])};
    for (const CurvePoint& c : n.curve) {
      if (first) {
        xmin = xmax = c.x;
        ymin = ymax = c.y;
        first = false;
      }
      xmin = std::min(xmin, c.x);
      xmax = std::max(xmax, c.x);
      ymin = std::min(ymin, c.y);
      ymax = std::max(ymax, c.y);
    }
    curves.push_back(std::move(n));
  }
  if (first) return "(no points)\n";
  // log-x when the axis is n (sizes double per step).
  const bool logx = meta.x_axis == "n" && xmin > 0 && xmax > xmin;
  const auto xpos = [&](double x) {
    if (xmax == xmin) return kW / 2;
    const double f = logx ? (std::log2(x) - std::log2(xmin)) /
                                (std::log2(xmax) - std::log2(xmin))
                          : (x - xmin) / (xmax - xmin);
    return std::clamp(int(std::lround(f * (kW - 1))), 0, kW - 1);
  };
  const auto ypos = [&](double y) {
    if (ymax == ymin) return kH / 2;
    const double f = (y - ymin) / (ymax - ymin);
    return std::clamp(kH - 1 - int(std::lround(f * (kH - 1))), 0, kH - 1);
  };
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  for (const Named& n : curves) {
    for (const CurvePoint& c : n.curve) {
      char& cell = grid[ypos(c.y)][xpos(c.x)];
      cell = cell == ' ' ? n.marker : '#';
    }
  }
  std::string out;
  char label[64];
  for (int row = 0; row < kH; ++row) {
    if (row == 0) {
      std::snprintf(label, sizeof(label), "%10s |", pretty_num(ymax).c_str());
    } else if (row == kH - 1) {
      std::snprintf(label, sizeof(label), "%10s |", pretty_num(ymin).c_str());
    } else {
      std::snprintf(label, sizeof(label), "%10s |", "");
    }
    out += label;
    out += grid[row];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(kW, '-') + '\n';
  std::snprintf(label, sizeof(label), "%10s   %-28s", "",
                pretty_num(xmin).c_str());
  out += label;
  std::snprintf(label, sizeof(label), "%33s  (%s%s)\n",
                pretty_num(xmax).c_str(), meta.x_axis.c_str(),
                logx ? ", log scale" : "");
  out += label;
  for (const Named& n : curves) {
    out += "  ";
    out += n.marker;
    out += " = " + n.s->name + "\n";
  }
  return out;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FBA_REQUIRE(out.good(), "report: cannot open \"" + path + "\" for writing");
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  FBA_REQUIRE(out.good(), "report: short write to \"" + path + "\"");
}

}  // namespace

// ---- provenance -------------------------------------------------------------

PointProvenance point_provenance(const aer::AerConfig& base,
                                 const GridPoint& point) {
  const aer::AerConfig cfg = point.apply(base);
  PointProvenance p;
  p.d = cfg.resolved_d();
  p.t = cfg.resolved_t();
  p.gstring_bits = cfg.resolved_gstring_bits();
  p.node_id_bits = node_id_bits(cfg.n);
  p.answer_budget = cfg.resolved_answer_budget();
  return p;
}

// ---- metric access ----------------------------------------------------------

double metric_value(const Aggregate& aggregate, std::string_view name) {
  const std::size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    const SummaryStats* stat = stat_by_name(aggregate, name.substr(0, dot));
    if (stat != nullptr) {
      const std::string_view component = name.substr(dot + 1);
      for (const StatComponent& c : kStatComponents) {
        if (component == c.name) return c.get(*stat);
      }
    }
  } else {
    for (const ScalarField& f : kScalarFields) {
      if (name == f.name) return f.get(aggregate);
    }
  }
  std::string stats, scalars;
  for (const StatField& f : kStatFields) {
    if (!stats.empty()) stats += ", ";
    stats += f.name;
  }
  for (const ScalarField& f : kScalarFields) {
    if (!scalars.empty()) scalars += ", ";
    scalars += f.name;
  }
  throw ConfigError("report: unknown metric \"" + std::string(name) +
                    "\" (stats — suffix with .count/.mean/.stddev/.min/.max/"
                    ".p50/.p90/.p99/.p999/.ci95: " + stats +
                    "; scalars: " + scalars + ")");
}

double metric_ci(const Aggregate& aggregate, std::string_view name) {
  const std::size_t dot = name.find('.');
  if (dot != std::string_view::npos && name.substr(dot + 1) == "mean") {
    const SummaryStats* stat = stat_by_name(aggregate, name.substr(0, dot));
    if (stat != nullptr) return stat->ci95;
  }
  if (name == "agreement_rate" || name == "decided_fraction") {
    // Normal-approximation binomial CI with the trial count as the sample
    // size — also for decided_fraction, whose per-node outcomes within one
    // trial are strongly correlated (a partition stalls whole groups), so
    // trials, not trials * n, is the honest effective-sample count.
    const double p = metric_value(aggregate, name);
    const double samples = double(aggregate.trials);
    if (samples > 0) return 1.96 * std::sqrt(p * (1 - p) / samples);
  }
  return 0;
}

// ---- Report basics ----------------------------------------------------------

Report::Report(ReportMeta meta) : meta_(std::move(meta)) {
  if (meta_.git_version.empty()) meta_.git_version = build_version();
}

const char* Report::build_version() { return FBA_GIT_DESCRIBE; }

ReportSeries& Report::add_series(std::string name) {
  FBA_REQUIRE(find_series(name) == nullptr,
              "report: duplicate series name \"" + name + "\"");
  series_.push_back(ReportSeries{std::move(name), {}});
  return series_.back();
}

void Report::add_points(const std::string& series, const aer::AerConfig& base,
                        const std::vector<PointResult>& results) {
  ReportSeries& s = add_series(series);
  s.points.reserve(results.size());
  for (const PointResult& r : results) {
    s.points.push_back(
        ReportPoint{r.point, point_provenance(base, r.point), r.aggregate});
  }
}

void Report::add_point(const std::string& series, ReportPoint point) {
  for (ReportSeries& s : series_) {
    if (s.name == series) {
      s.points.push_back(std::move(point));
      return;
    }
  }
  add_series(series).points.push_back(std::move(point));
}

const ReportSeries* Report::find_series(std::string_view name) const {
  for (const ReportSeries& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::size_t Report::total_points() const {
  std::size_t n = 0;
  for (const ReportSeries& s : series_) n += s.points.size();
  return n;
}

// ---- JSON -------------------------------------------------------------------

std::string Report::to_json() const {
  json::Value root = json::Value::object();
  root.set("schema", "fba.report");
  root.set("schema_version", kReportSchemaVersion);

  json::Value meta = json::Value::object();
  meta.set("tool", meta_.tool);
  meta.set("figure", meta_.figure);
  meta.set("title", meta_.title);
  meta.set("base_seed", dec_u64(meta_.base_seed));  // string: full 64 bits
  meta.set("trials", std::uint64_t{meta_.trials});
  meta.set("scale", meta_.scale);
  meta.set("x_axis", meta_.x_axis);
  meta.set("y_metric", meta_.y_metric);
  meta.set("y_label", meta_.y_label);
  meta.set("git_version", meta_.git_version);
  root.set("meta", std::move(meta));

  json::Value series = json::Value::array();
  for (const ReportSeries& s : series_) {
    json::Value entry = json::Value::object();
    entry.set("name", s.name);
    json::Value points = json::Value::array();
    for (const ReportPoint& rp : s.points) points.push_back(point_json(rp));
    entry.set("points", std::move(points));
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));
  return root.dump();
}

Report Report::from_json(std::string_view text) {
  const json::Value root = json::Value::parse(text);
  FBA_REQUIRE(root.find("schema") != nullptr &&
                  root.at("schema").as_string() == "fba.report",
              "report: not an fba.report document");
  const std::uint64_t version = root.at("schema_version").as_uint64();
  // Each version is a strict subset of the next (v2 added the
  // stats.mem_bytes_per_node entry, v3 the p999 component and the optional
  // load block, v4 the optional adaptive axes and corruption-timeline
  // scalars), so all of them parse with the same tolerant code path.
  FBA_REQUIRE(version >= 1 && version <= kReportSchemaVersion,
              "report: schema version " + std::to_string(version) +
                  " unsupported (this build reads versions 1-" +
                  std::to_string(kReportSchemaVersion) +
                  "; see docs/output-schema.md)");

  Report out;
  const json::Value& meta = root.at("meta");
  out.meta_.tool = meta.at("tool").as_string();
  out.meta_.figure = meta.at("figure").as_string();
  out.meta_.title = meta.at("title").as_string();
  out.meta_.base_seed = parse_u64(meta.at("base_seed").as_string(), 10);
  out.meta_.trials = static_cast<std::size_t>(meta.at("trials").as_uint64());
  out.meta_.scale = meta.at("scale").as_string();
  out.meta_.x_axis = meta.at("x_axis").as_string();
  out.meta_.y_metric = meta.at("y_metric").as_string();
  out.meta_.y_label = meta.at("y_label").as_string();
  out.meta_.git_version = meta.at("git_version").as_string();

  for (const json::Value& entry : root.at("series").as_array()) {
    ReportSeries& s = out.add_series(entry.at("name").as_string());
    for (const json::Value& p : entry.at("points").as_array()) {
      s.points.push_back(point_from_json(p));
    }
  }
  return out;
}

Report Report::from_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FBA_REQUIRE(in.good(), "report: cannot read \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

// ---- CSV --------------------------------------------------------------------

std::string Report::to_csv() const {
  std::string out;
  // Header: identity, axes, provenance, counts, then the stat columns and
  // per-kind traffic. One row per point, stable column order (schema v5).
  // The per-point load block is JSON-only: wall-clock cells would make the
  // CSV environment-dependent. Unset adaptive axes serialize as -1, an
  // unset recovery axis as the empty cell.
  out += "figure,series,label,index,n,model,corrupt_fraction,attack,fault"
         ",recovery,budget,adaptive_from"
         ",d,t,gstring_bits,node_id_bits,answer_budget"
         ",trials,agreements,agreement_rate,decided_fraction"
         ",engine_incomplete,wrong_decisions,stalled_nodes,correct_nodes"
         ",max_candidate_list,missing_gstring,max_deferred,fingerprint";
  for (const StatField& f : kStatFields) {
    for (const StatComponent& c : kStatComponents) {
      out += ',';
      out += f.name;
      out += '_';
      out += c.name;
    }
  }
  out += ",ae_rounds,reduction_time,ae_bits,reduction_bits"
         ",push_bits_per_node,push_msgs_per_node,candidate_lists_per_node"
         ",fault_delayed_msgs"
         ",runtime_corruptions,first_corruption_time,last_corruption_time"
         ",recovery_acked_msgs,recovery_dead_msgs,recovery_dup_msgs";
  for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
    out += ",drops_";
    out += sim::fault_cause_name(static_cast<sim::FaultCause>(c));
  }
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    const char* kind = sim::kind_name(static_cast<sim::MessageKind>(k));
    out += ",msgs_";
    out += kind;
    out += ",bits_";
    out += kind;
    out += "_mean";
  }
  out += '\n';

  for (const ReportSeries& s : series_) {
    for (const ReportPoint& rp : s.points) {
      const Aggregate& a = rp.aggregate;
      std::vector<std::string> cells = {
          meta_.figure,
          s.name,
          rp.point.label(),
          dec_u64(rp.point.index),
          dec_u64(rp.point.n),
          aer::model_name(rp.point.model),
          canonical_num(rp.point.corrupt_fraction),
          rp.point.strategy,
          rp.point.fault,
          rp.point.recovery,
          std::to_string(rp.point.budget),
          canonical_num(rp.point.adaptive_from),
          dec_u64(rp.provenance.d),
          dec_u64(rp.provenance.t),
          dec_u64(rp.provenance.gstring_bits),
          dec_u64(rp.provenance.node_id_bits),
          dec_u64(rp.provenance.answer_budget),
          dec_u64(a.trials),
          dec_u64(a.agreements),
          canonical_num(a.agreement_rate()),
          canonical_num(a.decided_fraction()),
          dec_u64(a.engine_incomplete),
          dec_u64(a.wrong_decisions),
          dec_u64(a.stalled_nodes),
          dec_u64(a.correct_nodes),
          dec_u64(a.max_candidate_list),
          dec_u64(a.missing_gstring),
          dec_u64(a.max_deferred),
          hex_u64(a.fingerprint()),
      };
      for (const StatField& f : kStatFields) {
        const SummaryStats& stat = a.*(f.stat);
        for (const StatComponent& c : kStatComponents) {
          cells.push_back(canonical_num(c.get(stat)));
        }
      }
      for (const double v : {a.ae_rounds, a.reduction_time, a.ae_bits,
                             a.reduction_bits, a.push_bits_per_node,
                             a.push_msgs_per_node, a.candidate_lists_per_node,
                             a.fault_delayed_msgs,
                             double(a.runtime_corruptions),
                             a.first_corruption_time,
                             a.last_corruption_time,
                             a.recovery_acked_msgs,
                             a.recovery_dead_msgs,
                             a.recovery_dup_msgs}) {
        cells.push_back(canonical_num(v));
      }
      for (std::size_t c = 0; c < sim::kNumFaultCauses; ++c) {
        cells.push_back(canonical_num(a.drops_by_cause[c]));
      }
      for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
        cells.push_back(canonical_num(a.msgs_by_kind[k]));
        cells.push_back(canonical_num(a.bits_by_kind[k].mean));
      }
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out += ',';
        out += csv_escape(cells[i]);
      }
      out += '\n';
    }
  }
  return out;
}

// ---- markdown ---------------------------------------------------------------

std::string Report::to_markdown() const {
  std::string out;
  out += "# " + (meta_.title.empty() ? meta_.figure : meta_.title) + "\n\n";
  out += "figure `" + meta_.figure + "` · tool `" + meta_.tool +
         "` · build `" + meta_.git_version + "` · schema v" +
         std::to_string(kReportSchemaVersion) + "\n\n";
  out += "- base seed " + dec_u64(meta_.base_seed) + ", " +
         std::to_string(meta_.trials) + " trials/point" +
         (meta_.scale.empty() ? "" : ", scale " + meta_.scale) + "\n";
  out += "- headline curve: " + meta_.y_label + " (`" + meta_.y_metric +
         "`) vs " + meta_.x_axis + "\n\n";

  if (meta_.x_axis == "kind") {
    // Single-configuration traffic breakdown instead of an x/y curve.
    for (const ReportSeries& s : series_) {
      for (const ReportPoint& rp : s.points) {
        out += "## " + s.name + " — " + rp.point.label() + "\n\n";
        out += "| kind | msgs (mean) | bits/run (mean ± ci95) |\n";
        out += "|---|---|---|\n";
        for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
          if (rp.aggregate.msgs_by_kind[k] == 0) continue;
          out += "| " +
                 std::string(
                     sim::kind_name(static_cast<sim::MessageKind>(k))) +
                 " | " + pretty_num(rp.aggregate.msgs_by_kind[k]) + " | " +
                 pretty_num(rp.aggregate.bits_by_kind[k].mean) + " ± " +
                 pretty_num(rp.aggregate.bits_by_kind[k].ci95) + " |\n";
        }
        out += '\n';
      }
    }
  } else {
    out += "## Curve\n\n```\n" + ascii_chart(meta_, series_) + "```\n\n";
  }

  for (const ReportSeries& s : series_) {
    out += "## " + s.name + "\n\n";
    out += "| point | " + meta_.y_label +
           " | ±ci95 | agree | decided | wrong | bits/node | fingerprint |\n";
    out += "|---|---|---|---|---|---|---|---|\n";
    for (const ReportPoint& rp : s.points) {
      const Aggregate& a = rp.aggregate;
      out += "| " + rp.point.label() + " | " +
             pretty_num(metric_value(a, meta_.y_metric)) + " | " +
             pretty_num(metric_ci(a, meta_.y_metric)) + " | " +
             pretty_num(a.agreement_rate()) + " | " +
             pretty_num(a.decided_fraction()) + " | " +
             dec_u64(a.wrong_decisions) + " | " +
             pretty_num(a.amortized_bits.mean) + " | `" +
             hex_u64(a.fingerprint()) + "` |\n";
    }
    out += '\n';
  }
  return out;
}

// ---- gnuplot ----------------------------------------------------------------

std::string Report::to_gnuplot() const {
  std::string out;
  out += "# BENCH_" + meta_.figure + ".gp — generated by " + meta_.tool +
         " (fba.report schema v" + std::to_string(kReportSchemaVersion) +
         ", build " + meta_.git_version + ")\n";
  out += "# render to a file with e.g.:\n";
  out += "#   gnuplot -e \"set terminal pngcairo size 960,640; set output "
         "'BENCH_" + meta_.figure + ".png'\" BENCH_" + meta_.figure + ".gp\n";
  out += "set title \"" + (meta_.title.empty() ? meta_.figure : meta_.title) +
         "\"\n";
  out += "set xlabel \"" + meta_.x_axis + "\"\n";
  out += "set ylabel \"" + meta_.y_label + "\"\n";
  out += "set key outside right top\nset grid\n";
  const bool categorical = meta_.x_axis == "fault" || meta_.x_axis == "kind" ||
                           meta_.x_axis == "index";
  if (meta_.x_axis == "n") out += "set logscale x 2\n";
  if (categorical) out += "set xtics rotate by -30\nset offsets 0.5,0.5,0,0\n";

  if (meta_.x_axis == "kind") {
    // Per-kind bits of each series' single point, labeled by kind.
    for (std::size_t i = 0; i < series_.size(); ++i) {
      out += "$series_" + std::to_string(i) + " << EOD\n";
      for (const ReportPoint& rp : series_[i].points) {
        for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
          if (rp.aggregate.msgs_by_kind[k] == 0) continue;
          out += std::string("\"") +
                 sim::kind_name(static_cast<sim::MessageKind>(k)) + "\" " +
                 canonical_num(rp.aggregate.bits_by_kind[k].mean) + " " +
                 canonical_num(rp.aggregate.bits_by_kind[k].ci95) + "\n";
        }
      }
      out += "EOD\n";
    }
    out += "set ylabel \"bits per run\"\nset boxwidth 0.6\nset style fill "
           "solid 0.4\n";
  } else {
    for (std::size_t i = 0; i < series_.size(); ++i) {
      out += "$series_" + std::to_string(i) + " << EOD\n";
      for (const CurvePoint& c : curve_of(meta_, series_[i])) {
        if (categorical) {
          out += "\"" + c.tic + "\" " + canonical_num(c.y) + " " +
                 canonical_num(c.ci) + "\n";
        } else {
          out += canonical_num(c.x) + " " + canonical_num(c.y) + " " +
                 canonical_num(c.ci) + "\n";
        }
      }
      out += "EOD\n";
    }
  }

  out += "plot ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) out += ", \\\n     ";
    const std::string block = "$series_" + std::to_string(i);
    if (meta_.x_axis == "kind") {
      out += block + " using 0:2:3:xtic(1) with boxerrorbars title \"" +
             series_[i].name + "\"";
    } else if (categorical) {
      out += block + " using 0:2:3:xtic(1) with yerrorlines title \"" +
             series_[i].name + "\"";
    } else {
      out += block + " using 1:2:3 with yerrorlines title \"" +
             series_[i].name + "\"";
    }
  }
  out += "\n";
  return out;
}

// ---- files ------------------------------------------------------------------

void Report::write_json(const std::string& path) const {
  write_file(path, to_json());
}

void Report::write_csv(const std::string& path) const {
  write_file(path, to_csv());
}

std::vector<std::string> Report::write_all(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  FBA_REQUIRE(!ec, "report: cannot create output directory \"" + dir +
                       "\": " + ec.message());
  const std::string stem =
      dir + "/BENCH_" + (meta_.figure.empty() ? "report" : meta_.figure);
  std::vector<std::string> paths;
  write_file(stem + ".json", to_json());
  paths.push_back(stem + ".json");
  write_file(stem + ".csv", to_csv());
  paths.push_back(stem + ".csv");
  write_file(stem + ".md", to_markdown());
  paths.push_back(stem + ".md");
  write_file(stem + ".gp", to_gnuplot());
  paths.push_back(stem + ".gp");
  return paths;
}

// ---- diff -------------------------------------------------------------------

DiffResult Report::diff(const Report& baseline) const {
  DiffResult result;
  std::vector<DiffEntry> regressed, other;

  for (const ReportSeries& base_series : baseline.series_) {
    const ReportSeries* cur_series = find_series(base_series.name);
    if (cur_series == nullptr) {
      DiffEntry e;
      e.series = base_series.name;
      e.verdict = DiffEntry::Verdict::kMissing;
      regressed.push_back(std::move(e));
      ++result.regressions;
      continue;
    }
    for (const ReportPoint& base_point : base_series.points) {
      const std::string label = base_point.point.label();
      const ReportPoint* cur_point = nullptr;
      for (const ReportPoint& rp : cur_series->points) {
        if (rp.point.label() == label) {
          cur_point = &rp;
          break;
        }
      }
      if (cur_point == nullptr) {
        DiffEntry e;
        e.series = base_series.name;
        e.label = label;
        e.verdict = DiffEntry::Verdict::kMissing;
        regressed.push_back(std::move(e));
        ++result.regressions;
        continue;
      }
      ++result.points_compared;
      const bool fingerprints_match = cur_point->aggregate.fingerprint() ==
                                      base_point.aggregate.fingerprint();
      if (fingerprints_match) ++result.points_identical;
      for (const DiffMetric& m : kDiffMetrics) {
        // A fingerprint match proves covered metrics equal; uncovered
        // ones (the memory account) still need an explicit comparison.
        if (fingerprints_match && m.fingerprint_covered) continue;
        DiffEntry e;
        e.series = base_series.name;
        e.label = label;
        e.metric = m.name;
        e.baseline = metric_value(base_point.aggregate, m.name);
        // No baseline data for an uncovered metric (v1 file, or a run
        // that never accounted memory): nothing to gate against.
        if (!m.fingerprint_covered && e.baseline == 0) continue;
        e.current = metric_value(cur_point->aggregate, m.name);
        e.tolerance = metric_ci(base_point.aggregate, m.name) +
                      metric_ci(cur_point->aggregate, m.name);
        const double worse =
            m.higher_is_worse ? e.current - e.baseline : e.baseline - e.current;
        if (e.current == e.baseline) {
          e.verdict = DiffEntry::Verdict::kIdentical;
        } else if (worse > e.tolerance) {
          e.verdict = DiffEntry::Verdict::kRegressed;
        } else if (worse < -e.tolerance) {
          e.verdict = DiffEntry::Verdict::kImproved;
        } else {
          e.verdict = DiffEntry::Verdict::kWithinCi;
        }
        if (e.verdict == DiffEntry::Verdict::kRegressed) {
          ++result.regressions;
          regressed.push_back(std::move(e));
        } else {
          if (e.verdict == DiffEntry::Verdict::kImproved) ++result.improvements;
          other.push_back(std::move(e));
        }
      }
    }
  }

  // Points/series here that the baseline lacks: newly added, reported only.
  for (const ReportSeries& s : series_) {
    const ReportSeries* base_series = baseline.find_series(s.name);
    if (base_series == nullptr) {
      result.added.push_back(s.name + " (whole series)");
      continue;
    }
    for (const ReportPoint& rp : s.points) {
      const std::string label = rp.point.label();
      bool found = false;
      for (const ReportPoint& bp : base_series->points) {
        if (bp.point.label() == label) {
          found = true;
          break;
        }
      }
      if (!found) result.added.push_back(s.name + " | " + label);
    }
  }

  result.entries = std::move(regressed);
  result.entries.insert(result.entries.end(),
                        std::make_move_iterator(other.begin()),
                        std::make_move_iterator(other.end()));
  return result;
}

std::string DiffResult::summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "report diff: %zu points compared, %zu fingerprint-identical,"
                " %zu regressions, %zu improvements, %zu added\n",
                points_compared, points_identical, regressions, improvements,
                added.size());
  out += line;
  for (const DiffEntry& e : entries) {
    const char* verdict = "";
    switch (e.verdict) {
      case DiffEntry::Verdict::kIdentical: continue;  // noise
      case DiffEntry::Verdict::kWithinCi: verdict = "within-ci"; break;
      case DiffEntry::Verdict::kImproved: verdict = "improved "; break;
      case DiffEntry::Verdict::kRegressed: verdict = "REGRESSED"; break;
      case DiffEntry::Verdict::kMissing: verdict = "MISSING  "; break;
    }
    if (e.verdict == DiffEntry::Verdict::kMissing) {
      out += "  MISSING   " + e.series +
             (e.label.empty() ? " (whole series)" : " | " + e.label) + "\n";
      continue;
    }
    std::snprintf(line, sizeof(line), "  %s %s | %s | %s: %s -> %s (tol %s)\n",
                  verdict, e.series.c_str(), e.label.c_str(), e.metric.c_str(),
                  pretty_num(e.baseline).c_str(), pretty_num(e.current).c_str(),
                  pretty_num(e.tolerance).c_str());
    out += line;
  }
  for (const std::string& a : added) out += "  added     " + a + "\n";
  return out;
}

}  // namespace fba::exp
