// Machine-readable experiment reports: one audited output path for every
// bench, fba_sim and the fba_repro figure driver.
//
// A Report is a named set of series, each a list of (grid point, resolved
// provenance, Aggregate) records, plus run-level metadata (tool, figure id,
// base seed, trials, git build version). It serializes to:
//   - a stable versioned JSON schema (docs/output-schema.md) that carries
//     every Aggregate field — all SummaryStats, per-kind traffic, fault
//     counters, CI95s — plus the point fingerprint, and parses back exactly
//     (round-trip is byte-identical; fingerprints are revalidated on load);
//   - a flat CSV table with one row per point;
//   - a self-contained gnuplot script and a markdown rendering of the
//     figure's headline curve (meta.y_metric vs meta.x_axis).
//
// Determinism contract (extends the golden-fingerprint contract): a report
// contains no timestamps, hostnames or thread counts — only inputs that
// determine the results and the results themselves — so the same sweep
// produces byte-identical files at any thread count, and `diff` against a
// committed baseline is meaningful. The one environment-dependent field,
// meta.git_version, is ignored by diff.
//
//   exp::Report report(exp::ReportMeta{.tool = "fba_repro",
//                                      .figure = "fig1b", ...});
//   report.add_points("BA/aer", base_config, sweep.run());
//   report.write_all("results");          // BENCH_fig1b.{json,csv,md,gp}
//   exp::DiffResult d =
//       report.diff(exp::Report::from_json_file("baselines/BENCH_fig1b.json"));
//   if (!d.ok()) { puts(d.summary().c_str()); return 1; }
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sweep.h"

namespace fba::exp {

/// Bumped whenever the JSON layout changes; readers accept the versions
/// they can parse (docs/output-schema.md tracks the history). v2 added the
/// mem_bytes_per_node stat; v3 added the p999 stat component and the
/// optional per-point `load` block (service mode); v4 added the adaptive
/// axes (budget / adaptive_from, written only when set) and the
/// corruption-timeline scalars; v5 added the recovery sublayer: the
/// optional `recovery` axis, the retransmit stats, the ack/dead/duplicate
/// scalars, and the `ack` traffic kind. Older files still load: missing
/// stats/components default to zero, a missing load block to "absent",
/// missing adaptive/recovery axes to "unset", missing trailing traffic
/// kinds to zero.
inline constexpr std::uint64_t kReportSchemaVersion = 5;

/// Quantities the config resolves per point (functions of n and the base
/// config), recorded so a report is interpretable without the binary.
struct PointProvenance {
  std::size_t d = 0;             ///< quorum / poll-list size.
  std::size_t t = 0;             ///< corrupt-node count.
  std::size_t gstring_bits = 0;  ///< candidate-string length on the wire.
  std::size_t node_id_bits = 0;  ///< wire node-id field width.
  std::size_t answer_budget = 0; ///< Algorithm 3 per-responder budget.
};

/// Provenance for one grid point under `base` (axes applied first).
PointProvenance point_provenance(const aer::AerConfig& base,
                                 const GridPoint& point);

/// Wall-clock load figures of a service-mode point (schema v3). By nature
/// environment-dependent, so this block sits OUTSIDE the determinism
/// contract: never fingerprinted, never compared by Report::diff, absent
/// from the CSV — serialized to JSON purely as information for the reader.
struct PointLoad {
  double wall_seconds = 0;
  double instances_per_sec = 0;  ///< sustained stream throughput.
  double wall_ms_p50 = 0;        ///< per-instance wall latency quantiles.
  double wall_ms_p99 = 0;
  double wall_ms_p999 = 0;
  double queue_depth_mean = 0;  ///< generate->execute queue occupancy.
  std::uint64_t queue_depth_max = 0;
  std::uint64_t push_blocks = 0;  ///< backpressure events (queue full).
  std::uint64_t pop_blocks = 0;   ///< starvation events (queue empty).
};

/// One serialized grid point: axes + provenance + the full Aggregate, plus
/// an optional wall-clock load block (service-mode points only).
struct ReportPoint {
  GridPoint point;
  PointProvenance provenance;
  Aggregate aggregate;
  bool has_load = false;  ///< true iff `load` carries data (service mode).
  PointLoad load{};
};

struct ReportSeries {
  std::string name;
  std::vector<ReportPoint> points;
};

struct ReportMeta {
  std::string tool;    ///< emitting binary ("fba_repro", "bench_fig1b_ba").
  std::string figure;  ///< artifact id: "fig1b", "push-phase", ...
  std::string title;   ///< human-readable one-liner.
  std::uint64_t base_seed = 0;
  std::size_t trials = 0;  ///< trials per point.
  std::string scale;       ///< "quick" / "default" / "large" / "".
  /// Headline-curve axes for the markdown/gnuplot renderings: x_axis names
  /// a grid axis ("n", "corrupt", "fault", "budget", "index") or "kind"
  /// (per-kind traffic of a single-point report); y_metric is a
  /// metric_value() name.
  std::string x_axis = "n";
  std::string y_metric = "completion_time.mean";
  std::string y_label = "completion time";
  /// `git describe` of the emitting build (Report::build_version());
  /// provenance only — diff ignores it.
  std::string git_version;
};

/// Looks up a metric by name on an aggregate. Names are either a summary
/// stat field — "completion_time.mean", "amortized_bits.ci95",
/// "decision_time.p99", ... (stats: completion_time, mean_decision_time,
/// engine_time, total_messages, amortized_bits, max_sent_bits,
/// mean_sent_bits, imbalance, decision_time, fault_dropped_msgs,
/// fault_dropped_bits, mem_bytes_per_node;
/// fields: count, mean, stddev, min, max, p50, p90,
/// p99, p999, ci95) — or a scalar: agreement_rate, decided_fraction, trials,
/// agreements, engine_incomplete, wrong_decisions,
/// wrong_decisions_per_trial, stalled_nodes,
/// ae_rounds, reduction_time, ae_bits, reduction_bits, push_bits_per_node,
/// push_msgs_per_node, candidate_lists_per_node, max_candidate_list,
/// missing_gstring, max_deferred, fault_delayed_msgs, runtime_corruptions,
/// runtime_corruptions_per_trial, first_corruption_time,
/// last_corruption_time. Throws ConfigError on an unknown name.
double metric_value(const Aggregate& aggregate, std::string_view name);

/// 95%-CI half-width companion of a metric: the stat's ci95 for
/// "<stat>.mean" names, a normal-approximation binomial CI over the trial
/// count for agreement_rate / decided_fraction (per-node outcomes within a
/// trial are correlated, so trials is the effective sample size), 0
/// otherwise.
double metric_ci(const Aggregate& aggregate, std::string_view name);

struct DiffEntry {
  enum class Verdict {
    kIdentical,  ///< fingerprints match: every field bit-identical.
    kWithinCi,   ///< |current - baseline| within the summed CI95s.
    kImproved,   ///< better than baseline beyond CI bounds.
    kRegressed,  ///< worse than baseline beyond CI bounds.
    kMissing,    ///< series/point present in baseline, absent here.
  };
  std::string series;
  std::string label;   ///< point label ("" for a missing whole series).
  std::string metric;  ///< "" for fingerprint / missing entries.
  double baseline = 0;
  double current = 0;
  double tolerance = 0;  ///< CI-derived allowance used for the verdict.
  Verdict verdict = Verdict::kIdentical;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< regressions first, then the rest.
  std::size_t points_compared = 0;
  std::size_t points_identical = 0;  ///< matched by fingerprint.
  std::size_t regressions = 0;       ///< kRegressed + kMissing entries.
  std::size_t improvements = 0;
  /// Labels present here but not in the baseline (new points are fine —
  /// reported, never a failure).
  std::vector<std::string> added;

  bool ok() const { return regressions == 0; }
  /// Human-readable block: verdict lines for every non-identical entry
  /// plus a one-line summary.
  std::string summary() const;
};

class Report {
 public:
  Report() = default;
  /// Fills meta.git_version from build_version() when the caller left it
  /// empty.
  explicit Report(ReportMeta meta);

  const ReportMeta& meta() const { return meta_; }
  ReportMeta& meta() { return meta_; }

  /// Appends an empty series (name must be unique) and returns it. The
  /// reference is invalidated by the next add_series call.
  ReportSeries& add_series(std::string name);
  /// Convenience: one series from a sweep's results, provenance resolved
  /// against `base`.
  void add_points(const std::string& series, const aer::AerConfig& base,
                  const std::vector<PointResult>& results);
  void add_point(const std::string& series, ReportPoint point);

  const std::vector<ReportSeries>& series() const { return series_; }
  const ReportSeries* find_series(std::string_view name) const;
  std::size_t total_points() const;

  // ---- serialization ----
  std::string to_json() const;
  std::string to_csv() const;
  std::string to_markdown() const;
  std::string to_gnuplot() const;

  /// Parses a report; throws ConfigError on schema-version mismatch,
  /// missing fields, or a point whose recomputed fingerprint differs from
  /// the stored one (a hand-edited or corrupted file).
  static Report from_json(std::string_view text);
  static Report from_json_file(const std::string& path);

  /// Writes BENCH_<figure>.{json,csv,md,gp} under `dir` (created if
  /// needed); returns the paths written.
  std::vector<std::string> write_all(const std::string& dir) const;
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

  /// Compares this report's points against `baseline` by series name and
  /// point label: fingerprint-identical points short-circuit the
  /// fingerprint-covered metrics; otherwise the headline metrics
  /// (completion_time.mean, amortized_bits.mean, total_messages.mean,
  /// agreement_rate, decided_fraction, wrong_decisions_per_trial) are
  /// compared with the summed CI95s as tolerance, each with its own
  /// worse-direction. mem_bytes_per_node.mean (higher is worse) sits
  /// outside the fingerprint, so it is compared even when fingerprints
  /// match — skipped only when the baseline recorded no memory data.
  /// Missing series/points regress; added ones are reported but pass.
  /// Meta (including git_version) is never compared.
  DiffResult diff(const Report& baseline) const;

  /// `git describe` captured at configure time ("unknown" outside a git
  /// checkout).
  static const char* build_version();

 private:
  ReportMeta meta_;
  std::vector<ReportSeries> series_;
};

}  // namespace fba::exp
