#include "exp/scenario.h"

#include <chrono>
#include <cstdio>

#include "adversary/adaptive.h"
#include "adversary/strategies.h"
#include "baseline/flood.h"
#include "baseline/snowball.h"
#include "baseline/sqrtsample.h"
#include "exp/arena.h"

namespace fba::exp {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string format_registry(const std::vector<ScenarioEntry>& entries) {
  std::string out;
  char line[160];
  for (const ScenarioEntry& e : entries) {
    std::snprintf(line, sizeof(line), "      %-15s %s\n", e.name,
                  e.description);
    out += line;
  }
  return out;
}

}  // namespace

const std::vector<ScenarioEntry>& attack_registry() {
  static const std::vector<ScenarioEntry> kAttacks = {
      {"none", "honest run (no adversary strategy)"},
      {"silent", "crash faults: corrupt nodes send nothing"},
      {"junk", "coordinated junk-string diffusion (Lemma 4)"},
      {"junk-light", "junk with bench_push_phase's smaller search budget"},
      {"flood", "blind push flooding (Section 3.1.1)"},
      {"stuff", "poll stuffing / overload chain (Lemma 6)"},
      {"overload",
       "tight-budget poll stuffing + targeted delays under async (Lemmas 6/8)"},
      {"wrong", "wrong-answer safety attack (Lemma 7)"},
      {"skew", "load-skew quorum seizure against node 0 (Figure 1a)"},
      {"skew-heavy", "skew with bench_fig1a's larger string-search budget"},
      {"combo", "junk + wrong + stuff composed"},
      {"grudge-silent",
       "silent from ONE corrupt roster held across service instances"},
      {"grudge-wrong",
       "wrong-answer grudge: a fixed roster attacks every instance"},
      {"grudge-stuff",
       "poll-stuffing grudge: a fixed roster attacks every instance"},
      {"adaptive-degree",
       "adaptive: corrupt the busiest sender mid-run (needs --adaptive-budget)"},
      {"adaptive-quorum",
       "adaptive: corrupt the node closest to answer quorum mid-run"},
      {"adaptive-king",
       "adaptive: corrupt the most polled/pulled (coordinator) node mid-run"},
      {"adaptive-random",
       "adaptive: corrupt uniform random correct nodes mid-run (ablation)"},
  };
  return kAttacks;
}

const std::vector<ScenarioEntry>& fault_registry() {
  static const std::vector<ScenarioEntry> kFaults = {
      {"none", "reliable channels (the paper's model)"},
      {"lossy-1pct", "1% i.i.d. per-message loss on every link"},
      {"lossy-5pct", "5% i.i.d. loss"},
      {"lossy-20pct", "20% i.i.d. loss, near the liveness breaking point"},
      {"jitter", "25% of messages delayed 2 extra rounds / time units"},
      {"flaky", "2% loss + 10% jitter of 1, the \"bad datacenter\" mix"},
      {"split-heal", "even partition active over [2, 6), then heals"},
      {"split-minority", "20% of nodes cut off over [1, 5)"},
      {"churn-10pct", "10% of nodes dark over [1, 5), then back"},
      {"churn-heavy", "25% of nodes dark over [1, 8)"},
      {"slow-burn-churn",
       "churn ramping 5%->25% across a service stream (10% standalone)"},
  };
  return kFaults;
}

const std::vector<ScenarioEntry>& recovery_registry() {
  static const std::vector<ScenarioEntry> kRecoveries = {
      {"off", "no recovery: faulty links stay faulty (the fault layer raw)"},
      {"arq-fast",
       "ack/retransmit from the engine RTO floor, 1.5x backoff capped at 8,"
       " 12 retries"},
      {"arq-patient",
       "ack/retransmit from RTO 6, 2x backoff capped at 64, 16 retries"},
      {"arq-capped",
       "ack/retransmit with a tight 2-retry budget, then the send is"
       " declared dead"},
  };
  return kRecoveries;
}

std::string scenario_usage(const UsageSections& sections) {
  std::string out;
  if (sections.attacks || sections.faults) {
    out += "scenario vocabulary (shared by fba_sim, the benches, fba_repro"
           " and the exp::Grid axes):\n";
  }
  if (sections.attacks) {
    out += "  --attack=<name>    adversary strategy:\n";
    out += format_registry(attack_registry());
  }
  if (sections.faults) {
    out += "  --fault=<preset>   channel-fault preset, composable with any"
           " attack:\n";
    out += format_registry(fault_registry());
  }
  if (sections.recoveries) {
    out += "  --recovery=<preset> reliable-channel recovery sublayer"
           " (ack/retransmit under\n"
           "                     the fault layer; net/recovery.h):\n";
    out += format_registry(recovery_registry());
  }
  if (sections.sweep) {
    out += "common sweep flags:\n"
           "  --trials=N         trials per grid point (multi-trial sweep"
           " when N > 1)\n"
           "  --threads=N        exp::Sweep worker threads; results are"
           " bit-identical\n"
           "                     at any thread count (--threads=1 = serial"
           " reference)\n"
           "  --procs=N          fork N worker processes instead of threads;"
           " results stay\n"
           "                     byte-identical (crashed/hung workers are"
           " re-dealt)\n";
  }
  if (sections.json) {
    out += "report output (docs/output-schema.md):\n"
           "  --json=FILE        write the run's aggregates as a versioned"
           " fba.report\n"
           "                     JSON document (schema v5)\n";
  }
  return out;
}

std::string scenario_usage() {
  return scenario_usage(
      UsageSections{.attacks = true, .faults = true, .recoveries = true,
                    .sweep = true, .json = true});
}

bool is_grudge_attack(const std::string& name) {
  return name.rfind("grudge-", 0) == 0;
}

std::string attack_base(const std::string& name) {
  if (!is_grudge_attack(name)) return name;
  const std::string base = name.substr(7);
  // Only the registered grudge variants are valid; reject e.g.
  // "grudge-bogus" through the same unknown-attack path as any other typo.
  for (const ScenarioEntry& e : attack_registry()) {
    if (name == e.name) return base;
  }
  return name;
}

aer::StrategyFactory attack_factory(const std::string& name) {
  if (name.empty() || name == "none") return {};
  if (is_grudge_attack(name) && attack_base(name) != name) {
    // The grudge part (one corrupt roster pinned across instances) lives in
    // exp::Service; standalone runs degrade to the base strategy with the
    // usual per-trial roster.
    return attack_factory(attack_base(name));
  }
  if (name == "silent") {
    return [](const aer::AerWorldView&) {
      return std::make_unique<adv::SilentStrategy>();
    };
  }
  if (name == "junk") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::JunkPushStrategy>(view, 3, 32);
    };
  }
  if (name == "junk-light") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::JunkPushStrategy>(view, 3, 16);
    };
  }
  if (name == "flood") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::PushFloodStrategy>(view, 64);
    };
  }
  if (name == "stuff") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::PollStuffStrategy>(view);
    };
  }
  if (name == "overload") {
    return [](const aer::AerWorldView& view) {
      auto combo = std::make_unique<adv::ComboStrategy>();
      combo->add(std::make_unique<adv::PollStuffStrategy>(view, 24, 512));
      if (view.shared->config.model == aer::Model::kAsync) {
        combo->set_delay_policy(
            std::make_unique<adv::TargetedDelayStrategy>(view));
      }
      return combo;
    };
  }
  if (name == "wrong") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
    };
  }
  if (name == "skew") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::LoadSkewStrategy>(view, 0, 1024);
    };
  }
  if (name == "skew-heavy") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::LoadSkewStrategy>(view, 0, 2048);
    };
  }
  if (name == "combo") {
    return [](const aer::AerWorldView& view) {
      auto combo = std::make_unique<adv::ComboStrategy>();
      combo->add(std::make_unique<adv::JunkPushStrategy>(view, 2, 16));
      combo->add(std::make_unique<adv::WrongAnswerStrategy>(view, 8));
      combo->add(std::make_unique<adv::PollStuffStrategy>(view));
      return combo;
    };
  }
  // Adaptive family (adversary/adaptive.h): spends the runtime corruption
  // budget (AerConfig::adaptive_budget; 0 degrades to a no-op adversary).
  if (name == "adaptive-degree") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::AdaptiveDegreeStrategy>(view);
    };
  }
  if (name == "adaptive-quorum") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::AdaptiveQuorumStrategy>(view);
    };
  }
  if (name == "adaptive-king") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::AdaptiveKingStrategy>(view);
    };
  }
  if (name == "adaptive-random") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::AdaptiveRandomStrategy>(view);
    };
  }
  throw ConfigError("unknown attack strategy: " + name + " (known attacks: " +
                    join(known_attacks()) +
                    "; fault presets go on the fault axis: " +
                    join(known_faults()) + ")");
}

std::vector<std::string> known_attacks() {
  std::vector<std::string> names;
  names.reserve(attack_registry().size());
  for (const ScenarioEntry& e : attack_registry()) names.push_back(e.name);
  return names;
}

sim::FaultPlan fault_plan_factory(const std::string& name) {
  sim::FaultPlan plan;
  if (name.empty() || name == "none") return plan;
  if (name == "lossy-1pct") {
    plan.loss = 0.01;
    return plan;
  }
  if (name == "lossy-5pct") {
    plan.loss = 0.05;
    return plan;
  }
  if (name == "lossy-20pct") {
    plan.loss = 0.20;
    return plan;
  }
  if (name == "jitter") {
    plan.jitter_prob = 0.25;
    plan.jitter = 2.0;
    return plan;
  }
  if (name == "flaky") {
    plan.loss = 0.02;
    plan.jitter_prob = 0.10;
    plan.jitter = 1.0;
    return plan;
  }
  if (name == "split-heal") {
    plan.partitions.push_back({.start = 2, .heal = 6, .cut_fraction = 0.5});
    return plan;
  }
  if (name == "split-minority") {
    plan.partitions.push_back({.start = 1, .heal = 5, .cut_fraction = 0.2});
    return plan;
  }
  if (name == "churn-10pct") {
    plan.churns.push_back({.down = 1, .up = 5, .fraction = 0.10});
    return plan;
  }
  if (name == "churn-heavy") {
    plan.churns.push_back({.down = 1, .up = 8, .fraction = 0.25});
    return plan;
  }
  if (name == "slow-burn-churn") {
    // Standalone fixed point of the ramp; exp::Service re-derives the
    // per-instance fraction (service_fault_plan in exp/service.cpp).
    plan.churns.push_back({.down = 1, .up = 6, .fraction = 0.10});
    return plan;
  }
  throw ConfigError("unknown fault preset: " + name +
                    " (known presets: " + join(known_faults()) + ")");
}

std::vector<std::string> known_faults() {
  std::vector<std::string> names;
  names.reserve(fault_registry().size());
  for (const ScenarioEntry& e : fault_registry()) names.push_back(e.name);
  return names;
}

sim::RecoveryPlan recovery_plan_factory(const std::string& name) {
  sim::RecoveryPlan plan;
  if (name.empty() || name == "off") return plan;
  plan.enabled = true;
  if (name == "arq-fast") {
    plan.rto_initial = 0;  // the engine's delay-model floor
    plan.backoff = 1.5;
    plan.rto_cap = 8.0;
    plan.max_retries = 12;
    return plan;
  }
  if (name == "arq-patient") {
    plan.rto_initial = 6.0;
    plan.backoff = 2.0;
    plan.rto_cap = 64.0;
    plan.max_retries = 16;
    return plan;
  }
  if (name == "arq-capped") {
    plan.rto_initial = 0;
    plan.backoff = 2.0;
    plan.rto_cap = 8.0;
    plan.max_retries = 2;
    return plan;
  }
  throw ConfigError("unknown recovery preset: " + name +
                    " (known presets: " + join(known_recoveries()) + ")");
}

std::vector<std::string> known_recoveries() {
  std::vector<std::string> names;
  names.reserve(recovery_registry().size());
  for (const ScenarioEntry& e : recovery_registry()) names.push_back(e.name);
  return names;
}

namespace {

template <typename RunWorld>
TrialOutcome world_trial(const aer::AerConfig& config, const GridPoint& point,
                         RunWorld&& run_world) {
  aer::AerConfig cfg = config;
  // The grid's fault/recovery axes carry preset names; an empty name keeps
  // the base config's (possibly hand-built) plan.
  if (!point.fault.empty()) cfg.fault_plan = fault_plan_factory(point.fault);
  if (!point.recovery.empty()) {
    cfg.recovery_plan = recovery_plan_factory(point.recovery);
  }
  aer::AerWorld world = aer::build_aer_world(cfg);
  const aer::AerReport report =
      run_world(world, attack_factory(point.strategy));
  TrialOutcome o = outcome_of(report, world);
  o.seed = cfg.seed;
  return o;
}

}  // namespace

TrialOutcome run_aer_trial(const aer::AerConfig& config,
                           const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return aer::run_aer_world(world, f);
                     });
}

void run_aer_trial(const aer::AerConfig& config, const GridPoint& point,
                   TrialArena& arena, TrialOutcome& out) {
  using clock = std::chrono::steady_clock;
  aer::AerConfig cfg = config;
  if (!point.fault.empty()) cfg.fault_plan = fault_plan_factory(point.fault);
  if (!point.recovery.empty()) {
    cfg.recovery_plan = recovery_plan_factory(point.recovery);
  }
  const auto t0 = clock::now();
  aer::build_aer_world_into(arena.world, cfg);
  const auto t1 = clock::now();
  const aer::AerReport report = aer::run_aer_world_arena(
      arena.world, arena.run, attack_factory(point.strategy));
  outcome_into(report, arena.world, out);
  out.seed = cfg.seed;
  const auto t2 = clock::now();
  arena.timing.setup_seconds += std::chrono::duration<double>(t1 - t0).count();
  arena.timing.run_seconds += std::chrono::duration<double>(t2 - t1).count();
  ++arena.timing.trials;
}

void run_aer_scale_trial(const aer::AerConfig& config, const GridPoint& point,
                         ScaleArena& arena, TrialOutcome& out,
                         const ScaleTrialOptions& options) {
  using clock = std::chrono::steady_clock;
  aer::AerConfig cfg = config;
  if (!point.fault.empty()) cfg.fault_plan = fault_plan_factory(point.fault);
  if (!point.recovery.empty()) {
    cfg.recovery_plan = recovery_plan_factory(point.recovery);
  }
  const auto t0 = clock::now();
  aer::build_aer_world_into(arena.world, cfg);
  const auto t1 = clock::now();
  aer::SoaRunOptions run_opts;
  run_opts.round_drain = options.round_drain;
  run_opts.bursts = options.bursts;
  run_opts.round_progress = options.round_progress;
  const aer::AerReport report = aer::run_aer_world_soa(
      arena.world, arena.run, run_opts, attack_factory(point.strategy));
  outcome_into(report, arena.world, out);
  out.seed = cfg.seed;
  const auto t2 = clock::now();
  arena.timing.setup_seconds += std::chrono::duration<double>(t1 - t0).count();
  arena.timing.run_seconds += std::chrono::duration<double>(t2 - t1).count();
  ++arena.timing.trials;
}

TrialOutcome run_flood_trial(const aer::AerConfig& config,
                             const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_flood_world(world, f);
                     });
}

TrialOutcome run_sqrtsample_trial(const aer::AerConfig& config,
                                  const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_sqrtsample_world(world, f);
                     });
}

TrialOutcome run_snowball_trial(const aer::AerConfig& config,
                                const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_snowball_world(world, f);
                     });
}

}  // namespace fba::exp
