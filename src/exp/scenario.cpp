#include "exp/scenario.h"

#include "adversary/strategies.h"
#include "baseline/flood.h"
#include "baseline/snowball.h"
#include "baseline/sqrtsample.h"

namespace fba::exp {

aer::StrategyFactory attack_factory(const std::string& name) {
  if (name.empty() || name == "none") return {};
  if (name == "silent") {
    return [](const aer::AerWorldView&) {
      return std::make_unique<adv::SilentStrategy>();
    };
  }
  if (name == "junk") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::JunkPushStrategy>(view, 3, 32);
    };
  }
  if (name == "junk-light") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::JunkPushStrategy>(view, 3, 16);
    };
  }
  if (name == "flood") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::PushFloodStrategy>(view, 64);
    };
  }
  if (name == "stuff") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::PollStuffStrategy>(view);
    };
  }
  if (name == "overload") {
    return [](const aer::AerWorldView& view) {
      auto combo = std::make_unique<adv::ComboStrategy>();
      combo->add(std::make_unique<adv::PollStuffStrategy>(view, 24, 512));
      if (view.shared->config.model == aer::Model::kAsync) {
        combo->set_delay_policy(
            std::make_unique<adv::TargetedDelayStrategy>(view));
      }
      return combo;
    };
  }
  if (name == "wrong") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
    };
  }
  if (name == "skew") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::LoadSkewStrategy>(view, 0, 1024);
    };
  }
  if (name == "skew-heavy") {
    return [](const aer::AerWorldView& view) {
      return std::make_unique<adv::LoadSkewStrategy>(view, 0, 2048);
    };
  }
  if (name == "combo") {
    return [](const aer::AerWorldView& view) {
      auto combo = std::make_unique<adv::ComboStrategy>();
      combo->add(std::make_unique<adv::JunkPushStrategy>(view, 2, 16));
      combo->add(std::make_unique<adv::WrongAnswerStrategy>(view, 8));
      combo->add(std::make_unique<adv::PollStuffStrategy>(view));
      return combo;
    };
  }
  throw ConfigError("unknown attack strategy: " + name);
}

std::vector<std::string> known_attacks() {
  return {"none",     "silent", "junk", "junk-light", "flood",
          "stuff",    "overload", "wrong", "skew",    "skew-heavy",
          "combo"};
}

namespace {

template <typename RunWorld>
TrialOutcome world_trial(const aer::AerConfig& config, const GridPoint& point,
                         RunWorld&& run_world) {
  aer::AerWorld world = aer::build_aer_world(config);
  const aer::AerReport report =
      run_world(world, attack_factory(point.strategy));
  TrialOutcome o = outcome_of(report, world);
  o.seed = config.seed;
  return o;
}

}  // namespace

TrialOutcome run_aer_trial(const aer::AerConfig& config,
                           const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return aer::run_aer_world(world, f);
                     });
}

TrialOutcome run_flood_trial(const aer::AerConfig& config,
                             const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_flood_world(world, f);
                     });
}

TrialOutcome run_sqrtsample_trial(const aer::AerConfig& config,
                                  const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_sqrtsample_world(world, f);
                     });
}

TrialOutcome run_snowball_trial(const aer::AerConfig& config,
                                const GridPoint& point) {
  return world_trial(config, point,
                     [](aer::AerWorld& world, const aer::StrategyFactory& f) {
                       return baseline::run_snowball_world(world, f);
                     });
}

}  // namespace fba::exp
