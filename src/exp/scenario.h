// Named scenarios: the adversary-strategy registry and the per-protocol
// trial runners the Sweep fans out.
//
// Attack names are the single vocabulary shared by benches, fba_sim and the
// Grid's strategy axis, so "the poll-stuffing run at n=512" means the same
// configuration everywhere.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "aer/protocol.h"
#include "exp/aggregate.h"
#include "exp/grid.h"

namespace fba::exp {

/// One entry of the scenario vocabulary: a name plus the one-line
/// description --help blocks print. The registries below are the single
/// source of truth behind known_attacks() / known_faults(),
/// attack_factory() / fault_plan_factory() error messages, and
/// scenario_usage().
struct ScenarioEntry {
  const char* name;
  const char* description;
};

/// Every attack strategy attack_factory() accepts, with descriptions.
const std::vector<ScenarioEntry>& attack_registry();
/// Every fault preset fault_plan_factory() accepts, with descriptions.
const std::vector<ScenarioEntry>& fault_registry();
/// Every recovery preset recovery_plan_factory() accepts, with descriptions.
const std::vector<ScenarioEntry>& recovery_registry();

/// Which sections of the generated usage block a binary's --help prints.
/// Only advertise flags the binary actually parses: attacks/faults are off
/// by default because most benches pin their own adversary/fault axes.
struct UsageSections {
  bool attacks = false;     ///< the binary accepts --attack=<name>.
  bool faults = false;      ///< the binary accepts --fault=<preset>.
  bool recoveries = false;  ///< the binary accepts --recovery=<preset>.
  bool sweep = true;        ///< --trials / --threads.
  bool json = true;         ///< the --json=FILE report flag.
};

/// The generated usage block shared by fba_sim, the benches and fba_repro:
/// the attack and fault vocabularies with descriptions plus the common
/// sweep/report flags, restricted to the sections the caller supports.
std::string scenario_usage(const UsageSections& sections);
/// All sections — what fba_sim (which parses everything) prints.
std::string scenario_usage();

/// Resolves an attack name to a strategy factory (names and descriptions:
/// attack_registry()). Throws ConfigError on an unknown name; the message
/// lists every known attack (and the fault presets, the usual confusion).
aer::StrategyFactory attack_factory(const std::string& name);

/// Names accepted by attack_factory, for --help strings.
std::vector<std::string> known_attacks();

/// True when `name` has the grudge- prefix of the persistent attacks: under
/// exp::Service one corrupt roster (drawn once from the service seed) is
/// pinned across every instance; standalone runs degrade to the base
/// strategy with the usual per-trial roster.
bool is_grudge_attack(const std::string& name);
/// "grudge-wrong" -> "wrong" for the registered grudge variants; returns
/// `name` unchanged otherwise (including unknown grudge-* typos, which then
/// fail attack_factory's unknown-attack path).
std::string attack_base(const std::string& name);

/// Resolves a fault-preset name to a sim::FaultPlan (net/fault.h) — the
/// second half of the scenario vocabulary, composable with every attack
/// (names and descriptions: fault_registry(); "" is accepted as "none").
/// Throws ConfigError on an unknown name, listing the known presets.
sim::FaultPlan fault_plan_factory(const std::string& name);

/// Names accepted by fault_plan_factory, for --help strings.
std::vector<std::string> known_faults();

/// Resolves a recovery-preset name to a sim::RecoveryPlan (net/recovery.h)
/// — the third leg of the scenario vocabulary, composable with every attack
/// and fault preset (names and descriptions: recovery_registry(); "" is
/// accepted as "off"). Throws ConfigError on an unknown name, listing the
/// known presets.
sim::RecoveryPlan recovery_plan_factory(const std::string& name);

/// Names accepted by recovery_plan_factory, for --help strings.
std::vector<std::string> known_recoveries();

class TrialArena;
class ScaleArena;

/// Knobs for the scale-mode trial runner below (exp-level mirror of
/// aer::SoaRunOptions, so callers need not reach into aer/soa.h).
struct ScaleTrialOptions {
  /// Drain each round's events with the event queue's linear round-drain
  /// scan instead of per-event heap pops.
  bool round_drain = true;
  /// Collapse each d^2 Fw1 forward fan-out into one burst descriptor
  /// (automatically disabled when the point carries an attack or faults).
  bool bursts = true;
  /// In-trial progress on the sync models: (round just finished, events
  /// still pending). A scale trial is minutes long, so per-trial sweep
  /// progress is too coarse — this is what fig3-scale's ETA line feeds on.
  using RoundProgress = std::function<void(Round, std::size_t)>;
  RoundProgress round_progress;
};

/// One full AER trial: builds a world for `config`, runs it under the
/// point's attack, and harvests the outcome (including per-node decision
/// times). This is Sweep's default trial (via the arena overload below).
TrialOutcome run_aer_trial(const aer::AerConfig& config,
                           const GridPoint& point);

/// Arena variant: same trial, same results, but the world/engine/actor
/// storage comes from `arena` (exp/arena.h) and the outcome is written into
/// `out` (capacity reuse) — zero heap allocations once the arena is warm.
/// Also accumulates the setup-vs-run wall-time split into arena.timing.
void run_aer_trial(const aer::AerConfig& config, const GridPoint& point,
                   TrialArena& arena, TrialOutcome& out);

/// Scale-mode variant: same world construction and RNG draws as
/// run_aer_trial, executed through the structure-of-arrays runner
/// (aer::run_aer_world_soa) — bit-identical protocol metrics and Aggregate
/// fingerprints, plus a filled TrialOutcome::mem_bytes_per_node. The
/// intended path for n >= 10^5 (docs/perf.md "scale mode").
void run_aer_scale_trial(const aer::AerConfig& config, const GridPoint& point,
                         ScaleArena& arena, TrialOutcome& out,
                         const ScaleTrialOptions& options = {});

/// Baseline AE->E reductions on the same world construction.
TrialOutcome run_flood_trial(const aer::AerConfig& config,
                             const GridPoint& point);
TrialOutcome run_sqrtsample_trial(const aer::AerConfig& config,
                                  const GridPoint& point);
TrialOutcome run_snowball_trial(const aer::AerConfig& config,
                                const GridPoint& point);

}  // namespace fba::exp
