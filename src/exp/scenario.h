// Named scenarios: the adversary-strategy registry and the per-protocol
// trial runners the Sweep fans out.
//
// Attack names are the single vocabulary shared by benches, fba_sim and the
// Grid's strategy axis, so "the poll-stuffing run at n=512" means the same
// configuration everywhere.
#pragma once

#include <string>
#include <vector>

#include "aer/protocol.h"
#include "exp/aggregate.h"
#include "exp/grid.h"

namespace fba::exp {

/// Resolves an attack name to a strategy factory. Known names:
///   none      — honest run (null factory);
///   silent    — crash faults;
///   junk      — coordinated junk-string diffusion (Lemma 4);
///   junk-light— junk with the smaller search budget bench_push_phase uses;
///   flood     — blind push flooding (Section 3.1.1);
///   stuff     — poll stuffing / overload chain (Lemma 6);
///   overload  — tight-budget poll stuffing + targeted delays under async,
///               the Lemma 6/8 latency-stretch adversary;
///   wrong     — wrong-answer safety attack (Lemma 7);
///   skew      — load-skew quorum seizure against node 0 (Figure 1a);
///   skew-heavy— skew with bench_fig1a's larger string-search budget;
///   combo     — junk + wrong + stuff composed.
/// Throws ConfigError on an unknown name; the message lists every known
/// attack (and the fault presets, the usual confusion).
aer::StrategyFactory attack_factory(const std::string& name);

/// Names accepted by attack_factory, for --help strings.
std::vector<std::string> known_attacks();

/// Resolves a fault-preset name to a sim::FaultPlan (net/fault.h) — the
/// second half of the scenario vocabulary, composable with every attack.
/// Known names:
///   none        — reliable channels (empty plan; "" is accepted too);
///   lossy-1pct  — 1% i.i.d. per-message loss on every link;
///   lossy-5pct  — 5% loss;
///   lossy-20pct — 20% loss, near the liveness breaking point;
///   jitter      — 25% of messages delayed 2 extra rounds / time units;
///   flaky       — 2% loss + 10% jitter of 1, the "bad datacenter" mix;
///   split-heal  — even partition active over [2, 6), then heals;
///   split-minority — 20% of nodes cut off over [1, 5);
///   churn-10pct — 10% of nodes dark over [1, 5), then back;
///   churn-heavy — 25% of nodes dark over [1, 8).
/// Throws ConfigError on an unknown name, listing the known presets.
sim::FaultPlan fault_plan_factory(const std::string& name);

/// Names accepted by fault_plan_factory, for --help strings.
std::vector<std::string> known_faults();

/// One full AER trial: builds a world for `config`, runs it under the
/// point's attack, and harvests the outcome (including per-node decision
/// times). This is Sweep's default trial.
TrialOutcome run_aer_trial(const aer::AerConfig& config,
                           const GridPoint& point);

/// Baseline AE->E reductions on the same world construction.
TrialOutcome run_flood_trial(const aer::AerConfig& config,
                             const GridPoint& point);
TrialOutcome run_sqrtsample_trial(const aer::AerConfig& config,
                                  const GridPoint& point);
TrialOutcome run_snowball_trial(const aer::AerConfig& config,
                                const GridPoint& point);

}  // namespace fba::exp
