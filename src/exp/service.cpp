#include "exp/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>

#include "adversary/adversary.h"
#include "exp/scenario.h"
#include "support/siphash.h"
#include "svc/pipeline.h"

namespace fba::exp {

std::uint64_t instance_seed(std::uint64_t base_seed, std::uint64_t instance) {
  // Distinct SipHash key from exp::trial_seed's, so a service stream and a
  // sweep on the same base seed draw unrelated instance seeds.
  const std::uint64_t seed =
      siphash_words(SipKey{base_seed, 0x7376632d696e7374ull}, {instance});
  return seed == 0 ? 1 : seed;
}

// ----- ServicePlan -----------------------------------------------------------

ServicePlan::ServicePlan(const ServiceConfig& config) : config_(config) {
  // Resolving the names up front validates them (ConfigError on typos) and
  // moves every allocation out of the per-instance path.
  strategy_ = attack_factory(config.attack);
  base_fault_plan_ = fault_plan_factory(config.fault);
  grudge_ = is_grudge_attack(config.attack);
  slow_burn_ = config.fault == "slow-burn-churn";
  if (grudge_) {
    // The grudge roster: drawn ONCE from the service seed (not from any
    // instance seed), then pinned across the whole stream. Keyed separately
    // from instance_seed so roster and instance randomness are unrelated.
    const std::size_t n = config.base.n;
    const std::size_t t = config.base.resolved_t();
    Rng grudge_rng(
        siphash_words(SipKey{config.base_seed, 0x7376632d67727564ull},
                      {static_cast<std::uint64_t>(n)}));
    roster_ = adv::random_corruption(n, t, grudge_rng);
  }
}

void ServicePlan::configure(aer::AerConfig& cfg, std::uint64_t instance) const {
  cfg = config_.base;  // vector members copy-assign with capacity reuse.
  cfg.seed = instance_seed(config_.base_seed, instance);
  cfg.fault_plan = base_fault_plan_;
  if (slow_burn_) {
    // The slow burn: churn ramps linearly 5% -> 25% over the first 32
    // instances, then stays at 25% — a service-lifetime degradation no
    // single-trial preset can express. Pure function of the instance index,
    // so any worker computes the same plan.
    const double ramp =
        std::min(1.0, static_cast<double>(instance) / 32.0);
    cfg.fault_plan.churns.front().fraction = 0.05 + 0.20 * ramp;
  }
}

void ServicePlan::run_instance(std::uint64_t instance, aer::AerConfig& cfg,
                               TrialArena& arena, TrialOutcome& out) const {
  using clock = std::chrono::steady_clock;
  configure(cfg, instance);
  const auto t0 = clock::now();
  if (grudge_) {
    aer::build_aer_world_into(arena.world, cfg, roster_);
  } else {
    aer::build_aer_world_into(arena.world, cfg);
  }
  const auto t1 = clock::now();
  const aer::AerReport report =
      aer::run_aer_world_arena(arena.world, arena.run, strategy_);
  outcome_into(report, arena.world, out);
  out.seed = cfg.seed;
  const auto t2 = clock::now();
  arena.timing.setup_seconds += std::chrono::duration<double>(t1 - t0).count();
  arena.timing.run_seconds += std::chrono::duration<double>(t2 - t1).count();
  ++arena.timing.trials;
}

// ----- ServiceStats ----------------------------------------------------------

void ServiceStats::fold(const TrialOutcome& out) {
  ++instances;
  agreements += out.agreement ? 1 : 0;
  engine_incomplete += out.engine_completed ? 0 : 1;
  wrong_decisions += out.wrong_decisions;
  stalled_nodes += out.correct - out.decided;
  correct_nodes += out.correct;
  instance_latency.add(out.completion_time);
  for (double t : out.decision_times) decision_latency.add(t);
  amortized_bits.add(out.amortized_bits);
  total_messages.add(out.total_messages);
  fault_dropped_msgs.add(out.fault_dropped_msgs);
}

namespace {

void hash_words(std::uint64_t& h, std::initializer_list<std::uint64_t> words) {
  h = siphash_words(SipKey{h, 0x53766353ull}, words);  // "SvcS"
}

void hash_double_bits(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  hash_words(h, {bits});
}

void hash_stream(std::uint64_t& h, const StreamingStats& s) {
  hash_words(h, {s.count()});
  hash_double_bits(h, s.total());
  hash_double_bits(h, s.sum_squares());
  hash_double_bits(h, s.min());
  hash_double_bits(h, s.max());
  // Sparse bucket walk: (index, count) pairs of the occupied buckets.
  const auto& buckets = s.buckets();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] != 0) hash_words(h, {b, buckets[b]});
  }
}

}  // namespace

std::uint64_t ServiceStats::fingerprint() const {
  std::uint64_t h = 0x6662612073766300ull;  // "fba svc"
  hash_words(h, {instances, agreements, engine_incomplete, wrong_decisions,
                 stalled_nodes, correct_nodes});
  for (const StreamingStats* s :
       {&instance_latency, &decision_latency, &amortized_bits,
        &total_messages, &fault_dropped_msgs}) {
    hash_stream(h, *s);
  }
  return h;
}

Aggregate ServiceStats::to_aggregate() const {
  Aggregate a;
  a.trials = static_cast<std::size_t>(instances);
  a.agreements = static_cast<std::size_t>(agreements);
  a.engine_incomplete = static_cast<std::size_t>(engine_incomplete);
  a.wrong_decisions = wrong_decisions;
  a.stalled_nodes = stalled_nodes;
  a.correct_nodes = correct_nodes;
  a.completion_time = instance_latency.summary();
  a.decision_time = decision_latency.summary();
  a.amortized_bits = amortized_bits.summary();
  a.total_messages = total_messages.summary();
  a.fault_dropped_msgs = fault_dropped_msgs.summary();
  return a;
}

// ----- run_service -----------------------------------------------------------

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Serial reference path: the same generate -> execute -> reduce order a
/// pipeline's reducer reconstructs, inline on the calling thread.
void run_serial(const ServicePlan& plan, const ServiceConfig& config,
                ServiceResult& result) {
  TrialArena arena;
  aer::AerConfig cfg;
  TrialOutcome out;
  for (std::uint64_t i = 0; i < config.instances; ++i) {
    if (!config.warm) arena.clear();
    const auto t0 = clock::now();
    plan.run_instance(i, cfg, arena, out);
    const auto t1 = clock::now();
    result.stats.fold(out);
    result.load.instance_wall_ms.add(ms_between(t0, t1));
  }
  result.timing = arena.timing;
}

/// Pipelined path: one generator, `workers` executors (one warm arena
/// each), reduction on the calling thread. The free-slot queue doubles as
/// flow control: at most `pool` instances are in flight, so the reorder
/// window below is provably contiguous — an unreduced instance index always
/// lies in [next, next + pool).
void run_pipelined(const ServicePlan& plan, const ServiceConfig& config,
                   ServiceResult& result) {
  const std::size_t pool = config.resolved_pool();
  const std::uint64_t total = config.instances;

  struct Job {
    std::uint64_t instance = 0;
    std::size_t slot = 0;
  };
  struct Done {
    std::uint64_t instance = 0;
    std::size_t slot = 0;
    double wall_ms = 0;
  };

  svc::BoundedQueue<std::size_t> free_slots(pool);
  svc::BoundedQueue<Job> jobs(pool);
  svc::BoundedQueue<Done> done(pool);
  for (std::size_t s = 0; s < pool; ++s) free_slots.push(s);

  std::vector<TrialOutcome> slots(pool);
  std::vector<std::unique_ptr<TrialArena>> arenas;
  arenas.reserve(config.workers);
  for (std::size_t w = 0; w < config.workers; ++w) {
    arenas.push_back(std::make_unique<TrialArena>());
  }

  svc::StagePool stages;
  stages.set_on_error([&] {
    free_slots.close();
    jobs.close();
    done.close();
  });

  stages.spawn(1, [&](std::size_t) {
    for (std::uint64_t i = 0; i < total; ++i) {
      std::size_t slot = 0;
      if (!free_slots.pop(slot)) return;  // aborted by a failing stage.
      if (!jobs.push(Job{i, slot})) return;
    }
    jobs.close();  // drain semantics deliver everything already queued.
  });

  std::atomic<std::size_t> live_executors{config.workers};
  stages.spawn(config.workers, [&](std::size_t worker) {
    TrialArena& arena = *arenas[worker];
    aer::AerConfig cfg;
    Job job;
    while (jobs.pop(job)) {
      if (!config.warm) arena.clear();
      const auto t0 = clock::now();
      plan.run_instance(job.instance, cfg, arena, slots[job.slot]);
      const auto t1 = clock::now();
      if (!done.push(Done{job.instance, job.slot, ms_between(t0, t1)})) break;
    }
    // Last executor out closes the done queue so the reducer terminates.
    if (live_executors.fetch_sub(1) == 1) done.close();
  });

  // Reduce on this thread, strictly in instance order: out-of-order
  // completions park in a pool-sized reorder window until their turn.
  struct Pending {
    std::size_t slot = 0;
    double wall_ms = 0;
    bool ready = false;
  };
  std::vector<Pending> window(pool);
  std::uint64_t next = 0;
  Done d;
  while (done.pop(d)) {
    window[d.instance % pool] = {d.slot, d.wall_ms, true};
    while (window[next % pool].ready) {
      Pending& cur = window[next % pool];
      result.stats.fold(slots[cur.slot]);
      result.load.instance_wall_ms.add(cur.wall_ms);
      cur.ready = false;
      free_slots.push(cur.slot);  // refused only after an abort; fine.
      ++next;
    }
  }

  stages.join();  // rethrows the first stage failure.
  result.load.jobs = jobs.stats();
  result.load.done = done.stats();
  for (const auto& arena : arenas) result.timing.add(arena->timing);
}

}  // namespace

ServiceResult run_service(const ServiceConfig& config) {
  ServicePlan plan(config);
  ServiceResult result;
  const auto wall0 = clock::now();
  if (config.workers <= 1) {
    run_serial(plan, config, result);
  } else {
    run_pipelined(plan, config, result);
  }
  const auto wall1 = clock::now();
  result.load.wall_seconds =
      std::chrono::duration<double>(wall1 - wall0).count();
  if (result.load.wall_seconds > 0) {
    result.load.instances_per_sec =
        static_cast<double>(result.stats.instances) /
        result.load.wall_seconds;
  }
  return result;
}

}  // namespace fba::exp
