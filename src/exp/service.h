// Heavy-traffic service mode: repeated consensus as a streaming pipeline.
//
// Everything else in exp/ is one-shot — build a world, decide once, tear it
// down (Sweep amortizes across a *batch* with fan-out-and-join). A deployed
// agreement service runs instead as an unbounded stream of instances, and
// its figures of merit are sustained instances/sec and tail decision
// latency. exp::Service models that: instances flow generate -> execute ->
// reduce through a fixed pool of warm TrialArenas connected by bounded
// queues (svc/queue.h), with cross-instance amortization as the perf core —
// between instances only the instance key changes (seed, strings); sampler
// slabs, engine queues and actor pools stay hot, so a warm instance
// allocates nothing (BM_WarmInstanceAllocations, CI-gated) and steady-state
// cost approaches pure protocol execution.
//
// Adversaries persist across instances (the service threat model): grudge-*
// attacks pin ONE corrupt roster for the whole stream, and slow-burn-churn
// ramps its churn fraction from instance to instance (ServicePlan).
//
// Determinism contract (same as Sweep's): the deterministic results —
// counts, simulated-time latency histograms, traffic — depend only on
// (config, base_seed, instances), never on worker count, pool size or arena
// warmth. Per-instance seeds are siphash(base_seed, instance); the reducer
// folds outcomes in instance order behind a reorder window; ServiceStats::
// fingerprint() is pinned by tests/service_test.cpp. Wall-clock load
// (instances/sec, wall-latency quantiles, queue depths) is kept strictly
// apart in ServiceLoad and never fingerprinted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/aggregate.h"
#include "exp/arena.h"
#include "exp/stats.h"
#include "svc/queue.h"

namespace fba::exp {

struct ServiceConfig {
  /// Per-instance template; seed (and, under a ramping fault, fault_plan)
  /// is overwritten per instance.
  aer::AerConfig base;
  std::string attack = "none";  ///< attack name; grudge-* persists a roster.
  std::string fault;            ///< fault preset; slow-burn-churn ramps.
  std::uint64_t base_seed = 20130722;
  std::uint64_t instances = 64;
  /// Executor threads. 1 runs the whole pipeline inline (the serial
  /// reference path); results are bit-identical at any value.
  std::size_t workers = 1;
  /// In-flight instance bound == outcome-slot count (the generator blocks
  /// once `pool` instances are unreduced). 0 resolves to workers + 2.
  std::size_t pool = 0;
  /// false = cold A/B baseline: every instance rebuilds its world from
  /// nothing (TrialArena::clear between instances). Same results, no
  /// amortization — what bench_service measures the warm path against.
  bool warm = true;

  std::size_t resolved_pool() const { return pool > 0 ? pool : workers + 2; }
};

/// Derived per-instance seed: siphash(base_seed, instance), 0 remapped to 1
/// (mirrors exp::trial_seed, distinct key so service streams and sweeps
/// never collide).
std::uint64_t instance_seed(std::uint64_t base_seed, std::uint64_t instance);

/// The resolved, instance-invariant half of a service run: strategy
/// factory, grudge roster (drawn once from the service seed), base fault
/// plan. Constructing a plan validates the attack/fault names; per-instance
/// state is derived through configure()/run_instance() with no allocation
/// on the warm path.
class ServicePlan {
 public:
  ServicePlan() = default;
  explicit ServicePlan(const ServiceConfig& config);

  const ServiceConfig& config() const { return config_; }
  bool grudge() const { return grudge_; }
  /// The fixed corrupt roster grudge-* attacks pin across every instance
  /// (empty for non-grudge attacks).
  const std::vector<NodeId>& grudge_roster() const { return roster_; }

  /// Writes instance `i`'s exact AerConfig into `cfg` — seed, (ramped)
  /// fault plan. `cfg` should persist per worker: the write reuses its
  /// vector capacity, keeping the warm path allocation-free.
  void configure(aer::AerConfig& cfg, std::uint64_t instance) const;

  /// One full instance through `arena`: re-key (seed/strings only; slabs,
  /// queues and pools stay hot), run under the persistent adversary,
  /// harvest into `out`. Accumulates the setup/run split into arena.timing.
  void run_instance(std::uint64_t instance, aer::AerConfig& cfg,
                    TrialArena& arena, TrialOutcome& out) const;

 private:
  ServiceConfig config_;
  aer::StrategyFactory strategy_;
  sim::FaultPlan base_fault_plan_;
  std::vector<NodeId> roster_;
  bool grudge_ = false;
  bool slow_burn_ = false;
};

/// Deterministic stream results: counts plus constant-memory latency /
/// traffic histograms (StreamingStats — no per-instance sample storage, so
/// the stream length is unbounded). fold() MUST be called in instance
/// order; the pipeline's reducer guarantees it.
struct ServiceStats {
  std::uint64_t instances = 0;
  std::uint64_t agreements = 0;
  std::uint64_t engine_incomplete = 0;
  std::uint64_t wrong_decisions = 0;
  std::uint64_t stalled_nodes = 0;
  std::uint64_t correct_nodes = 0;

  StreamingStats instance_latency;  ///< per-instance completion time.
  StreamingStats decision_latency;  ///< pooled per-node decision times.
  StreamingStats amortized_bits;
  StreamingStats total_messages;
  StreamingStats fault_dropped_msgs;

  void fold(const TrialOutcome& out);

  double agreement_rate() const {
    return instances ? static_cast<double>(agreements) /
                           static_cast<double>(instances)
                     : 0;
  }
  double decided_fraction() const {
    return correct_nodes ? 1.0 - static_cast<double>(stalled_nodes) /
                                     static_cast<double>(correct_nodes)
                         : 0;
  }

  /// Order-sensitive hash of every deterministic field (counts, histogram
  /// buckets, moment bit patterns). The service counterpart of
  /// Aggregate::fingerprint(); service_test pins values and worker-count
  /// independence.
  std::uint64_t fingerprint() const;

  /// Bridges into the Report machinery: an Aggregate whose five streamed
  /// stats come from the histograms (quantiles) and exact moments, counts
  /// copied, everything else zero. Deterministic, so the report fingerprint
  /// / baseline diff / --validate path works unchanged on service points.
  Aggregate to_aggregate() const;
};

/// Wall-clock side of a run. Environment-dependent by definition — kept out
/// of ServiceStats, the fingerprint, and Report::diff (serialized only as
/// the report's informational `load` block, docs/output-schema.md v3).
struct ServiceLoad {
  double wall_seconds = 0;
  double instances_per_sec = 0;
  StreamingStats instance_wall_ms;  ///< per-instance wall latency (ms).
  svc::QueueStats jobs;  ///< generate -> execute queue (depth/backpressure).
  svc::QueueStats done;  ///< execute -> reduce queue.
};

struct ServiceResult {
  ServiceStats stats;
  ServiceLoad load;
  TrialTiming timing;  ///< summed across workers (setup vs run split).
};

/// Runs the stream: inline when config.workers <= 1, otherwise a generator
/// thread, `workers` executors (one warm TrialArena each) and a reducer
/// connected by bounded queues sized config.resolved_pool(). Bit-identical
/// ServiceStats at any worker/pool/warmth setting.
ServiceResult run_service(const ServiceConfig& config);

}  // namespace fba::exp
