#include "exp/shard.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "support/siphash.h"
#include "support/types.h"

namespace fba::exp {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_u64(const std::string& text, int radix) {
  std::uint64_t out = 0;
  const auto r =
      std::from_chars(text.data(), text.data() + text.size(), out, radix);
  FBA_REQUIRE(r.ec == std::errc() && r.ptr == text.data() + text.size(),
              "shard: malformed integer field \"" + text + "\"");
  return out;
}

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  h = siphash_words(SipKey{h, 0x73686172642d3935ull}, {v});
}

void hash_double(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  hash_u64(h, bits);
}

/// The doubles of a TrialOutcome in one fixed order — shared by the
/// fingerprint and both serialization directions so none can drift from
/// the others. Keep in sync with exp::TrialOutcome (exp/aggregate.h).
struct DoubleField {
  const char* name;
  double TrialOutcome::* field;
};

constexpr DoubleField kDoubleFields[] = {
    {"completion_time", &TrialOutcome::completion_time},
    {"mean_decision_time", &TrialOutcome::mean_decision_time},
    {"engine_time", &TrialOutcome::engine_time},
    {"total_messages", &TrialOutcome::total_messages},
    {"amortized_bits", &TrialOutcome::amortized_bits},
    {"max_sent_bits", &TrialOutcome::max_sent_bits},
    {"mean_sent_bits", &TrialOutcome::mean_sent_bits},
    {"imbalance", &TrialOutcome::imbalance},
    {"fault_dropped_msgs", &TrialOutcome::fault_dropped_msgs},
    {"fault_dropped_bits", &TrialOutcome::fault_dropped_bits},
    {"fault_delayed_msgs", &TrialOutcome::fault_delayed_msgs},
    {"ae_rounds", &TrialOutcome::ae_rounds},
    {"reduction_time", &TrialOutcome::reduction_time},
    {"ae_bits", &TrialOutcome::ae_bits},
    {"reduction_bits", &TrialOutcome::reduction_bits},
    {"push_bits_per_node", &TrialOutcome::push_bits_per_node},
    {"push_msgs_per_node", &TrialOutcome::push_msgs_per_node},
    {"candidate_lists_per_node", &TrialOutcome::candidate_lists_per_node},
    {"mem_bytes_per_node", &TrialOutcome::mem_bytes_per_node},
    {"runtime_corruptions", &TrialOutcome::runtime_corruptions},
    {"first_corruption_time", &TrialOutcome::first_corruption_time},
    {"last_corruption_time", &TrialOutcome::last_corruption_time},
    {"recovery_retransmit_msgs", &TrialOutcome::recovery_retransmit_msgs},
    {"recovery_retransmit_bits", &TrialOutcome::recovery_retransmit_bits},
    {"recovery_acked_msgs", &TrialOutcome::recovery_acked_msgs},
    {"recovery_dead_msgs", &TrialOutcome::recovery_dead_msgs},
    {"recovery_dup_msgs", &TrialOutcome::recovery_dup_msgs},
};

struct CountField {
  const char* name;
  std::size_t TrialOutcome::* field;
};

constexpr CountField kCountFields[] = {
    {"correct", &TrialOutcome::correct},
    {"decided", &TrialOutcome::decided},
    {"wrong_decisions", &TrialOutcome::wrong_decisions},
    {"knowledgeable", &TrialOutcome::knowledgeable},
    {"max_candidate_list", &TrialOutcome::max_candidate_list},
    {"missing_gstring", &TrialOutcome::missing_gstring},
    {"max_deferred", &TrialOutcome::max_deferred},
};

json::Value doubles_array(const double* values, std::size_t count) {
  json::Value out = json::Value::array();
  for (std::size_t i = 0; i < count; ++i) out.push_back(values[i]);
  return out;
}

void doubles_from_array(const json::Value& v, double* values,
                        std::size_t count) {
  // Tolerant like report.cpp's traffic load: an older shard written before
  // a trailing message kind existed lists fewer entries; missing tails stay
  // zero. More entries than this build knows is a real mismatch.
  const auto& arr = v.as_array();
  FBA_REQUIRE(arr.size() <= count, "shard: outcome array length mismatch");
  for (std::size_t i = 0; i < arr.size(); ++i) values[i] = arr[i].as_double();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FBA_REQUIRE(out.good(), "shard: cannot open \"" + path + "\" for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  FBA_REQUIRE(out.good(), "shard: write to \"" + path + "\" failed");
}

json::Value cell_to_json(const ShardCell& cell) {
  json::Value out = json::Value::object();
  out.set("point", std::uint64_t{cell.point});
  out.set("trial", std::uint64_t{cell.trial});
  out.set("outcome", outcome_to_json(cell.outcome));
  return out;
}

ShardCell cell_from_json(const json::Value& v) {
  ShardCell cell;
  cell.point = static_cast<std::size_t>(v.at("point").as_uint64());
  cell.trial = static_cast<std::size_t>(v.at("trial").as_uint64());
  cell.outcome = outcome_from_json(v.at("outcome"));
  return cell;
}

json::Value cells_to_json(const std::vector<ShardCell>& cells) {
  json::Value out = json::Value::array();
  for (const ShardCell& cell : cells) out.push_back(cell_to_json(cell));
  return out;
}

std::vector<ShardCell> cells_from_json(const json::Value& v) {
  std::vector<ShardCell> cells;
  cells.reserve(v.as_array().size());
  for (const json::Value& cell : v.as_array()) {
    cells.push_back(cell_from_json(cell));
  }
  return cells;
}

void check_cells_fingerprint(const json::Value& holder,
                             const std::vector<ShardCell>& cells,
                             const char* what) {
  const std::string stored = holder.at("fingerprint").as_string();
  const std::string recomputed = hex_u64(cells_fingerprint(cells));
  FBA_REQUIRE(stored == recomputed,
              std::string("shard: ") + what + " fingerprint mismatch (stored " +
                  stored + ", recomputed " + recomputed +
                  ") — payload corrupted or hand-edited");
}

}  // namespace

std::uint64_t outcome_fingerprint(const TrialOutcome& o) {
  std::uint64_t h = 0x666261207368640aull;
  hash_u64(h, o.seed);
  for (const CountField& f : kCountFields) {
    hash_u64(h, static_cast<std::uint64_t>(o.*(f.field)));
  }
  hash_u64(h, o.agreement ? 1 : 0);
  hash_u64(h, o.engine_completed ? 1 : 0);
  for (const DoubleField& f : kDoubleFields) hash_double(h, o.*(f.field));
  for (double v : o.bits_by_kind) hash_double(h, v);
  for (double v : o.msgs_by_kind) hash_double(h, v);
  for (double v : o.drops_by_cause) hash_double(h, v);
  hash_u64(h, o.decision_times.size());
  for (double v : o.decision_times) hash_double(h, v);
  return h;
}

json::Value outcome_to_json(const TrialOutcome& o) {
  json::Value out = json::Value::object();
  out.set("seed", std::to_string(o.seed));  // full 64 bits, as in reports
  for (const CountField& f : kCountFields) {
    out.set(f.name, std::uint64_t{o.*(f.field)});
  }
  out.set("agreement", o.agreement);
  out.set("engine_completed", o.engine_completed);
  for (const DoubleField& f : kDoubleFields) out.set(f.name, o.*(f.field));
  out.set("bits_by_kind",
          doubles_array(o.bits_by_kind.data(), o.bits_by_kind.size()));
  out.set("msgs_by_kind",
          doubles_array(o.msgs_by_kind.data(), o.msgs_by_kind.size()));
  out.set("drops_by_cause",
          doubles_array(o.drops_by_cause.data(), o.drops_by_cause.size()));
  out.set("decision_times",
          doubles_array(o.decision_times.data(), o.decision_times.size()));
  return out;
}

TrialOutcome outcome_from_json(const json::Value& v) {
  TrialOutcome o;
  o.seed = parse_u64(v.at("seed").as_string(), 10);
  for (const CountField& f : kCountFields) {
    o.*(f.field) = static_cast<std::size_t>(v.at(f.name).as_uint64());
  }
  o.agreement = v.at("agreement").as_bool();
  o.engine_completed = v.at("engine_completed").as_bool();
  for (const DoubleField& f : kDoubleFields) {
    // Missing fields (pre-v2 shard files lack the recovery_* counters)
    // default to zero, mirroring the report loader's tolerance.
    if (const json::Value* field = v.find(f.name)) {
      o.*(f.field) = field->as_double();
    }
  }
  doubles_from_array(v.at("bits_by_kind"), o.bits_by_kind.data(),
                     o.bits_by_kind.size());
  doubles_from_array(v.at("msgs_by_kind"), o.msgs_by_kind.data(),
                     o.msgs_by_kind.size());
  doubles_from_array(v.at("drops_by_cause"), o.drops_by_cause.data(),
                     o.drops_by_cause.size());
  const auto& times = v.at("decision_times").as_array();
  o.decision_times.reserve(times.size());
  for (const json::Value& t : times) {
    o.decision_times.push_back(t.as_double());
  }
  return o;
}

std::uint64_t cells_fingerprint(const std::vector<ShardCell>& cells) {
  std::uint64_t h = 0x63656c6c730a0a0aull;
  for (const ShardCell& cell : cells) {
    hash_u64(h, cell.point);
    hash_u64(h, cell.trial);
    hash_u64(h, outcome_fingerprint(cell.outcome));
  }
  return h;
}

std::string ShardPayload::to_json() const {
  json::Value out = json::Value::object();
  out.set("cells", cells_to_json(cells));
  json::Value timing = json::Value::object();
  timing.set("setup_seconds", setup_seconds);
  timing.set("run_seconds", run_seconds);
  timing.set("trials", std::uint64_t{timed_trials});
  out.set("timing", std::move(timing));
  out.set("fingerprint", hex_u64(cells_fingerprint(cells)));
  return out.dump();
}

ShardPayload ShardPayload::from_json(std::string_view text) {
  const json::Value root = json::Value::parse(text);
  ShardPayload payload;
  payload.cells = cells_from_json(root.at("cells"));
  const json::Value& timing = root.at("timing");
  payload.setup_seconds = timing.at("setup_seconds").as_double();
  payload.run_seconds = timing.at("run_seconds").as_double();
  payload.timed_trials = timing.at("trials").as_uint64();
  check_cells_fingerprint(root, payload.cells, "payload");
  return payload;
}

std::uint64_t sweep_grid_fingerprint(std::uint64_t base_seed,
                                     std::size_t trials,
                                     const std::vector<GridPoint>& points) {
  std::uint64_t h = 0x677269642d667000ull;
  hash_u64(h, base_seed);
  hash_u64(h, trials);
  hash_u64(h, points.size());
  for (const GridPoint& p : points) {
    const std::string label = p.label();
    h = siphash24(SipKey{h, 0x6c6162656c000000ull}, label.data(),
                  label.size());
  }
  return h;
}

std::size_t ShardDoc::total_cells() const {
  std::size_t n = 0;
  for (const ShardSweep& s : sweeps) n += s.cells.size();
  return n;
}

std::string ShardDoc::to_json() const {
  json::Value root = json::Value::object();
  root.set("schema", "fba.shard");
  root.set("schema_version", std::uint64_t{kShardSchemaVersion});

  json::Value m = json::Value::object();
  m.set("tool", meta.tool);
  m.set("figure", meta.figure);
  m.set("scale", meta.scale);
  m.set("attack", meta.attack);
  m.set("fault", meta.fault);
  m.set("recovery", meta.recovery);
  m.set("base_seed", std::to_string(meta.base_seed));
  m.set("trials", std::uint64_t{meta.trials});
  m.set("shard_index", std::uint64_t{meta.shard_index});
  m.set("shard_count", std::uint64_t{meta.shard_count});
  root.set("meta", std::move(m));

  json::Value sweeps_json = json::Value::array();
  for (const ShardSweep& s : sweeps) {
    json::Value sv = json::Value::object();
    sv.set("points", std::uint64_t{s.points});
    sv.set("trials", std::uint64_t{s.trials});
    sv.set("grid_fingerprint", hex_u64(s.grid_fingerprint));
    sv.set("cells", cells_to_json(s.cells));
    sv.set("fingerprint", hex_u64(cells_fingerprint(s.cells)));
    sweeps_json.push_back(std::move(sv));
  }
  root.set("sweeps", std::move(sweeps_json));
  return root.dump() + "\n";
}

void ShardDoc::write(const std::string& path) const {
  write_file(path, to_json());
}

ShardDoc ShardDoc::from_json(std::string_view text) {
  const json::Value root = json::Value::parse(text);
  FBA_REQUIRE(root.at("schema").as_string() == "fba.shard",
              "shard: not an fba.shard document");
  const std::uint64_t version = root.at("schema_version").as_uint64();
  FBA_REQUIRE(version >= 1 && version <= kShardSchemaVersion,
              "shard: unsupported schema version " + std::to_string(version) +
                  " (this build reads 1.." +
                  std::to_string(kShardSchemaVersion) + ")");

  ShardDoc doc;
  const json::Value& m = root.at("meta");
  doc.meta.tool = m.at("tool").as_string();
  doc.meta.figure = m.at("figure").as_string();
  doc.meta.scale = m.at("scale").as_string();
  doc.meta.attack = m.at("attack").as_string();
  doc.meta.fault = m.at("fault").as_string();
  // Tolerant: pre-recovery shard files carry no recovery key -> "off".
  if (const json::Value* rec = m.find("recovery")) {
    doc.meta.recovery = rec->as_string();
  }
  doc.meta.base_seed = parse_u64(m.at("base_seed").as_string(), 10);
  doc.meta.trials = static_cast<std::size_t>(m.at("trials").as_uint64());
  doc.meta.shard_index =
      static_cast<std::size_t>(m.at("shard_index").as_uint64());
  doc.meta.shard_count =
      static_cast<std::size_t>(m.at("shard_count").as_uint64());

  for (const json::Value& sv : root.at("sweeps").as_array()) {
    ShardSweep sweep;
    sweep.points = static_cast<std::size_t>(sv.at("points").as_uint64());
    sweep.trials = static_cast<std::size_t>(sv.at("trials").as_uint64());
    sweep.grid_fingerprint =
        parse_u64(sv.at("grid_fingerprint").as_string(), 16);
    sweep.cells = cells_from_json(sv.at("cells"));
    check_cells_fingerprint(sv, sweep.cells, "sweep");
    doc.sweeps.push_back(std::move(sweep));
  }
  return doc;
}

ShardDoc ShardDoc::from_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FBA_REQUIRE(in.good(), "shard: cannot read \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

ShardDoc merge_shards(const std::vector<ShardDoc>& shards) {
  FBA_REQUIRE(!shards.empty(), "shard merge: no shard documents given");
  const ShardMeta& first = shards.front().meta;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const ShardMeta& m = shards[i].meta;
    FBA_REQUIRE(
        m.figure == first.figure && m.base_seed == first.base_seed &&
            m.trials == first.trials && m.scale == first.scale &&
            m.attack == first.attack && m.fault == first.fault &&
            m.recovery == first.recovery,
        "shard merge: shard " + std::to_string(i) +
            " was recorded from a different run (figure/seed/trials/scale/"
            "attack/fault/recovery must all match shard 0)");
    FBA_REQUIRE(shards[i].sweeps.size() == shards.front().sweeps.size(),
                "shard merge: shard " + std::to_string(i) + " holds " +
                    std::to_string(shards[i].sweeps.size()) +
                    " sweeps, shard 0 holds " +
                    std::to_string(shards.front().sweeps.size()));
  }

  ShardDoc merged;
  merged.meta = first;
  merged.meta.shard_index = 0;
  merged.meta.shard_count = 1;

  for (std::size_t s = 0; s < shards.front().sweeps.size(); ++s) {
    const ShardSweep& shape = shards.front().sweeps[s];
    ShardSweep out;
    out.points = shape.points;
    out.trials = shape.trials;
    out.grid_fingerprint = shape.grid_fingerprint;
    out.cells.resize(shape.points * shape.trials);
    std::vector<bool> seen(shape.points * shape.trials, false);

    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardSweep& in = shards[i].sweeps[s];
      FBA_REQUIRE(in.points == shape.points && in.trials == shape.trials &&
                      in.grid_fingerprint == shape.grid_fingerprint,
                  "shard merge: sweep " + std::to_string(s) + " of shard " +
                      std::to_string(i) +
                      " has a different shape or grid fingerprint than"
                      " shard 0 — shards came from diverging configurations");
      for (const ShardCell& cell : in.cells) {
        FBA_REQUIRE(cell.point < shape.points && cell.trial < shape.trials,
                    "shard merge: sweep " + std::to_string(s) +
                        " cell (point " + std::to_string(cell.point) +
                        ", trial " + std::to_string(cell.trial) +
                        ") is outside the sweep's matrix");
        const std::size_t slot = cell.point * shape.trials + cell.trial;
        FBA_REQUIRE(!seen[slot],
                    "shard merge: duplicate cell (sweep " + std::to_string(s) +
                        ", point " + std::to_string(cell.point) + ", trial " +
                        std::to_string(cell.trial) +
                        ") — the shards overlap instead of partitioning");
        seen[slot] = true;
        out.cells[slot] = cell;
      }
    }
    for (std::size_t slot = 0; slot < seen.size(); ++slot) {
      FBA_REQUIRE(seen[slot],
                  "shard merge: missing cell (sweep " + std::to_string(s) +
                      ", point " + std::to_string(slot / shape.trials) +
                      ", trial " + std::to_string(slot % shape.trials) +
                      ") — a shard of the partition was not given");
    }
    merged.sweeps.push_back(std::move(out));
  }
  return merged;
}

ShardIo& ShardIo::instance() {
  static ShardIo io;
  return io;
}

void ShardIo::start_record(ShardMeta meta) {
  FBA_REQUIRE(meta.shard_count >= 1 && meta.shard_index < meta.shard_count,
              "shard record: index must be in [0, shard_count)");
  reset();
  mode_ = Mode::kRecord;
  doc_.meta = std::move(meta);
}

void ShardIo::start_replay(ShardDoc merged) {
  reset();
  mode_ = Mode::kReplay;
  doc_ = std::move(merged);
}

void ShardIo::reset() {
  mode_ = Mode::kOff;
  doc_ = ShardDoc{};
  sweep_offsets_.clear();
  next_offset_ = 0;
}

std::size_t ShardIo::begin_sweep(std::uint64_t base_seed, std::size_t trials,
                                 const std::vector<GridPoint>& points) {
  const std::uint64_t grid_fp =
      sweep_grid_fingerprint(base_seed, trials, points);
  const std::size_t index = sweep_offsets_.size();
  if (mode_ == Mode::kRecord) {
    ShardSweep sweep;
    sweep.points = points.size();
    sweep.trials = trials;
    sweep.grid_fingerprint = grid_fp;
    doc_.sweeps.push_back(std::move(sweep));
  } else if (mode_ == Mode::kReplay) {
    FBA_REQUIRE(index < doc_.sweeps.size(),
                "shard replay: the figure ran more sweeps than the shards"
                " recorded — merged shards came from a different figure or"
                " build");
    const ShardSweep& recorded = doc_.sweeps[index];
    FBA_REQUIRE(
        recorded.points == points.size() && recorded.trials == trials &&
            recorded.grid_fingerprint == grid_fp,
        "shard replay: sweep " + std::to_string(index) +
            " shape/grid fingerprint differs from the recorded one — the"
            " shards came from different flags, seed or build");
  }
  sweep_offsets_.push_back(next_offset_);
  next_offset_ += points.size() * trials;
  return index;
}

bool ShardIo::owns_cell(std::size_t sweep, std::size_t point,
                        std::size_t trial, std::size_t trials) const {
  if (mode_ != Mode::kRecord) return true;
  const std::size_t offset =
      sweep_offsets_[sweep] + point * trials + trial;
  return offset % doc_.meta.shard_count == doc_.meta.shard_index;
}

void ShardIo::record_cell(std::size_t sweep, std::size_t point,
                          std::size_t trial, const TrialOutcome& outcome) {
  FBA_ASSERT(mode_ == Mode::kRecord && sweep < doc_.sweeps.size(),
             "record_cell outside record mode");
  doc_.sweeps[sweep].cells.push_back(ShardCell{point, trial, outcome});
}

const std::vector<ShardCell>& ShardIo::replay_cells(std::size_t sweep) const {
  FBA_ASSERT(mode_ == Mode::kReplay && sweep < doc_.sweeps.size(),
             "replay_cells outside replay mode");
  return doc_.sweeps[sweep].cells;
}

}  // namespace fba::exp
