// Sweep shards: the serialized (point, trial) -> TrialOutcome cells behind
// both fan-out paths.
//
//   - In-process fan-out (exp/procpool.h): a forked worker streams each
//     finished task back as a shard payload — cells + a fingerprint — and
//     the parent folds the cells into the slot matrix exactly where a
//     thread-mode worker would have written them.
//   - Cross-machine fan-out (fba_repro --shard=i/N / --merge): a whole
//     figure run writes an fba.shard JSON document holding its slice of
//     every sweep's cells; merge validates coverage (every cell exactly
//     once, no duplicates) and replays the cells through the unchanged
//     figure driver, producing report files byte-identical to a serial run.
//
// Determinism contract: a TrialOutcome serializes through the canonical
// JSON number form (support/json.h — shortest round-trip doubles), so
// parse(dump(outcome)) reproduces every bit, and the fixed-order reduction
// over merged cells equals the serial reduction. Every cell list carries a
// fingerprint (a keyed fold of outcome_fingerprint in cell order) that is
// recomputed on parse — a tampered or truncated shard fails with a
// ConfigError, never a silent wrong merge.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/aggregate.h"
#include "exp/grid.h"
#include "support/json.h"

namespace fba::exp {

/// Bumped whenever the shard JSON layout changes (independent of the
/// fba.report schema — shards are an exchange format between runs of the
/// same build, not a long-lived artifact). v2 added the meta recovery
/// preset, the outcome recovery_* counters, and the ack traffic kind
/// (missing fields/trailing kinds load as zero, recovery as "off").
inline constexpr std::uint64_t kShardSchemaVersion = 2;

/// Order-sensitive hash of every TrialOutcome field (decision_times
/// included). Two outcomes are bit-identical iff their fingerprints match;
/// the per-shard fingerprint folds these in cell order.
std::uint64_t outcome_fingerprint(const TrialOutcome& outcome);

/// Exact JSON round-trip of one outcome: parse(dump(o)) == o to the bit.
/// Out-of-double-range integers (the seed) ride as decimal strings.
json::Value outcome_to_json(const TrialOutcome& outcome);
TrialOutcome outcome_from_json(const json::Value& v);

/// One executed cell of a sweep's (point, trial) matrix. `point` is the
/// grid-expansion index (== GridPoint::index), `trial` the trial index the
/// seed derivation keyed on.
struct ShardCell {
  std::size_t point = 0;
  std::size_t trial = 0;
  TrialOutcome outcome;
};

/// Keyed fold of outcome_fingerprint over `cells` in order — the integrity
/// check both the pipe protocol and the shard files carry.
std::uint64_t cells_fingerprint(const std::vector<ShardCell>& cells);

/// The wire payload a procpool worker returns for one task: its cells, the
/// task's wall-time split, and the fingerprint over the cells.
struct ShardPayload {
  std::vector<ShardCell> cells;
  double setup_seconds = 0;
  double run_seconds = 0;
  std::uint64_t timed_trials = 0;

  std::string to_json() const;
  /// Throws ConfigError on malformed JSON or a fingerprint mismatch.
  static ShardPayload from_json(std::string_view text);
};

/// The shape of one sweep inside a sharded figure run, plus this shard's
/// slice of its cells. grid_fingerprint hashes (base seed, trials, every
/// point label), so shards recorded from diverging configurations refuse
/// to merge.
struct ShardSweep {
  std::size_t points = 0;
  std::size_t trials = 0;
  std::uint64_t grid_fingerprint = 0;
  std::vector<ShardCell> cells;
};

/// Shape hash of an expanded sweep (see ShardSweep::grid_fingerprint).
std::uint64_t sweep_grid_fingerprint(std::uint64_t base_seed,
                                     std::size_t trials,
                                     const std::vector<GridPoint>& points);

/// Everything a merge must agree on before cells can be combined. The
/// figure-level inputs (seed, trials, scale, attack/fault flags) pin the
/// grid shapes; shard_index/shard_count record which slice this document
/// holds (provenance — merge accepts any partition, not just the
/// round-robin one).
struct ShardMeta {
  std::string tool;
  std::string figure;
  std::string scale;
  std::string attack = "none";
  std::string fault = "none";
  std::string recovery = "off";
  std::uint64_t base_seed = 0;
  std::size_t trials = 0;
  std::size_t shard_index = 0;  ///< 0-based slice id (provenance only).
  std::size_t shard_count = 1;
};

/// One fba.shard document: the meta plus this shard's cells for every
/// sweep the figure ran, in sweep execution order.
struct ShardDoc {
  ShardMeta meta;
  std::vector<ShardSweep> sweeps;

  std::size_t total_cells() const;
  std::string to_json() const;
  void write(const std::string& path) const;
  /// Throws ConfigError on malformed input, an unsupported schema version
  /// or a cells fingerprint mismatch.
  static ShardDoc from_json(std::string_view text);
  static ShardDoc from_json_file(const std::string& path);
};

/// Merges shard documents into one full-coverage document: metas must
/// agree (figure, seed, trials, scale, attack, fault), every sweep's shape
/// must match, and the union of cells must cover every (point, trial)
/// exactly once. Throws ConfigError naming the offending sweep/cell on
/// duplicates, gaps, or mismatched shapes.
ShardDoc merge_shards(const std::vector<ShardDoc>& shards);

/// Process-global record/replay switchboard consulted by Sweep::run().
/// Off by default (zero overhead on the normal path); fba_repro flips it:
///
///   --shard=i/N  -> start_record: each sweep runs only the cells the
///                   round-robin rule assigns to slice i and records them.
///   --merge ...  -> start_replay(merge_shards(...)): each sweep fills its
///                   slot matrix from the merged cells instead of running
///                   trials, then reduces exactly as a live run would.
///
/// Sweeps register in execution order (begin_sweep), which is
/// deterministic for a fixed figure + flags — the same order the shards
/// were recorded in.
class ShardIo {
 public:
  enum class Mode { kOff, kRecord, kReplay };

  static ShardIo& instance();

  Mode mode() const { return mode_; }

  void start_record(ShardMeta meta);
  void start_replay(ShardDoc merged);
  void reset();

  /// Registers the next sweep (record: appends a ShardSweep and returns
  /// its index; replay: validates the shape against the recorded sweep and
  /// returns its index — throws ConfigError on a mismatch or when the
  /// figure runs more sweeps than the shards recorded).
  std::size_t begin_sweep(std::uint64_t base_seed, std::size_t trials,
                          const std::vector<GridPoint>& points);

  /// Record mode: does slice `shard_index` own this cell? Cells are dealt
  /// round-robin over the figure-wide running cell offset, so slices stay
  /// balanced across sweeps of unequal size.
  bool owns_cell(std::size_t sweep, std::size_t point, std::size_t trial,
                 std::size_t trials) const;
  /// Record mode: adds an executed cell to sweep `sweep`.
  void record_cell(std::size_t sweep, std::size_t point, std::size_t trial,
                   const TrialOutcome& outcome);

  /// Replay mode: the merged cells of sweep `sweep` (full coverage,
  /// validated at merge time).
  const std::vector<ShardCell>& replay_cells(std::size_t sweep) const;

  const ShardDoc& doc() const { return doc_; }

 private:
  Mode mode_ = Mode::kOff;
  ShardDoc doc_;
  /// Figure-wide cell offset of each registered sweep (record mode).
  std::vector<std::size_t> sweep_offsets_;
  std::size_t next_offset_ = 0;
};

}  // namespace fba::exp
