#include "exp/stats.h"

#include <algorithm>
#include <cmath>

namespace fba::exp {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SummaryStats summarize_sample(std::vector<double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = quantile_sorted(values, 0.50);
  s.p90 = quantile_sorted(values, 0.90);
  s.p99 = quantile_sorted(values, 0.99);

  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() >= 2) {
    double sq = 0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(values.size()));
  }
  return s;
}

}  // namespace fba::exp
