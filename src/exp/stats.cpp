#include "exp/stats.h"

#include <algorithm>
#include <cmath>

namespace fba::exp {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SummaryStats summarize_sample(std::vector<double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = quantile_sorted(values, 0.50);
  s.p90 = quantile_sorted(values, 0.90);
  s.p99 = quantile_sorted(values, 0.99);
  s.p999 = quantile_sorted(values, 0.999);

  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() >= 2) {
    double sq = 0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(values.size()));
  }
  return s;
}

// ----- StreamingStats --------------------------------------------------------

std::size_t StreamingStats::bucket_of(double v) {
  if (!(v > 0)) return 0;  // zero, negatives, NaN: the underflow bin.
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant ∈ [0.5, 1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;
  auto sub = static_cast<std::size_t>((mant - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // mant == nextafter(1, 0)
  return 1 + static_cast<std::size_t>(exp - 1 - kMinExp) * kSubBuckets + sub;
}

double StreamingStats::bucket_lo(std::size_t b) {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return std::ldexp(0.5, kMaxExp + 1);
  const std::size_t i = b - 1;
  const int exp = kMinExp + 1 + static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<double>(i % kSubBuckets);
  return std::ldexp(0.5 + sub / (2 * kSubBuckets), exp);
}

double StreamingStats::bucket_hi(std::size_t b) {
  if (b == 0) return std::ldexp(0.5, kMinExp + 1);
  if (b >= kBuckets - 1) return std::ldexp(0.5, kMaxExp + 1);
  return bucket_lo(b + 1);
}

void StreamingStats::add(double v) {
  buckets_[bucket_of(v)] += 1;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  count_ += 1;
  sum_ += v;
  sum_sq_ += v * v;
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double StreamingStats::stddev() const {
  if (count_ < 2) return 0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  // Guard the catastrophic-cancellation case (all-equal samples) at 0.
  const double var = std::max(0.0, (sum_sq_ - n * m * m) / (n - 1));
  return std::sqrt(var);
}

double StreamingStats::quantile(double q) const {
  if (count_ == 0) return 0;
  if (count_ == 1) return min_;
  q = std::clamp(q, 0.0, 1.0);
  // Rank convention matches quantile_sorted: q spans [first, last] sample.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const auto first = static_cast<double>(cum);
    cum += buckets_[b];
    if (rank < static_cast<double>(cum) || cum == count_) {
      const double frac =
          (rank - first + 0.5) / static_cast<double>(buckets_[b]);
      const double lo = bucket_lo(b);
      const double hi = bucket_hi(b);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;  // unreachable: the loop always lands a bucket.
}

SummaryStats StreamingStats::summary() const {
  SummaryStats s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  s.p999 = quantile(0.999);
  if (count_ >= 2) {
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(count_));
  }
  return s;
}

}  // namespace fba::exp
