// Summary statistics for multi-trial experiment results.
//
// The paper's headline claims (O(log n / log log n) async decision time,
// O(1) expected sync rounds) are statements about distributions, so the
// experiment runner reports distributional summaries — mean, median, tail
// quantiles — plus a 95% confidence interval on the mean so sweeps can say
// whether two configurations actually differ.
#pragma once

#include <cstddef>
#include <vector>

namespace fba::exp {

/// Distribution summary over a sample of doubles. All fields are derived
/// deterministically from the sample values (no RNG), so two runs that
/// produce the same samples in the same order produce bit-identical stats.
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator).
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  /// Half-width of the normal-approximation 95% CI on the mean
  /// (1.96 * stddev / sqrt(count)); 0 for samples of size < 2.
  double ci95 = 0;

  double ci_lo() const { return mean - ci95; }
  double ci_hi() const { return mean + ci95; }
};

/// Quantile by linear interpolation between order statistics; `sorted` must
/// be ascending and non-empty, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Summarizes a sample (copied and sorted internally; input order does not
/// affect the result).
SummaryStats summarize_sample(std::vector<double> values);

}  // namespace fba::exp
