// Summary statistics for multi-trial experiment results.
//
// The paper's headline claims (O(log n / log log n) async decision time,
// O(1) expected sync rounds) are statements about distributions, so the
// experiment runner reports distributional summaries — mean, median, tail
// quantiles — plus a 95% confidence interval on the mean so sweeps can say
// whether two configurations actually differ.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fba::exp {

/// Distribution summary over a sample of doubles. All fields are derived
/// deterministically from the sample values (no RNG), so two runs that
/// produce the same samples in the same order produce bit-identical stats.
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator).
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  /// Deep-tail quantile for service-mode latency streams (schema v3).
  /// Deliberately OUTSIDE Aggregate::fingerprint()'s hash_stats so the
  /// pinned golden fingerprints predate it and stay valid.
  double p999 = 0;
  /// Half-width of the normal-approximation 95% CI on the mean
  /// (1.96 * stddev / sqrt(count)); 0 for samples of size < 2.
  double ci95 = 0;

  double ci_lo() const { return mean - ci95; }
  double ci_hi() const { return mean + ci95; }
};

/// Quantile by linear interpolation between order statistics; `sorted` must
/// be ascending and non-empty, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Summarizes a sample (copied and sorted internally; input order does not
/// affect the result).
SummaryStats summarize_sample(std::vector<double> values);

/// Streaming distribution summary over an unbounded sample stream, in O(1)
/// memory: a fixed-bucket log-scale histogram (for p50/p90/p99/p99.9) plus
/// exact running moments and extrema (for mean/stddev/min/max/ci95).
///
/// The service pipeline (exp/service.h) folds millions of per-instance and
/// per-node latencies through this without storing samples. Bucketing uses
/// std::frexp — exact floating-point arithmetic, so bucket assignment is
/// bit-identical across platforms (std::log-based bucketing would tie the
/// golden fingerprints to libm rounding). kSubBuckets = 16 sub-buckets per
/// octave bounds the relative quantile error at ~1/(2*16) ≈ 3%; the exact
/// min/max clamp the tails.
///
/// Determinism: bucket counts are order-independent; the double moments
/// (sum, sum of squares) are folded in add() call order, so a fixed-order
/// reduction produces bit-identical summaries at any worker count — the
/// same contract Aggregate has.
class StreamingStats {
 public:
  static constexpr int kMinExp = -32;      ///< underflow bin below 2^-32.
  static constexpr int kMaxExp = 32;       ///< overflow bin at/above 2^32.
  static constexpr int kSubBuckets = 16;   ///< per octave (~6% bucket width).
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void add(double v);
  /// Folds `other` into this (bucket counts summed, moments added in this
  /// fixed order). Used by the service reducer's per-chunk fold.
  void merge(const StreamingStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double total() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const;
  double stddev() const;  ///< sample stddev (n-1 denominator), as SummaryStats.

  /// Histogram quantile: cumulative bucket counts with linear interpolation
  /// inside the landing bucket, clamped to the exact [min, max]. Relative
  /// error is bounded by the bucket width (~6%).
  double quantile(double q) const;

  /// The SummaryStats this stream is a constant-memory stand-in for:
  /// count/mean/stddev/min/max/ci95 exact, quantiles from the histogram.
  SummaryStats summary() const;

  /// Raw state for fingerprinting (exp::ServiceStats::fingerprint hashes the
  /// bucket counts and the bit patterns of the moments).
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  double sum_squares() const { return sum_sq_; }

 private:
  static std::size_t bucket_of(double v);
  static double bucket_lo(std::size_t b);
  static double bucket_hi(std::size_t b);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace fba::exp
