#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "exp/arena.h"
#include "exp/scenario.h"
#include "support/siphash.h"
#include "support/types.h"

namespace fba::exp {

std::size_t default_threads() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index) {
  const std::uint64_t h = siphash_words(
      SipKey{base_seed, 0x73776565702d3935ull}, {point_index, trial_index});
  // Seed 0 is a legal Rng seed but keep it out of the derived range so a
  // sweep never collides with hand-picked "seed 0" debugging runs.
  return h == 0 ? 1 : h;
}

void run_indexed(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  FBA_REQUIRE(static_cast<bool>(fn), "run_indexed needs a task function");
  run_indexed_workers(count, threads,
                      [&fn](std::size_t, std::size_t i) { fn(i); });
}

void run_indexed_workers(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  FBA_REQUIRE(static_cast<bool>(fn), "run_indexed needs a task function");
  threads = std::clamp<std::size_t>(threads, 1, count == 0 ? 1 : count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> abort{false};

  auto worker = [&](std::size_t worker_id) {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(worker_id, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker, i);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

SweepTiming& mutable_process_timing() {
  static SweepTiming totals;
  return totals;
}

}  // namespace

const SweepTiming& process_timing() { return mutable_process_timing(); }

void accumulate_process_timing(const SweepTiming& t) {
  SweepTiming& totals = mutable_process_timing();
  totals.available = true;
  totals.setup_seconds += t.setup_seconds;
  totals.run_seconds += t.run_seconds;
  totals.trials += t.trials;
}

std::string format_timing(const SweepTiming& t) {
  if (!t.available || t.trials == 0) return {};
  const double total = t.setup_seconds + t.run_seconds;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%llu trials: setup %.2fs (%.0f%%) | run %.2fs (%.0f%%) |"
                " %.2f ms/trial",
                static_cast<unsigned long long>(t.trials), t.setup_seconds,
                total > 0 ? 100.0 * t.setup_seconds / total : 0.0,
                t.run_seconds,
                total > 0 ? 100.0 * t.run_seconds / total : 0.0,
                1e3 * total / static_cast<double>(t.trials));
  return line;
}

Sweep::Sweep(aer::AerConfig base, Grid grid, std::size_t trials)
    : base_(base),
      grid_(std::move(grid)),
      trials_(trials),
      threads_(default_threads()),
      arena_trial_([](const aer::AerConfig& cfg, const GridPoint& point,
                      TrialArena& arena, TrialOutcome& out) {
        run_aer_trial(cfg, point, arena, out);
      }) {
  FBA_REQUIRE(trials_ > 0, "a sweep needs at least one trial per point");
}

Sweep& Sweep::set_threads(std::size_t threads) {
  threads_ = std::max<std::size_t>(1, threads);
  return *this;
}

Sweep& Sweep::set_trial(Trial trial) {
  FBA_REQUIRE(static_cast<bool>(trial), "null trial function");
  trial_ = std::move(trial);
  arena_trial_ = nullptr;
  return *this;
}

Sweep& Sweep::set_arena_trial(ArenaTrial trial) {
  FBA_REQUIRE(static_cast<bool>(trial), "null trial function");
  arena_trial_ = std::move(trial);
  trial_ = nullptr;
  return *this;
}

Sweep& Sweep::set_progress(Progress progress) {
  progress_ = std::move(progress);
  return *this;
}

std::size_t Sweep::total_trials() const {
  return grid_.points() * trials_;
}

std::vector<PointResult> Sweep::run() const {
  const std::vector<GridPoint> points = expand_grid(base_, grid_);

  // Slot matrix written by the workers: task index -> fixed slot, so the
  // final reduction never sees scheduling order.
  std::vector<std::vector<TrialOutcome>> slots(points.size());
  for (auto& point_slots : slots) point_slots.resize(trials_);

  const std::size_t total = points.size() * trials_;
  std::mutex progress_mutex;
  std::size_t completed = 0;

  // Per-worker trial arenas (arena path): a worker runs its trials serially,
  // so its arena's world/engine/actor storage is reused back to back.
  // Results never depend on which worker (or arena history) ran a trial —
  // the cross-thread-count fingerprint tests pin that.
  const std::size_t workers =
      std::clamp<std::size_t>(threads_, 1, total == 0 ? 1 : total);
  std::vector<std::unique_ptr<TrialArena>> arenas;
  if (arena_trial_) {
    arenas.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      arenas.push_back(std::make_unique<TrialArena>());
    }
  }

  run_indexed_workers(total, threads_, [&](std::size_t worker,
                                           std::size_t task) {
    const std::size_t point_idx = task / trials_;
    const std::size_t trial_idx = task % trials_;
    const GridPoint& point = points[point_idx];
    aer::AerConfig config = point.apply(base_);
    config.seed = trial_seed(base_.seed, point.index, trial_idx);
    TrialOutcome& slot = slots[point_idx][trial_idx];
    if (arena_trial_) {
      arena_trial_(config, point, *arenas[worker], slot);
      slot.seed = config.seed;
    } else {
      TrialOutcome outcome = trial_(config, point);
      outcome.seed = config.seed;
      slot = std::move(outcome);
    }
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress_(++completed, total);
    }
  });

  timing_ = SweepTiming{};
  if (arena_trial_) {
    timing_.available = true;
    for (const auto& arena : arenas) {
      timing_.setup_seconds += arena->timing.setup_seconds;
      timing_.run_seconds += arena->timing.run_seconds;
      timing_.trials += arena->timing.trials;
    }
    SweepTiming& totals = mutable_process_timing();
    totals.available = true;
    totals.setup_seconds += timing_.setup_seconds;
    totals.run_seconds += timing_.run_seconds;
    totals.trials += timing_.trials;
  }

  std::vector<PointResult> results;
  results.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult r;
    r.point = points[p];
    r.aggregate = aggregate_outcomes(slots[p]);
    r.outcomes = std::move(slots[p]);
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace fba::exp
