#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "exp/arena.h"
#include "exp/scenario.h"
#include "exp/shard.h"
#include "support/siphash.h"
#include "support/types.h"

namespace fba::exp {

std::size_t default_threads() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index) {
  const std::uint64_t h = siphash_words(
      SipKey{base_seed, 0x73776565702d3935ull}, {point_index, trial_index});
  // Seed 0 is a legal Rng seed but keep it out of the derived range so a
  // sweep never collides with hand-picked "seed 0" debugging runs.
  return h == 0 ? 1 : h;
}

void run_indexed(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  FBA_REQUIRE(static_cast<bool>(fn), "run_indexed needs a task function");
  run_indexed_workers(count, threads,
                      [&fn](std::size_t, std::size_t i) { fn(i); });
}

void run_indexed_workers(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  FBA_REQUIRE(static_cast<bool>(fn), "run_indexed needs a task function");
  threads = std::clamp<std::size_t>(threads, 1, count == 0 ? 1 : count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> abort{false};

  auto worker = [&](std::size_t worker_id) {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(worker_id, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker, i);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

SweepTiming& mutable_process_timing() {
  static SweepTiming totals;
  return totals;
}

}  // namespace

const SweepTiming& process_timing() { return mutable_process_timing(); }

void accumulate_process_timing(const SweepTiming& t) {
  SweepTiming& totals = mutable_process_timing();
  totals.available = true;
  totals.setup_seconds += t.setup_seconds;
  totals.run_seconds += t.run_seconds;
  totals.trials += t.trials;
}

std::string format_timing(const SweepTiming& t) {
  if (!t.available || t.trials == 0) return {};
  const double total = t.setup_seconds + t.run_seconds;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%llu trials: setup %.2fs (%.0f%%) | run %.2fs (%.0f%%) |"
                " %.2f ms/trial",
                static_cast<unsigned long long>(t.trials), t.setup_seconds,
                total > 0 ? 100.0 * t.setup_seconds / total : 0.0,
                t.run_seconds,
                total > 0 ? 100.0 * t.run_seconds / total : 0.0,
                1e3 * total / static_cast<double>(t.trials));
  std::string out = line;
  for (std::size_t w = 0; w < t.worker_shares.size(); ++w) {
    const SweepTiming::WorkerShare& share = t.worker_shares[w];
    std::snprintf(line, sizeof(line),
                  "\n  proc worker %zu: %llu trials | setup %.2fs |"
                  " run %.2fs",
                  w, static_cast<unsigned long long>(share.trials),
                  share.setup_seconds, share.run_seconds);
    out += line;
  }
  return out;
}

Sweep::Sweep(aer::AerConfig base, Grid grid, std::size_t trials)
    : base_(base),
      grid_(std::move(grid)),
      trials_(trials),
      threads_(default_threads()),
      arena_trial_([](const aer::AerConfig& cfg, const GridPoint& point,
                      TrialArena& arena, TrialOutcome& out) {
        run_aer_trial(cfg, point, arena, out);
      }) {
  FBA_REQUIRE(trials_ > 0, "a sweep needs at least one trial per point");
}

Sweep& Sweep::set_threads(std::size_t threads) {
  threads_ = std::max<std::size_t>(1, threads);
  return *this;
}

Sweep& Sweep::set_procs(std::size_t procs) {
  procs_ = std::max<std::size_t>(1, procs);
  return *this;
}

Sweep& Sweep::set_proc_options(ProcOptions options) {
  proc_options_ = options;
  return *this;
}

Sweep& Sweep::set_trial(Trial trial) {
  FBA_REQUIRE(static_cast<bool>(trial), "null trial function");
  trial_ = std::move(trial);
  arena_trial_ = nullptr;
  return *this;
}

Sweep& Sweep::set_arena_trial(ArenaTrial trial) {
  FBA_REQUIRE(static_cast<bool>(trial), "null trial function");
  arena_trial_ = std::move(trial);
  trial_ = nullptr;
  return *this;
}

Sweep& Sweep::set_progress(Progress progress) {
  progress_ = std::move(progress);
  return *this;
}

std::size_t Sweep::total_trials() const {
  return grid_.points() * trials_;
}

namespace {

/// One cell of a sweep's (point, trial) matrix, in the owned-cell index
/// space the thread pool and the process pool both deal over.
struct SweepCell {
  std::size_t point = 0;
  std::size_t trial = 0;
};

}  // namespace

std::vector<PointResult> Sweep::run() const {
  const std::vector<GridPoint> points = expand_grid(base_, grid_);

  ShardIo& shard_io = ShardIo::instance();
  const bool record = shard_io.mode() == ShardIo::Mode::kRecord;
  const bool replay = shard_io.mode() == ShardIo::Mode::kReplay;
  std::size_t sweep_id = 0;
  if (record || replay) {
    sweep_id = shard_io.begin_sweep(base_.seed, trials_, points);
  }

  // Slot matrix written by the workers: task index -> fixed slot, so the
  // final reduction never sees scheduling order.
  std::vector<std::vector<TrialOutcome>> slots(points.size());
  for (auto& point_slots : slots) point_slots.resize(trials_);

  // Which cells hold a real outcome: everything in replay mode, the shard's
  // slice in record mode, and in an interrupted process run only the cells
  // that drained — points with gaps are dropped from the result.
  std::vector<char> cell_done(points.size() * trials_, replay ? 1 : 0);

  timing_ = SweepTiming{};
  proc_stats_ = ProcStats{};

  if (replay) {
    for (const ShardCell& cell : shard_io.replay_cells(sweep_id)) {
      slots[cell.point][cell.trial] = cell.outcome;
    }
  } else {
    // The cells this run executes, in (point, trial) reduction order.
    std::vector<SweepCell> owned;
    owned.reserve(points.size() * trials_);
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (std::size_t t = 0; t < trials_; ++t) {
        if (!record || shard_io.owns_cell(sweep_id, p, t, trials_)) {
          owned.push_back(SweepCell{p, t});
        }
      }
    }

    const auto run_cell = [&](const SweepCell& cell, TrialArena* arena,
                              TrialOutcome& out) {
      const GridPoint& point = points[cell.point];
      aer::AerConfig config = point.apply(base_);
      config.seed = trial_seed(base_.seed, point.index, cell.trial);
      if (arena_trial_) {
        arena_trial_(config, point, *arena, out);
      } else {
        out = trial_(config, point);
      }
      out.seed = config.seed;
    };

    if (procs_ <= 1) {
      const std::size_t total = owned.size();
      std::mutex progress_mutex;
      std::size_t completed = 0;

      // Per-worker trial arenas (arena path): a worker runs its trials
      // serially, so its arena's world/engine/actor storage is reused back
      // to back. Results never depend on which worker (or arena history)
      // ran a trial — the cross-thread-count fingerprint tests pin that.
      const std::size_t workers =
          std::clamp<std::size_t>(threads_, 1, total == 0 ? 1 : total);
      std::vector<std::unique_ptr<TrialArena>> arenas;
      if (arena_trial_) {
        arenas.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
          arenas.push_back(std::make_unique<TrialArena>());
        }
      }

      run_indexed_workers(total, threads_, [&](std::size_t worker,
                                               std::size_t task) {
        const SweepCell& cell = owned[task];
        run_cell(cell, arena_trial_ ? arenas[worker].get() : nullptr,
                 slots[cell.point][cell.trial]);
        if (progress_) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          progress_(++completed, total);
        }
      });
      for (const SweepCell& cell : owned) {
        cell_done[cell.point * trials_ + cell.trial] = 1;
      }

      if (arena_trial_) {
        timing_.available = true;
        for (const auto& arena : arenas) {
          timing_.setup_seconds += arena->timing.setup_seconds;
          timing_.run_seconds += arena->timing.run_seconds;
          timing_.trials += arena->timing.trials;
        }
      }
    } else {
      // Process mode: deal contiguous owned-cell ranges to forked workers;
      // each payload lands in the same slots a thread worker would have
      // written, so the fixed-order reduction below is untouched.
      const std::size_t total = owned.size();
      const std::size_t chunk =
          std::max<std::size_t>(1, total / (procs_ * 4));
      std::vector<ProcTask> tasks;
      for (std::size_t b = 0; b < total; b += chunk) {
        tasks.push_back(ProcTask{b, std::min(b + chunk, total)});
      }

      const ProcCompute compute = [&](std::size_t begin, std::size_t end,
                                      const std::function<void()>& beat) {
        ShardPayload payload;
        payload.cells.reserve(end - begin);
        std::unique_ptr<TrialArena> arena;
        if (arena_trial_) arena = std::make_unique<TrialArena>();
        for (std::size_t i = begin; i < end; ++i) {
          ShardCell cell;
          cell.point = owned[i].point;
          cell.trial = owned[i].trial;
          run_cell(owned[i], arena.get(), cell.outcome);
          payload.cells.push_back(std::move(cell));
          beat();
        }
        if (arena) {
          payload.setup_seconds = arena->timing.setup_seconds;
          payload.run_seconds = arena->timing.run_seconds;
          payload.timed_trials = arena->timing.trials;
        } else {
          payload.timed_trials = end - begin;
        }
        return payload.to_json();
      };

      timing_.worker_shares.assign(std::min(procs_, tasks.size()),
                                   SweepTiming::WorkerShare{});
      std::size_t completed = 0;
      const ProcAccept accept = [&](std::size_t worker, std::size_t begin,
                                    std::size_t end,
                                    const std::string& body) {
        const ShardPayload payload = ShardPayload::from_json(body);
        FBA_REQUIRE(payload.cells.size() == end - begin,
                    "worker returned " +
                        std::to_string(payload.cells.size()) +
                        " cells for a task of " +
                        std::to_string(end - begin));
        for (std::size_t k = 0; k < payload.cells.size(); ++k) {
          const ShardCell& cell = payload.cells[k];
          FBA_REQUIRE(cell.point == owned[begin + k].point &&
                          cell.trial == owned[begin + k].trial,
                      "worker returned cells for the wrong task range");
          slots[cell.point][cell.trial] = cell.outcome;
          cell_done[cell.point * trials_ + cell.trial] = 1;
        }
        SweepTiming::WorkerShare& share = timing_.worker_shares[worker];
        share.trials += payload.timed_trials;
        share.setup_seconds += payload.setup_seconds;
        share.run_seconds += payload.run_seconds;
        completed += end - begin;
        if (progress_) progress_(completed, total);
      };

      proc_stats_ =
          run_proc_tasks(tasks, procs_, proc_options_, compute, accept);

      if (arena_trial_) {
        timing_.available = true;
        for (const SweepTiming::WorkerShare& share : timing_.worker_shares) {
          timing_.setup_seconds += share.setup_seconds;
          timing_.run_seconds += share.run_seconds;
          timing_.trials += share.trials;
        }
      }
    }

    if (record) {
      for (const SweepCell& cell : owned) {
        if (cell_done[cell.point * trials_ + cell.trial]) {
          shard_io.record_cell(sweep_id, cell.point, cell.trial,
                               slots[cell.point][cell.trial]);
        }
      }
    }
  }

  if (timing_.available) {
    SweepTiming& totals = mutable_process_timing();
    totals.available = true;
    totals.setup_seconds += timing_.setup_seconds;
    totals.run_seconds += timing_.run_seconds;
    totals.trials += timing_.trials;
  }

  std::vector<PointResult> results;
  results.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    bool complete = true;
    for (std::size_t t = 0; t < trials_; ++t) {
      if (!cell_done[p * trials_ + t]) complete = false;
    }
    if (!complete) continue;  // shard slice or interrupted: drop the point
    PointResult r;
    r.point = points[p];
    r.aggregate = aggregate_outcomes(slots[p]);
    r.outcomes = std::move(slots[p]);
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace fba::exp
