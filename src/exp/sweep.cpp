#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "exp/scenario.h"
#include "support/siphash.h"
#include "support/types.h"

namespace fba::exp {

std::size_t default_threads() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index) {
  const std::uint64_t h = siphash_words(
      SipKey{base_seed, 0x73776565702d3935ull}, {point_index, trial_index});
  // Seed 0 is a legal Rng seed but keep it out of the derived range so a
  // sweep never collides with hand-picked "seed 0" debugging runs.
  return h == 0 ? 1 : h;
}

void run_indexed(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  FBA_REQUIRE(static_cast<bool>(fn), "run_indexed needs a task function");
  threads = std::clamp<std::size_t>(threads, 1, count == 0 ? 1 : count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> abort{false};

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

Sweep::Sweep(aer::AerConfig base, Grid grid, std::size_t trials)
    : base_(base),
      grid_(std::move(grid)),
      trials_(trials),
      threads_(default_threads()),
      trial_(run_aer_trial) {
  FBA_REQUIRE(trials_ > 0, "a sweep needs at least one trial per point");
}

Sweep& Sweep::set_threads(std::size_t threads) {
  threads_ = std::max<std::size_t>(1, threads);
  return *this;
}

Sweep& Sweep::set_trial(Trial trial) {
  FBA_REQUIRE(static_cast<bool>(trial), "null trial function");
  trial_ = std::move(trial);
  return *this;
}

Sweep& Sweep::set_progress(Progress progress) {
  progress_ = std::move(progress);
  return *this;
}

std::size_t Sweep::total_trials() const {
  return grid_.points() * trials_;
}

std::vector<PointResult> Sweep::run() const {
  const std::vector<GridPoint> points = expand_grid(base_, grid_);

  // Slot matrix written by the workers: task index -> fixed slot, so the
  // final reduction never sees scheduling order.
  std::vector<std::vector<TrialOutcome>> slots(points.size());
  for (auto& point_slots : slots) point_slots.resize(trials_);

  const std::size_t total = points.size() * trials_;
  std::mutex progress_mutex;
  std::size_t completed = 0;

  run_indexed(total, threads_, [&](std::size_t task) {
    const std::size_t point_idx = task / trials_;
    const std::size_t trial_idx = task % trials_;
    const GridPoint& point = points[point_idx];
    aer::AerConfig config = point.apply(base_);
    config.seed = trial_seed(base_.seed, point.index, trial_idx);
    TrialOutcome outcome = trial_(config, point);
    outcome.seed = config.seed;
    slots[point_idx][trial_idx] = std::move(outcome);
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress_(++completed, total);
    }
  });

  std::vector<PointResult> results;
  results.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult r;
    r.point = points[p];
    r.aggregate = aggregate_outcomes(slots[p]);
    r.outcomes = std::move(slots[p]);
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace fba::exp
