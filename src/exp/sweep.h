// Multi-threaded experiment runner.
//
// Sweep takes a base AerConfig, a parameter Grid and a trial count, fans
// (point, trial) tasks across a std::thread pool, and reduces each point's
// trial outcomes into an Aggregate. Reproducibility contract: every trial
// runs with a seed derived purely from (base seed, point index, trial
// index), and the reduction folds outcomes in trial-index order — so the
// result is bit-identical whether the sweep runs on 1 thread or N, and
// regardless of how the OS interleaves the workers.
//
//   exp::Sweep sweep(base, {.ns = {128, 256}, .models = {Model::kAsync}},
//                    /*trials=*/100);
//   sweep.set_threads(8);
//   for (const exp::PointResult& r : sweep.run())
//     printf("%s: p99 time %.2f\n", r.point.label().c_str(),
//            r.aggregate.completion_time.p99);
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/aggregate.h"
#include "exp/grid.h"
#include "exp/procpool.h"

namespace fba::exp {

/// Threads to use when the caller does not say: hardware concurrency,
/// clamped to [1, 16].
std::size_t default_threads();

/// Deterministic per-trial seed: a keyed hash of (base_seed, point, trial),
/// so neighbouring trials get uncorrelated streams and the mapping never
/// depends on scheduling.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index);

/// Runs fn(0..count-1) across `threads` workers pulling indices from a
/// shared counter. Blocks until every index completed. The first exception
/// thrown by any task is rethrown on the calling thread (remaining workers
/// finish their current task and stop picking up new ones).
void run_indexed(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn);

/// Worker-aware variant: fn(worker, index) with worker in [0, threads) —
/// what per-worker trial arenas key on (a worker runs its tasks serially).
void run_indexed_workers(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// One grid point's reduced result plus the raw per-trial outcomes (in
/// trial order) for benches that render distributions.
struct PointResult {
  GridPoint point;
  Aggregate aggregate;
  std::vector<TrialOutcome> outcomes;
};

class TrialArena;

/// Accumulated setup-vs-run wall-time split of a sweep's trials (available
/// when the sweep ran arena trials; fba_sim / fba_repro --timing print it).
struct SweepTiming {
  /// One forked worker's slice of a process-mode sweep (trial count plus
  /// its setup/run seconds), indexed by worker in fork order.
  struct WorkerShare {
    std::uint64_t trials = 0;
    double setup_seconds = 0;
    double run_seconds = 0;
  };

  double setup_seconds = 0;
  double run_seconds = 0;
  std::uint64_t trials = 0;
  bool available = false;
  /// Per-worker shares of the last process-mode run; empty in thread mode.
  /// Not folded into process_timing() (worker counts differ across sweeps).
  std::vector<WorkerShare> worker_shares;
};

/// Process-wide accumulation across every Sweep::run() so far (a figure
/// reproduction runs several sweeps; --timing reports their sum).
const SweepTiming& process_timing();

/// Folds externally-run arena-trial timing into process_timing() — for
/// drivers (the scale figure) that loop trials by hand instead of through
/// Sweep::run().
void accumulate_process_timing(const SweepTiming& t);

/// The one-line rendering fba_sim / fba_repro print for --timing:
/// "N trials: setup Xs (P%) | run Ys (Q%) | Z ms/trial".
/// Empty when `t` holds no arena-trial data.
std::string format_timing(const SweepTiming& t);

class Sweep {
 public:
  /// A trial maps (config-with-derived-seed, grid point) to its outcome.
  /// It must be self-contained: trials run concurrently, one world each.
  using Trial =
      std::function<TrialOutcome(const aer::AerConfig&, const GridPoint&)>;

  /// Arena-aware trial: reuses the worker's TrialArena (exp/arena.h) and
  /// writes the outcome in place. The default trial (exp::run_aer_trial's
  /// arena overload) has this shape; custom trials may use either form.
  using ArenaTrial = std::function<void(const aer::AerConfig&,
                                        const GridPoint&, TrialArena&,
                                        TrialOutcome&)>;

  /// Invoked after every finished trial with (trials completed so far,
  /// total trials). Calls are serialized (one at a time) but come from
  /// worker threads; keep the callback cheap. Progress reporting does not
  /// affect the result — the reduction stays bit-identical at any thread
  /// count.
  using Progress = std::function<void(std::size_t, std::size_t)>;

  /// `trials` > 0 runs of every grid point. The default trial runner is
  /// exp::run_aer_trial (the paper's protocol under the point's attack).
  Sweep(aer::AerConfig base, Grid grid, std::size_t trials);

  Sweep& set_threads(std::size_t threads);
  /// procs > 1 switches run() to the forked-worker pool (exp/procpool.h):
  /// the parent deals (point, trial-range) tasks to N processes and folds
  /// the returned shard payloads into the same fixed-order reduction, so
  /// the result stays byte-identical to thread mode and procs=1.
  Sweep& set_procs(std::size_t procs);
  /// Heartbeat-timeout / retry knobs for process mode (tests shorten them).
  Sweep& set_proc_options(ProcOptions options);
  /// Installs a legacy self-contained trial (disables the arena path).
  Sweep& set_trial(Trial trial);
  /// Installs an arena-aware trial (the default runner is one).
  Sweep& set_arena_trial(ArenaTrial trial);
  Sweep& set_progress(Progress progress);

  std::size_t trials() const { return trials_; }
  std::size_t threads() const { return threads_; }
  std::size_t procs() const { return procs_; }
  std::size_t total_trials() const;

  /// What the last process-mode run() went through (crashes, timeouts,
  /// re-deals, interrupt). Zeroed by thread-mode runs.
  const ProcStats& proc_stats() const { return proc_stats_; }

  /// Setup-vs-run split of the last run() (available iff it ran arena
  /// trials).
  const SweepTiming& timing() const { return timing_; }

  /// Executes the sweep. Points appear in expansion order; outcomes within
  /// a point in trial order. Under an active ShardIo (exp/shard.h) the
  /// sweep records/replays its slice instead of running everything; after
  /// a SIGINT-drained process run only fully-complete points are returned
  /// (proc_stats().interrupted tells the caller the report is partial).
  std::vector<PointResult> run() const;

 private:
  aer::AerConfig base_;
  Grid grid_;
  std::size_t trials_;
  std::size_t threads_;
  std::size_t procs_ = 1;
  ProcOptions proc_options_;
  Trial trial_;
  ArenaTrial arena_trial_;
  Progress progress_;
  mutable SweepTiming timing_;
  mutable ProcStats proc_stats_;
};

}  // namespace fba::exp
