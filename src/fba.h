// Umbrella header: the full public API of the fba library.
//
//   fba::aer     — AER, the paper's almost-everywhere to everywhere protocol
//   fba::ae      — KSSV06-style almost-everywhere agreement tournament
//   fba::ba      — the composed Byzantine Agreement protocol
//   fba::baseline— FLOOD-ALL and SQRT-SAMPLE comparators
//   fba::sampler — the I/H/J sampler machinery (Section 2.2)
//   fba::sim     — the simulated network engines (sync / async)
//   fba::adv     — the Byzantine adversary and its strategy gallery
//   fba::exp     — the multi-threaded multi-trial experiment runner
//
// Quickstart (see examples/quickstart.cpp):
//
//   fba::ba::BaConfig config;
//   config.n = 512;
//   auto report = fba::ba::run_ba(config);
//   // report.agreement, report.total_time, report.amortized_bits ...
#pragma once

#include "adversary/adversary.h"
#include "adversary/strategies.h"
#include "ae/committee.h"
#include "ae/kssv.h"
#include "ae/phase_king.h"
#include "aer/config.h"
#include "aer/messages.h"
#include "aer/node.h"
#include "aer/protocol.h"
#include "aer/runner.h"
#include "aer/soa.h"
#include "ba/ba.h"
#include "baseline/flood.h"
#include "baseline/snowball.h"
#include "baseline/sqrtsample.h"
#include "exp/aggregate.h"
#include "exp/arena.h"
#include "exp/grid.h"
#include "exp/procpool.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/service.h"
#include "exp/shard.h"
#include "exp/stats.h"
#include "exp/sweep.h"
#include "net/async_engine.h"
#include "net/event_queue.h"
#include "net/message.h"
#include "net/sync_engine.h"
#include "sampler/hash_sampler.h"
#include "sampler/properties.h"
#include "sampler/sampler.h"
#include "sampler/tables.h"
#include "support/bitstring.h"
#include "support/flat_counter.h"
#include "support/flat_map.h"
#include "support/histogram.h"
#include "support/intern.h"
#include "support/mem.h"
#include "support/pool.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/permutation.h"
#include "support/random.h"
#include "support/siphash.h"
#include "support/table.h"
#include "support/types.h"
#include "svc/pipeline.h"
#include "svc/queue.h"
