#include "net/async_engine.h"

#include <algorithm>

#include "adversary/adversary.h"

namespace fba::sim {

AsyncEngine::AsyncEngine(const AsyncConfig& config)
    : EngineBase(config.n, config.seed),
      config_(config),
      queue_(EventQueue::Mode::kHeap) {
  queue_.reserve(config.n * 4);
}

void AsyncEngine::reset(const AsyncConfig& config) {
  reset_base(config.n, config.seed);
  config_ = config;
  current_time_ = 0;
  queue_.clear();
  queue_.reserve(config.n * 4);
  beyond_horizon_ = 0;
}

void AsyncEngine::queue_envelope(const Envelope& env, RecoveryTag rec) {
  SimTime delay;
  if (strategy_ != nullptr) {
    adv::AdvContext actx(*this);
    delay = strategy_->choose_delay(actx, env);
    // Reliability: the adversary cannot hold a message past the bound, nor
    // deliver into the past.
    delay = std::clamp(delay, 1e-9, 1.0);
  } else {
    // Same reliability clamp as the adversary path: the null strategy must
    // honor the normalized-delay model too (uniform_positive() is already in
    // (0, 1], but the clamp keeps both paths identical if that ever drifts).
    delay = std::clamp(strategy_rng_.uniform_positive(), 1e-9, 1.0);
  }
  // Fault-layer jitter stacks on top of the adversary's delay and may
  // exceed the normalized 1.0 bound — faulty links break the reliability
  // assumption by design.
  const SimTime at = current_time_ + delay + env.fault_delay;
  if (at > config_.max_time) {  // horizon culling: could never be processed
    ++beyond_horizon_;
    return;
  }
  queue_.push_message(at, 0, env, rec);
}

void AsyncEngine::queue_recovery_timer(double delay, std::uint64_t token) {
  const SimTime at = current_time_ + delay;
  if (at > config_.max_time) {
    ++beyond_horizon_;
    return;
  }
  queue_.push_timer(at, 0, kRecoveryTimerNode, token);
}

void AsyncEngine::queue_timer(NodeId node, double delay, std::uint64_t token) {
  FBA_REQUIRE(delay > 0, "timer delay must be positive");
  const SimTime at = current_time_ + delay;
  if (at > config_.max_time) {
    ++beyond_horizon_;
    return;
  }
  queue_.push_timer(at, 0, node, token);
}

AsyncResult AsyncEngine::run(const std::function<bool()>& done) {
  AsyncResult result;

  strategy_setup();
  for (NodeId id = 0; id < n_; ++id) start_actor(id);

  std::size_t since_check = 0;
  while (!queue_.empty()) {
    if (queue_.next_at() > config_.max_time) break;
    if (++since_check >= config_.done_check_stride) {
      since_check = 0;
      if (done()) {
        result.completed = true;
        break;
      }
    }
    const EventQueue::Event next = queue_.pop();
    current_time_ = next.at;
    const std::uint64_t decisions_before = decisions_reported();
    if (next.is_timer) {
      ++result.timer_fires;
      if (next.timer_node == kRecoveryTimerNode) {
        on_recovery_timeout(next.timer_token);
      } else {
        fire_timer(next.timer_node, next.timer_token);
      }
    } else {
      ++result.deliveries;
      deliver(next.env, next.rec());
    }
    // A delivery that fired a decision callback may have been the last one
    // needed: re-check immediately instead of processing up to
    // done_check_stride - 1 further events, which would overstate the
    // reported completion time.
    if (decisions_reported() != decisions_before && done()) {
      result.completed = true;
      break;
    }
  }

  if (queue_.empty() && beyond_horizon_ == 0) result.quiescent = true;
  if (!result.completed && done()) result.completed = true;
  result.time = current_time_;
  return result;
}

}  // namespace fba::sim
