// Asynchronous event-driven engine: a thin timing policy over EventQueue.
//
// Timing model: the adversary assigns every message a delay in (0, 1] —
// delays are normalized so the maximum is one time unit, the standard
// measure under which asynchronous time complexity is reported. Delivery is
// reliable: every message is eventually delivered (the delay bound enforces
// it). The adversary is inherently rushing here: it observes each send
// before choosing its delay and can have corrupt nodes react immediately.
//
// All pending events (deliveries and timers) share one priority class:
// processing order is (time, push order), FIFO among equal timestamps.
#pragma once

#include <functional>

#include "net/event_queue.h"
#include "net/network.h"

namespace fba::sim {

struct AsyncConfig {
  std::size_t n = 0;
  std::uint64_t seed = 1;
  SimTime max_time = 10000.0;
  /// Messages processed between done-predicate evaluations.
  std::size_t done_check_stride = 64;
};

struct AsyncResult {
  SimTime time = 0;       ///< sim time when the run stopped.
  bool completed = false; ///< the done-predicate fired.
  bool quiescent = false; ///< event queue drained.
  std::uint64_t deliveries = 0;   ///< message deliveries only.
  std::uint64_t timer_fires = 0;  ///< timer callbacks, counted separately.
};

class AsyncEngine : public EngineBase {
 public:
  explicit AsyncEngine(const AsyncConfig& config);

  /// Re-initializes for a fresh run with construction semantics, keeping
  /// the event slab / metrics storage (trial-arena reuse).
  void reset(const AsyncConfig& config);

  double now() const override { return current_time_; }
  /// Pending-event high-water mark since the last reset (memory accounting).
  std::size_t queue_peak() const { return queue_.peak_size(); }

  AsyncResult run(const std::function<bool()>& done);

  /// Timers fire at now + delay; not subject to adversary scheduling.
  void queue_timer(NodeId node, double delay, std::uint64_t token) override;

 private:
  void queue_envelope(const Envelope& env, RecoveryTag rec) override;
  void queue_recovery_timer(double delay, std::uint64_t token) override;
  /// Delays are clamped to (0, 1], so a loss-free round trip takes at most
  /// 2.0 time units; the extra half-unit margin keeps a floor-RTO timer
  /// strictly after any same-instant ack tie.
  double recovery_rto_floor() const override { return 2.5; }

  AsyncConfig config_;
  SimTime current_time_ = 0;
  EventQueue queue_;
  /// Events culled because they would fire after max_time: charged (and the
  /// adversary's delay draw consumed) but never queued. Nonzero culls keep
  /// the run from reporting quiescence it would not otherwise reach.
  std::uint64_t beyond_horizon_ = 0;
};

}  // namespace fba::sim
