// An in-flight message. The simulator stamps the true sender (authenticated
// channels): Byzantine nodes can send arbitrary payloads but cannot forge
// `src`.
#pragma once

#include "net/payload.h"
#include "support/types.h"

namespace fba::sim {

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  PayloadPtr payload;
  double send_time = 0;  ///< round (sync) or sim time (async) when sent.
  std::uint64_t seq = 0; ///< global send sequence, breaks ties deterministically.
};

}  // namespace fba::sim
