// An in-flight message. The simulator stamps the true sender (authenticated
// channels): Byzantine nodes can send arbitrary messages but cannot forge
// `src`. The Message travels by value — queueing an envelope performs no
// heap allocation.
#pragma once

#include "net/message.h"
#include "support/types.h"

namespace fba::sim {

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  Message msg;
  double send_time = 0;  ///< round (sync) or sim time (async) when sent.
  /// Transport metadata stamped by the fault layer (net/fault.h): extra
  /// delivery delay beyond the engine's natural schedule — rounds under the
  /// sync engines, time units under the async engine. Actors ignore it.
  double fault_delay = 0;
};

}  // namespace fba::sim
