// An in-flight message. The simulator stamps the true sender (authenticated
// channels): Byzantine nodes can send arbitrary messages but cannot forge
// `src`. The Message travels by value — queueing an envelope performs no
// heap allocation.
#pragma once

#include "net/message.h"
#include "support/types.h"

namespace fba::sim {

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  Message msg;
  double send_time = 0;  ///< round (sync) or sim time (async) when sent.
  /// Transport metadata stamped by the fault layer (net/fault.h): extra
  /// delivery delay beyond the engine's natural schedule — rounds under the
  /// sync engines, time units under the async engine. Actors ignore it.
  double fault_delay = 0;
};

/// Transport-level retransmit bookkeeping travelling with a queued delivery
/// (net/recovery.h). Not part of Envelope — it is engine metadata, invisible
/// to actors and never charged on the wire (the receiver learns the pair
/// from the ack payload instead). slot1 is a RecoveryState slot index + 1,
/// so the all-zero default means "untracked"; gen disambiguates reuses of
/// the same slot (gen 0 is never issued).
struct RecoveryTag {
  std::uint32_t slot1 = 0;
  std::uint16_t gen = 0;

  bool tracked() const { return slot1 != 0; }
};

}  // namespace fba::sim
