#include "net/event_queue.h"

#include <algorithm>
#include <utility>

namespace fba::sim {

namespace {
constexpr std::size_t kArity = 4;
constexpr std::size_t kInitialRingSlots = 8;
}  // namespace

void EventQueue::reserve(std::size_t n) {
  if (mode_ == Mode::kHeap) heap_.reserve(n);
}

void EventQueue::clear() {
  size_ = 0;
  peak_size_ = 0;
  next_seq_ = 0;
  heap_.clear();
  for (Bucket& bucket : ring_) {
    for (auto& lane : bucket.lanes) lane.clear();  // keeps lane capacity
    bucket.count = 0;
  }
  head_ = 0;
  base_tick_ = 0;
}

void EventQueue::grow_ring(std::size_t min_slots) {
  std::size_t slots = std::max<std::size_t>(ring_.size() * 2,
                                            kInitialRingSlots);
  while (slots < min_slots) slots *= 2;
  std::vector<Bucket> bigger(slots);
  // Re-seat existing buckets at their new positions (tick order preserved;
  // base_tick_ maps to slot 0 of the new ring).
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    bigger[i] = std::move(ring_[(head_ + i) % ring_.size()]);
  }
  ring_ = std::move(bigger);
  head_ = 0;
}

EventQueue::Bucket& EventQueue::bucket_at(std::uint64_t tick) {
  FBA_ASSERT(tick >= base_tick_, "bucketed push into the past");
  const std::uint64_t offset = tick - base_tick_;
  if (offset >= ring_.size()) grow_ring(offset + 1);
  return ring_[(head_ + offset) % ring_.size()];
}

void EventQueue::step_base() {
  Bucket& bucket = ring_[head_];
  for (auto& lane : bucket.lanes) lane.clear();  // keeps lane capacity
  bucket.count = 0;
  head_ = (head_ + 1) % ring_.size();
  ++base_tick_;
}

void EventQueue::push(Event&& ev) {
  ev.seq = next_seq_++;
  ++size_;
  if (size_ > peak_size_) peak_size_ = size_;
  if (mode_ == Mode::kHeap) {
    heap_.push_back(std::move(ev));
    heap_sift_up(heap_.size() - 1);
    return;
  }
  FBA_ASSERT(ev.pri < kNumPriorities, "bucketed priority class out of range");
  const auto tick = static_cast<std::uint64_t>(ev.at);
  FBA_ASSERT(static_cast<SimTime>(tick) == ev.at,
             "bucketed timestamps must be integral");
  Bucket& bucket = bucket_at(tick);
  const std::uint32_t pri = ev.pri;
  bucket.lanes[pri].push_back(std::move(ev));
  ++bucket.count;
}

void EventQueue::push_message(SimTime at, std::uint32_t pri,
                              const Envelope& env, RecoveryTag rec) {
  Event ev;
  ev.at = at;
  ev.pri = pri;
  ev.rec_slot1 = rec.slot1;
  ev.rec_gen = rec.gen;
  ev.env = env;
  push(std::move(ev));
}

void EventQueue::push_timer(SimTime at, std::uint32_t pri, NodeId node,
                            std::uint64_t token) {
  Event ev;
  ev.at = at;
  ev.pri = pri;
  ev.is_timer = true;
  ev.timer_node = node;
  ev.timer_token = token;
  push(std::move(ev));
}

void EventQueue::push_burst(SimTime at, std::uint32_t pri,
                            const Envelope& env) {
  Event ev;
  ev.at = at;
  ev.pri = pri;
  ev.is_burst = true;
  ev.env = env;
  push(std::move(ev));
}

SimTime EventQueue::next_at() const {
  FBA_ASSERT(size_ > 0, "next_at() on an empty event queue");
  if (mode_ == Mode::kHeap) return heap_.front().at;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[(head_ + i) % ring_.size()].count > 0) {
      return static_cast<SimTime>(base_tick_ + i);
    }
  }
  return 0;  // unreachable: size_ > 0
}

EventQueue::Event EventQueue::pop() {
  FBA_ASSERT(size_ > 0, "pop() on an empty event queue");
  --size_;
  if (mode_ == Mode::kHeap) {
    Event out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      heap_sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }
  while (front_bucket().count == 0) step_base();
  Bucket& bucket = front_bucket();
  // (at, pri, seq) order: the earliest tick's lowest-priority non-empty
  // lane, whose front holds that lane's lowest seq (lanes are push-ordered).
  // Front-erase is O(lane); single pops from buckets are rare (the sync
  // engine drains whole rounds via pop_due), so correctness over speed here.
  for (auto& lane : bucket.lanes) {
    if (lane.empty()) continue;
    Event out = std::move(lane.front());
    lane.erase(lane.begin());
    --bucket.count;
    return out;
  }
  FBA_ASSERT(false, "non-empty bucket has empty lanes");
  return Event{};
}

std::size_t EventQueue::pop_due(SimTime until, std::vector<Event>& out) {
  out.clear();
  if (mode_ == Mode::kHeap) {
    while (size_ > 0 && heap_.front().at <= until) {
      out.push_back(pop());
    }
    return out.size();
  }
  // Advance one tick at a time and never beyond `until`: base_tick_ must
  // stay at most one past the drained range, since the engine's next round
  // pushes at `until + 1`.
  while (!ring_.empty() && static_cast<SimTime>(base_tick_) <= until) {
    Bucket& bucket = front_bucket();
    for (auto& lane : bucket.lanes) {
      for (Event& ev : lane) out.push_back(std::move(ev));
    }
    size_ -= bucket.count;
    step_base();
  }
  return out.size();
}

void EventQueue::heap_sift_up(std::size_t i) {
  if (i == 0) return;
  std::size_t parent = (i - 1) / kArity;
  if (!before(heap_[i], heap_[parent])) return;  // common case: appended last
  Event moving = std::move(heap_[i]);
  while (true) {
    heap_[i] = std::move(heap_[parent]);
    i = parent;
    if (i == 0) break;
    parent = (i - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
  }
  heap_[i] = std::move(moving);
}

void EventQueue::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  auto best_child = [&](std::size_t node) {
    const std::size_t first = kArity * node + 1;
    if (first >= n) return n;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    return best;
  };
  std::size_t child = best_child(i);
  if (child >= n || !before(heap_[child], heap_[i])) return;  // already placed
  Event moving = std::move(heap_[i]);
  do {
    heap_[i] = std::move(heap_[child]);
    i = child;
    child = best_child(i);
  } while (child < n && before(heap_[child], moving));
  heap_[i] = std::move(moving);
}

}  // namespace fba::sim
