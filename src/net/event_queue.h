// EventQueue: the shared pending-event core under both engines.
//
// Events (message deliveries and timer firings) live by value in contiguous
// slabs — no per-event heap allocation on the steady-state path (slabs grow
// amortized and are then reused). Ordering key is (at, pri, seq):
//   - `at`  — delivery time (sim time in the async engine, round number in
//             the sync engine);
//   - `pri` — same-timestamp delivery class, the engines' timing-policy
//             lever (the sync engine delivers rushing-adversary traffic
//             first and timers last within a round; the async engine uses a
//             single class);
//   - `seq` — push order, so delivery is FIFO among equal (at, pri).
//
// Two storage modes, chosen by the owning engine's timing model:
//   - kHeap    — an implicit 4-ary min-heap; for continuous timestamps
//                (async engine). O(log n) push/pop.
//   - kBuckets — a calendar ring of per-timestamp buckets with one lane per
//                priority class; for integral timestamps (sync rounds).
//                O(1) push, O(1)-per-event batched pop, nothing is ever
//                sifted — a round with a million pending messages drains at
//                memcpy speed. Ring slots (and their lane capacity) are
//                reused in place as time advances, so the steady state
//                performs no allocation at all.
//
// The engines are thin timing policies over this core: they decide each
// event's (at, pri) and consume the ordered stream via pop() or the batched
// pop_due() (sync: one call drains a whole round into a reusable scratch
// vector).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/envelope.h"
#include "support/types.h"

namespace fba::sim {

class EventQueue {
 public:
  enum class Mode {
    kHeap,     ///< continuous timestamps, 4-ary min-heap.
    kBuckets,  ///< integral timestamps, per-round calendar buckets.
  };

  /// Priority classes supported in bucket mode (lanes per bucket).
  static constexpr std::uint32_t kNumPriorities = 3;

  struct Event {
    SimTime at = 0;
    std::uint32_t pri = 0;
    /// Recovery-layer tag of a tracked delivery (net/recovery.h), split
    /// across the struct's two natural padding holes so adding it keeps
    /// sizeof(Event) unchanged (the deterministic memory account charges
    /// queue_peak * sizeof(Event)). 0/0 = untracked.
    std::uint32_t rec_slot1 = 0;
    std::uint64_t seq = 0;  ///< assigned by push; FIFO tie-break.
    bool is_timer = false;
    bool is_burst = false;  ///< env is a burst descriptor (push_burst).
    std::uint16_t rec_gen = 0;  ///< second half of the recovery tag.
    NodeId timer_node = 0;
    std::uint64_t timer_token = 0;
    Envelope env;  ///< valid when !is_timer.

    RecoveryTag rec() const { return RecoveryTag{rec_slot1, rec_gen}; }
  };

  explicit EventQueue(Mode mode = Mode::kHeap) : mode_(mode) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  void reserve(std::size_t n);

  /// Empties the queue and rewinds the clock to tick 0, keeping the heap
  /// slab / ring buckets and their lane capacity (trial-arena reuse).
  void clear();

  /// Earliest (at, pri, seq) pending event's timestamp. Queue must be
  /// non-empty.
  SimTime next_at() const;

  /// Queues a message delivery at (at, pri). `rec` is the recovery-layer
  /// tag of a tracked send (default: untracked).
  void push_message(SimTime at, std::uint32_t pri, const Envelope& env,
                    RecoveryTag rec = {});

  /// Queues a timer firing at (at, pri).
  void push_timer(SimTime at, std::uint32_t pri, NodeId node,
                  std::uint64_t token);

  /// Queues a burst descriptor: one event standing for a batch of same-kind
  /// deliveries the consumer re-expands at delivery time (the scale path's
  /// replacement for the Fw1 d^2 fan-out — n*d burst events instead of
  /// n*d^3 queued envelopes). `env` carries the template message; dst is
  /// ignored. Ordering is a single (at, pri, seq) slot, which matches the
  /// per-send path exactly because the expanded sends were consecutive
  /// seqs there too.
  void push_burst(SimTime at, std::uint32_t pri, const Envelope& env);

  /// Removes and returns the next event in (at, pri, seq) order.
  Event pop();

  /// Batched pop: drains every event with at <= until into `out` (cleared
  /// first) in delivery order. Returns the number of events moved. `out`
  /// keeps its capacity across calls, so a reused scratch vector makes the
  /// steady-state round loop allocation-free.
  std::size_t pop_due(SimTime until, std::vector<Event>& out);

  /// In-place drain: visits every event with at <= until in delivery order
  /// without copying the round into a scratch vector — the scale path's
  /// round loop, where a round can hold tens of millions of events. The
  /// visitor may push new events, but only at timestamps strictly beyond
  /// the tick being drained (the sync engine's round discipline; asserted
  /// in bucket mode). Visited events are invalidated after the call.
  template <typename Visitor>
  void drain_due(SimTime until, Visitor&& visit) {
    if (mode_ == Mode::kHeap) {
      while (size_ > 0 && heap_.front().at <= until) {
        Event ev = pop();
        visit(ev);
      }
      return;
    }
    while (!ring_.empty() && static_cast<SimTime>(base_tick_) <= until) {
      {
        Bucket& bucket = front_bucket();
        if (bucket.count == 0) {
          step_base();
          continue;
        }
        // Claim the tick's lanes by swapping them out: visitor pushes may
        // grow the ring and re-seat every bucket, so no reference into
        // ring_ survives the visit loop.
        size_ -= bucket.count;
        bucket.count = 0;
        for (std::uint32_t p = 0; p < kNumPriorities; ++p) {
          drain_scratch_[p].swap(bucket.lanes[p]);
        }
      }
      for (std::uint32_t p = 0; p < kNumPriorities; ++p) {
        for (Event& ev : drain_scratch_[p]) visit(ev);
      }
      // Re-fetch: grow_ring during the visits moves buckets (head_ resets
      // to 0), but the front bucket still maps to the tick just drained.
      Bucket& bucket = front_bucket();
      FBA_ASSERT(bucket.count == 0,
                 "drain_due visitor pushed into the tick being drained");
      for (std::uint32_t p = 0; p < kNumPriorities; ++p) {
        drain_scratch_[p].clear();
        drain_scratch_[p].swap(bucket.lanes[p]);  // hand capacity back
      }
      step_base();
    }
  }

  /// High-water mark of pending events since the last clear() — the event
  /// core's contribution to a trial's deterministic memory accounting.
  std::size_t peak_size() const { return peak_size_; }

 private:
  void push(Event&& ev);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  static bool before(const Event& x, const Event& y) {
    if (x.at != y.at) return x.at < y.at;
    if (x.pri != y.pri) return x.pri < y.pri;
    return x.seq < y.seq;
  }

  /// One integral timestamp's pending events, one lane per priority class.
  struct Bucket {
    std::array<std::vector<Event>, kNumPriorities> lanes;
    std::size_t count = 0;
  };
  Bucket& bucket_at(std::uint64_t tick);
  Bucket& front_bucket() { return ring_[head_]; }
  void step_base();  ///< recycle the base bucket in place, advance one tick.
  void grow_ring(std::size_t min_slots);

  Mode mode_;
  std::size_t size_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t next_seq_ = 0;

  // kHeap state: implicit 4-ary min-heap over one slab.
  std::vector<Event> heap_;

  // kBuckets state: power-of-two ring of buckets covering ticks
  // [base_tick_, base_tick_ + ring_.size()); head_ indexes base_tick_'s slot.
  std::vector<Bucket> ring_;
  std::size_t head_ = 0;
  std::uint64_t base_tick_ = 0;
  /// drain_due's per-tick lane holder (capacity is handed back per tick).
  std::array<std::vector<Event>, kNumPriorities> drain_scratch_;
};

}  // namespace fba::sim
