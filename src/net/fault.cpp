#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fba::sim {

namespace {

constexpr std::uint64_t kFaultSetupTag = 0xfa0175e7ull;
constexpr std::uint64_t kFaultDrawTag = 0xfa01d4a3ull;

/// Nodes on side A of a cut: the lowest ceil(f * n) ranks.
std::size_t side_a_size(double cut_fraction, std::size_t n) {
  const double f = std::clamp(cut_fraction, 0.0, 1.0);
  return std::min<std::size_t>(
      n, static_cast<std::size_t>(std::ceil(f * static_cast<double>(n))));
}

bool window_active(double start, double end, double at) {
  return at >= start && at < end;
}

}  // namespace

const char* fault_cause_name(FaultCause c) {
  switch (c) {
    case FaultCause::kChurn:
      return "churn";
    case FaultCause::kPartition:
      return "partition";
    case FaultCause::kLoss:
      return "loss";
    case FaultCause::kCount:
      break;
  }
  return "?";
}

FaultState::FaultState(const FaultPlan& plan, std::size_t n,
                       std::uint64_t seed)
    : plan_(plan), n_(n), rng_(Rng(seed).split(kFaultDrawTag)) {
  // Setup draws come from their own substream so the per-send stream is
  // independent of how many windows the plan declares.
  Rng setup = Rng(seed).split(kFaultSetupTag);

  if (!plan_.partitions.empty()) {
    std::vector<std::uint32_t> order(n_);
    std::iota(order.begin(), order.end(), 0u);
    setup.shuffle(order);
    rank_.resize(n_);
    for (std::size_t pos = 0; pos < n_; ++pos) {
      rank_[order[pos]] = static_cast<std::uint32_t>(pos);
    }
    partition_k_.reserve(plan_.partitions.size());
    for (const PartitionWindow& w : plan_.partitions) {
      partition_k_.push_back(
          static_cast<std::uint32_t>(side_a_size(w.cut_fraction, n_)));
    }
  }

  churn_hit_.reserve(plan_.churns.size());
  for (const ChurnWindow& w : plan_.churns) {
    std::vector<bool> hit(n_, false);
    const double f = std::clamp(w.fraction, 0.0, 1.0);
    const auto k = std::min<std::size_t>(
        n_, static_cast<std::size_t>(
                std::llround(f * static_cast<double>(n_))));
    for (std::uint32_t id : setup.sample_without_replacement(n_, k)) {
      hit[id] = true;
    }
    churn_hit_.push_back(std::move(hit));
  }
}

bool FaultState::is_down(NodeId node, double at) const {
  for (std::size_t w = 0; w < plan_.churns.size(); ++w) {
    const ChurnWindow& cw = plan_.churns[w];
    if (churn_hit_[w][node] && window_active(cw.down, cw.up, at)) return true;
  }
  return false;
}

bool FaultState::is_cut(NodeId a, NodeId b, double at) const {
  for (std::size_t w = 0; w < plan_.partitions.size(); ++w) {
    const PartitionWindow& pw = plan_.partitions[w];
    if (!window_active(pw.start, pw.heal, at)) continue;
    const std::uint32_t k = partition_k_[w];
    if ((rank_[a] < k) != (rank_[b] < k)) return true;
  }
  return false;
}

FaultState::Action FaultState::on_send(NodeId src, NodeId dst, double at) {
  Action act;
  if (is_down(src, at) || is_down(dst, at)) {
    act.drop = true;
    act.cause = FaultCause::kChurn;
    return act;
  }
  if (is_cut(src, dst, at)) {
    act.drop = true;
    act.cause = FaultCause::kPartition;
    return act;
  }
  if (plan_.loss > 0 && rng_.chance(plan_.loss)) {
    act.drop = true;
    act.cause = FaultCause::kLoss;
    return act;
  }
  if (plan_.jitter_prob > 0 && rng_.chance(plan_.jitter_prob)) {
    act.extra_delay = plan_.jitter;
  }
  return act;
}

}  // namespace fba::sim
