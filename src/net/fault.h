// Fault conditions: message loss, timed network partitions, crash-recovery
// churn. The paper's model (Section 2.1) assumes reliable authenticated
// channels; this layer deliberately breaks that assumption so experiments can
// probe how far the protocols degrade before safety or liveness gives out.
//
// A FaultPlan is pure configuration (copyable, engine-agnostic): a per-link
// loss probability, jitter (extra delivery delay with some probability),
// partition windows that cut the node set in two for a span of sim time, and
// churn windows during which a sampled fraction of nodes goes dark and later
// returns. FaultState is the per-run applied form: it owns the trial's fault
// RNG substream and the sampled partition sides / churn rosters, and is
// consulted once per send on the engines' one shared send path
// (EngineBase::send_from), so both engines see identical fault semantics and
// determinism (bit-identical sweeps at any thread count) is preserved.
//
// Semantics, shared by both engines ("at" is the engine clock — round number
// under the sync engines, normalized sim time under the async engine):
//   - churn: a node affected by a window is dark during [down, up): every
//     message it sends or is sent is dropped. Its timers still fire and its
//     local state survives — omission-style crash-recovery, not amnesia.
//   - partition: while [start, heal) is active, messages crossing the cut
//     are dropped. Sides are a per-trial random split: the lowest
//     ceil(cut_fraction * n) ranks of a seeded permutation form side A.
//   - loss: every remaining message is dropped i.i.d. with probability
//     `loss`.
//   - jitter: surviving messages gain `jitter` extra delivery delay with
//     probability `jitter_prob` (rounds under sync, time units under async —
//     fault-induced delay may exceed the async model's normalized 1.0
//     bound, which is exactly the point).
// Cause precedence for the drop counters: churn > partition > loss.
//
// Dropped traffic is still charged to TrafficMetrics (the bits left the
// sender) and additionally recorded in the per-cause fault counters; it is
// invisible to the adversary's full-information tap — a message nobody
// receives is as if never sent, except for the bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "support/random.h"
#include "support/types.h"

namespace fba::sim {

/// Why a message was dropped at the fault layer.
enum class FaultCause : std::uint8_t {
  kChurn = 0,   ///< sender or receiver dark in a churn window.
  kPartition,   ///< endpoints on opposite sides of an active cut.
  kLoss,        ///< i.i.d. per-message loss.
  kCount,
};

inline constexpr std::size_t kNumFaultCauses =
    static_cast<std::size_t>(FaultCause::kCount);

constexpr std::size_t fault_cause_index(FaultCause c) {
  return static_cast<std::size_t>(c);
}

/// Stable short name ("churn", "partition", "loss") for tables and logs.
const char* fault_cause_name(FaultCause c);

/// The network splits in two during [start, heal); cross-cut messages drop.
struct PartitionWindow {
  double start = 0;
  double heal = 0;            ///< exclusive: the cut is gone at `heal`.
  double cut_fraction = 0.5;  ///< fraction of nodes on side A.
};

/// A sampled `fraction` of nodes is dark during [down, up).
struct ChurnWindow {
  double down = 0;
  double up = 0;  ///< exclusive: affected nodes are back at `up`.
  double fraction = 0;
};

struct FaultPlan {
  /// i.i.d. per-message drop probability on every link.
  double loss = 0;
  /// With probability jitter_prob a surviving message is delayed by an
  /// extra `jitter` (rounds / time units) beyond its normal delivery.
  double jitter_prob = 0;
  double jitter = 0;
  std::vector<PartitionWindow> partitions;
  std::vector<ChurnWindow> churns;

  /// True when the plan perturbs nothing — engines skip the layer entirely.
  bool empty() const {
    return loss <= 0 && jitter_prob <= 0 && partitions.empty() &&
           churns.empty();
  }
};

/// A FaultPlan applied to one run: the sampled partition ranks and churn
/// rosters plus the trial's dedicated fault RNG substream. Deterministic:
/// everything derives from (plan, n, seed) and the send order, which the
/// engines already keep deterministic per trial.
class FaultState {
 public:
  struct Action {
    bool drop = false;
    FaultCause cause = FaultCause::kLoss;  ///< valid when drop.
    double extra_delay = 0;                ///< valid when !drop.
  };

  FaultState(const FaultPlan& plan, std::size_t n, std::uint64_t seed);

  /// Decides the fate of one message sent at engine time `at`. Consumes
  /// fault-RNG draws only for the features the plan enables, in a fixed
  /// order, so the stream stays aligned across identical runs.
  Action on_send(NodeId src, NodeId dst, double at);

  /// Node dark in some churn window at time `at`?
  bool is_down(NodeId node, double at) const;

  /// Endpoints separated by an active partition at time `at`?
  bool is_cut(NodeId a, NodeId b, double at) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::size_t n_;
  Rng rng_;  ///< per-send draws (loss, jitter).
  /// Per-trial random rank of each node; window w puts ranks <
  /// partition_k_[w] on side A (ceil(cut_fraction * n), precomputed — the
  /// per-send check is a plain integer compare).
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> partition_k_;
  /// churn_hit_[w][node]: node is in window w's sampled roster.
  std::vector<std::vector<bool>> churn_hit_;
};

}  // namespace fba::sim
