#include "net/message.h"

namespace fba::sim {

const char* kind_name(MessageKind k) { return kind_info(k).name; }

}  // namespace fba::sim
