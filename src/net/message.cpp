#include "net/message.h"

namespace fba::sim {

namespace {

// Golden sizes (see tests/message_test.cpp): each row reproduces the old
// per-payload bit_size() formula for that kind.
constexpr std::array<KindInfo, kNumMessageKinds> kKindTable = {{
    // name          ids lab str sli pha val fixed
    {"none", 0, 0, 0, 0, 0, 0, 0},
    {"push", 0, 0, 1, 0, 0, 0, 0},
    {"poll", 0, 1, 1, 0, 0, 0, 0},
    {"pull", 0, 1, 1, 0, 0, 0, 0},
    {"fw1", 2, 1, 1, 0, 0, 0, 0},
    {"fw2", 1, 1, 1, 0, 0, 0, 0},
    {"answer", 0, 0, 1, 0, 0, 0, 0},
    {"contrib", 0, 0, 0, 1, 0, 1, 0},
    {"pk-val", 0, 0, 0, 1, 1, 1, 0},
    {"pk-king", 0, 0, 0, 1, 1, 1, 0},
    {"final", 0, 0, 0, 1, 0, 1, 0},
    {"pk-exchange", 0, 0, 0, 0, 0, 0, 64 + 8},
    {"pk-decree", 0, 0, 0, 0, 0, 0, 64 + 8},
    {"bcast", 0, 0, 1, 0, 0, 0, 0},
    {"query", 0, 0, 0, 0, 0, 0, 0},
    {"reply", 0, 0, 1, 0, 0, 0, 0},
    {"snow-q", 0, 0, 0, 0, 0, 0, 16},
    {"snow-r", 0, 0, 1, 0, 0, 0, 16},
    {"ping", 0, 0, 0, 0, 0, 0, 16},
}};

}  // namespace

const KindInfo& kind_info(MessageKind k) {
  const std::size_t i = kind_index(k);
  return kKindTable[i < kNumMessageKinds ? i : 0];
}

const char* kind_name(MessageKind k) { return kind_info(k).name; }

}  // namespace fba::sim
