// Flat, value-type messages and wire-size accounting.
//
// The simulator's unit of traffic is Message: one POD-ish struct carrying a
// MessageKind tag plus the union of every protocol's fields (node ids, a
// poll label, an interned candidate string, a small inline bit payload).
// Messages move by value — no heap allocation, no virtual dispatch, no
// dynamic_cast on the delivery path. Every send is still charged its true
// encoded size, via a per-kind accounting table (kind_info) evaluated
// against the run's Wire parameters, so measured communication complexity
// matches what a faithful wire format would cost.
//
// The kind table is the single source of truth for sizes: correct nodes and
// adversary-forged traffic go through the same message_bit_size(), so a
// strategy cannot under-charge a forged message that shadows a real kind.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "support/intern.h"
#include "support/types.h"

namespace fba::sim {

/// Every message kind the simulator knows, across all protocols. The wire
/// namespace is per-protocol (a deployment runs one protocol, with at most
/// 16 kinds in flight), which is why the kind tag costs Wire::kKindTagBits
/// even though this cross-protocol registry is larger.
enum class MessageKind : std::uint8_t {
  kNone = 0,  ///< default-constructed / timer slots; never sent.

  // AER (Sections 3.1.1-3.1.2, Algorithms 1-3).
  kPush,
  kPoll,
  kPull,
  kFw1,
  kFw2,
  kAnswer,

  // AE committee tournament (ae/kssv.h).
  kContrib,
  kPkValue,
  kPkKing,
  kFinalSlice,

  // Standalone phase king (ae/phase_king.h).
  kPkExchange,
  kPkDecree,

  // Baseline AE->E reductions.
  kBcast,      ///< FLOOD-ALL candidate broadcast.
  kQuery,      ///< SQRT-SAMPLE query (header-only).
  kReply,      ///< SQRT-SAMPLE reply.
  kSnowQuery,  ///< Snowball sample query.
  kSnowReply,  ///< Snowball sample reply.

  // Test / micro-bench traffic.
  kPing,

  // Transport-level recovery sublayer (net/recovery.h): per-link delivery
  // acknowledgement. Emitted by the receiving engine, consumed by the
  // sending engine — never seen by actors or adversary strategies' deliver
  // path. Appended after kPing so the first 19 kinds keep their indices
  // (the pinned golden fingerprints hash exactly that legacy prefix).
  kAck,

  kCount,
};

inline constexpr std::size_t kNumMessageKinds =
    static_cast<std::size_t>(MessageKind::kCount);

constexpr std::size_t kind_index(MessageKind k) {
  return static_cast<std::size_t>(k);
}

/// Stable short name used in tables and logs ("push", "fw1", ...).
const char* kind_name(MessageKind k);

/// Encoding parameters of the deployment: how many bits a node id, a poll
/// label r (from the paper's domain R), an AE slice/phase index or slice
/// value, and a candidate string cost on the wire. A plain struct — protocol
/// harnesses fill in the fields they use and leave the rest zero.
struct Wire {
  std::size_t node_id_bits = 0;
  std::size_t label_bits = 0;
  std::size_t slice_bits = 0;  ///< AE slice-index field.
  std::size_t phase_bits = 0;  ///< AE phase-index field.
  std::size_t value_bits = 0;  ///< AE inline slice-value payload.

  /// Source of candidate-string sizes; when null, every string costs
  /// `fixed_string_bits` (test wires).
  const StringTable* table = nullptr;
  std::size_t fixed_string_bits = 0;

  std::size_t string_bits(StringId id) const {
    return table != nullptr ? table->bits(id) : fixed_string_bits;
  }

  /// Fixed per-message overhead: message-kind tag plus the authenticated
  /// sender identity (channels are authenticated, Section 2.1).
  std::size_t header_bits() const { return kKindTagBits + node_id_bits; }

  static constexpr std::size_t kKindTagBits = 4;
};

/// One in-memory message. Fields are shared across kinds; the per-kind
/// accounting table (kind_info) decides which of them a kind pays for.
struct Message {
  MessageKind kind = MessageKind::kNone;
  NodeId a = 0;            ///< first node-id field (AER: requester x).
  NodeId b = 0;            ///< second node-id field (AER: poll target w).
  StringId s = kNoString;  ///< interned candidate string.
  PollLabel r = 0;         ///< poll label from the paper's domain R.
  std::uint64_t value = 0;  ///< inline bit payload (AE slice / pk values).
  std::uint32_t slice = 0;  ///< AE slice index.
  std::uint32_t phase = 0;  ///< phase index / round tag / test tag.

  /// Kind-checked accessor, the replacement for the old payload_cast<T>:
  /// returns this message when it is of kind `k`, nullptr otherwise.
  const Message* as(MessageKind k) const { return kind == k ? this : nullptr; }
};

/// Per-kind wire-size accounting: how many node-id / label / string / slice /
/// phase / value fields a kind charges, plus any fixed payload bits.
struct KindInfo {
  const char* name = "?";
  std::uint8_t node_ids = 0;  ///< x `Wire::node_id_bits`
  std::uint8_t labels = 0;    ///< x `Wire::label_bits`
  std::uint8_t strings = 0;   ///< x `Wire::string_bits(m.s)`
  std::uint8_t slices = 0;    ///< x `Wire::slice_bits`
  std::uint8_t phases = 0;    ///< x `Wire::phase_bits`
  std::uint8_t values = 0;    ///< x `Wire::value_bits`
  std::uint16_t fixed_bits = 0;
};

namespace detail {
// Golden sizes (see tests/message_test.cpp): each row reproduces the old
// per-payload bit_size() formula for that kind. Inline so the per-send
// accounting (one lookup per message) costs an index, not a call.
inline constexpr std::array<KindInfo, kNumMessageKinds> kKindTable = {{
    // name          ids lab str sli pha val fixed
    {"none", 0, 0, 0, 0, 0, 0, 0},
    {"push", 0, 0, 1, 0, 0, 0, 0},
    {"poll", 0, 1, 1, 0, 0, 0, 0},
    {"pull", 0, 1, 1, 0, 0, 0, 0},
    {"fw1", 2, 1, 1, 0, 0, 0, 0},
    {"fw2", 1, 1, 1, 0, 0, 0, 0},
    {"answer", 0, 0, 1, 0, 0, 0, 0},
    {"contrib", 0, 0, 0, 1, 0, 1, 0},
    {"pk-val", 0, 0, 0, 1, 1, 1, 0},
    {"pk-king", 0, 0, 0, 1, 1, 1, 0},
    {"final", 0, 0, 0, 1, 0, 1, 0},
    {"pk-exchange", 0, 0, 0, 0, 0, 0, 64 + 8},
    {"pk-decree", 0, 0, 0, 0, 0, 0, 64 + 8},
    {"bcast", 0, 0, 1, 0, 0, 0, 0},
    {"query", 0, 0, 0, 0, 0, 0, 0},
    {"reply", 0, 0, 1, 0, 0, 0, 0},
    {"snow-q", 0, 0, 0, 0, 0, 0, 16},
    {"snow-r", 0, 0, 1, 0, 0, 0, 16},
    {"ping", 0, 0, 0, 0, 0, 0, 16},
    // 32 fixed bits: the (slot, gen) pair identifying the acked send. The
    // common header (kind tag + authenticated sender id) is charged on top,
    // like every other kind.
    {"ack", 0, 0, 0, 0, 0, 0, 32},
}};
}  // namespace detail

inline const KindInfo& kind_info(MessageKind k) {
  const std::size_t i = kind_index(k);
  return detail::kKindTable[i < kNumMessageKinds ? i : 0];
}

/// Encoded size of a message's fields, excluding the common header. A pure
/// table walk: no virtual call, no dispatch on the payload type.
inline std::size_t message_bit_size(const Message& m, const Wire& w) {
  const KindInfo& k = kind_info(m.kind);
  std::size_t bits = k.fixed_bits;
  bits += k.node_ids * w.node_id_bits;
  bits += k.labels * w.label_bits;
  bits += k.slices * w.slice_bits;
  bits += k.phases * w.phase_bits;
  bits += k.values * w.value_bits;
  if (k.strings != 0) bits += k.strings * w.string_bits(m.s);
  return bits;
}

}  // namespace fba::sim
