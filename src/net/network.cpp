#include "net/network.h"

#include "adversary/adversary.h"

namespace fba::sim {

EngineBase::EngineBase(std::size_t n, std::uint64_t seed) {
  reset_base(n, seed);
}

void EngineBase::reset_base(std::size_t n, std::uint64_t seed) {
  FBA_REQUIRE(n >= 2, "a network needs at least two nodes");
  n_ = n;
  seed_ = seed;
  actors_.assign(n, nullptr);
  owned_actors_.clear();
  fault_.reset();
  recovery_on_ = false;  // recovery_ keeps its pool capacity (arena reuse)
  corrupt_.assign(n, false);
  corrupt_list_.clear();
  strategy_ = nullptr;
  wire_ = nullptr;
  metrics_.reset(n);
  on_decide_ = nullptr;
  strategy_rng_ = Rng(seed).split(0xadull);
  adaptive_rng_ = Rng(seed).split(0x4adaull);
  decisions_reported_ = 0;
  corruption_budget_ = 0;
  corruptions_spent_ = 0;
  first_corruption_time_ = 0;
  last_corruption_time_ = 0;
  on_corrupt_ = nullptr;
  Rng master(seed);
  node_rngs_.clear();
  node_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    node_rngs_.push_back(master.split(0x1000 + i));
  }
}

EngineBase::~EngineBase() = default;

void EngineBase::set_actor(NodeId id, std::unique_ptr<Actor> actor) {
  FBA_REQUIRE(id < n_, "actor id out of range");
  actors_[id] = actor.get();
  owned_actors_.push_back(std::move(actor));
}

void EngineBase::set_actor(NodeId id, Actor* actor) {
  FBA_REQUIRE(id < n_, "actor id out of range");
  actors_[id] = actor;
}

void EngineBase::set_corrupt(const std::vector<NodeId>& nodes) {
  for (NodeId id : nodes) {
    FBA_REQUIRE(id < n_, "corrupt node id out of range");
    if (!corrupt_[id]) {
      corrupt_[id] = true;
      corrupt_list_.push_back(id);
    }
  }
}

void EngineBase::set_fault_plan(const FaultPlan* plan) {
  if (plan == nullptr || plan->empty()) {
    fault_.reset();
    return;
  }
  fault_.emplace(*plan, n_, seed_);
}

void EngineBase::set_recovery_plan(const RecoveryPlan* plan) {
  if (plan == nullptr || plan->empty()) {
    recovery_on_ = false;
    return;
  }
  recovery_.configure(*plan, n_, recovery_rto_floor());
  recovery_on_ = true;
}

std::vector<NodeId> EngineBase::correct_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_ - corrupt_list_.size());
  for (NodeId id = 0; id < n_; ++id) {
    if (!corrupt_[id]) out.push_back(id);
  }
  return out;
}

void EngineBase::send_from(NodeId src, NodeId dst, const Message& msg) {
  FBA_REQUIRE(src < n_ && dst < n_, "send endpoint out of range");
  FBA_ASSERT(msg.kind != MessageKind::kNone && msg.kind != MessageKind::kCount,
             "cannot send a kind-less message");
  FBA_ASSERT(wire_ != nullptr, "engine has no wire format configured");
  const std::size_t bits = message_bit_size(msg, *wire_) + wire_->header_bits();
  metrics_.on_message(src, dst, bits, msg.kind);

  const double send_time = now();  // one virtual dispatch per send
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.msg = msg;
  env.send_time = send_time;

  // Recovery sublayer (net/recovery.h): track the send and arm its
  // retransmit timer BEFORE the fault layer sees it, so a dropped original
  // still retransmits — that is the whole point of the layer. Acks are the
  // layer's own traffic and are never tracked (an ack's loss is repaired by
  // the data retransmission it provokes).
  RecoveryTag rec;
  if (recovery_on_ && msg.kind != MessageKind::kAck) {
    rec = recovery_.track(env, send_time);
    queue_recovery_timer(recovery_.current_rto(rec),
                         RecoveryState::timer_token(rec));
  }

  // Fault layer (net/fault.h): one shared code path for both engines.
  // Dropped sends stay charged (the bits left the sender) but never reach
  // the queue or the adversary's tap — traffic nobody receives is as if
  // never sent, except for the bandwidth.
  if (fault_) {
    const FaultState::Action act = fault_->on_send(src, dst, send_time);
    if (act.drop) {
      metrics_.on_fault_drop(bits, act.cause);
      return;
    }
    if (act.extra_delay > 0) {
      env.fault_delay = act.extra_delay;
      metrics_.on_fault_delay();
    }
  }

  // Full-information adversary: it sees every message as soon as it is sent.
  // (Whether it can *react* within the same time step is the rushing /
  // non-rushing distinction, enforced by the engines' scheduling.)
  if (strategy_ != nullptr) {
    adv::AdvContext actx(*this);
    strategy_->on_observe(actx, env);
  }
  queue_envelope(env, rec);
}

void EngineBase::on_recovery_timeout(std::uint64_t token) {
  if (!recovery_on_) return;
  const RecoveryTag tag = RecoveryState::tag_of_token(token);
  switch (recovery_.on_timeout(tag)) {
    case RecoveryState::TimeoutAction::kStale:
      return;  // acked since the timer was armed — lazy cancellation
    case RecoveryState::TimeoutAction::kDead:
      metrics_.on_recovery_dead();
      return;
    case RecoveryState::TimeoutAction::kRetry:
      break;
  }
  recovery_.note_resend(tag, now());
  // The retransmission walks the same path as any send: recharged (the bits
  // leave the sender again — that is the measured cost of the layer),
  // re-exposed to the fault layer, re-observed by the adversary.
  Envelope env = recovery_.envelope_of(tag);
  const std::size_t bits =
      message_bit_size(env.msg, *wire_) + wire_->header_bits();
  metrics_.on_message(env.src, env.dst, bits, env.msg.kind);
  metrics_.on_recovery_retransmit(bits);
  bool dropped = false;
  if (fault_) {
    const FaultState::Action act =
        fault_->on_send(env.src, env.dst, env.send_time);
    if (act.drop) {
      metrics_.on_fault_drop(bits, act.cause);
      dropped = true;
    } else if (act.extra_delay > 0) {
      env.fault_delay = act.extra_delay;
      metrics_.on_fault_delay();
    }
  }
  if (!dropped) {
    if (strategy_ != nullptr) {
      adv::AdvContext actx(*this);
      strategy_->on_observe(actx, env);
    }
    queue_envelope(env, tag);
  }
  // Re-armed even when the resend dropped: the next timeout retries again
  // (or declares the send dead once the budget runs out).
  queue_recovery_timer(recovery_.current_rto(tag),
                       RecoveryState::timer_token(tag));
}

bool EngineBase::corrupt_now(NodeId node) {
  if (node >= n_ || corrupt_[node] ||
      corruptions_spent_ >= corruption_budget_) {
    return false;
  }
  corrupt_[node] = true;
  corrupt_list_.push_back(node);
  const double time = now();
  if (corruptions_spent_ == 0) first_corruption_time_ = time;
  last_corruption_time_ = time;
  ++corruptions_spent_;
  if (on_corrupt_) on_corrupt_(node, time);
  return true;
}

void EngineBase::report_decision(NodeId node, StringId value) {
  ++decisions_reported_;
  if (on_decide_) on_decide_(node, value, now());
}

void EngineBase::deliver(const Envelope& env, RecoveryTag rec) {
  if (recovery_on_) {
    if (env.msg.kind == MessageKind::kAck) {
      // Transport-level: consumed here for any destination (corrupt nodes'
      // engines ack-process too); actors and strategies never see acks.
      const RecoveryTag acked{env.msg.a,
                              static_cast<std::uint16_t>(env.msg.b)};
      if (recovery_.on_ack(acked, now())) metrics_.on_recovery_ack_landed();
      return;
    }
    if (rec.tracked()) {
      // Ack every copy — the ack for an earlier copy may itself have been
      // lost — then suppress duplicate deliveries.
      Message ack;
      ack.kind = MessageKind::kAck;
      ack.a = rec.slot1;
      ack.b = rec.gen;
      send_from(env.dst, env.src, ack);
      if (!recovery_.should_deliver(rec)) {
        metrics_.on_recovery_duplicate();
        return;
      }
    }
  }
  if (corrupt_[env.dst]) {
    if (strategy_ != nullptr) {
      adv::AdvContext actx(*this);
      strategy_->on_deliver_to_corrupt(actx, env);
    }
    return;
  }
  Actor* actor = actors_[env.dst];
  FBA_ASSERT(actor != nullptr, "correct node has no actor");
  Context ctx(*this, env.dst, now(), node_rngs_[env.dst]);
  actor->on_message(ctx, env);
}

void EngineBase::fire_timer(NodeId node, std::uint64_t token) {
  if (corrupt_[node]) return;
  Actor* actor = actors_[node];
  FBA_ASSERT(actor != nullptr, "correct node has no actor");
  Context ctx(*this, node, now(), node_rngs_[node]);
  actor->on_timer(ctx, token);
}

void EngineBase::start_actor(NodeId id) {
  if (corrupt_[id]) return;
  Actor* actor = actors_[id];
  FBA_ASSERT(actor != nullptr, "correct node has no actor");
  Context ctx(*this, id, now(), node_rngs_[id]);
  actor->on_start(ctx);
}

void EngineBase::strategy_setup() {
  if (strategy_ != nullptr) {
    adv::AdvContext actx(*this);
    strategy_->on_setup(actx);
  }
}

}  // namespace fba::sim
