// EngineBase: state shared by the synchronous and asynchronous engines —
// the node roster, the corrupt set, the adversary strategy, traffic metrics,
// and the authenticated send path.
//
// Model (Section 2.1): fully-connected network, authenticated channels,
// reliable delivery. The paper's adversary is non-adaptive (corrupt set fixed
// before execution), has full information (observes every send), and
// coordinates all corrupt nodes through a single Strategy object.
//
// Beyond the paper's model, strategies may spend a *runtime corruption
// budget* (set_corruption_budget / corrupt_now): flipping a node mid-run adds
// it to the corrupt set from that instant on — its actor is never invoked
// again and subsequent deliveries route to the strategy — which is exactly
// the adaptive adversary of Dufoulon–Pandurangan 2025 that the paper's
// proofs exclude. The budget defaults to zero, so the paper's model is the
// default and every static-strategy run is bit-unchanged.
//
// Delivery is reliable *unless* a FaultPlan (net/fault.h) is installed:
// the fault layer sits on the one shared send path (send_from) and may drop
// or delay any message — the experiment axis for probing the protocols
// beyond the paper's model.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/envelope.h"
#include "net/fault.h"
#include "net/node.h"
#include "net/recovery.h"
#include "support/metrics.h"
#include "support/random.h"
#include "support/types.h"

namespace fba::adv {
class Strategy;
}

namespace fba::sim {

/// Invoked when a correct node decides: (node, value, time).
using DecisionCallback = std::function<void(NodeId, StringId, double)>;

/// Invoked when a runtime corruption lands: (node, time). Fires after the
/// node has been flipped, so is_corrupt(node) is already true inside it.
using CorruptionCallback = std::function<void(NodeId, double)>;

/// Sentinel timer owner for the recovery sublayer's retransmit timers: they
/// belong to the transport, not to any actor, so engines must route them to
/// EngineBase::on_recovery_timeout instead of fire_timer (which would index
/// the corrupt set with this out-of-range id).
inline constexpr NodeId kRecoveryTimerNode = 0xffffffffu;

class EngineBase {
 public:
  EngineBase(std::size_t n, std::uint64_t seed);
  virtual ~EngineBase();

  EngineBase(const EngineBase&) = delete;
  EngineBase& operator=(const EngineBase&) = delete;

  // ----- setup -------------------------------------------------------------

  /// Registers the actor for node `id`. Every node needs one, corrupt or not
  /// (corrupt nodes' actors are simply never invoked).
  void set_actor(NodeId id, std::unique_ptr<Actor> actor);

  /// Non-owning registration: the caller keeps the actor alive for the run
  /// (trial arenas pool their actors across trials).
  void set_actor(NodeId id, Actor* actor);

  /// Marks `nodes` as Byzantine. Must be called before run().
  void set_corrupt(const std::vector<NodeId>& nodes);

  /// Grants the strategy `budget` runtime corruptions (default 0: the
  /// paper's non-adaptive model). Call before run().
  void set_corruption_budget(std::size_t budget) {
    corruption_budget_ = budget;
  }

  /// Observer for runtime corruptions (harness accounting). Call before
  /// run().
  void set_corruption_callback(CorruptionCallback cb) {
    on_corrupt_ = std::move(cb);
  }

  /// Installs the adversary brain; may be null (corrupt nodes stay silent).
  void set_strategy(adv::Strategy* strategy) { strategy_ = strategy; }

  void set_wire(const Wire* wire) { wire_ = wire; }

  /// Installs the fault layer (loss / partitions / churn, net/fault.h).
  /// A null or empty plan disables it. The applied FaultState is built here
  /// from the engine's n and seed, so identical (plan, seed) runs fault
  /// identically on either engine. Call before run().
  void set_fault_plan(const FaultPlan* plan);

  /// Installs the reliable-channel recovery sublayer (net/recovery.h):
  /// ack/retransmit with adaptive timeout under the one shared send path,
  /// downstream of the fault layer so retransmissions are re-exposed to
  /// loss/partition/churn. A null or empty plan disables it (the default —
  /// every pre-recovery run is bit-unchanged). Call before run().
  void set_recovery_plan(const RecoveryPlan* plan);

  void set_decision_callback(DecisionCallback cb) { on_decide_ = std::move(cb); }

  // ----- introspection -----------------------------------------------------

  std::size_t n() const { return n_; }
  const FaultState* fault_state() const {
    return fault_ ? &*fault_ : nullptr;
  }
  const RecoveryState* recovery_state() const {
    return recovery_on_ ? &recovery_ : nullptr;
  }
  bool is_corrupt(NodeId id) const { return corrupt_.at(id); }
  const std::vector<NodeId>& corrupt_nodes() const { return corrupt_list_; }
  std::vector<NodeId> correct_nodes() const;
  TrafficMetrics& metrics() { return metrics_; }
  const TrafficMetrics& metrics() const { return metrics_; }
  Rng& strategy_rng() { return strategy_rng_; }
  /// Dedicated substream for runtime-corruption choices: adaptive draws must
  /// not perturb the strategy/delay stream, so static-strategy runs (and
  /// cross-thread sweep fingerprints) stay bit-identical.
  Rng& adaptive_rng() { return adaptive_rng_; }
  std::size_t corruption_budget() const { return corruption_budget_; }
  std::size_t corruptions_spent() const { return corruptions_spent_; }
  double first_corruption_time() const { return first_corruption_time_; }
  double last_corruption_time() const { return last_corruption_time_; }
  /// Number of report_decision calls so far; lets engines notice that an
  /// event they just processed produced a decision.
  std::uint64_t decisions_reported() const { return decisions_reported_; }
  virtual double now() const = 0;

  // ----- used by Context / AdvContext --------------------------------------

  /// Authenticated send: `src` is stamped by the engine. Charges metrics via
  /// the per-kind size table (the same path for correct and forged traffic)
  /// and feeds the adversary's full-information tap, then hands the envelope
  /// to the engine-specific queue via queue_envelope(). Steady-state cost:
  /// zero heap allocations.
  void send_from(NodeId src, NodeId dst, const Message& msg);

  void report_decision(NodeId node, StringId value);

  /// Runtime (adaptive) corruption: flips `node` mid-run if it is not
  /// already corrupt and budget remains. Returns whether the corruption
  /// landed. From this instant the node behaves exactly like a
  /// pre-execution corruption — its actor is silenced on every engine path
  /// (deliver / fire_timer / start_actor / sync per-round steps) and
  /// deliveries route to the strategy — but messages it sent while still
  /// correct keep their original delivery class.
  bool corrupt_now(NodeId node);

  /// Requests an Actor::on_timer callback for `node` after `delay`.
  virtual void queue_timer(NodeId node, double delay, std::uint64_t token) = 0;

 protected:
  /// Hands a charged, observed envelope to the engine's queue. Taking a
  /// reference lets the horizon-cull path (common in short bounded runs)
  /// discard without copying; implementations copy only what they keep.
  /// `rec` is the recovery-layer tag of a tracked send (untracked default);
  /// implementations thread it through to the delivery event.
  virtual void queue_envelope(const Envelope& env, RecoveryTag rec) = 0;

  /// Arms a transport-level retransmit timer: fires after `delay` with
  /// `token`, routed to on_recovery_timeout (never to an actor). Subject to
  /// the engine's usual horizon cull.
  virtual void queue_recovery_timer(double delay, std::uint64_t token) = 0;

  /// The engine's delay-model RTO floor: the shortest interval that cannot
  /// fire before an in-flight ack on a loss-free link.
  virtual double recovery_rto_floor() const = 0;

  /// Retransmit-timer dispatch: stale timers are no-ops (lazy
  /// cancellation), live ones either retransmit (recharged, re-faulted,
  /// re-observed, re-armed) or declare the send dead.
  void on_recovery_timeout(std::uint64_t token);

  /// Re-initializes the base for a fresh run with the same construction
  /// semantics (node RNG derivation included), keeping vector capacity and
  /// dropping owned actors. Engine subclasses expose a reset(config) that
  /// calls this (trial-arena reuse).
  void reset_base(std::size_t n, std::uint64_t seed);

  void fire_timer(NodeId node, std::uint64_t token);

  /// Dispatches a delivered envelope: correct nodes get their actor callback,
  /// corrupt nodes hand the message to the strategy. With recovery enabled
  /// the transport work happens first: acks are consumed here (never reach
  /// actors or strategies), tracked deliveries are acked back (always, even
  /// duplicates — the previous ack may have been lost) and deduplicated.
  void deliver(const Envelope& env, RecoveryTag rec = {});

  void start_actor(NodeId id);
  void strategy_setup();

  Rng& node_rng(NodeId id) { return node_rngs_.at(id); }

  std::size_t n_;
  std::uint64_t seed_;
  /// Dispatch table; entries may be owned (owned_actors_) or borrowed.
  std::vector<Actor*> actors_;
  std::vector<std::unique_ptr<Actor>> owned_actors_;
  std::optional<FaultState> fault_;
  /// Recovery sublayer: a plain member (not optional) so its pooled slot
  /// storage keeps capacity across trial-arena resets; recovery_on_ gates
  /// every use.
  RecoveryState recovery_;
  bool recovery_on_ = false;
  std::vector<bool> corrupt_;
  std::vector<NodeId> corrupt_list_;
  adv::Strategy* strategy_ = nullptr;
  const Wire* wire_ = nullptr;
  TrafficMetrics metrics_;
  DecisionCallback on_decide_;
  std::vector<Rng> node_rngs_;
  Rng strategy_rng_;
  Rng adaptive_rng_;
  std::uint64_t decisions_reported_ = 0;
  std::size_t corruption_budget_ = 0;
  std::size_t corruptions_spent_ = 0;
  double first_corruption_time_ = 0;
  double last_corruption_time_ = 0;
  CorruptionCallback on_corrupt_;
};

inline std::size_t Context::n() const { return engine_.n(); }
inline void Context::send(NodeId dst, const Message& msg) {
  engine_.send_from(self_, dst, msg);
}
inline void Context::schedule_timer(double delay, std::uint64_t token) {
  engine_.queue_timer(self_, delay, token);
}
inline void Context::decide(StringId value) {
  engine_.report_decision(self_, value);
}

}  // namespace fba::sim
