// EngineBase: state shared by the synchronous and asynchronous engines —
// the node roster, the corrupt set, the adversary strategy, traffic metrics,
// and the authenticated send path.
//
// Model (Section 2.1): fully-connected network, authenticated channels,
// reliable delivery. The adversary is non-adaptive (corrupt set fixed before
// execution), has full information (observes every send), and coordinates
// all corrupt nodes through a single Strategy object.
//
// Delivery is reliable *unless* a FaultPlan (net/fault.h) is installed:
// the fault layer sits on the one shared send path (send_from) and may drop
// or delay any message — the experiment axis for probing the protocols
// beyond the paper's model.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/envelope.h"
#include "net/fault.h"
#include "net/node.h"
#include "support/metrics.h"
#include "support/random.h"
#include "support/types.h"

namespace fba::adv {
class Strategy;
}

namespace fba::sim {

/// Invoked when a correct node decides: (node, value, time).
using DecisionCallback = std::function<void(NodeId, StringId, double)>;

class EngineBase {
 public:
  EngineBase(std::size_t n, std::uint64_t seed);
  virtual ~EngineBase();

  EngineBase(const EngineBase&) = delete;
  EngineBase& operator=(const EngineBase&) = delete;

  // ----- setup -------------------------------------------------------------

  /// Registers the actor for node `id`. Every node needs one, corrupt or not
  /// (corrupt nodes' actors are simply never invoked).
  void set_actor(NodeId id, std::unique_ptr<Actor> actor);

  /// Non-owning registration: the caller keeps the actor alive for the run
  /// (trial arenas pool their actors across trials).
  void set_actor(NodeId id, Actor* actor);

  /// Marks `nodes` as Byzantine. Must be called before run().
  void set_corrupt(const std::vector<NodeId>& nodes);

  /// Installs the adversary brain; may be null (corrupt nodes stay silent).
  void set_strategy(adv::Strategy* strategy) { strategy_ = strategy; }

  void set_wire(const Wire* wire) { wire_ = wire; }

  /// Installs the fault layer (loss / partitions / churn, net/fault.h).
  /// A null or empty plan disables it. The applied FaultState is built here
  /// from the engine's n and seed, so identical (plan, seed) runs fault
  /// identically on either engine. Call before run().
  void set_fault_plan(const FaultPlan* plan);

  void set_decision_callback(DecisionCallback cb) { on_decide_ = std::move(cb); }

  // ----- introspection -----------------------------------------------------

  std::size_t n() const { return n_; }
  const FaultState* fault_state() const {
    return fault_ ? &*fault_ : nullptr;
  }
  bool is_corrupt(NodeId id) const { return corrupt_.at(id); }
  const std::vector<NodeId>& corrupt_nodes() const { return corrupt_list_; }
  std::vector<NodeId> correct_nodes() const;
  TrafficMetrics& metrics() { return metrics_; }
  const TrafficMetrics& metrics() const { return metrics_; }
  Rng& strategy_rng() { return strategy_rng_; }
  /// Number of report_decision calls so far; lets engines notice that an
  /// event they just processed produced a decision.
  std::uint64_t decisions_reported() const { return decisions_reported_; }
  virtual double now() const = 0;

  // ----- used by Context / AdvContext --------------------------------------

  /// Authenticated send: `src` is stamped by the engine. Charges metrics via
  /// the per-kind size table (the same path for correct and forged traffic)
  /// and feeds the adversary's full-information tap, then hands the envelope
  /// to the engine-specific queue via queue_envelope(). Steady-state cost:
  /// zero heap allocations.
  void send_from(NodeId src, NodeId dst, const Message& msg);

  void report_decision(NodeId node, StringId value);

  /// Requests an Actor::on_timer callback for `node` after `delay`.
  virtual void queue_timer(NodeId node, double delay, std::uint64_t token) = 0;

 protected:
  /// Hands a charged, observed envelope to the engine's queue. Taking a
  /// reference lets the horizon-cull path (common in short bounded runs)
  /// discard without copying; implementations copy only what they keep.
  virtual void queue_envelope(const Envelope& env) = 0;

  /// Re-initializes the base for a fresh run with the same construction
  /// semantics (node RNG derivation included), keeping vector capacity and
  /// dropping owned actors. Engine subclasses expose a reset(config) that
  /// calls this (trial-arena reuse).
  void reset_base(std::size_t n, std::uint64_t seed);

  void fire_timer(NodeId node, std::uint64_t token);

  /// Dispatches a delivered envelope: correct nodes get their actor callback,
  /// corrupt nodes hand the message to the strategy.
  void deliver(const Envelope& env);

  void start_actor(NodeId id);
  void strategy_setup();

  Rng& node_rng(NodeId id) { return node_rngs_.at(id); }

  std::size_t n_;
  std::uint64_t seed_;
  /// Dispatch table; entries may be owned (owned_actors_) or borrowed.
  std::vector<Actor*> actors_;
  std::vector<std::unique_ptr<Actor>> owned_actors_;
  std::optional<FaultState> fault_;
  std::vector<bool> corrupt_;
  std::vector<NodeId> corrupt_list_;
  adv::Strategy* strategy_ = nullptr;
  const Wire* wire_ = nullptr;
  TrafficMetrics metrics_;
  DecisionCallback on_decide_;
  std::vector<Rng> node_rngs_;
  Rng strategy_rng_;
  std::uint64_t decisions_reported_ = 0;
};

inline std::size_t Context::n() const { return engine_.n(); }
inline void Context::send(NodeId dst, const Message& msg) {
  engine_.send_from(self_, dst, msg);
}
inline void Context::schedule_timer(double delay, std::uint64_t token) {
  engine_.queue_timer(self_, delay, token);
}
inline void Context::decide(StringId value) {
  engine_.report_decision(self_, value);
}

}  // namespace fba::sim
