// Actor interface: a protocol node, engine-agnostic.
//
// The same actor implementation runs unmodified under the synchronous and
// asynchronous engines — this is how the paper's claim that AER "remains
// correct and efficient under asynchrony" is exercised by construction.
#pragma once

#include "net/envelope.h"
#include "support/random.h"
#include "support/types.h"

namespace fba::sim {

class EngineBase;

/// Per-callback view of the world handed to an actor. Valid only for the
/// duration of the callback.
class Context {
 public:
  Context(EngineBase& engine, NodeId self, double now, Rng& rng)
      : engine_(engine), self_(self), now_(now), rng_(rng) {}

  NodeId self() const { return self_; }
  double now() const { return now_; }
  std::size_t n() const;

  /// The node's private random number generator (Section 2.1).
  Rng& rng() { return rng_; }

  /// Queue a message; delivery obeys the engine's timing model. The message
  /// is copied by value — sending the same message to many recipients
  /// performs no allocation.
  void send(NodeId dst, const Message& msg);

  /// Request an on_timer(token) callback after `delay` (rounds in the
  /// synchronous engine, rounded up; normalized time units in the
  /// asynchronous engine). Timers are local: no network traffic is charged.
  void schedule_timer(double delay, std::uint64_t token);

  /// Report an irrevocable decision on `value`; recorded with a timestamp by
  /// the harness. Repeated calls are ignored (first decision wins).
  void decide(StringId value);

 private:
  EngineBase& engine_;
  NodeId self_;
  double now_;
  Rng& rng_;
};

class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once before any message flows (round 0 / time 0).
  virtual void on_start(Context& ctx) = 0;

  /// Called for every delivered message.
  virtual void on_message(Context& ctx, const Envelope& env) = 0;

  /// Synchronous engine only: start of each round after deliveries.
  virtual void on_round(Context& ctx, Round round) {
    (void)ctx;
    (void)round;
  }

  /// A timer requested via Context::schedule_timer fired.
  virtual void on_timer(Context& ctx, std::uint64_t token) {
    (void)ctx;
    (void)token;
  }
};

}  // namespace fba::sim
