// Message payloads and wire-size accounting.
//
// Payloads are immutable, shared objects; the simulator moves
// shared_ptr<const Payload> around instead of serialized bytes, but every
// send is charged its true encoded size via Payload::bit_size(const Wire&),
// so the measured communication complexity matches what a faithful wire
// format would cost.
#pragma once

#include <cstddef>
#include <memory>

#include "support/types.h"

namespace fba::sim {

/// Encoding parameters of the deployment: how many bits a node id, a poll
/// label r (from the paper's domain R), or a candidate string costs on the
/// wire. Implemented by protocol harnesses (they own the string table).
class Wire {
 public:
  virtual ~Wire() = default;

  virtual std::size_t node_id_bits() const = 0;
  virtual std::size_t label_bits() const = 0;
  virtual std::size_t string_bits(StringId id) const = 0;

  /// Fixed per-message overhead: message-kind tag plus the authenticated
  /// sender identity (channels are authenticated, Section 2.1).
  std::size_t header_bits() const { return kKindTagBits + node_id_bits(); }

  static constexpr std::size_t kKindTagBits = 4;
};

class Payload {
 public:
  virtual ~Payload() = default;

  /// Encoded size of this payload's fields, excluding the common header.
  virtual std::size_t bit_size(const Wire& wire) const = 0;

  /// Stable short name used for per-kind traffic metrics ("push", "fw1"...).
  virtual const char* kind() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Safe downcast for received payloads; returns nullptr on kind mismatch.
template <typename T>
const T* payload_cast(const Payload* p) {
  return dynamic_cast<const T*>(p);
}

}  // namespace fba::sim
