#include "net/recovery.h"

#include <algorithm>

namespace fba::sim {

namespace {

/// Wrap-safe "g is strictly newer than ref" over the u16 generation ring.
bool gen_after(std::uint16_t g, std::uint16_t ref) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(g - ref)) > 0;
}

}  // namespace

void RecoveryState::configure(const RecoveryPlan& plan, std::size_t n,
                              double rto_floor) {
  plan_ = plan;
  rto_floor_ = rto_floor;
  const double cap = std::max(plan_.rto_cap, rto_floor_);
  rto_base_ = plan_.rto_initial > 0
                  ? std::clamp(plan_.rto_initial, rto_floor_, cap)
                  : rto_floor_;
  srtt_ = 0;
  live_ = 0;
  // Keep pool capacity across trials but reset every slot: gens restart at
  // 0 so reruns are deterministic. Pre-size the pool to the typical
  // in-flight window (~4 messages per node) so warm steady state never
  // allocates; overflow grows geometrically via track().
  const std::size_t reserve = std::max<std::size_t>(64, 4 * n);
  if (slots_.size() < reserve) {
    slots_.resize(reserve);
    delivered_gen_.resize(reserve);
  }
  free_.clear();
  free_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i > 0; --i) {
    slots_[i - 1] = Slot{};
    delivered_gen_[i - 1] = 0;
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

RecoveryState::Slot& RecoveryState::slot_of(RecoveryTag tag) {
  FBA_ASSERT(tag.slot1 >= 1 && tag.slot1 <= slots_.size(),
             "recovery tag indexes outside the slot pool");
  return slots_[tag.slot1 - 1];
}

const RecoveryState::Slot& RecoveryState::slot_of(RecoveryTag tag) const {
  FBA_ASSERT(tag.slot1 >= 1 && tag.slot1 <= slots_.size(),
             "recovery tag indexes outside the slot pool");
  return slots_[tag.slot1 - 1];
}

RecoveryTag RecoveryState::track(const Envelope& env, double now) {
  if (free_.empty()) {
    // Amortized growth only when the whole pool is in flight — past the
    // pre-sized window this is rare and never on the warm steady path.
    const std::size_t old = slots_.size();
    const std::size_t grown = std::max<std::size_t>(64, old * 2);
    slots_.resize(grown);
    delivered_gen_.resize(grown, 0);
    free_.reserve(grown);
    for (std::size_t i = grown; i > old; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t index = free_.back();
  free_.pop_back();
  Slot& slot = slots_[index];
  // Gen 0 is the untracked sentinel in delivered_gen_, so skip it on wrap.
  if (++slot.gen == 0) ++slot.gen;
  slot.env = env;
  slot.sent_at = now;
  slot.rto = rto_base_;
  slot.retries = 0;
  slot.live = true;
  ++live_;
  return RecoveryTag{index + 1, slot.gen};
}

void RecoveryState::free_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  FBA_ASSERT(slot.live, "freeing a recovery slot that is not live");
  slot.live = false;
  --live_;
  free_.push_back(index);
}

RecoveryState::TimeoutAction RecoveryState::on_timeout(RecoveryTag tag) {
  Slot& slot = slot_of(tag);
  if (!slot.live || slot.gen != tag.gen) return TimeoutAction::kStale;
  if (slot.retries >= plan_.max_retries) {
    free_slot(tag.slot1 - 1);
    return TimeoutAction::kDead;
  }
  ++slot.retries;
  const double cap = std::max(plan_.rto_cap, rto_floor_);
  slot.rto = std::min(slot.rto * plan_.backoff, cap);
  return TimeoutAction::kRetry;
}

bool RecoveryState::on_ack(RecoveryTag tag, double now) {
  if (tag.slot1 == 0 || tag.slot1 > slots_.size()) return false;
  Slot& slot = slots_[tag.slot1 - 1];
  if (!slot.live || slot.gen != tag.gen) return false;  // stale / duplicate
  if (slot.retries == 0) {
    // Karn's rule: only unambiguous (first-attempt) round trips feed the
    // estimator. One global srtt, not per link — every link shares the
    // engine's delay model.
    const double sample = std::max(now - slot.sent_at, 0.0);
    srtt_ = srtt_ == 0 ? sample
                       : srtt_ + plan_.srtt_gain * (sample - srtt_);
    const double cap = std::max(plan_.rto_cap, rto_floor_);
    rto_base_ = std::clamp(srtt_ * plan_.srtt_mult, rto_floor_, cap);
    if (plan_.rto_initial > 0) {
      rto_base_ = std::max(rto_base_,
                           std::clamp(plan_.rto_initial, rto_floor_, cap));
    }
  }
  free_slot(tag.slot1 - 1);
  return true;
}

bool RecoveryState::should_deliver(RecoveryTag tag) {
  FBA_ASSERT(tag.slot1 >= 1 && tag.slot1 <= delivered_gen_.size(),
             "recovery delivery tag outside the slot pool");
  std::uint16_t& last = delivered_gen_[tag.slot1 - 1];
  if (last != 0 && !gen_after(tag.gen, last)) return false;
  last = tag.gen;
  return true;
}

const Envelope& RecoveryState::envelope_of(RecoveryTag tag) const {
  const Slot& slot = slot_of(tag);
  FBA_ASSERT(slot.live && slot.gen == tag.gen,
             "envelope_of on a freed or reused recovery slot");
  return slot.env;
}

void RecoveryState::note_resend(RecoveryTag tag, double now) {
  Slot& slot = slot_of(tag);
  FBA_ASSERT(slot.live && slot.gen == tag.gen,
             "note_resend on a freed or reused recovery slot");
  slot.env.send_time = now;
  slot.env.fault_delay = 0;  // the fault layer re-stamps the retransmission
}

double RecoveryState::current_rto(RecoveryTag tag) const {
  const Slot& slot = slot_of(tag);
  return slot.rto;
}

}  // namespace fba::sim
