// Reliable-channel recovery sublayer: per-link ack/retransmit under both
// engines' one shared send path (EngineBase::send_from).
//
// The paper (Section 2.1) assumes reliable authenticated channels; the
// fault layer (net/fault.h) breaks that assumption on purpose. This layer
// re-earns it at runtime and makes the cost measurable in the paper's own
// currency, bits/node: every recoverable send is tracked in a pooled slot,
// armed with a retransmit timer (engine timer machinery, not actor timers),
// and retransmitted — through the fault layer again, so a retransmission is
// just as exposed to loss/partition/churn as the original — until the
// receiving engine's ack lands or the bounded retry budget runs out, after
// which the send is declared dead and counted.
//
// Timeouts adapt: the initial RTO comes from the engine's delay model (the
// sync engines' fixed 2-round data+ack pipeline; the async engine's delay
// bound), acked first-attempt round trips feed a smoothed RTT estimate
// (retransmitted sends are never sampled — Karn's rule — since their acks
// cannot be attributed to one attempt), and each retry backs off
// exponentially up to a cap.
//
// Everything is engine-level transport: actors and adversary strategies
// never see acks or duplicate deliveries, and with the layer off (the
// default RecoveryPlan) every engine behaves bit-identically to a build
// without it.
#pragma once

#include <cstdint>
#include <vector>

#include "net/envelope.h"
#include "support/types.h"

namespace fba::sim {

/// Pure configuration of the recovery sublayer; carried by value in run
/// configs (aer::AerConfig) like FaultPlan. Default-constructed = off.
struct RecoveryPlan {
  bool enabled = false;

  /// Initial retransmission timeout. 0 = auto: the engine's RTO floor (the
  /// shortest interval that cannot fire before an in-flight ack under that
  /// engine's delay model). Explicit values are clamped to that floor too —
  /// a sub-floor RTO would retransmit messages whose acks are still in
  /// flight on a loss-free link.
  double rto_initial = 0;
  /// Upper bound on the backed-off RTO (rounds / time units).
  double rto_cap = 32.0;
  /// Multiplicative backoff per retry.
  double backoff = 2.0;
  /// Retransmissions allowed per send before it is declared dead.
  std::size_t max_retries = 8;

  /// Smoothed-RTT update gain (srtt += gain * (sample - srtt)).
  double srtt_gain = 0.125;
  /// Adaptive RTO = clamp(srtt * srtt_mult, floor, rto_cap).
  double srtt_mult = 1.5;

  bool empty() const { return !enabled; }
};

/// Runtime state of the recovery sublayer for one engine run: a flat pooled
/// slot table (no steady-state allocation — slots grow amortized and are
/// reused through a free list), the receiver-side dedup generations, and
/// the global smoothed-RTT estimate. Owned by EngineBase; all policy
/// decisions live here, all side effects (metrics, requeueing, timer
/// scheduling) stay in the engine.
class RecoveryState {
 public:
  /// (Re)initializes for a fresh run, keeping pool capacity (trial-arena
  /// reuse). `rto_floor` is the owning engine's delay-model floor.
  void configure(const RecoveryPlan& plan, std::size_t n, double rto_floor);

  /// Registers one recoverable send and returns its tag; the caller arms a
  /// retransmit timer for timer_token(tag) after current_rto(tag).
  RecoveryTag track(const Envelope& env, double now);

  /// The armed timer's token: engines stash it in a sentinel timer event
  /// (kRecoveryTimerNode) and hand it back to on_timer_token on firing.
  static std::uint64_t timer_token(RecoveryTag tag) {
    return (static_cast<std::uint64_t>(tag.slot1) << 16) | tag.gen;
  }
  static RecoveryTag tag_of_token(std::uint64_t token) {
    return RecoveryTag{static_cast<std::uint32_t>(token >> 16),
                       static_cast<std::uint16_t>(token & 0xffffu)};
  }

  /// Retransmit timer fired. kStale: the slot was acked (and possibly
  /// reused) since the timer was armed — ignore (lazy cancellation).
  /// kRetry: the slot's retry count and RTO were advanced; resend
  /// envelope_of(tag) and re-arm after current_rto(tag). kDead: the retry
  /// budget is exhausted; the slot was freed — count the loss.
  enum class TimeoutAction { kStale, kRetry, kDead };
  TimeoutAction on_timeout(RecoveryTag tag);

  /// An ack for `tag` reached the sender. Returns false for a stale ack
  /// (slot already freed or reused — a duplicate ack after a retransmit
  /// race). On success frees the slot and, for first-attempt sends, feeds
  /// the round trip into the smoothed RTO (Karn's rule).
  bool on_ack(RecoveryTag tag, double now);

  /// Receiver-side dedup: true exactly once per (slot, gen) — the first
  /// copy is delivered to the actor, retransmitted duplicates are
  /// suppressed (but still acked, since the previous ack may have been
  /// lost).
  bool should_deliver(RecoveryTag tag);

  /// The tracked envelope (valid while the slot is live — between track()
  /// and the freeing ack/death). send_time is rewritten to the retransmit
  /// time by note_resend.
  const Envelope& envelope_of(RecoveryTag tag) const;
  /// Stamps the retransmission's send time (the engine re-runs the fault
  /// and observe taps against this time).
  void note_resend(RecoveryTag tag, double now);

  /// The slot's current (backed-off) RTO.
  double current_rto(RecoveryTag tag) const;

  std::size_t live_slots() const { return live_; }
  const RecoveryPlan& plan() const { return plan_; }

 private:
  struct Slot {
    Envelope env;
    double sent_at = 0;  ///< first-attempt send time (RTT sampling).
    double rto = 0;
    std::uint32_t retries = 0;
    std::uint16_t gen = 0;  ///< persists across reuse; 0 never issued.
    bool live = false;
  };
  Slot& slot_of(RecoveryTag tag);
  const Slot& slot_of(RecoveryTag tag) const;
  void free_slot(std::uint32_t index);

  RecoveryPlan plan_;
  double rto_floor_ = 1.0;
  double rto_base_ = 1.0;  ///< adaptive initial RTO for new sends.
  double srtt_ = 0;        ///< 0 = no sample yet.

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< reusable slot indices (LIFO).
  /// Receiver dedup: last gen delivered per slot, compared with
  /// wrap-safe serial arithmetic (a slot cycles through gens as it is
  /// reused; a newer gen is a new send, an equal/older one a duplicate).
  std::vector<std::uint16_t> delivered_gen_;
  std::size_t live_ = 0;
};

}  // namespace fba::sim
