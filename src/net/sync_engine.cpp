#include "net/sync_engine.h"

#include <algorithm>
#include <cmath>

#include "adversary/adversary.h"

namespace fba::sim {

namespace {

// Same-round delivery classes (EventQueue pri). Messages before timers; a
// rushing adversary's corrupt-origin traffic before correct traffic.
constexpr std::uint32_t kPriCorruptSend = 0;
constexpr std::uint32_t kPriSend = 1;
constexpr std::uint32_t kPriTimer = 2;

}  // namespace

SyncEngine::SyncEngine(const SyncConfig& config)
    : EngineBase(config.n, config.seed),
      config_(config),
      queue_(EventQueue::Mode::kBuckets) {}

void SyncEngine::reset(const SyncConfig& config) {
  reset_base(config.n, config.seed);
  config_ = config;
  current_round_ = 0;
  queue_.clear();
  due_.clear();
  beyond_horizon_ = 0;
  burst_source_ = nullptr;
  round_progress_ = nullptr;
}

void SyncEngine::queue_envelope(const Envelope& env, RecoveryTag rec) {
  // Sent during round r, delivered during round r+1 — plus any whole rounds
  // of fault-layer jitter. Horizon culling: a message that could only be
  // delivered after the last executable round is charged but not queued.
  const auto extra = env.fault_delay > 0
                         ? static_cast<Round>(std::ceil(env.fault_delay))
                         : Round{0};
  const Round at = current_round_ + 1 + extra;
  if (at > config_.max_rounds) {
    ++beyond_horizon_;
    return;
  }
  // The delivery class is decided at send time: a runtime corruption
  // (corrupt_now) upgrades only the victim's *future* sends — messages it
  // sent while still correct keep the correct-traffic lane.
  const bool rushed = config_.rushing_adversary && corrupt_[env.src];
  queue_.push_message(static_cast<SimTime>(at),
                      rushed ? kPriCorruptSend : kPriSend, env, rec);
}

void SyncEngine::queue_recovery_timer(double delay, std::uint64_t token) {
  const auto rounds = static_cast<Round>(std::max(1.0, std::ceil(delay)));
  const Round at = current_round_ + rounds;
  if (at > config_.max_rounds) {
    ++beyond_horizon_;
    return;
  }
  queue_.push_timer(static_cast<SimTime>(at), kPriTimer, kRecoveryTimerNode,
                    token);
}

void SyncEngine::queue_burst(const Envelope& env) {
  FBA_ASSERT(burst_source_ != nullptr, "queue_burst without a burst source");
  // Bursts carry no fault-layer jitter (the scale path runs fault-free), so
  // delivery is plain next-round. Same horizon cull as queue_envelope: the
  // caller already charged the expanded sends, and one suppressed descriptor
  // is enough to keep the quiescence stop honest.
  const Round at = current_round_ + 1;
  if (at > config_.max_rounds) {
    ++beyond_horizon_;
    return;
  }
  const bool rushed = config_.rushing_adversary && corrupt_[env.src];
  queue_.push_burst(static_cast<SimTime>(at),
                    rushed ? kPriCorruptSend : kPriSend, env);
}

void SyncEngine::queue_timer(NodeId node, double delay, std::uint64_t token) {
  const auto rounds = static_cast<Round>(std::max(1.0, std::ceil(delay)));
  const Round at = current_round_ + rounds;
  if (at > config_.max_rounds) {  // could only fire after the horizon
    ++beyond_horizon_;
    return;
  }
  queue_.push_timer(static_cast<SimTime>(at), kPriTimer, node, token);
}

SyncResult SyncEngine::run(const std::function<bool()>& done) {
  SyncResult result;

  strategy_setup();
  // Round 0: every correct node's initial step.
  const bool rushing = config_.rushing_adversary;
  auto adversary_turn = [&](Round round) {
    if (strategy_ != nullptr) {
      adv::AdvContext actx(*this);
      strategy_->on_round(actx, round, rushing);
    }
  };

  if (!rushing) adversary_turn(0);
  for (NodeId id = 0; id < n_; ++id) start_actor(id);
  if (rushing) adversary_turn(0);

  while (current_round_ < config_.max_rounds) {
    if (done()) {
      result.completed = true;
      break;
    }
    // Culled beyond-horizon events suppress the quiescence stop: an engine
    // that queued them would keep its round clock running to max_rounds.
    if (queue_.empty() && beyond_horizon_ == 0 &&
        current_round_ >= config_.min_rounds) {
      result.quiescent = true;
      break;
    }
    ++current_round_;

    if (!rushing) adversary_turn(current_round_);
    // Drain the whole round: corrupt-origin sends, correct sends, then due
    // timers, each class in FIFO order. The default path batches into the
    // reusable scratch vector; round_drain visits the round in place (and
    // re-expands burst descriptors at delivery time).
    auto dispatch = [&](const EventQueue::Event& ev) {
      if (ev.is_timer) {
        // The sentinel check must come before fire_timer: the recovery
        // sublayer's timer node indexes no actor or corrupt-set entry.
        if (ev.timer_node == kRecoveryTimerNode) {
          on_recovery_timeout(ev.timer_token);
        } else {
          fire_timer(ev.timer_node, ev.timer_token);
        }
      } else if (ev.is_burst) {
        burst_source_->expand(ev.env, *this);
      } else {
        deliver(ev.env, ev.rec());
      }
    };
    if (config_.round_drain) {
      queue_.drain_due(static_cast<SimTime>(current_round_), dispatch);
    } else {
      queue_.pop_due(static_cast<SimTime>(current_round_), due_);
      for (const EventQueue::Event& ev : due_) dispatch(ev);
    }
    for (NodeId id = 0; id < n_; ++id) {
      if (corrupt_[id]) continue;
      Context ctx(*this, id, now(), node_rng(id));
      actors_[id]->on_round(ctx, current_round_);
    }
    if (rushing) adversary_turn(current_round_);
    if (round_progress_) round_progress_(current_round_, queue_.size());
  }

  if (!result.completed && done()) result.completed = true;
  result.rounds = current_round_;
  return result;
}

}  // namespace fba::sim
