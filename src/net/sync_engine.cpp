#include "net/sync_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "adversary/adversary.h"

namespace fba::sim {

SyncEngine::SyncEngine(const SyncConfig& config)
    : EngineBase(config.n, config.seed), config_(config) {}

void SyncEngine::queue_envelope(Envelope env) {
  next_round_.push_back(std::move(env));
}

void SyncEngine::queue_timer(NodeId node, double delay, std::uint64_t token) {
  const auto rounds = static_cast<Round>(std::max(1.0, std::ceil(delay)));
  timers_.push_back(Timer{current_round_ + rounds, node, token});
}

SyncResult SyncEngine::run(const std::function<bool()>& done) {
  SyncResult result;

  strategy_setup();
  // Round 0: every correct node's initial step.
  const bool rushing = config_.rushing_adversary;
  auto adversary_turn = [&](Round round) {
    if (strategy_ != nullptr) {
      adv::AdvContext actx(*this);
      strategy_->on_round(actx, round, rushing);
    }
  };

  if (!rushing) adversary_turn(0);
  for (NodeId id = 0; id < n_; ++id) start_actor(id);
  if (rushing) adversary_turn(0);

  while (current_round_ < config_.max_rounds) {
    if (done()) {
      result.completed = true;
      break;
    }
    if (next_round_.empty() && timers_.empty() &&
        current_round_ >= config_.min_rounds) {
      result.quiescent = true;
      break;
    }
    ++current_round_;

    std::deque<Envelope> inbox = std::exchange(next_round_, {});
    if (rushing && !corrupt_list_.empty()) {
      // The rushing adversary wins same-round delivery races.
      std::stable_partition(
          inbox.begin(), inbox.end(),
          [this](const Envelope& env) { return corrupt_[env.src]; });
    }

    if (!rushing) adversary_turn(current_round_);
    for (const Envelope& env : inbox) deliver(env);
    if (!timers_.empty()) {
      std::vector<Timer> due;
      std::vector<Timer> later;
      for (const Timer& timer : timers_) {
        (timer.at <= current_round_ ? due : later).push_back(timer);
      }
      timers_ = std::move(later);
      for (const Timer& timer : due) fire_timer(timer.node, timer.token);
    }
    for (NodeId id = 0; id < n_; ++id) {
      if (corrupt_[id]) continue;
      Context ctx(*this, id, now(), node_rng(id));
      actors_[id]->on_round(ctx, current_round_);
    }
    if (rushing) adversary_turn(current_round_);
  }

  if (!result.completed && done()) result.completed = true;
  result.rounds = current_round_;
  return result;
}

}  // namespace fba::sim
