// Synchronous round-based engine: a thin timing policy over EventQueue.
//
// Timing model (Section 2.1): a message sent during round r is delivered
// during round r+1. Each round:
//   1. deliver the previous round's messages to their targets;
//   2. (non-rushing) the adversary acts for this round, blind to correct
//      traffic of the same round;
//   3. correct nodes take their round step (on_round), queueing sends;
//   4. (rushing) the adversary acts now, having observed step 3's sends.
// Everything queued in steps 2-4 forms the next round's deliveries.
//
// The round structure maps onto the shared EventQueue as priority classes
// within a round timestamp: against a rushing adversary, corrupt-origin
// messages delivered first (a rushing adversary wins same-round delivery
// races — it controls when in the round its messages leave), then correct
// traffic in send order, then due timers in schedule order.
#pragma once

#include <functional>
#include <vector>

#include "net/event_queue.h"
#include "net/network.h"

namespace fba::sim {

struct SyncConfig {
  std::size_t n = 0;
  std::uint64_t seed = 1;
  bool rushing_adversary = true;
  Round max_rounds = 10000;
  /// Round-scheduled protocols (phase king, the AE tournament) progress on
  /// the round clock even through silent rounds (e.g. a corrupt king says
  /// nothing): quiescence only stops the run after this many rounds.
  Round min_rounds = 0;
  /// Scale mode: drain each round in place (EventQueue::drain_due) instead
  /// of copying it into the per-round scratch vector. Delivery order is
  /// identical; a million-node round avoids holding the round twice.
  bool round_drain = false;
};

struct SyncResult {
  Round rounds = 0;       ///< rounds executed before stopping.
  bool completed = false; ///< the done-predicate fired.
  bool quiescent = false; ///< stopped because no messages were in flight.
};

class SyncEngine;

/// Re-expands burst descriptors (EventQueue::push_burst) at delivery time.
/// The producer that queued the burst knows how to enumerate its individual
/// deliveries in the exact order the per-send path would have queued them;
/// it hands each one to SyncEngine::deliver_expanded.
class BurstSource {
 public:
  virtual ~BurstSource() = default;
  virtual void expand(const Envelope& burst, SyncEngine& engine) = 0;
};

class SyncEngine : public EngineBase {
 public:
  explicit SyncEngine(const SyncConfig& config);

  /// Re-initializes for a fresh run with construction semantics, keeping
  /// the event ring / scratch / metrics storage (trial-arena reuse).
  void reset(const SyncConfig& config);

  double now() const override {
    return static_cast<double>(current_round_);
  }
  Round current_round() const { return current_round_; }
  /// Pending-event high-water mark since the last reset (memory accounting).
  std::size_t queue_peak() const { return queue_.peak_size(); }

  /// Runs rounds until `done` returns true, the network goes quiescent, or
  /// max_rounds elapse. `done` is evaluated at the end of every round.
  SyncResult run(const std::function<bool()>& done);

  /// Timers fire at round current + ceil(delay), before on_round.
  void queue_timer(NodeId node, double delay, std::uint64_t token) override;

  /// Installs the expander for burst descriptors (non-owning; reset()
  /// clears it). Required before any queue_burst call.
  void set_burst_source(BurstSource* source) { burst_source_ = source; }

  /// Queues one burst descriptor for next-round delivery, with the same
  /// horizon cull as queue_envelope. The caller charges metrics for the
  /// expanded sends itself (send-time charging, like EngineBase::send_from);
  /// this only schedules the descriptor. env.src picks the priority lane.
  void queue_burst(const Envelope& env);

  /// Delivery entry point for BurstSource::expand: routes one expanded
  /// envelope through the normal delivery path (corrupt-destination tap or
  /// actor on_message).
  void deliver_expanded(const Envelope& env) { deliver(env); }

  /// Per-round progress hook (round just executed, events still pending) —
  /// lets long single-point scale trials report in-trial progress instead
  /// of going silent for minutes. Cleared by reset().
  using RoundProgress = std::function<void(Round, std::size_t)>;
  void set_round_progress(RoundProgress cb) { round_progress_ = std::move(cb); }

 private:
  void queue_envelope(const Envelope& env, RecoveryTag rec) override;
  /// Recovery retransmit timers ride the timer lane at round
  /// current + max(1, ceil(delay)) under the sentinel kRecoveryTimerNode.
  void queue_recovery_timer(double delay, std::uint64_t token) override;
  /// Data sent round r delivers in r+1; its ack delivers in r+2, in the
  /// message lane — one round before a 2-round timer fires in the timer
  /// lane of r+2. Anything below 2 could beat a loss-free ack.
  double recovery_rto_floor() const override { return 2.0; }

  SyncConfig config_;
  Round current_round_ = 0;
  EventQueue queue_;
  std::vector<EventQueue::Event> due_;  ///< per-round scratch, reused.
  /// Sends/timers culled because they could only fire after max_rounds.
  /// They are fully charged (metrics, adversary tap) but never queued;
  /// nonzero culls suppress the quiescence stop so round counts match an
  /// engine that kept them.
  std::uint64_t beyond_horizon_ = 0;
  BurstSource* burst_source_ = nullptr;  ///< non-owning.
  RoundProgress round_progress_;
};

}  // namespace fba::sim
