#include "sampler/hash_sampler.h"

namespace fba::sampler {

HashQuorumSampler::HashQuorumSampler(const SamplerParams& params,
                                     std::uint64_t domain_tag)
    : params_(params),
      key_(derive_key(SipKey{params.setup_seed, ~params.setup_seed},
                      domain_tag)) {
  FBA_REQUIRE(params.d >= 1, "quorum size must be positive");
}

Quorum HashQuorumSampler::quorum(StringKey s, NodeId x) const {
  std::vector<NodeId> members;
  members.reserve(params_.d);
  for (std::size_t k = 0; k < params_.d; ++k) {
    const std::uint64_t h = siphash_words(
        key_, {s, static_cast<std::uint64_t>(x), static_cast<std::uint64_t>(k)});
    members.push_back(static_cast<NodeId>(h % params_.n));
  }
  return make_quorum(std::move(members));
}

std::vector<NodeId> HashQuorumSampler::targets(StringKey s, NodeId y) const {
  std::vector<NodeId> out;
  for (NodeId x = 0; x < params_.n; ++x) {
    if (quorum(s, x).contains(y)) out.push_back(x);
  }
  return out;
}

std::vector<std::size_t> HashQuorumSampler::slot_loads(StringKey s) const {
  std::vector<std::size_t> loads(params_.n, 0);
  for (NodeId x = 0; x < params_.n; ++x) {
    for (NodeId member : quorum(s, x).members) ++loads[member];
  }
  return loads;
}

}  // namespace fba::sampler
