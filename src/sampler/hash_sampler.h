// Ablation: the naive hash-based quorum sampler.
//
// The obvious way to build I and H is d independent hash draws per (s, x):
//   I(s, x) = { hash(s, x, k) mod n : k in [d] }.
// It has two costs the permutation construction (sampler.h) avoids:
//   1. finding the push targets { x : y in I(s, x) } requires scanning all
//      n quorums — O(n d) evaluations instead of O(d);
//   2. per-string slot loads are Binomial(n d, 1/n) ~ Poisson(d), so some
//      node is overloaded by a log n / log log n factor — Lemma 1's
//      "no x is overloaded" only holds up to that slack, not exactly.
// This module exists to quantify both effects (tests and
// bench_micro_primitives); protocols use the permutation sampler.
#pragma once

#include <vector>

#include "sampler/sampler.h"

namespace fba::sampler {

class HashQuorumSampler {
 public:
  HashQuorumSampler(const SamplerParams& params, std::uint64_t domain_tag);

  std::size_t n() const { return params_.n; }
  std::size_t d() const { return params_.d; }

  Quorum quorum(StringKey s, NodeId x) const;

  /// { x : y in I(s, x) } by exhaustive inversion — O(n d) evaluations.
  std::vector<NodeId> targets(StringKey s, NodeId y) const;

  /// Per-node slot loads |I^{-1}(s, y)| for one string — the Lemma 1
  /// overload distribution (exactly d everywhere for the permutation
  /// sampler; Poisson(d)-spread here).
  std::vector<std::size_t> slot_loads(StringKey s) const;

 private:
  SamplerParams params_;
  SipKey key_;
};

}  // namespace fba::sampler
