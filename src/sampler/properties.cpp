#include "sampler/properties.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace fba::sampler {

OverloadReport check_overload(const QuorumSampler& sampler, StringKey s) {
  const std::size_t n = sampler.n();
  std::vector<std::size_t> load(n, 0);
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId member : sampler.quorum(s, x).members) ++load[member];
  }
  OverloadReport r;
  r.min_load = *std::min_element(load.begin(), load.end());
  r.max_load = *std::max_element(load.begin(), load.end());
  std::uint64_t total = 0;
  for (auto v : load) total += v;
  r.mean_load = static_cast<double>(total) / static_cast<double>(n);
  return r;
}

double bad_quorum_fraction(const QuorumSampler& sampler, StringKey s,
                           const std::vector<bool>& good) {
  const std::size_t n = sampler.n();
  FBA_REQUIRE(good.size() == n, "good-set size must match n");
  std::size_t bad = 0;
  for (NodeId x = 0; x < n; ++x) {
    const Quorum q = sampler.quorum(s, x);
    std::size_t good_slots = 0;
    for (NodeId member : q.members) {
      if (good[member]) ++good_slots;
    }
    if (good_slots * 2 <= q.size()) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(n);
}

double bad_label_fraction(const PollSampler& sampler,
                          const std::vector<bool>& good, std::size_t samples,
                          Rng& rng) {
  FBA_REQUIRE(good.size() == sampler.n(), "good-set size must match n");
  std::size_t bad = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const NodeId x = rng.node(sampler.n());
    const PollLabel r = sampler.random_label(rng);
    const Quorum q = sampler.poll_list(x, r);
    std::size_t good_slots = 0;
    for (NodeId member : q.members) {
      if (good[member]) ++good_slots;
    }
    if (good_slots * 2 <= q.size()) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(samples);
}

namespace {

/// Border contribution of one poll list against the current L* node set.
std::size_t outside_count(const Quorum& q,
                          const std::vector<bool>& in_lstar) {
  std::size_t out = 0;
  for (NodeId member : q.members) {
    if (!in_lstar[member]) ++out;
  }
  return out;
}

BorderReport finalize(const PollSampler& sampler,
                      const std::vector<std::pair<NodeId, PollLabel>>& set,
                      const std::vector<bool>& in_lstar) {
  BorderReport r;
  r.set_size = set.size();
  for (const auto& [x, label] : set) {
    r.border += outside_count(sampler.poll_list(x, label), in_lstar);
  }
  const double denom =
      static_cast<double>(sampler.d()) * static_cast<double>(set.size());
  r.ratio = denom > 0 ? static_cast<double>(r.border) / denom : 0;
  return r;
}

}  // namespace

BorderReport random_border(const PollSampler& sampler, std::size_t set_size,
                           Rng& rng) {
  const std::size_t n = sampler.n();
  FBA_REQUIRE(set_size <= n, "|L| cannot exceed n (one label per node)");
  std::vector<bool> in_lstar(n, false);
  std::vector<std::pair<NodeId, PollLabel>> set;
  set.reserve(set_size);
  for (auto x : rng.sample_without_replacement(n, set_size)) {
    in_lstar[x] = true;
    set.emplace_back(static_cast<NodeId>(x), sampler.random_label(rng));
  }
  return finalize(sampler, set, in_lstar);
}

BorderReport greedy_adversarial_border(const PollSampler& sampler,
                                       std::size_t set_size,
                                       std::size_t labels_per_node, Rng& rng) {
  const std::size_t n = sampler.n();
  FBA_REQUIRE(set_size <= n, "|L| cannot exceed n (one label per node)");
  FBA_REQUIRE(labels_per_node >= 1, "need at least one label per candidate");

  std::vector<bool> in_lstar(n, false);
  std::vector<bool> used(n, false);
  std::vector<std::pair<NodeId, PollLabel>> set;
  set.reserve(set_size);

  // Greedy cornering: at each step, consider a sample of unused nodes; for
  // each, scan labels_per_node labels and keep the list pointing most inside
  // the current L*. Add the overall best. This mimics the overload-chain
  // adversary of Lemma 6 trying to keep poll lists trapped inside L.
  const std::size_t candidate_pool = std::min<std::size_t>(n, 64);
  while (set.size() < set_size) {
    NodeId best_x = 0;
    PollLabel best_r = 0;
    std::size_t best_outside = std::numeric_limits<std::size_t>::max();
    std::size_t scanned = 0;
    for (std::size_t attempt = 0;
         attempt < candidate_pool * 4 && scanned < candidate_pool;
         ++attempt) {
      const NodeId x = rng.node(n);
      if (used[x]) continue;
      ++scanned;
      for (std::size_t j = 0; j < labels_per_node; ++j) {
        const PollLabel r = sampler.random_label(rng);
        const std::size_t outside =
            outside_count(sampler.poll_list(x, r), in_lstar);
        if (outside < best_outside) {
          best_outside = outside;
          best_x = x;
          best_r = r;
        }
      }
    }
    if (scanned == 0) break;  // all nodes used (set_size ~ n)
    used[best_x] = true;
    in_lstar[best_x] = true;
    set.emplace_back(best_x, best_r);
  }
  return finalize(sampler, set, in_lstar);
}

}  // namespace fba::sampler
