// Empirical verification of the sampler properties the analysis rests on.
//
// The paper proves these by the probabilistic method (Lemma 1 via [KLST11],
// Lemma 2 via the random-digraph counting argument of Section 4.1 /
// Figure 3). Our samplers are keyed pseudorandom constructions, so the
// checkers here play the role of the existence proofs: they measure, over a
// concrete instance, how close the instance is to the guaranteed bounds.
// They power tests and bench_fig3_expansion.
#pragma once

#include <cstdint>
#include <vector>

#include "sampler/sampler.h"
#include "support/random.h"

namespace fba::sampler {

/// Lemma 1 ("no x is overloaded"): distribution of |I^{-1}(s, y)| — how many
/// quorum slots node y occupies for string s. With the permutation
/// construction this is exactly d for every (s, y); the checker verifies it.
struct OverloadReport {
  std::size_t min_load = 0;
  std::size_t max_load = 0;
  double mean_load = 0;
};
OverloadReport check_overload(const QuorumSampler& sampler, StringKey s);

/// Fraction of nodes x whose quorum Q(s, x) has at most half of its slots in
/// `good` — the quorums the adversary "wins" for string s. The sampler
/// property says this fraction stays near the binomial tail, independent of
/// which nodes are good.
double bad_quorum_fraction(const QuorumSampler& sampler, StringKey s,
                           const std::vector<bool>& good);

/// Lemma 2 Property 1: fraction of (x, r) labels whose poll list J(x, r)
/// contains a minority of good nodes, estimated over `samples` random
/// labels.
double bad_label_fraction(const PollSampler& sampler,
                          const std::vector<bool>& good, std::size_t samples,
                          Rng& rng);

/// Lemma 2 Property 2 (border expansion, Figure 3): for a set L of labeled
/// vertices (at most one label per node, |L| <= n / log n),
///     border(L) = sum over (x,r) in L of |J(x,r) \ L*|
/// must exceed (2/3) * d * |L|. BorderProbe builds L either uniformly at
/// random or adversarially (greedy: each step adds the (x, r) minimizing its
/// own border contribution, scanning `labels_per_node` labels per candidate
/// node — the strongest polynomial-time "cornering" attempt we give the
/// adversary).
struct BorderReport {
  std::size_t set_size = 0;        ///< |L|
  std::uint64_t border = 0;        ///< |∂L|
  double ratio = 0;                ///< |∂L| / (d * |L|), bound: > 2/3.
};

BorderReport random_border(const PollSampler& sampler, std::size_t set_size,
                           Rng& rng);

BorderReport greedy_adversarial_border(const PollSampler& sampler,
                                       std::size_t set_size,
                                       std::size_t labels_per_node, Rng& rng);

}  // namespace fba::sampler
