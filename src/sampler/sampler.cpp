#include "sampler/sampler.h"

#include <algorithm>
#include <cmath>

namespace fba::sampler {

SamplerParams SamplerParams::defaults(std::size_t n, std::uint64_t setup_seed,
                                      double c_d) {
  FBA_REQUIRE(n >= 2, "sampler domain needs at least two nodes");
  SamplerParams p;
  p.n = n;
  const double log2n = std::log2(static_cast<double>(n));
  p.d = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::lround(c_d * log2n)));
  p.label_bits = 2 * node_id_bits(n);  // |R| = n^2, polynomial in n.
  p.setup_seed = setup_seed;
  return p;
}

bool Quorum::contains(NodeId y) const {
  return std::binary_search(sorted.begin(), sorted.end(), y);
}

std::size_t Quorum::multiplicity(NodeId y) const {
  const auto range = std::equal_range(sorted.begin(), sorted.end(), y);
  return static_cast<std::size_t>(range.second - range.first);
}

Quorum make_quorum(std::vector<NodeId> members) {
  Quorum q;
  q.sorted = members;
  q.members = std::move(members);
  std::sort(q.sorted.begin(), q.sorted.end());
  return q;
}

QuorumSampler::QuorumSampler(const SamplerParams& params,
                             std::uint64_t domain_tag)
    : params_(params),
      key_(derive_key(SipKey{params.setup_seed, ~params.setup_seed},
                      domain_tag)) {
  FBA_REQUIRE(params.d >= 1, "quorum size must be positive");
}

FeistelPermutation QuorumSampler::slot_permutation(StringKey s,
                                                   std::size_t slot) const {
  // One independent bijection per (string, slot): key derived from both.
  SipKey slot_key;
  slot_key.k0 = siphash_words(key_, {s, static_cast<std::uint64_t>(slot), 0});
  slot_key.k1 = siphash_words(key_, {s, static_cast<std::uint64_t>(slot), 1});
  return FeistelPermutation(params_.n, slot_key);
}

Quorum QuorumSampler::quorum(StringKey s, NodeId x) const {
  std::vector<NodeId> members;
  members.reserve(params_.d);
  for (std::size_t k = 0; k < params_.d; ++k) {
    members.push_back(
        static_cast<NodeId>(slot_permutation(s, k).inverse(x)));
  }
  return make_quorum(std::move(members));
}

std::vector<NodeId> QuorumSampler::targets(StringKey s, NodeId y) const {
  std::vector<NodeId> out;
  out.reserve(params_.d);
  for (std::size_t k = 0; k < params_.d; ++k) {
    out.push_back(static_cast<NodeId>(slot_permutation(s, k).forward(y)));
  }
  return out;
}

PollSampler::PollSampler(const SamplerParams& params, std::uint64_t domain_tag)
    : params_(params),
      key_(derive_key(SipKey{params.setup_seed, ~params.setup_seed},
                      domain_tag)) {
  FBA_REQUIRE(params.d >= 1, "poll list size must be positive");
  FBA_REQUIRE(params.label_bits >= 1 && params.label_bits < 63,
              "label domain must be polynomial and non-trivial");
}

Quorum PollSampler::poll_list(NodeId x, PollLabel r) const {
  std::vector<NodeId> members;
  members.reserve(params_.d);
  for (std::size_t k = 0; k < params_.d; ++k) {
    members.push_back(member(x, r, k));
  }
  return make_quorum(std::move(members));
}

NodeId PollSampler::member(NodeId x, PollLabel r, std::size_t k) const {
  const std::uint64_t h = siphash_words(
      key_, {static_cast<std::uint64_t>(x), r, static_cast<std::uint64_t>(k)});
  return static_cast<NodeId>(h % params_.n);
}

PollLabel PollSampler::random_label(Rng& rng) const {
  return rng.next() & ((1ull << params_.label_bits) - 1);
}

namespace {
// Distinct domain tags so the three samplers do not correlate.
constexpr std::uint64_t kPushTag = 0x4920707573680000ull;  // "I push"
constexpr std::uint64_t kPullTag = 0x482070756c6c0000ull;  // "H pull"
constexpr std::uint64_t kPollTag = 0x4a20706f6c6c0000ull;  // "J poll"
}  // namespace

SamplerSuite::SamplerSuite(const SamplerParams& p)
    : params(p),
      push(p, kPushTag),
      pull(p, kPullTag),
      poll(p, kPollTag) {}

void SamplerSuite::reset(const SamplerParams& p) {
  params = p;
  push = QuorumSampler(p, kPushTag);
  pull = QuorumSampler(p, kPullTag);
  poll = PollSampler(p, kPollTag);
}

}  // namespace fba::sampler
