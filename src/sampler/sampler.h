// Samplers (Section 2.2): the middle ground between deterministic quorums
// (corruptible) and uniformly random ones (unverifiable / high complexity).
// Quorum choice is directed by deterministically-known information (string
// content, node identity) plus public setup randomness, exactly as in the
// paper: all nodes share three sampling functions I, H and J.
//
//   I : D x [n] -> [n]^d   Push Quorums.  I(s,x) is the set of nodes allowed
//                          to push string s to x (Section 3.1.1).
//   H : D x [n] -> [n]^d   Pull Quorums, same properties (Lemma 1), used as
//                          forwarding proxies in the pull phase.
//   J : [n] x R -> [n]^d   Poll Lists (Lemma 2), the authoritative samples
//                          a node polls to verify a candidate string.
//
// I and H are built from families of keyed bijections sigma_{s,k} so that
// both directions are O(d):
//     I(s,x)                 = { sigma^{-1}_{s,k}(x) : k in [d] }
//     {x : y in I(s,x)}      = { sigma_{s,k}(y)      : k in [d] }
// and every node occupies exactly d quorum slots per string — Lemma 1's
// "no node is overloaded" holds by construction.
//
// J is built from keyed hashing; its Lemma 2 properties (few bad labels,
// border expansion) hold w.h.p. for a random construction — the content of
// Section 4.1 — and are checked empirically in sampler/properties.h.
#pragma once

#include <cstdint>
#include <vector>

#include "support/permutation.h"
#include "support/random.h"
#include "support/siphash.h"
#include "support/types.h"

namespace fba::sampler {

/// Strings are identified by their content digest: samplers are functions of
/// the candidate string itself, not of any run-local id.
using StringKey = std::uint64_t;

struct SamplerParams {
  std::size_t n = 0;
  std::size_t d = 0;           ///< quorum size, Theta(log n).
  std::uint32_t label_bits = 0; ///< |R| = 2^label_bits, polynomial in n.
  std::uint64_t setup_seed = 1; ///< public setup randomness.

  /// d = max(8, round(c_d * log2 n)), |R| = n^2.
  static SamplerParams defaults(std::size_t n, std::uint64_t setup_seed,
                                double c_d = 1.5);
};

/// A quorum as an evaluated multiset: `members` in slot order (size d, may
/// repeat), plus a sorted copy for O(log d) membership tests.
struct Quorum {
  std::vector<NodeId> members;
  std::vector<NodeId> sorted;

  bool contains(NodeId y) const;
  /// Number of slots occupied by y (multiset multiplicity).
  std::size_t multiplicity(NodeId y) const;
  std::size_t size() const { return members.size(); }
};

Quorum make_quorum(std::vector<NodeId> members);

/// Push / Pull quorums (the samplers I and H). Instantiate two with
/// different domain tags.
class QuorumSampler {
 public:
  QuorumSampler(const SamplerParams& params, std::uint64_t domain_tag);

  std::size_t n() const { return params_.n; }
  std::size_t d() const { return params_.d; }

  /// I(s, x): the d nodes allowed to push/route string s to node x.
  Quorum quorum(StringKey s, NodeId x) const;

  /// { x : y in I(s, x) }: the d nodes y must contact when diffusing s.
  std::vector<NodeId> targets(StringKey s, NodeId y) const;

  /// The keyed bijection sigma_{s,slot}. Deriving it costs two SipHash
  /// evaluations; sampler::SharedTables caches all d of them per string so
  /// bulk quorum evaluation pays the derivation once, not once per lookup.
  FeistelPermutation slot_permutation(StringKey s, std::size_t slot) const;

 private:
  SamplerParams params_;
  SipKey key_;
};

/// Poll lists (the sampler J).
class PollSampler {
 public:
  PollSampler(const SamplerParams& params, std::uint64_t domain_tag);

  std::size_t n() const { return params_.n; }
  std::size_t d() const { return params_.d; }
  std::uint32_t label_bits() const { return params_.label_bits; }
  std::uint64_t label_count() const { return 1ull << params_.label_bits; }

  /// J(x, r): the poll list of node x under label r.
  Quorum poll_list(NodeId x, PollLabel r) const;

  /// Slot k of J(x, r) — the raw keyed-hash draw, for bulk evaluation into
  /// preallocated rows (sampler::SharedTables).
  NodeId member(NodeId x, PollLabel r, std::size_t k) const;

  /// Uniform label from R (each node draws one per candidate string).
  PollLabel random_label(Rng& rng) const;

 private:
  SamplerParams params_;
  SipKey key_;
};

/// The three shared sampling functions, bundled (every node knows all
/// three; they are public setup). The memoized dense-table front-end the
/// protocol hot paths read through lives in sampler/tables.h
/// (sampler::SharedTables); the samplers themselves stay cheap value
/// objects — constructing a suite derives three keys and nothing else.
struct SamplerSuite {
  SamplerSuite(const SamplerParams& params);

  /// Re-keys the suite in place (trial-arena reuse: a fresh trial's setup
  /// randomness without reconstructing the owning AerShared).
  void reset(const SamplerParams& params);

  SamplerParams params;
  QuorumSampler push;   ///< I
  QuorumSampler pull;   ///< H
  PollSampler poll;     ///< J
};

}  // namespace fba::sampler
