// Samplers (Section 2.2): the middle ground between deterministic quorums
// (corruptible) and uniformly random ones (unverifiable / high complexity).
// Quorum choice is directed by deterministically-known information (string
// content, node identity) plus public setup randomness, exactly as in the
// paper: all nodes share three sampling functions I, H and J.
//
//   I : D x [n] -> [n]^d   Push Quorums.  I(s,x) is the set of nodes allowed
//                          to push string s to x (Section 3.1.1).
//   H : D x [n] -> [n]^d   Pull Quorums, same properties (Lemma 1), used as
//                          forwarding proxies in the pull phase.
//   J : [n] x R -> [n]^d   Poll Lists (Lemma 2), the authoritative samples
//                          a node polls to verify a candidate string.
//
// I and H are built from families of keyed bijections sigma_{s,k} so that
// both directions are O(d):
//     I(s,x)                 = { sigma^{-1}_{s,k}(x) : k in [d] }
//     {x : y in I(s,x)}      = { sigma_{s,k}(y)      : k in [d] }
// and every node occupies exactly d quorum slots per string — Lemma 1's
// "no node is overloaded" holds by construction.
//
// J is built from keyed hashing; its Lemma 2 properties (few bad labels,
// border expansion) hold w.h.p. for a random construction — the content of
// Section 4.1 — and are checked empirically in sampler/properties.h.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/permutation.h"
#include "support/random.h"
#include "support/siphash.h"
#include "support/types.h"

namespace fba::sampler {

/// Strings are identified by their content digest: samplers are functions of
/// the candidate string itself, not of any run-local id.
using StringKey = std::uint64_t;

struct SamplerParams {
  std::size_t n = 0;
  std::size_t d = 0;           ///< quorum size, Theta(log n).
  std::uint32_t label_bits = 0; ///< |R| = 2^label_bits, polynomial in n.
  std::uint64_t setup_seed = 1; ///< public setup randomness.

  /// d = max(8, round(c_d * log2 n)), |R| = n^2.
  static SamplerParams defaults(std::size_t n, std::uint64_t setup_seed,
                                double c_d = 1.5);
};

/// A quorum as an evaluated multiset: `members` in slot order (size d, may
/// repeat), plus a sorted copy for O(log d) membership tests.
struct Quorum {
  std::vector<NodeId> members;
  std::vector<NodeId> sorted;

  bool contains(NodeId y) const;
  /// Number of slots occupied by y (multiset multiplicity).
  std::size_t multiplicity(NodeId y) const;
  std::size_t size() const { return members.size(); }
};

Quorum make_quorum(std::vector<NodeId> members);

/// Push / Pull quorums (the samplers I and H). Instantiate two with
/// different domain tags.
class QuorumSampler {
 public:
  QuorumSampler(const SamplerParams& params, std::uint64_t domain_tag);

  std::size_t n() const { return params_.n; }
  std::size_t d() const { return params_.d; }

  /// I(s, x): the d nodes allowed to push/route string s to node x.
  Quorum quorum(StringKey s, NodeId x) const;

  /// { x : y in I(s, x) }: the d nodes y must contact when diffusing s.
  std::vector<NodeId> targets(StringKey s, NodeId y) const;

 private:
  FeistelPermutation slot_permutation(StringKey s, std::size_t slot) const;

  SamplerParams params_;
  SipKey key_;
};

/// Poll lists (the sampler J).
class PollSampler {
 public:
  PollSampler(const SamplerParams& params, std::uint64_t domain_tag);

  std::size_t n() const { return params_.n; }
  std::size_t d() const { return params_.d; }
  std::uint32_t label_bits() const { return params_.label_bits; }
  std::uint64_t label_count() const { return 1ull << params_.label_bits; }

  /// J(x, r): the poll list of node x under label r.
  Quorum poll_list(NodeId x, PollLabel r) const;

  /// Uniform label from R (each node draws one per candidate string).
  PollLabel random_label(Rng& rng) const;

 private:
  SamplerParams params_;
  SipKey key_;
};

/// Memoizing wrapper: protocol hot paths (Fw1/Fw2 membership checks) ask for
/// the same quorums repeatedly; single-threaded simulation makes a plain
/// hash-map cache safe and effective.
class QuorumCache {
 public:
  explicit QuorumCache(const QuorumSampler& sampler) : sampler_(sampler) {}

  const Quorum& get(StringKey s, NodeId x) const;
  bool contains(StringKey s, NodeId x, NodeId member) const {
    return get(s, x).contains(member);
  }
  std::size_t size() const { return cache_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const std::pair<StringKey, NodeId>& k) const {
      return std::hash<std::uint64_t>()(k.first * 0x9e3779b97f4a7c15ull +
                                        k.second);
    }
  };
  const QuorumSampler& sampler_;
  mutable std::unordered_map<std::pair<StringKey, NodeId>, Quorum, KeyHash>
      cache_;
};

class PollCache {
 public:
  explicit PollCache(const PollSampler& sampler) : sampler_(sampler) {}

  const Quorum& get(NodeId x, PollLabel r) const;
  bool contains(NodeId x, PollLabel r, NodeId member) const {
    return get(x, r).contains(member);
  }
  std::size_t size() const { return cache_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const std::pair<NodeId, PollLabel>& k) const {
      return std::hash<std::uint64_t>()(k.second * 0x9e3779b97f4a7c15ull +
                                        k.first);
    }
  };
  const PollSampler& sampler_;
  mutable std::unordered_map<std::pair<NodeId, PollLabel>, Quorum, KeyHash>
      cache_;
};

/// The three shared sampling functions, bundled (every node knows all
/// three; they are public setup).
struct SamplerSuite {
  SamplerSuite(const SamplerParams& params);

  SamplerParams params;
  QuorumSampler push;   ///< I
  QuorumSampler pull;   ///< H
  PollSampler poll;     ///< J
};

}  // namespace fba::sampler
