#include "sampler/tables.h"

#include <algorithm>

namespace fba::sampler {

// Quorum-row layout in the arena, stride = 1 + 3d NodeIds:
//   [0]              distinct_count
//   [1, 1+d)         members in slot order
//   [1+d, 1+2d)      sorted copy
//   [1+2d, 1+3d)     first-seen-order distinct members (distinct_count used)
// Poll rows prepend a 4-entry identity header (see PollTable::row).
namespace {

constexpr std::uint32_t quorum_stride(std::size_t d) {
  return static_cast<std::uint32_t>(1 + 3 * d);
}

/// Fills the sorted and distinct regions from the slot-order members.
/// `row` points at the distinct_count entry (layout above).
void finish_row(NodeId* row, std::size_t d) {
  NodeId* slots = row + 1;
  NodeId* sorted = row + 1 + d;
  NodeId* distinct = row + 1 + 2 * d;
  std::copy(slots, slots + d, sorted);
  // Insertion sort: d is Theta(log n) (a dozen or two entries), where this
  // beats std::sort's dispatch overhead on every row build.
  for (std::size_t i = 1; i < d; ++i) {
    const NodeId v = sorted[i];
    std::size_t j = i;
    while (j > 0 && sorted[j - 1] > v) {
      sorted[j] = sorted[j - 1];
      --j;
    }
    sorted[j] = v;
  }
  std::uint32_t dc = 0;
  for (std::size_t k = 0; k < d; ++k) {
    const NodeId m = slots[k];
    bool seen = false;
    for (std::uint32_t j = 0; j < dc; ++j) {
      if (distinct[j] == m) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct[dc++] = m;
  }
  row[0] = dc;
}

QuorumView view_of_row(const NodeId* data, std::size_t d) {
  QuorumView v;
  v.distinct_count = data[0];
  v.slots = data + 1;
  v.sorted = data + 1 + d;
  v.distinct = data + 1 + 2 * d;
  v.d = static_cast<std::uint32_t>(d);
  return v;
}

}  // namespace

// ----- RowArena --------------------------------------------------------------

void RowArena::reset(std::uint32_t stride) {
  stride_ = std::max<std::uint32_t>(1, stride);
  FBA_ASSERT(stride_ <= kChunkElems, "sampler row stride exceeds chunk size");
  // Rows per chunk: the largest power of two that fits a fixed-size chunk,
  // so chunks allocated under one stride are reusable under any other.
  std::uint32_t rows = 1;
  while (rows * 2 * stride_ <= kChunkElems) rows *= 2;
  shift_ = 0;
  while ((1u << shift_) < rows) ++shift_;
  mask_ = rows - 1;
  count_ = 0;
}

std::uint32_t RowArena::make_row() {
  const std::uint32_t index = count_++;
  const std::size_t chunk = index >> shift_;
  if (chunk >= chunks_.size()) {
    chunks_.emplace_back(std::make_unique<NodeId[]>(kChunkElems));
  }
  return index;
}

// ----- QuorumTable -----------------------------------------------------------

void QuorumTable::reset(const QuorumSampler* sampler, std::size_t n) {
  sampler_ = sampler;
  n_ = n;
  ++epoch_;
  index_.clear();
  arena_.reset(quorum_stride(sampler->d()));
}

QuorumTable::Slab& QuorumTable::activate(std::uint32_t sid,
                                         StringKey key) const {
  if (sid >= slabs_.size()) slabs_.resize(sid + 1);
  Slab& slab = slabs_[sid];
  if (slab.trial_epoch != epoch_) {
    slab.trial_epoch = epoch_;
    slab.key = key;
    const std::size_t d = sampler_->d();
    slab.perms.clear();
    slab.perms.reserve(d);
    for (std::size_t k = 0; k < d; ++k) {
      slab.perms.push_back(sampler_->slot_permutation(key, k));
    }
  }
  return slab;
}

QuorumView QuorumTable::row(std::uint32_t sid, StringKey key, NodeId x) const {
  Slab& slab = activate(sid, key);
  // Dense StringIds stay far below 2^32 - 1, so the packed key can never
  // collide with FlatMap64's all-ones empty sentinel.
  std::uint32_t& entry =
      index_.get_or_create(static_cast<std::uint64_t>(sid) << 32 | x);
  if (entry == 0) {  // get_or_create zero-initializes: 0 = not built.
    const std::uint32_t idx = arena_.make_row();
    NodeId* data = arena_.row(idx);
    const std::size_t d = sampler_->d();
    for (std::size_t k = 0; k < d; ++k) {
      // I(s, x) = { sigma^{-1}_{s,k}(x) }, as QuorumSampler::quorum.
      data[1 + k] = static_cast<NodeId>(slab.perms[k].inverse(x));
    }
    finish_row(data, d);
    entry = idx + 1;
  }
  return view_of_row(arena_.row(entry - 1), sampler_->d());
}

void QuorumTable::targets(std::uint32_t sid, StringKey key, NodeId y,
                          std::vector<NodeId>& out) const {
  Slab& slab = activate(sid, key);
  out.clear();
  out.reserve(slab.perms.size());
  for (const FeistelPermutation& perm : slab.perms) {
    out.push_back(static_cast<NodeId>(perm.forward(y)));
  }
}

// ----- PollTable -------------------------------------------------------------

// Poll rows carry a 4-entry identity header before the quorum layout:
//   [0] x   [1] r low 32   [2] r high 32   [3] next row in the hash chain
// The open-addressed index maps a 64-bit mix of (x, r) to a chain head; the
// header check resolves mixes that collide (labels are 64-bit on the wire —
// a corrupt sender can put anything there — so (x, r) does not pack
// injectively into 64 bits).
namespace {
constexpr std::uint32_t kPollHeader = 4;
constexpr std::uint32_t kNoRow = 0xffffffffu;

constexpr std::uint32_t poll_stride(std::size_t d) {
  return kPollHeader + quorum_stride(d);
}

std::uint64_t poll_mix(NodeId x, PollLabel r) {
  const std::uint64_t mix =
      r * 0x100000001b3ull + static_cast<std::uint64_t>(x);
  // FlatMap64 reserves the all-ones key as its empty sentinel; remap that
  // one mix to a fixed key (a forged label can reach any 64-bit value, and
  // the chain header disambiguates shared keys anyway).
  return mix == support::FlatMap64<std::uint32_t>::kEmptyKey ? 0x706f6c6cull
                                                             : mix;
}
}  // namespace

void PollTable::reset(const PollSampler* sampler, std::size_t n) {
  (void)n;
  sampler_ = sampler;
  index_.clear();
  arena_.reset(poll_stride(sampler->d()));
}

QuorumView PollTable::row(NodeId x, PollLabel r) const {
  const std::size_t d = sampler_->d();
  std::uint32_t& head = index_.get_or_create(poll_mix(x, r));
  // get_or_create zero-initializes fresh entries; shift indices by one so 0
  // means "no chain yet".
  std::uint32_t idx = head == 0 ? kNoRow : head - 1;
  while (idx != kNoRow) {
    const NodeId* data = arena_.row(idx);
    if (data[0] == x &&
        (static_cast<std::uint64_t>(data[2]) << 32 | data[1]) == r) {
      return view_of_row(data + kPollHeader, d);
    }
    idx = data[3];
  }
  idx = arena_.make_row();
  NodeId* data = arena_.row(idx);
  data[0] = x;
  data[1] = static_cast<NodeId>(r & 0xffffffffu);
  data[2] = static_cast<NodeId>(r >> 32);
  data[3] = head == 0 ? kNoRow : head - 1;
  head = idx + 1;
  for (std::size_t k = 0; k < d; ++k) {
    data[kPollHeader + 1 + k] = sampler_->member(x, r, k);
  }
  finish_row(data + kPollHeader, d);
  return view_of_row(data + kPollHeader, d);
}

}  // namespace fba::sampler
