// SharedTables: the dense, read-mostly sampler front-end the protocol hot
// paths evaluate quorums through.
//
// The samplers I, H and J (sampler.h) are pure functions of public setup
// randomness; a run evaluates the same quorums over and over (every push
// delivery checks I(s, self), every Fw1 checks two H rows and one poll
// list). The old QuorumCache memoized them in an
// unordered_map<(StringKey, NodeId), Quorum> — one hash probe plus two
// heap-allocated vectors per distinct quorum, and two SipHash evaluations
// of *key derivation* per slot per on-demand build.
//
// SharedTables replaces that with dense slabs:
//
//   - QuorumTable: per interned string (dense StringId), the d keyed slot
//     permutations are derived once and cached; quorum rows are built
//     lazily per (string, node) into flat chunked storage indexed by
//     row_of[x] — a lookup is one array index, no hashing. Each row stores
//     the slot-order members, a sorted copy (O(log d) membership /
//     multiplicity, identical semantics to sampler::Quorum), and the
//     first-seen-order distinct member list the send loops iterate (what
//     aer/node.cpp used to recompute — with a fresh vector — per send).
//   - PollTable: poll lists are keyed by (node, label) with labels drawn
//     from the huge domain R, so rows sit behind one open-addressed probe
//     instead of a dense index; storage is the same chunked slab.
//
// Rows live in chunked arenas, so views handed out stay valid while later
// lookups build further rows, and reset() keeps every buffer for the next
// trial — after a warm-up trial the tables allocate nothing (the trial-arena
// zero-allocation contract, bench_micro_primitives::BM_WarmTrialAllocations).
//
// Sharing and mutability: one SharedTables instance is shared read-mostly by
// all n simulated nodes of a trial (it lives in aer::AerShared). Lazy row
// fill makes it logically const but not thread-safe; that is fine because a
// trial is single-threaded — exp::Sweep parallelism is across trials, each
// with its own arena. Sampler setup randomness is drawn per trial seed
// (public setup is re-sampled every run), so what is shared *across* trials
// of a sweep point is the storage, not the contents — rebuilding contents
// into warm storage is what makes per-trial sampler setup a cheap re-key
// instead of an allocation storm.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sampler/sampler.h"
#include "support/flat_map.h"
#include "support/permutation.h"

namespace fba::sampler {

/// A borrowed view of one evaluated quorum row. Valid until the owning
/// table is reset. Mirrors sampler::Quorum's query semantics exactly.
struct QuorumView {
  const NodeId* slots = nullptr;     ///< d members in slot order.
  const NodeId* sorted = nullptr;    ///< the same members, ascending.
  const NodeId* distinct = nullptr;  ///< first-seen-order distinct members.
  std::uint32_t d = 0;
  std::uint32_t distinct_count = 0;

  std::size_t size() const { return d; }

  bool contains(NodeId y) const {
    return multiplicity(y) > 0;
  }

  /// Number of slots occupied by y (multiset multiplicity).
  std::size_t multiplicity(NodeId y) const {
    // Binary search over the sorted copy, as Quorum::multiplicity does.
    std::size_t lo = 0, hi = d;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (sorted[mid] < y) lo = mid + 1;
      else hi = mid;
    }
    std::size_t count = 0;
    while (lo + count < d && sorted[lo + count] == y) ++count;
    return count;
  }
};

/// Chunked row arena: fixed-capacity NodeId blocks, pointer-stable across
/// growth, fully reused across reset().
class RowArena {
 public:
  /// Rows of `stride` NodeIds each from now on; keeps existing chunks.
  void reset(std::uint32_t stride);

  /// Allocates one row; returns its index (stable addressing via row()).
  std::uint32_t make_row();

  NodeId* row(std::uint32_t index) {
    return chunks_[index >> shift_].get() + (index & mask_) * stride_;
  }
  const NodeId* row(std::uint32_t index) const {
    return chunks_[index >> shift_].get() + (index & mask_) * stride_;
  }

  std::uint32_t rows() const { return count_; }

 private:
  static constexpr std::uint32_t kChunkElems = 1u << 16;  ///< 256 KiB chunks.

  std::vector<std::unique_ptr<NodeId[]>> chunks_;
  std::uint32_t stride_ = 1;
  std::uint32_t shift_ = 0;  ///< log2(rows per chunk)
  std::uint32_t mask_ = 0;   ///< rows per chunk - 1
  std::uint32_t count_ = 0;  ///< rows handed out
};

/// Dense per-string quorum slabs for one QuorumSampler (I or H).
class QuorumTable {
 public:
  /// Binds to `sampler` for a domain of `n` nodes; keeps all storage.
  void reset(const QuorumSampler* sampler, std::size_t n);

  /// The quorum I(s, x) for the interned string `sid` whose content digest
  /// is `key` (AerShared::key_of). Built on first touch; O(1) after.
  QuorumView row(std::uint32_t sid, StringKey key, NodeId x) const;

  /// { x : y in I(s, x) } via the cached slot permutations, written into
  /// `out` (cleared first; capacity reuse).
  void targets(std::uint32_t sid, StringKey key, NodeId y,
               std::vector<NodeId>& out) const;

  /// Rows materialized so far (tests / diagnostics).
  std::size_t rows_built() const { return arena_.rows(); }
  /// String slabs ever activated (memory accounting).
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct Slab {
    std::uint64_t trial_epoch = 0;            ///< activation marker
    StringKey key = 0;
    std::vector<FeistelPermutation> perms;    ///< d cached sigma_{s,k}
  };

  Slab& activate(std::uint32_t sid, StringKey key) const;

  const QuorumSampler* sampler_ = nullptr;
  std::size_t n_ = 0;
  std::uint64_t epoch_ = 0;
  mutable std::vector<Slab> slabs_;  ///< indexed by dense StringId
  /// packed (sid, x) -> arena row index + 1 (0 = not built yet). One shared
  /// probe table sized to the rows actually touched — a dense per-slab
  /// x -> row vector would cost 4n bytes PER ACTIVATED STRING, which is
  /// O(n^2) for the adversary's Theta(n) junk strings and dominated every
  /// other allocation at n >= 10^5 (docs/perf.md "scale mode").
  mutable support::FlatMap64<std::uint32_t> index_;
  mutable RowArena arena_;
};

/// Poll-list rows J(x, r) behind one open-addressed probe on the packed
/// (x, r) key.
class PollTable {
 public:
  void reset(const PollSampler* sampler, std::size_t n);

  QuorumView row(NodeId x, PollLabel r) const;

  std::size_t rows_built() const { return arena_.rows(); }

 private:
  const PollSampler* sampler_ = nullptr;
  mutable support::FlatMap64<std::uint32_t> index_;  ///< (x, r) -> row
  mutable RowArena arena_;
};

/// The bundle AerShared owns: dense front-ends for I, H and J.
struct SharedTables {
  QuorumTable push;  ///< I
  QuorumTable pull;  ///< H
  PollTable poll;    ///< J

  /// Re-binds to a (re-keyed) suite; all storage is kept.
  void reset(const SamplerSuite& suite, std::size_t n) {
    push.reset(&suite.push, n);
    pull.reset(&suite.pull, n);
    poll.reset(&suite.poll, n);
  }
};

}  // namespace fba::sampler
