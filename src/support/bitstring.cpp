#include "support/bitstring.h"

#include <algorithm>

#include "support/siphash.h"

namespace fba {

BitString BitString::random(std::size_t bit_count, Rng& rng) {
  BitString s;
  s.randomize(bit_count, rng);
  return s;
}

void BitString::randomize(std::size_t bit_count, Rng& rng) {
  reset_zero(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) bits_[i] = rng.chance(0.5);
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

std::uint64_t BitString::digest() const {
  // Pack into bytes, then SipHash with a fixed public key: digests only need
  // to be stable and well-distributed, not secret. Candidate strings are
  // c * log2(n) bits, so a stack buffer covers every realistic length; the
  // heap fallback keeps pathological inputs correct (identical bytes ->
  // identical digest either way).
  static constexpr SipKey kDigestKey{0x6662612d64696765ull,
                                     0x73742d6b65792121ull};
  const std::size_t byte_count = (bits_.size() + 7) / 8;
  unsigned char stack_bytes[256];
  std::vector<unsigned char> heap_bytes;
  unsigned char* bytes = stack_bytes;
  if (byte_count > sizeof(stack_bytes)) {
    heap_bytes.resize(byte_count);
    bytes = heap_bytes.data();
  }
  std::fill(bytes, bytes + byte_count, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) bytes[i / 8] |= static_cast<unsigned char>(1u << (i % 8));
  }
  std::uint64_t len_tag = static_cast<std::uint64_t>(bits_.size());
  std::uint64_t body =
      byte_count == 0 ? 0 : siphash24(kDigestKey, bytes, byte_count);
  return siphash_words(kDigestKey, {body, len_tag});
}

std::string BitString::to_string(std::size_t max_bits) const {
  std::string out = "0b";
  const std::size_t shown = std::min(bits_.size(), max_bits);
  for (std::size_t i = 0; i < shown; ++i) out += bits_[i] ? '1' : '0';
  if (shown < bits_.size()) out += "...";
  return out;
}

BitString make_gstring(const GstringSpec& spec, const BitString& adversary_bits,
                       Rng& rng) {
  BitString s;
  make_gstring_into(spec, adversary_bits, rng, s);
  return s;
}

void make_gstring_into(const GstringSpec& spec, const BitString& adversary_bits,
                       Rng& rng, BitString& out) {
  FBA_REQUIRE(spec.length_bits > 0, "gstring length must be positive");
  FBA_REQUIRE(spec.random_fraction >= 0.0 && spec.random_fraction <= 1.0,
              "random_fraction must lie in [0, 1]");
  const auto adversarial =
      static_cast<std::size_t>(static_cast<double>(spec.length_bits) *
                               (1.0 - spec.random_fraction));
  out.reset_zero(spec.length_bits);
  for (std::size_t i = 0; i < adversarial; ++i) {
    const bool v = i < adversary_bits.size() ? adversary_bits.bit(i) : false;
    out.set_bit(i, v);
  }
  for (std::size_t i = adversarial; i < spec.length_bits; ++i) {
    out.set_bit(i, rng.chance(0.5));
  }
}

std::size_t default_gstring_bits(std::size_t n, std::size_t c) {
  return c * static_cast<std::size_t>(node_id_bits(n));
}

}  // namespace fba
