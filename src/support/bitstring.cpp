#include "support/bitstring.h"

#include <algorithm>

#include "support/siphash.h"

namespace fba {

BitString BitString::random(std::size_t bit_count, Rng& rng) {
  BitString s(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) s.bits_[i] = rng.chance(0.5);
  return s;
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

std::uint64_t BitString::digest() const {
  // Pack into bytes, then SipHash with a fixed public key: digests only need
  // to be stable and well-distributed, not secret.
  std::vector<unsigned char> bytes((bits_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) bytes[i / 8] |= static_cast<unsigned char>(1u << (i % 8));
  }
  static constexpr SipKey kDigestKey{0x6662612d64696765ull,
                                     0x73742d6b65792121ull};
  std::uint64_t len_tag = static_cast<std::uint64_t>(bits_.size());
  std::uint64_t body =
      bytes.empty() ? 0 : siphash24(kDigestKey, bytes.data(), bytes.size());
  return siphash_words(kDigestKey, {body, len_tag});
}

std::string BitString::to_string(std::size_t max_bits) const {
  std::string out = "0b";
  const std::size_t shown = std::min(bits_.size(), max_bits);
  for (std::size_t i = 0; i < shown; ++i) out += bits_[i] ? '1' : '0';
  if (shown < bits_.size()) out += "...";
  return out;
}

BitString make_gstring(const GstringSpec& spec, const BitString& adversary_bits,
                       Rng& rng) {
  FBA_REQUIRE(spec.length_bits > 0, "gstring length must be positive");
  FBA_REQUIRE(spec.random_fraction >= 0.0 && spec.random_fraction <= 1.0,
              "random_fraction must lie in [0, 1]");
  const auto adversarial =
      static_cast<std::size_t>(static_cast<double>(spec.length_bits) *
                               (1.0 - spec.random_fraction));
  BitString s(spec.length_bits);
  for (std::size_t i = 0; i < adversarial; ++i) {
    const bool v = i < adversary_bits.size() ? adversary_bits.bit(i) : false;
    s.set_bit(i, v);
  }
  for (std::size_t i = adversarial; i < spec.length_bits; ++i) {
    s.set_bit(i, rng.chance(0.5));
  }
  return s;
}

std::size_t default_gstring_bits(std::size_t n, std::size_t c) {
  return c * static_cast<std::size_t>(node_id_bits(n));
}

}  // namespace fba
