// Candidate strings ("gstring" and impostors).
//
// The agreement value in the paper is a string of c*log(n) bits of which a
// 2/3 + eps fraction is uniformly random — the remainder may be chosen by
// the adversary (gstring is assembled by an almost-everywhere protocol in
// which Byzantine committee members contribute some bits). BitString models
// such values; make_gstring() builds one with an adversary-chosen prefix
// fraction, mirroring how ae::Tournament actually assembles it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.h"
#include "support/types.h"

namespace fba {

class BitString {
 public:
  BitString() = default;
  explicit BitString(std::size_t bit_count) : bits_(bit_count, false) {}

  static BitString random(std::size_t bit_count, Rng& rng);

  /// In-place variant of random(): same draws, reuses this string's
  /// storage (trial-arena paths rebuild scratch strings every trial).
  void randomize(std::size_t bit_count, Rng& rng);

  /// Resets to `bit_count` zero bits, keeping storage.
  void reset_zero(std::size_t bit_count) { bits_.assign(bit_count, false); }

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  bool bit(std::size_t i) const { return bits_.at(i); }
  void set_bit(std::size_t i, bool v) { bits_.at(i) = v; }

  void append(bool v) { bits_.push_back(v); }
  void append(const BitString& other);

  bool operator==(const BitString& other) const = default;

  /// Stable 64-bit digest (used for interning and hashing).
  std::uint64_t digest() const;

  /// "0b1011..." rendering, truncated with an ellipsis when long.
  std::string to_string(std::size_t max_bits = 24) const;

 private:
  std::vector<bool> bits_;
};

/// Parameters governing gstring synthesis when AER runs stand-alone (when
/// composed in ba::run_ba the tournament produces the string instead).
struct GstringSpec {
  std::size_t length_bits = 0;       ///< c * log2(n); set by callers.
  double random_fraction = 2.0 / 3;  ///< fraction of uniformly random bits.
};

/// Builds a gstring whose first (1 - random_fraction) bits are supplied by
/// `adversary_bits` (padded/truncated as needed) and the rest drawn from
/// `rng`. Matches the paper's precondition that only 2/3 + eps of the bits
/// need to be random.
BitString make_gstring(const GstringSpec& spec, const BitString& adversary_bits,
                       Rng& rng);

/// In-place variant (same draws as make_gstring, storage reused via `out`).
void make_gstring_into(const GstringSpec& spec, const BitString& adversary_bits,
                       Rng& rng, BitString& out);

/// Default gstring length for an n-node system: c * ceil(log2 n) bits.
std::size_t default_gstring_bits(std::size_t n, std::size_t c = 4);

}  // namespace fba
