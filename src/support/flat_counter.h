// Flat sorted-vector replacements for the std::map tallies in the ae/
// protocols (phase-king exchange counts, echo-committee vote sets).
//
// The tallies are tiny (distinct values <= committee size) and touched once
// per delivered message; a sorted vector beats a red-black tree on both the
// increment and the lookup while keeping *identical iteration order*
// (ascending by value — the order std::map iterated in, which
// ae::AeNode::assemble depends on when picking the first majority
// candidate). clear() keeps capacity so arena-reused actors stay
// allocation-free once warm.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/types.h"

namespace fba::support {

/// value -> count multiset tally. Drop-in for the `++counts[value]` pattern.
class TallyCounter {
 public:
  using Entry = std::pair<std::uint64_t, std::size_t>;

  /// ++count for `value`; returns the new count.
  std::size_t increment(std::uint64_t value) {
    const auto it = lower_bound(value);
    if (it != entries_.end() && it->first == value) return ++it->second;
    entries_.insert(it, {value, 1});
    return 1;
  }

  std::size_t count(std::uint64_t value) const {
    const auto it = lower_bound(value);
    return it != entries_.end() && it->first == value ? it->second : 0;
  }

  void clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }
  std::size_t distinct() const { return entries_.size(); }

  /// Entries in ascending value order (the std::map iteration order).
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry>::iterator lower_bound(std::uint64_t value) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), value,
        [](const Entry& e, std::uint64_t v) { return e.first < v; });
  }
  std::vector<Entry>::const_iterator lower_bound(std::uint64_t value) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), value,
        [](const Entry& e, std::uint64_t v) { return e.first < v; });
  }

  std::vector<Entry> entries_;
};

/// value -> voter-list map, iterated in ascending value order. Replaces
/// std::map<std::uint64_t, std::vector<NodeId>> in the final-slice vote
/// tally; voter lists keep their capacity across clear().
class VoteSet {
 public:
  struct Entry {
    std::uint64_t value = 0;
    std::vector<NodeId> voters;
  };

  /// The voter list for `value`, created empty on first sight.
  std::vector<NodeId>& voters(std::uint64_t value) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), value,
        [](const Entry& e, std::uint64_t v) { return e.value < v; });
    if (it != entries_.end() && it->value == value) return it->voters;
    // Reuse a spare entry's capacity when one is available (from clear()).
    if (spare_.empty()) {
      return entries_.insert(it, Entry{value, {}})->voters;
    }
    Entry e = std::move(spare_.back());
    spare_.pop_back();
    e.value = value;
    e.voters.clear();
    return entries_.insert(it, std::move(e))->voters;
  }

  void clear() {
    for (Entry& e : entries_) spare_.push_back(std::move(e));
    entries_.clear();
  }
  bool empty() const { return entries_.empty(); }

  /// Entries in ascending value order (the std::map iteration order).
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
  std::vector<Entry> spare_;
};

}  // namespace fba::support
