// Open-addressed hash containers for the simulator's per-delivery state.
//
// FlatMap64 / FlatSet64 replace std::unordered_map / set on lookup-heavy
// protocol hot paths: one flat slot array, linear probing, power-of-two
// capacity, no per-entry allocation. clear() keeps capacity, so per-trial
// reuse performs no heap work once warm.
//
// IMPORTANT scope restriction: these containers are deliberately
// *unordered and non-iterable*. Simulation behavior depends on the order
// messages are sent, so any container whose iteration drives sends must
// keep std::unordered_map's iteration order (see aer/node.h's retained
// maps). FlatMap64 is only for state that is looked up and mutated in
// place — results are identical regardless of capacity history, which keeps
// arena-reused trials bit-identical to fresh ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/types.h"

namespace fba::support {

/// Open-addressed map from a 64-bit key to V. The key 2^64-1 is reserved as
/// the empty sentinel (never legal here: keys are StringIds or packed
/// (node, string) pairs with node < n). No erase — per-trial state is
/// cleared wholesale.
template <typename V>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops all entries, keeping capacity.
  void clear() {
    if (size_ == 0) return;
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  V* find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    for (std::size_t i = slot_of(key);; i = (i + 1) & mask_) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kEmptyKey) return nullptr;
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Returns the value for `key`, default-constructing it on first sight.
  V& get_or_create(std::uint64_t key) {
    bool unused;
    return get_or_create(key, unused);
  }
  V& get_or_create(std::uint64_t key, bool& created) {
    FBA_ASSERT(key != kEmptyKey, "FlatMap64 key collides with the sentinel");
    if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) grow();
    for (std::size_t i = slot_of(key);; i = (i + 1) & mask_) {
      if (keys_[i] == key) {
        created = false;
        return values_[i];
      }
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        values_[i] = V{};
        ++size_;
        created = true;
        return values_[i];
      }
    }
  }

 private:
  std::size_t slot_of(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) &
           mask_;
  }

  void grow() {
    const std::size_t cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, V{});
    mask_ = cap - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      for (std::size_t j = slot_of(old_keys[i]);; j = (j + 1) & mask_) {
        if (keys_[j] != kEmptyKey) continue;
        keys_[j] = old_keys[i];
        values_[j] = std::move(old_values[i]);
        ++size_;
        break;
      }
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressed membership set over 64-bit keys; same restrictions as
/// FlatMap64.
class FlatSet64 {
 public:
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }
  bool contains(std::uint64_t key) const { return map_.contains(key); }

  /// Returns true when the key was newly inserted.
  bool insert(std::uint64_t key) {
    bool created;
    map_.get_or_create(key, created);
    return created;
  }

 private:
  struct Unit {};
  FlatMap64<Unit> map_;
};

}  // namespace fba::support
