#include "support/histogram.h"

#include <algorithm>
#include <cstdio>

#include "support/types.h"

namespace fba {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets + 2, 0) {
  FBA_REQUIRE(hi > lo, "histogram range must be non-empty");
  FBA_REQUIRE(buckets >= 1, "histogram needs at least one bucket");
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double value) {
  if (count_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;

  std::size_t idx;
  if (value < lo_) {
    idx = 0;
  } else if (value >= hi_) {
    idx = buckets_.size() - 1;
  } else {
    idx = 1 + static_cast<std::size_t>((value - lo_) / bucket_width_);
    idx = std::min(idx, buckets_.size() - 2);
  }
  ++buckets_[idx];
}

double Histogram::min() const { return count_ > 0 ? min_seen_ : 0; }
double Histogram::max() const { return count_ > 0 ? max_seen_ : 0; }
double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
}

double Histogram::quantile(double q) const {
  FBA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0;
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(count_ - 1));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > target) {
      if (i == 0) return min();
      if (i == buckets_.size() - 1) return max();
      // Interpolate within the bucket by rank.
      const double frac = buckets_[i] > 1
                              ? static_cast<double>(target - seen) /
                                    static_cast<double>(buckets_[i] - 1)
                              : 0.5;
      const double left = lo_ + static_cast<double>(i - 1) * bucket_width_;
      return left + frac * bucket_width_;
    }
    seen += buckets_[i];
  }
  return max();
}

std::string Histogram::render(std::size_t width) const {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "#", "%", "@"};
  const std::size_t inner = buckets_.size() - 2;
  const std::size_t step = std::max<std::size_t>(1, inner / width);
  std::size_t peak = 1;
  for (std::size_t i = 1; i + 1 < buckets_.size(); ++i) {
    peak = std::max(peak, buckets_[i]);
  }
  std::string bars;
  for (std::size_t i = 1; i + 1 < buckets_.size(); i += step) {
    std::size_t total = 0;
    for (std::size_t j = i; j < i + step && j + 1 < buckets_.size(); ++j) {
      total += buckets_[j];
    }
    const std::size_t level =
        total == 0 ? 0 : 1 + (total * 6) / std::max<std::size_t>(1, peak);
    bars += kLevels[std::min<std::size_t>(level, 7)];
  }
  char head[96];
  std::snprintf(head, sizeof(head), "[%.2f..%.2f] |%s| n=%zu", lo_, hi_,
                bars.c_str(), count_);
  return head;
}

}  // namespace fba
