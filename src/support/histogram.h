// Fixed-bucket histogram for decision-latency distributions.
//
// Benches report not just mean/max but the shape of decision times (the
// Lemma 6 overload chain shows up as a fat upper tail before it moves the
// mean). Values are doubles; buckets are uniform over [lo, hi) with
// overflow/underflow bins.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fba {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Quantile by linear interpolation within the owning bucket; q in [0,1].
  double quantile(double q) const;

  /// One-line sparkline-style rendering: "[lo..hi] ▁▂▅█▂ n=..".
  std::string render(std::size_t width = 32) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> buckets_;  // [underflow, b0..bk-1, overflow]
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_seen_ = 0;
  double max_seen_ = 0;
};

}  // namespace fba
