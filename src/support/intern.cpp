#include "support/intern.h"

namespace fba {

StringId StringTable::intern(const BitString& s) {
  const std::uint64_t d = s.digest();
  auto& bucket = by_digest_[d];
  for (StringId id : bucket) {
    if (strings_[id] == s) return id;
  }
  const auto id = static_cast<StringId>(strings_.size());
  FBA_ASSERT(id != kNoString, "string table overflow");
  strings_.push_back(s);
  digests_.push_back(d);
  bucket.push_back(id);
  return id;
}

std::optional<StringId> StringTable::find(const BitString& s) const {
  const auto it = by_digest_.find(s.digest());
  if (it == by_digest_.end()) return std::nullopt;
  for (StringId id : it->second) {
    if (strings_[id] == s) return id;
  }
  return std::nullopt;
}

const BitString& StringTable::get(StringId id) const {
  FBA_ASSERT(id < strings_.size(), "unknown string id");
  return strings_[id];
}

std::uint64_t StringTable::digest(StringId id) const {
  FBA_ASSERT(id < digests_.size(), "unknown string id");
  return digests_[id];
}

std::size_t StringTable::bits(StringId id) const { return get(id).size(); }

}  // namespace fba
