#include "support/intern.h"

namespace fba {

namespace {
// FlatMap64 reserves the all-ones key as its empty sentinel; remap that one
// digest to an arbitrary fixed key. Two digests sharing a map key is fine —
// the per-id chain compares true digests and contents.
std::uint64_t digest_key(std::uint64_t digest) {
  return digest == support::FlatMap64<StringId>::kEmptyKey
             ? 0x66626120646967ull
             : digest;
}
}  // namespace

void StringTable::reset() {
  // next_ is a slot array parallel to strings_; its entries are overwritten
  // as slots are re-filled, so only the index and the live count reset.
  live_ = 0;
  by_digest_.clear();
}

StringId StringTable::chase(std::uint64_t digest, const BitString& s) const {
  const StringId* head = by_digest_.find(digest_key(digest));
  if (head == nullptr) return kNoString;
  for (StringId id = *head; id != kNoString; id = next_[id]) {
    if (digests_[id] == digest && strings_[id] == s) return id;
  }
  return kNoString;
}

StringId StringTable::intern(const BitString& s) {
  const std::uint64_t d = s.digest();
  bool created = false;
  StringId& head = by_digest_.get_or_create(digest_key(d), created);
  if (!created) {
    for (StringId id = head; id != kNoString; id = next_[id]) {
      if (digests_[id] == d && strings_[id] == s) return id;
    }
  }
  const auto id = static_cast<StringId>(live_);
  FBA_ASSERT(id != kNoString, "string table overflow");
  // Reuse a warm slot when one exists (BitString copy-assignment reuses the
  // slot's bit storage); grow otherwise.
  if (live_ < strings_.size()) {
    strings_[live_] = s;
    digests_[live_] = d;
    lengths_[live_] = static_cast<std::uint32_t>(s.size());
    next_[live_] = created ? kNoString : head;
  } else {
    strings_.push_back(s);
    digests_.push_back(d);
    lengths_.push_back(static_cast<std::uint32_t>(s.size()));
    next_.push_back(created ? kNoString : head);
  }
  ++live_;
  head = id;
  return id;
}

std::optional<StringId> StringTable::find(const BitString& s) const {
  const StringId id = chase(s.digest(), s);
  if (id == kNoString) return std::nullopt;
  return id;
}

const BitString& StringTable::get(StringId id) const {
  FBA_ASSERT(id < live_, "unknown string id");
  return strings_[id];
}

std::uint64_t StringTable::digest(StringId id) const {
  FBA_ASSERT(id < live_, "unknown string id");
  return digests_[id];
}

}  // namespace fba
