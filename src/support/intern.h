// String interning: candidate strings are stored once per run; protocol
// messages carry 32-bit StringIds while bit accounting uses the true encoded
// length. This keeps the O(n * d^3) pull-phase message volume cheap in
// memory without distorting the measured communication complexity.
//
// The table is built for trial-arena reuse: reset() keeps every BitString
// slot and the digest index's capacity, so re-interning a fresh trial's
// strings into a warm table performs no heap allocation. Ids are dense and
// assigned in interning order — the sampler tables (sampler/tables.h) use
// them directly as slab indices.
#pragma once

#include <optional>
#include <vector>

#include "support/bitstring.h"
#include "support/flat_map.h"
#include "support/types.h"

namespace fba {

class StringTable {
 public:
  /// Returns the id for `s`, inserting it on first sight.
  StringId intern(const BitString& s);

  /// Id for `s` if already interned.
  std::optional<StringId> find(const BitString& s) const;

  const BitString& get(StringId id) const;

  /// Content digest of the string behind `id` (cached; samplers key on it).
  std::uint64_t digest(StringId id) const;

  /// Encoded size in bits of the string behind `id` (what a real wire
  /// message would carry). Called once per sent message (wire accounting):
  /// reads a flat length cache, not the string itself.
  std::size_t bits(StringId id) const {
    FBA_ASSERT(id < live_, "unknown string id");
    return lengths_[id];
  }

  std::size_t size() const { return live_; }

  /// Empties the table, keeping all storage (slots, index, chains) for
  /// reuse by the next trial.
  void reset();

 private:
  StringId chase(std::uint64_t digest, const BitString& s) const;

  /// Interned strings; only the first `live_` slots are valid. Slots past
  /// live_ keep their capacity for reuse across reset().
  std::vector<BitString> strings_;
  std::vector<std::uint64_t> digests_;
  std::vector<std::uint32_t> lengths_;  ///< bit lengths, wire-accounting hot
  std::size_t live_ = 0;
  /// digest -> first id with that digest; same-digest ids are chained via
  /// next_ (kNoString terminates). Open-addressed: no per-entry allocation.
  support::FlatMap64<StringId> by_digest_;
  std::vector<StringId> next_;
};

}  // namespace fba
