// String interning: candidate strings are stored once per run; protocol
// messages carry 32-bit StringIds while bit accounting uses the true encoded
// length. This keeps the O(n * d^3) pull-phase message volume cheap in
// memory without distorting the measured communication complexity.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "support/bitstring.h"
#include "support/types.h"

namespace fba {

class StringTable {
 public:
  /// Returns the id for `s`, inserting it on first sight.
  StringId intern(const BitString& s);

  /// Id for `s` if already interned.
  std::optional<StringId> find(const BitString& s) const;

  const BitString& get(StringId id) const;

  /// Content digest of the string behind `id` (cached; samplers key on it).
  std::uint64_t digest(StringId id) const;

  /// Encoded size in bits of the string behind `id` (what a real wire
  /// message would carry).
  std::size_t bits(StringId id) const;

  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<BitString> strings_;
  std::vector<std::uint64_t> digests_;
  std::unordered_map<std::uint64_t, std::vector<StringId>> by_digest_;
};

}  // namespace fba
