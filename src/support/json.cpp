#include "support/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/types.h"

namespace fba::json {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ConfigError(what); }

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

void require_type(Type actual, Type wanted) {
  if (actual != wanted) {
    fail(std::string("json: expected ") + type_name(wanted) + ", got " +
         type_name(actual));
  }
}

/// Shortest round-trip number form. Integers within the double-exact range
/// print without a fractional part so counts look like counts.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    fail("json: non-finite numbers are not representable");
  }
  constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) < kExactIntLimit) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<long long>(v));
    out.append(buf, r.ptr);
    return;
  }
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail_at(const std::string& what) {
    fail("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  // Recursion bound so corrupt/adversarial input throws ConfigError
  // instead of overflowing the stack. Reports nest ~6 levels deep.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    Parser& parser;
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) {
        parser.fail_at("nesting deeper than 200 levels");
      }
    }
    ~DepthGuard() { --parser.depth_; }
  };

  Value parse_value() {
    const DepthGuard guard(*this);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail_at("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail_at("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail_at("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(fields));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(fields));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail_at("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail_at("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail_at("truncated \\u escape");
          unsigned code = 0;
          const auto r = std::from_chars(text_.data() + pos_,
                                         text_.data() + pos_ + 4, code, 16);
          if (r.ptr != text_.data() + pos_ + 4) fail_at("bad \\u escape");
          pos_ += 4;
          // Canonical writers only emit \u00xx control escapes; encode the
          // general case as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail_at("unknown escape");
      }
    }
  }

  Value parse_number() {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0;
    const auto r = std::from_chars(begin, end, v);
    if (r.ec != std::errc() || r.ptr == begin) fail_at("malformed number");
    // from_chars accepts "inf"/"nan" literals; JSON has no such numbers.
    if (!std::isfinite(v)) fail_at("non-finite number literal");
    pos_ += static_cast<std::size_t>(r.ptr - begin);
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value::Value(std::uint64_t u) : type_(Type::kNumber) {
  num_ = static_cast<double>(u);
  if (static_cast<std::uint64_t>(num_) != u) {
    fail("json: integer " + std::to_string(u) +
         " exceeds double-exact range; serialize it as a string");
  }
}

bool Value::as_bool() const {
  require_type(type_, Type::kBool);
  return bool_;
}

double Value::as_double() const {
  require_type(type_, Type::kNumber);
  return num_;
}

std::uint64_t Value::as_uint64() const {
  require_type(type_, Type::kNumber);
  // Mirror the writer's 2^53 double-exact limit; beyond it the cast would
  // be undefined behavior (and the value could not have been written by
  // dump() anyway).
  constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
  if (num_ < 0 || num_ != std::floor(num_) || num_ > kExactIntLimit) {
    fail("json: expected a non-negative integer within the double-exact"
         " range");
  }
  return static_cast<std::uint64_t>(num_);
}

const std::string& Value::as_string() const {
  require_type(type_, Type::kString);
  return str_;
}

const Value::Array& Value::as_array() const {
  require_type(type_, Type::kArray);
  return array_;
}

Value::Array& Value::as_array() {
  require_type(type_, Type::kArray);
  return array_;
}

const Value::Object& Value::as_object() const {
  require_type(type_, Type::kObject);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  require_type(type_, Type::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) fail("json: missing field \"" + std::string(key) + "\"");
  return *v;
}

void Value::set(std::string key, Value v) {
  require_type(type_, Type::kObject);
  object_.emplace_back(std::move(key), std::move(v));
}

void Value::push_back(Value v) {
  require_type(type_, Type::kArray);
  array_.push_back(std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

void Value::dump_to(std::string& out, int indent) const {
  const auto newline = [&out](int depth) {
    out += '\n';
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_quoted(out, str_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(indent + 1);
        array_[i].dump_to(out, indent + 1);
      }
      newline(indent);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(indent + 1);
        append_quoted(out, object_[i].first);
        out += ": ";
        object_[i].second.dump_to(out, indent + 1);
      }
      newline(indent);
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

Value Value::parse(std::string_view text) { return Parser(text).run(); }

std::string number_to_string(double v) {
  std::string out;
  append_number(out, v);
  return out;
}

}  // namespace fba::json
