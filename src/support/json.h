// Minimal deterministic JSON: the value type behind the report subsystem
// (exp/report.h).
//
// Design constraints, in order:
//   1. Canonical output. dump() is a pure function of the value — objects
//     keep insertion order, doubles print via std::to_chars (shortest
//     round-trip form) — so two equal values always serialize to the same
//     bytes. The report determinism contract (byte-identical files at any
//     thread count, golden diffs) rests on this.
//   2. Exact round-trip. parse(dump(v)) == v, including every double bit
//     pattern (from_chars inverts to_chars exactly), so fingerprints
//     recomputed from a parsed report match the values computed before
//     serialization.
//   3. No dependencies. A few hundred lines, no allocator tricks; report
//     files are kilobytes, not gigabytes.
//
// Not supported (reports never need them): non-finite numbers (dump throws
// ConfigError), duplicate object keys (parse keeps both, lookup finds the
// first), \u escapes beyond the BMP are passed through as raw bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fba::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  using Array = std::vector<Value>;
  /// Insertion-ordered object: order is part of the canonical form.
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  /// Rejects (throws ConfigError) integers beyond the double-exact 2^53
  /// range; serialize those as strings (seeds, fingerprints).
  Value(std::uint64_t u);
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw ConfigError on a type mismatch (reports treat
  /// malformed files as configuration errors, not crashes).
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_uint64() const;  ///< rejects negatives and non-integers.
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;

  /// Object field lookup; throws ConfigError when absent or not an object.
  const Value& at(std::string_view key) const;
  /// Null-tolerant lookup: nullptr when absent (still throws on non-object).
  const Value* find(std::string_view key) const;
  /// Appends (no duplicate-key check; canonical writers never duplicate).
  void set(std::string key, Value v);
  /// Array append.
  void push_back(Value v);

  bool operator==(const Value& other) const;

  /// Canonical serialization: 2-space indentation, '\n' line ends, object
  /// insertion order, shortest-round-trip doubles (integers up to 2^53 in
  /// integer form). Throws ConfigError on NaN/infinity.
  std::string dump() const;

  /// Strict parser (UTF-8 in, trailing garbage and non-finite number
  /// literals rejected). Throws ConfigError with a byte offset on
  /// malformed input.
  static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array array_;
  Object object_;
};

/// The canonical number form on its own (what dump() emits for a number
/// value): shortest round-trip via std::to_chars, integer form within the
/// double-exact range. Shared by the CSV/gnuplot writers so every artifact
/// of one run agrees byte-for-byte. Throws ConfigError on NaN/infinity.
std::string number_to_string(double v);

}  // namespace fba::json
