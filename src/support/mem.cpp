#include "support/mem.h"

#include <cstdio>
#include <cstring>

namespace fba::support {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:    123456 kB" — the resident high-water mark.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace fba::support
