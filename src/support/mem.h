// Memory accounting for scale-mode trials.
//
// The million-node profile makes memory a first-class metric: a trial
// reports its protocol-state footprint as bytes/node alongside bits/node
// (AerReport::mem_bytes -> exp::TrialOutcome -> exp::Aggregate -> report
// schema v2). The accounting is *logical and deterministic*: every charge
// derives from entry counts and fixed element sizes (or from capacity
// rules that are pure functions of those counts), never from allocator or
// arena state — a warm arena whose buffers carry capacity from a previous
// trial must report the same bytes as a cold run, and reports stay
// byte-identical at any thread count (the determinism contract of
// docs/output-schema.md).
//
// peak_rss_bytes() is the physical cross-check: the process-wide RSS
// high-water mark from the OS. It is printed by `fba_sim --timing` /
// `fba_repro --timing` next to the setup-vs-run split and never
// serialized (it is environment-dependent).
#pragma once

#include <cstdint>
#include <vector>

namespace fba::support {

/// Accumulator for one trial's logical protocol-state footprint. Plain sum
/// of charges; callers charge each structure once at harvest time.
class MemBudget {
 public:
  void reset() { total_ = 0; }

  void charge(std::uint64_t bytes) { total_ += bytes; }

  /// Logical footprint of a vector: elements held, not capacity (capacity
  /// is arena history, which must not leak into reported numbers).
  template <typename T>
  void charge_vector(const std::vector<T>& v) {
    charge(static_cast<std::uint64_t>(v.size()) * sizeof(T));
  }

  std::uint64_t total_bytes() const { return total_; }

  double bytes_per_node(std::size_t n) const {
    return n > 0 ? static_cast<double>(total_) / static_cast<double>(n) : 0.0;
  }

 private:
  std::uint64_t total_ = 0;
};

/// Slot count a freshly grown FlatMap64/FlatSet64 holds after `entries`
/// monotone inserts: the smallest power-of-two capacity (>= 16) satisfying
/// the 3/4 load bound. A pure function of the entry count, so charging
/// `flat_table_slots(size()) * slot_bytes` is reuse-independent.
inline std::uint64_t flat_table_slots(std::size_t entries) {
  if (entries == 0) return 0;
  std::uint64_t cap = 16;
  while (static_cast<std::uint64_t>(entries) * 4 > cap * 3) cap <<= 1;
  return cap;
}

/// Process peak resident set size in bytes (VmHWM from /proc/self/status).
/// Returns 0 when unavailable (non-Linux). Diagnostic only — never fold
/// this into reports or fingerprints.
std::uint64_t peak_rss_bytes();

}  // namespace fba::support
