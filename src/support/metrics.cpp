#include "support/metrics.h"

#include <cmath>

namespace fba {

namespace {

/// `sorted` must already hold the (unsorted) sample; sorted in place.
LoadStats summarize_sorting(std::vector<double>& sorted) {
  LoadStats s;
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size()))) - 1;
  s.p99 = sorted[std::min(idx, sorted.size() - 1)];
  return s;
}

}  // namespace

LoadStats summarize(const std::vector<double>& values) {
  std::vector<double> sorted = values;
  return summarize_sorting(sorted);
}

LoadStats summarize_u64(const std::vector<std::uint64_t>& values) {
  std::vector<double> scratch;
  return summarize_u64_into(values, scratch);
}

LoadStats summarize_u64_into(const std::vector<std::uint64_t>& values,
                             std::vector<double>& scratch) {
  scratch.clear();
  scratch.reserve(values.size());
  for (std::uint64_t v : values) scratch.push_back(static_cast<double>(v));
  return summarize_sorting(scratch);
}

void TrafficMetrics::reset(std::size_t n) {
  total_messages_ = 0;
  total_bits_ = 0;
  sent_bits_.assign(n, 0);
  received_bits_.assign(n, 0);
  sent_msgs_.assign(n, 0);
  msgs_by_kind_.fill(0);
  bits_by_kind_.fill(0);
  fault_dropped_msgs_ = 0;
  fault_dropped_bits_ = 0;
  fault_delayed_msgs_ = 0;
  drops_by_cause_.fill(0);
  recovery_retransmit_msgs_ = 0;
  recovery_retransmit_bits_ = 0;
  recovery_acked_msgs_ = 0;
  recovery_dead_msgs_ = 0;
  recovery_dup_msgs_ = 0;
}

void TrafficMetrics::on_fault_drop(std::size_t bits, sim::FaultCause cause) {
  ++fault_dropped_msgs_;
  fault_dropped_bits_ += bits;
  ++drops_by_cause_[sim::fault_cause_index(cause)];
}

void TrafficMetrics::on_message(NodeId src, NodeId dst, std::size_t bits,
                                sim::MessageKind kind) {
  ++total_messages_;
  total_bits_ += bits;
  sent_bits_[src] += bits;
  received_bits_[dst] += bits;
  ++sent_msgs_[src];
  const std::size_t k = sim::kind_index(kind);
  ++msgs_by_kind_[k];
  bits_by_kind_[k] += bits;
}

double TrafficMetrics::amortized_bits() const {
  return sent_bits_.empty()
             ? 0
             : static_cast<double>(total_bits_) /
                   static_cast<double>(sent_bits_.size());
}

LoadStats TrafficMetrics::sent_bits_stats() const {
  return summarize_u64_into(sent_bits_, stats_scratch_);
}

LoadStats TrafficMetrics::received_bits_stats() const {
  return summarize_u64_into(received_bits_, stats_scratch_);
}

void DecisionLog::reset(std::size_t n) {
  decided_.assign(n, false);
  values_.assign(n, kNoString);
  times_.assign(n, 0.0);
  repeat_decisions_ = 0;
}

void DecisionLog::record(NodeId node, StringId value, double time) {
  FBA_ASSERT(node < decided_.size(), "decision for unknown node");
  if (decided_[node]) {  // first decision wins; nodes decide once
    ++repeat_decisions_;
    return;
  }
  decided_[node] = true;
  values_[node] = value;
  times_[node] = time;
}

std::size_t DecisionLog::count_correct_decisions(
    const std::vector<NodeId>& relevant, StringId expected) const {
  std::size_t count = 0;
  for (NodeId id : relevant) {
    if (decided_.at(id) && values_.at(id) == expected) ++count;
  }
  return count;
}

std::size_t DecisionLog::count_decided(
    const std::vector<NodeId>& relevant) const {
  std::size_t count = 0;
  for (NodeId id : relevant) {
    if (decided_.at(id)) ++count;
  }
  return count;
}

double DecisionLog::completion_time(
    const std::vector<NodeId>& relevant) const {
  double latest = 0;
  for (NodeId id : relevant) {
    if (decided_.at(id)) latest = std::max(latest, times_.at(id));
  }
  return latest;
}

}  // namespace fba
