// Traffic and timing metrics.
//
// The paper's two complexity measures (Section 2.1):
//   - time: number of steps before all correct nodes return a value;
//   - communication: total bits exchanged divided by n (amortized), which
//     for non-load-balanced algorithms differs from the per-node maximum.
// TrafficMetrics tracks both, per node and per message kind, so benches can
// report amortized bits, the per-node maximum, and the load-balance ratio.
// Per-kind counters are fixed-size arrays indexed by sim::MessageKind — one
// add per send, no string hashing on the hot path.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "net/fault.h"
#include "net/message.h"
#include "support/types.h"

namespace fba {

/// Summary statistics over a set of per-node values.
struct LoadStats {
  double mean = 0;
  double max = 0;
  double min = 0;
  double p99 = 0;

  /// max / mean — ~1 for load-balanced protocols, grows under skew.
  double imbalance() const { return mean > 0 ? max / mean : 0; }
};

LoadStats summarize(const std::vector<double>& values);
LoadStats summarize_u64(const std::vector<std::uint64_t>& values);

/// Scratch-reusing variant: sorts into `scratch` instead of allocating
/// (the per-trial stats harvest on the trial-arena zero-allocation path).
LoadStats summarize_u64_into(const std::vector<std::uint64_t>& values,
                             std::vector<double>& scratch);

/// Per-kind counter array, indexed by sim::kind_index().
using KindCounters = std::array<std::uint64_t, sim::kNumMessageKinds>;

/// Per-fault-cause counter array, indexed by sim::fault_cause_index().
using FaultCounters = std::array<std::uint64_t, sim::kNumFaultCauses>;

class TrafficMetrics {
 public:
  explicit TrafficMetrics(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n);

  /// Records one message of `bits` payload+header bits from src to dst.
  void on_message(NodeId src, NodeId dst, std::size_t bits,
                  sim::MessageKind kind);

  /// Records a send the fault layer dropped (already charged via
  /// on_message — drops are bandwidth spent on traffic nobody receives).
  void on_fault_drop(std::size_t bits, sim::FaultCause cause);

  /// Records a send the fault layer delayed past its natural delivery.
  void on_fault_delay() { ++fault_delayed_msgs_; }

  // Recovery sublayer (net/recovery.h) counters. Retransmissions are also
  // charged through on_message — these isolate the layer's overhead so the
  // bit-cost of restoring the reliable-channel assumption is reportable on
  // its own.
  void on_recovery_retransmit(std::size_t bits) {
    ++recovery_retransmit_msgs_;
    recovery_retransmit_bits_ += bits;
  }
  void on_recovery_ack_landed() { ++recovery_acked_msgs_; }
  void on_recovery_dead() { ++recovery_dead_msgs_; }
  void on_recovery_duplicate() { ++recovery_dup_msgs_; }

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bits() const { return total_bits_; }

  /// Amortized communication complexity: total bits / n.
  double amortized_bits() const;

  LoadStats sent_bits_stats() const;
  LoadStats received_bits_stats() const;

  std::uint64_t sent_bits(NodeId node) const { return sent_bits_.at(node); }
  std::uint64_t received_bits(NodeId node) const {
    return received_bits_.at(node);
  }
  std::uint64_t sent_messages(NodeId node) const {
    return sent_msgs_.at(node);
  }

  const KindCounters& messages_by_kind() const { return msgs_by_kind_; }
  const KindCounters& bits_by_kind() const { return bits_by_kind_; }

  /// Fault-layer drop totals, whole-run and per cause.
  std::uint64_t fault_dropped_messages() const { return fault_dropped_msgs_; }
  std::uint64_t fault_dropped_bits() const { return fault_dropped_bits_; }
  std::uint64_t fault_delayed_messages() const { return fault_delayed_msgs_; }
  const FaultCounters& drops_by_cause() const { return drops_by_cause_; }
  std::uint64_t drops_of(sim::FaultCause cause) const {
    return drops_by_cause_[sim::fault_cause_index(cause)];
  }
  std::uint64_t messages_of(sim::MessageKind k) const {
    return msgs_by_kind_[sim::kind_index(k)];
  }
  std::uint64_t bits_of(sim::MessageKind k) const {
    return bits_by_kind_[sim::kind_index(k)];
  }

  /// Recovery-sublayer totals (all zero with the layer off).
  std::uint64_t recovery_retransmit_messages() const {
    return recovery_retransmit_msgs_;
  }
  std::uint64_t recovery_retransmit_bits() const {
    return recovery_retransmit_bits_;
  }
  std::uint64_t recovery_acked_messages() const { return recovery_acked_msgs_; }
  std::uint64_t recovery_dead_messages() const { return recovery_dead_msgs_; }
  std::uint64_t recovery_duplicate_messages() const {
    return recovery_dup_msgs_;
  }

  std::size_t n() const { return sent_bits_.size(); }

 private:
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bits_ = 0;
  std::vector<std::uint64_t> sent_bits_;
  std::vector<std::uint64_t> received_bits_;
  std::vector<std::uint64_t> sent_msgs_;
  KindCounters msgs_by_kind_{};
  KindCounters bits_by_kind_{};
  std::uint64_t fault_dropped_msgs_ = 0;
  std::uint64_t fault_dropped_bits_ = 0;
  std::uint64_t fault_delayed_msgs_ = 0;
  FaultCounters drops_by_cause_{};
  std::uint64_t recovery_retransmit_msgs_ = 0;
  std::uint64_t recovery_retransmit_bits_ = 0;
  std::uint64_t recovery_acked_msgs_ = 0;
  std::uint64_t recovery_dead_msgs_ = 0;
  std::uint64_t recovery_dup_msgs_ = 0;
  /// Sort scratch for the *_stats() harvest (capacity reused across trials).
  mutable std::vector<double> stats_scratch_;
};

/// Decision bookkeeping: when each node decided and on what.
class DecisionLog {
 public:
  explicit DecisionLog(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n);

  void record(NodeId node, StringId value, double time);

  bool has_decided(NodeId node) const { return decided_.at(node); }
  StringId value(NodeId node) const { return values_.at(node); }
  double time(NodeId node) const { return times_.at(node); }

  /// record() calls for nodes that had already decided. "No correct node
  /// decides twice" is a protocol invariant the property suite asserts.
  std::uint64_t repeat_decisions() const { return repeat_decisions_; }

  /// Count of nodes (from `relevant`) that decided `expected`.
  std::size_t count_correct_decisions(const std::vector<NodeId>& relevant,
                                      StringId expected) const;
  std::size_t count_decided(const std::vector<NodeId>& relevant) const;

  /// Latest decision time among `relevant` nodes that decided; 0 if none.
  double completion_time(const std::vector<NodeId>& relevant) const;

 private:
  std::vector<bool> decided_;
  std::vector<StringId> values_;
  std::vector<double> times_;
  std::uint64_t repeat_decisions_ = 0;
};

}  // namespace fba
