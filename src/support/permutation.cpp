#include "support/permutation.h"

namespace fba {

FeistelPermutation::FeistelPermutation(std::uint64_t n, const SipKey& key)
    : n_(n), key_(key) {
  FBA_REQUIRE(n >= 1, "permutation domain must be non-empty");
  // Smallest even bit-width whose range covers n (Feistel needs two equal
  // halves). For n == 1 the permutation is trivially the identity.
  std::uint32_t bits = ceil_log2(n < 2 ? 2 : n);
  if (bits % 2 != 0) ++bits;
  half_bits_ = bits / 2;
  half_mask_ = (half_bits_ >= 64) ? ~0ull : ((1ull << half_bits_) - 1);
  domain_ = 1ull << (2 * half_bits_);
}

std::uint64_t FeistelPermutation::round_fn(int round,
                                           std::uint64_t half) const {
  return siphash_words(key_, {static_cast<std::uint64_t>(round), half}) &
         half_mask_;
}

std::uint64_t FeistelPermutation::encrypt_once(std::uint64_t v) const {
  std::uint64_t left = v >> half_bits_;
  std::uint64_t right = v & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    std::uint64_t next_left = right;
    std::uint64_t next_right = left ^ round_fn(r, right);
    left = next_left;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::decrypt_once(std::uint64_t v) const {
  std::uint64_t left = v >> half_bits_;
  std::uint64_t right = v & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    std::uint64_t prev_right = left;
    std::uint64_t prev_left = right ^ round_fn(r, left);
    left = prev_left;
    right = prev_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::forward(std::uint64_t x) const {
  FBA_ASSERT(x < n_, "permutation input out of domain");
  if (n_ == 1) return 0;
  // Cycle-walk: iterate over the superset domain until we land back in [n).
  // Expected iterations: domain_ / n_ <= 4.
  std::uint64_t v = encrypt_once(x);
  while (v >= n_) v = encrypt_once(v);
  return v;
}

std::uint64_t FeistelPermutation::inverse(std::uint64_t y) const {
  FBA_ASSERT(y < n_, "permutation input out of domain");
  if (n_ == 1) return 0;
  std::uint64_t v = decrypt_once(y);
  while (v >= n_) v = decrypt_once(v);
  return v;
}

}  // namespace fba
