// Keyed pseudorandom permutations on [n] via a Feistel network with
// cycle-walking.
//
// The sampler I (Push Quorums) and H (Pull Quorums) are built from families
// of keyed bijections sigma_{s,k} : [n] -> [n]:
//
//   I(s, x) = { sigma^{-1}_{s,k}(x) : k in [d] }       (quorum members)
//   { x : y in I(s, x) } = { sigma_{s,k}(y) : k in [d] } (push targets)
//
// Both directions cost O(d) permutation evaluations, so a pushing node finds
// its targets without inverting a hash over all n nodes, and — because each
// sigma is a bijection — every node appears in exactly d quorum slots per
// string: the "no node is overloaded" clause of Lemma 1 holds by
// construction, not just w.h.p.
//
// Construction: a 4-round balanced Feistel over 2*ceil(log2(n)/2)-bit values
// with SipHash-derived round functions, cycle-walked down to [n]. This is the
// standard format-preserving technique: the walk always terminates because
// the permutation acts on a finite superset of [n].
#pragma once

#include <cstdint>

#include "support/siphash.h"
#include "support/types.h"

namespace fba {

/// A keyed bijection on [0, n).
class FeistelPermutation {
 public:
  /// `key` should be derived from (setup seed, sampler domain, string, slot).
  FeistelPermutation(std::uint64_t n, const SipKey& key);

  std::uint64_t n() const { return n_; }

  /// Forward evaluation: position of `x` under the permutation.
  std::uint64_t forward(std::uint64_t x) const;

  /// Inverse evaluation: forward(inverse(y)) == y.
  std::uint64_t inverse(std::uint64_t y) const;

 private:
  std::uint64_t round_fn(int round, std::uint64_t half) const;
  std::uint64_t encrypt_once(std::uint64_t v) const;
  std::uint64_t decrypt_once(std::uint64_t v) const;

  std::uint64_t n_;
  std::uint32_t half_bits_;   // bits per Feistel half
  std::uint64_t half_mask_;   // (1 << half_bits_) - 1
  std::uint64_t domain_;      // (1 << (2 * half_bits_)), >= n
  SipKey key_;

  static constexpr int kRounds = 4;
};

}  // namespace fba
