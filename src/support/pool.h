// Size-classed memory pool for per-trial container state.
//
// The experiment runner executes thousands of trials back to back; each
// trial's node-local hash maps would otherwise malloc/free every map node
// and bucket array. Pool recycles that memory: allocations are served from
// power-of-two size-class free lists backed by chunked slabs, deallocations
// push onto the free list, and nothing is returned to the system until the
// pool dies. After a warm-up trial has grown the free lists to the
// working-set size, a trial allocates nothing from the heap — the
// "zero allocations per trial" contract checked by
// bench_micro_primitives' BM_WarmTrialAllocations.
//
// PoolAllocator adapts a Pool to the std::allocator interface so standard
// containers can draw from it. Allocator identity does not affect
// unordered_map iteration order (bucket growth and hashing are unchanged),
// which the golden-fingerprint suite relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/types.h"

namespace fba::support {

class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls >= kNumClasses) {  // oversized: plain heap, not recycled
      return ::operator new(bytes);
    }
    if (FreeBlock* head = free_[cls]) {
      free_[cls] = head->next;
      return head;
    }
    return carve(cls);
  }

  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls >= kNumClasses) {
      ::operator delete(p);
      return;
    }
    // Intrusive free list: the link lives in the freed block itself (the
    // minimum class is 16 bytes), so recycling never touches the heap.
    auto* block = static_cast<FreeBlock*>(p);
    block->next = free_[cls];
    free_[cls] = block;
  }

  /// Bytes held in chunks (diagnostics).
  std::size_t reserved_bytes() const { return reserved_; }

 private:
  // Classes are powers of two from 16 bytes (covers one map node of a small
  // value) up to 16 MiB (a large trial's bucket array / row slab).
  static constexpr std::size_t kMinShift = 4;
  static constexpr std::size_t kNumClasses = 21;  // 16 B .. 16 MiB
  static constexpr std::size_t kChunkBytes = 1 << 18;  // 256 KiB slabs

  static std::size_t size_class(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t cap = std::size_t{1} << kMinShift;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  void* carve(std::size_t cls) {
    const std::size_t bytes = std::size_t{1} << (kMinShift + cls);
    if (bytes >= kChunkBytes) {  // one allocation per block at large sizes
      chunks_.emplace_back(static_cast<char*>(::operator new(bytes)));
      reserved_ += bytes;
      return chunks_.back().get();
    }
    if (bump_ == nullptr || bump_left_ < bytes) {
      chunks_.emplace_back(static_cast<char*>(::operator new(kChunkBytes)));
      reserved_ += kChunkBytes;
      bump_ = chunks_.back().get();
      bump_left_ = kChunkBytes;
    }
    void* p = bump_;
    bump_ += bytes;
    bump_left_ -= bytes;
    return p;
  }

  struct FreeBlock {
    FreeBlock* next;
  };
  struct OpDelete {
    void operator()(char* p) const { ::operator delete(p); }
  };
  std::vector<std::unique_ptr<char[], OpDelete>> chunks_;
  char* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::size_t reserved_ = 0;
  FreeBlock* free_[kNumClasses] = {};
};

/// std::allocator adapter over a Pool. The pool must outlive every container
/// bound to it.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(Pool* pool) : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    pool_->deallocate(p, n * sizeof(T));
  }

  Pool* pool() const { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return pool_ != other.pool();
  }

 private:
  Pool* pool_;
};

}  // namespace fba::support
