#include "support/random.h"

namespace fba {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  FBA_ASSERT(bound > 0, "Rng::below requires a positive bound");
  // Lemire-style rejection: unbiased and nearly always a single iteration.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_positive() {
  return 1.0 - uniform();  // uniform() < 1, so this is in (0, 1].
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t tag) const {
  // Mix current state with the tag through splitmix so substreams derived
  // with different tags are independent for simulation purposes.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ull);
  return Rng(splitmix64(mix));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::size_t n,
                                                           std::size_t k) {
  std::vector<std::uint32_t> out;
  sample_without_replacement_into(n, k, out);
  return out;
}

void Rng::sample_without_replacement_into(std::size_t n, std::size_t k,
                                          std::vector<std::uint32_t>& out) {
  FBA_REQUIRE(k <= n, "cannot sample more values than the domain holds");
  out.clear();
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full domain.
    std::vector<std::uint32_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return;
  }
  // Sparse case: rejection sampling. Duplicate checks scan the picked list
  // (k is small here; same draw sequence as the old hash-set membership).
  while (out.size() < k) {
    auto v = static_cast<std::uint32_t>(below(n));
    bool dup = false;
    for (std::uint32_t p : out) {
      if (p == v) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(v);
  }
}

}  // namespace fba
