// Deterministic, splittable random number generation.
//
// Every run of the simulator is reproducible from a single master seed.
// Each node owns a private Rng substream (the paper's "private random number
// generator"), derived from the master seed and the node id, so adversary
// code cannot observe correct nodes' future randomness by sharing state.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.h"

namespace fba {

/// splitmix64: used to expand seeds into full generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Small, fast, and good enough statistical quality for
/// simulation workloads; not cryptographic (the full-information model makes
/// no secrecy assumption on public setup anyway).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound), bound > 0. Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in (0, 1] — used for message delays which must be > 0.
  double uniform_positive();

  /// Bernoulli trial.
  bool chance(double p);

  /// Uniform node id in [0, n).
  NodeId node(std::size_t n) { return static_cast<NodeId>(below(n)); }

  /// Derive an independent substream; `tag` distinguishes purposes.
  Rng split(std::uint64_t tag) const;

  /// k distinct values from [0, n), k <= n. O(k) expected when k << n.
  std::vector<std::uint32_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

  /// In-place variant: identical draws and results, reusing `out`'s
  /// capacity (trial-arena paths re-sample every trial).
  void sample_without_replacement_into(std::size_t n, std::size_t k,
                                       std::vector<std::uint32_t>& out);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace fba
