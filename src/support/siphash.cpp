#include "support/siphash.h"

#include <cstring>

namespace fba {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(const SipKey& key)
      : v0(0x736f6d6570736575ull ^ key.k0),
        v1(0x646f72616e646f6dull ^ key.k1),
        v2(0x6c7967656e657261ull ^ key.k0),
        v3(0x7465646279746573ull ^ key.k1) {}

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

std::uint64_t siphash24(const SipKey& key, const void* data, std::size_t len) {
  SipState st(key);
  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    std::uint64_t m;
    std::memcpy(&m, p + i * 8, 8);
    st.compress(m);
  }
  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  const std::size_t rem = len % 8;
  const unsigned char* tail = p + full_blocks * 8;
  for (std::size_t i = 0; i < rem; ++i) {
    last |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  }
  st.compress(last);
  return st.finalize();
}

std::uint64_t siphash_words(const SipKey& key,
                            std::initializer_list<std::uint64_t> words) {
  SipState st(key);
  for (std::uint64_t w : words) st.compress(w);
  st.compress(static_cast<std::uint64_t>(words.size()) << 56);
  return st.finalize();
}

SipKey derive_key(const SipKey& master, std::uint64_t domain_tag) {
  SipKey out;
  out.k0 = siphash_words(master, {domain_tag, 0xd0ull});
  out.k1 = siphash_words(master, {domain_tag, 0xd1ull});
  return out;
}

}  // namespace fba
