// SipHash-2-4: the keyed hash underlying all sampler constructions.
//
// Samplers must be (a) shared by every node (public setup) and (b) behave
// like uniformly random functions of their inputs — the paper's existence
// proofs (Lemma 1, Lemma 2 / Section 4.1) argue exactly that a random
// construction has the required properties w.h.p. SipHash keyed with the
// public setup seed gives a deterministic, well-distributed stand-in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace fba {

struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 over an arbitrary byte buffer.
std::uint64_t siphash24(const SipKey& key, const void* data, std::size_t len);

/// Convenience: hash a short sequence of 64-bit words (the common case for
/// sampler inputs such as (string id, node id, slot index)).
std::uint64_t siphash_words(const SipKey& key,
                            std::initializer_list<std::uint64_t> words);

/// Derive a subkey for a named domain, so independent samplers built from the
/// same setup seed do not correlate.
SipKey derive_key(const SipKey& master, std::uint64_t domain_tag);

}  // namespace fba
