#include "support/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>

#include "support/types.h"

namespace fba::support {

ChildProc spawn_child(const std::function<int(int)>& child_main) {
  FBA_REQUIRE(static_cast<bool>(child_main), "spawn_child needs a child main");
  int sv[2];
  FBA_REQUIRE(socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
              "socketpair failed: " + std::string(std::strerror(errno)));

  // Flush before fork so buffered stdio is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);

  const pid_t pid = fork();
  if (pid < 0) {
    close(sv[0]);
    close(sv[1]);
    FBA_REQUIRE(false, "fork failed: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. The parent coordinates shutdown (including SIGINT draining),
    // so the worker ignores SIGINT — a terminal Ctrl-C hits the whole
    // process group, and a worker dying mid-trial would masquerade as a
    // crash while the parent is trying to drain.
    signal(SIGINT, SIG_IGN);
    close(sv[0]);
    _exit(child_main(sv[1]));
  }
  close(sv[1]);
  fcntl(sv[0], F_SETFD, FD_CLOEXEC);
  return ChildProc{pid, sv[0]};
}

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

long read_some(int fd, std::string& out, std::size_t cap) {
  char buf[4096];
  if (cap > sizeof(buf)) cap = sizeof(buf);
  while (true) {
    const ssize_t n = read(fd, buf, cap);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    out.append(buf, static_cast<std::size_t>(n));
    return static_cast<long>(n);
  }
}

bool read_exact(int fd, std::string& out, std::size_t len) {
  while (len > 0) {
    const long n = read_some(fd, out, len);
    if (n <= 0) return false;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void kill_and_reap(ChildProc& child, int sig) {
  if (child.pid > 0) {
    kill(child.pid, sig);
    int status = 0;
    while (waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
    }
    child.pid = -1;
  }
  if (child.fd >= 0) {
    close(child.fd);
    child.fd = -1;
  }
}

void reap_with_grace(ChildProc& child, double grace_seconds) {
  if (child.pid > 0) {
    const timespec nap{0, 20 * 1000 * 1000};  // 20ms poll cadence
    double waited = 0;
    while (true) {
      int status = 0;
      const pid_t r = waitpid(child.pid, &status, WNOHANG);
      if (r == child.pid || (r < 0 && errno != EINTR)) {
        child.pid = -1;
        break;
      }
      if (waited >= grace_seconds) {
        kill_and_reap(child, SIGKILL);
        return;
      }
      nanosleep(&nap, nullptr);
      waited += 0.02;
    }
  }
  if (child.fd >= 0) {
    close(child.fd);
    child.fd = -1;
  }
}

ScopedSigpipeIgnore::ScopedSigpipeIgnore()
    : previous_(signal(SIGPIPE, SIG_IGN)) {}

ScopedSigpipeIgnore::~ScopedSigpipeIgnore() { signal(SIGPIPE, previous_); }

}  // namespace fba::support
