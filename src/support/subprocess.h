// POSIX subprocess and pipe plumbing for the multi-process sweep runner
// (exp/procpool.h). Thin, deliberately boring wrappers: fork a child
// running a caller-supplied function on its end of a socketpair, EINTR-safe
// reads/writes, kill-and-reap. All policy (task dealing, heartbeats,
// retries) lives in the procpool; this header only hides the syscall
// bookkeeping.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>

namespace fba::support {

/// One forked worker: its pid and the parent's end of the socketpair.
struct ChildProc {
  pid_t pid = -1;
  int fd = -1;

  bool alive() const { return pid > 0; }
};

/// Forks a child connected to the parent by a SOCK_STREAM socketpair. The
/// child runs `child_main(child_fd)` and _exits with its return value —
/// it never returns into the caller's stack (no atexit handlers, no
/// destructors, no gtest teardown). Throws ConfigError when the socketpair
/// or fork syscall fails. The parent's end is close-on-exec.
ChildProc spawn_child(const std::function<int(int)>& child_main);

/// EINTR-safe full write. Returns false on any other error (EPIPE after a
/// child died — the caller treats the worker as crashed; SIGPIPE must be
/// ignored, see ScopedSigpipeIgnore).
bool write_all(int fd, const void* data, std::size_t len);

/// EINTR-safe single read of at most `cap` bytes appended to `out`.
/// Returns the byte count, 0 on EOF, -1 on error.
long read_some(int fd, std::string& out, std::size_t cap);

/// Blocking EINTR-safe read of exactly `len` bytes appended to `out`;
/// false on EOF or error before `len` arrived.
bool read_exact(int fd, std::string& out, std::size_t len);

/// Sends `sig` (when the child is alive) and reaps it, blocking until the
/// zombie is collected; closes the parent fd. Safe to call twice.
void kill_and_reap(ChildProc& child, int sig);

/// Reaps a child that is expected to exit on its own (after a quit
/// message); escalates to SIGKILL when it has not exited within
/// `grace_seconds`. Closes the parent fd.
void reap_with_grace(ChildProc& child, double grace_seconds);

/// Ignores SIGPIPE for the enclosing scope (writes to a crashed worker
/// must fail with EPIPE, not kill the parent), restoring the previous
/// disposition on destruction.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore();
  ~ScopedSigpipeIgnore();
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  void (*previous_)(int);
};

}  // namespace fba::support
