#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/types.h"

namespace fba {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  FBA_REQUIRE(cells.size() == headers_.size(),
              "table row width does not match headers");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace fba
