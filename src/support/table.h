// Minimal ASCII table renderer for bench output. Benches print the same rows
// and series the paper's Figure 1 tables report; this keeps that output
// aligned and diff-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fba {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Numeric convenience: formats doubles with `precision` significant
  /// decimal places, integers plainly.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fba
