// Basic vocabulary types shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fba {

/// Identity of a node in the fully-connected network. Nodes are numbered
/// 0..n-1 (the paper's [n] shifted to zero-based indexing).
using NodeId = std::uint32_t;

/// Synchronous round counter.
using Round = std::uint32_t;

/// Simulated wall-clock in the asynchronous engine. Delays are normalized so
/// the maximum message delay is one time unit (the standard async measure).
using SimTime = double;

/// Interned candidate-string handle (see support/intern.h). Messages carry
/// these 32-bit ids; bit accounting always uses the true encoded size.
using StringId = std::uint32_t;

inline constexpr StringId kNoString = 0xffffffffu;

/// Random label r from the paper's domain R (|R| polynomial in n).
using PollLabel = std::uint64_t;

/// Thrown on invalid configuration (bad n/t combinations, empty domains...).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant violation; indicates a bug in the library itself.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

#define FBA_REQUIRE(cond, msg)                 \
  do {                                         \
    if (!(cond)) throw ::fba::ConfigError(msg); \
  } while (0)

#define FBA_ASSERT(cond, msg)                      \
  do {                                             \
    if (!(cond)) throw ::fba::InvariantError(msg); \
  } while (0)

/// ceil(log2(x)) for x >= 1; number of bits needed to index x values.
inline std::uint32_t ceil_log2(std::uint64_t x) {
  std::uint32_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Bits needed to name one node out of n.
inline std::uint32_t node_id_bits(std::size_t n) {
  return ceil_log2(n < 2 ? 2 : n);
}

}  // namespace fba
