// Stage-worker pool for the service pipeline: spawn N threads running
// fn(worker_index), join them all, rethrow the first failure.
//
// Unlike exp::run_indexed_workers (which fans a counted task list out and
// joins), pipeline stages are long-lived loops that terminate by queue
// close(); the pool's job is only lifetime + exception plumbing. on_error
// runs on the *failing* thread before the exception is stored — the service
// uses it to close the queues so every other stage unblocks and the join
// cannot deadlock on a dead producer.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace fba::svc {

class StagePool {
 public:
  StagePool() = default;
  StagePool(const StagePool&) = delete;
  StagePool& operator=(const StagePool&) = delete;
  ~StagePool() { join_all_noexcept(); }

  /// Unblocks the other stages when any worker throws (typically: close the
  /// pipeline's queues). May be invoked from several failing threads; must
  /// be idempotent.
  void set_on_error(std::function<void()> fn) { on_error_ = std::move(fn); }

  /// Spawns `count` threads running fn(0..count-1).
  template <typename Fn>
  void spawn(std::size_t count, Fn fn) {
    for (std::size_t i = 0; i < count; ++i) {
      threads_.emplace_back([this, fn, i]() mutable {
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) error_ = std::current_exception();
          }
          if (on_error_) on_error_();
        }
      });
    }
  }

  /// Joins every spawned thread, then rethrows the first stored exception.
  void join() {
    join_all_noexcept();
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::swap(error, error_);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void join_all_noexcept() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  std::vector<std::thread> threads_;
  std::function<void()> on_error_;
  std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace fba::svc
