// Bounded blocking queue for the service pipeline (exp/service.h).
//
// The instance stream flows generate -> execute -> reduce through these:
// fixed capacity (preallocated ring, no allocation after construction),
// close() semantics for clean drain on shutdown or failure, and depth /
// block counters so the service can report backpressure. Capacity doubles
// as the pipeline's flow control: the generator blocks once `capacity`
// instances are in flight, which is exactly the arena-pool bound.
//
// Plain mutex + condvar, MPMC. The pipeline moves a handful of small slot
// descriptors per instance — an instance is milliseconds of protocol work —
// so queue overhead is noise; simplicity and correct blocking beat a
// lock-free ring here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "support/types.h"

namespace fba::svc {

/// Contention/backpressure counters one queue accumulates over its life;
/// harvested single-threaded after the pipeline joins.
struct QueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t depth_sum = 0;    ///< depth observed at each push (after it).
  std::uint64_t depth_max = 0;
  std::uint64_t push_blocks = 0;  ///< pushes that found the queue full.
  std::uint64_t pop_blocks = 0;   ///< pops that found the queue empty.

  double mean_depth() const {
    return pushes ? static_cast<double>(depth_sum) / static_cast<double>(pushes)
                  : 0;
  }
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (drops `value`) iff the queue was
  /// closed before space freed up.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == ring_.size()) {
      ++stats_.push_blocks;
      not_full_.wait(lock, [this] { return size_ < ring_.size() || closed_; });
    }
    if (closed_) return false;
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
    ++stats_.pushes;
    stats_.depth_sum += size_;
    if (size_ > stats_.depth_max) stats_.depth_max = size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false iff the queue is closed AND drained —
  /// items pushed before close() are always delivered.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0) {
      ++stats_.pop_blocks;
      not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    }
    if (size_ == 0) return false;  // closed and drained.
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Wakes every blocked producer/consumer; subsequent pushes are refused,
  /// pops drain what remains. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return ring_.size(); }

  /// Only meaningful once all producers/consumers have stopped.
  const QueueStats& stats() const { return stats_; }

 private:
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  QueueStats stats_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace fba::svc
