// Tests for the almost-everywhere agreement substrate: committee layout,
// the phase-king schedule, in-committee agreement under equivocation, and
// the AER precondition contract (> 1/2 of nodes share a mostly-random
// gstring).
#include <gtest/gtest.h>

#include <set>

#include "ae/kssv.h"

namespace fba::ae {
namespace {

AeConfig config_for(std::size_t n, std::uint64_t seed = 1) {
  AeConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  return cfg;
}

// ----- configuration & layout ----------------------------------------------------

TEST(AeConfigTest, DerivedSizes) {
  AeConfig cfg = config_for(1024);
  EXPECT_EQ(cfg.resolved_t(), 51u);  // floor(0.05 * 1024)
  EXPECT_EQ(cfg.resolved_root_size(), 20u);   // 2 * log2(n)
  EXPECT_EQ(cfg.resolved_committee_size(), 40u);  // 4 * log2(n)
  EXPECT_EQ(cfg.slice_bits(), 2u);  // ceil(40 / 20)
  EXPECT_EQ(cfg.gstring_bits(), 40u);
}

TEST(AeConfigTest, SliceBitsCoverTarget) {
  for (std::size_t n : {64ull, 256ull, 1024ull, 4096ull}) {
    AeConfig cfg = config_for(n);
    EXPECT_GE(cfg.gstring_bits(),
              cfg.gstring_c * static_cast<std::size_t>(node_id_bits(n)));
    EXPECT_LE(cfg.slice_bits(), 64u);
  }
}

TEST(AeLayoutTest, CommitteesAreWellFormed) {
  AeConfig cfg = config_for(512);
  const AeLayout layout = AeLayout::build(cfg);
  ASSERT_EQ(layout.root.size(), cfg.resolved_root_size());
  ASSERT_EQ(layout.committees.size(), layout.root.size());

  // Root members are distinct.
  std::set<NodeId> roots(layout.root.begin(), layout.root.end());
  EXPECT_EQ(roots.size(), layout.root.size());

  for (const auto& committee : layout.committees) {
    EXPECT_EQ(committee.size(), cfg.resolved_committee_size());
    std::set<NodeId> uniq(committee.begin(), committee.end());
    EXPECT_EQ(uniq.size(), committee.size());  // no duplicate members
    for (NodeId m : committee) EXPECT_LT(m, cfg.n);
  }
}

TEST(AeLayoutTest, MemberIndexAgreesWithMembership) {
  AeConfig cfg = config_for(256);
  const AeLayout layout = AeLayout::build(cfg);
  const auto& committee = layout.committees[0];
  for (std::size_t i = 0; i < committee.size(); ++i) {
    EXPECT_EQ(layout.member_index(0, committee[i]), static_cast<long>(i));
    EXPECT_TRUE(layout.in_committee(0, committee[i]));
  }
  // A node not in the committee.
  for (NodeId id = 0; id < cfg.n; ++id) {
    if (std::find(committee.begin(), committee.end(), id) == committee.end()) {
      EXPECT_FALSE(layout.in_committee(0, id));
      break;
    }
  }
}

TEST(AeScheduleTest, RoundArithmetic) {
  AeConfig cfg = config_for(256);
  const AeSchedule sched = AeSchedule::from(cfg);
  EXPECT_EQ(sched.phases, (cfg.resolved_committee_size() - 1) / 4 + 1);
  EXPECT_EQ(sched.exchange_round(0), 1u);
  EXPECT_EQ(sched.king_round(0), 2u);
  EXPECT_EQ(sched.exchange_round(1), 3u);
  EXPECT_EQ(sched.final_broadcast_round(), 1 + 2 * sched.phases);
  EXPECT_EQ(sched.assemble_round(), 2 + 2 * sched.phases);

  // Delivery-round inverses: exchange of phase p is delivered at 2 + 2p.
  EXPECT_EQ(sched.exchange_phase_at(2), 0);
  EXPECT_EQ(sched.exchange_phase_at(4), 1);
  EXPECT_EQ(sched.exchange_phase_at(3), -1);
  EXPECT_EQ(sched.king_phase_at(3), 0);
  EXPECT_EQ(sched.king_phase_at(5), 1);
  EXPECT_EQ(sched.king_phase_at(4), -1);
  // Past the last phase nothing matches.
  EXPECT_EQ(sched.exchange_phase_at(sched.assemble_round()), -1);
}

// ----- protocol runs -------------------------------------------------------------

TEST(AeRunTest, SilentAdversaryYieldsUnanimity) {
  const AeRunResult result = run_ae(config_for(256, 1));
  const AeReport& r = result.report;
  EXPECT_EQ(r.knowledgeable_count, r.correct_count);
  EXPECT_TRUE(r.precondition_met);
  EXPECT_FALSE(result.winner.empty());
  EXPECT_EQ(result.winner.size(), config_for(256).gstring_bits());
}

TEST(AeRunTest, RoundsMatchSchedule) {
  AeConfig cfg = config_for(256, 2);
  const AeRunResult result = run_ae(cfg);
  const AeSchedule sched = AeSchedule::from(cfg);
  EXPECT_EQ(result.report.rounds, sched.assemble_round());
}

TEST(AeRunTest, PerNodeStringsMatchWinnerForCorrectNodes) {
  const AeRunResult result = run_ae(config_for(128, 3));
  std::vector<bool> corrupt(128, false);
  for (NodeId id : result.corrupt) corrupt[id] = true;
  for (NodeId id = 0; id < 128; ++id) {
    if (corrupt[id]) {
      EXPECT_TRUE(result.assembled[id].empty());
    } else {
      EXPECT_EQ(result.assembled[id], result.winner);
    }
  }
}

TEST(AeRunTest, CommunicationGrowsPolylogarithmically) {
  // Per-node bits must grow far slower than linearly in n: quadrupling the
  // network should much less than double the per-node cost (committee sizes
  // grow only with log n).
  const AeRunResult small = run_ae(config_for(256, 4));
  const AeRunResult large = run_ae(config_for(1024, 4));
  const double growth =
      large.report.amortized_bits / small.report.amortized_bits;
  EXPECT_LT(growth, 2.0);
}

TEST(AeRunTest, DeterministicAcrossRuns) {
  const AeRunResult a = run_ae(config_for(128, 5));
  const AeRunResult b = run_ae(config_for(128, 5));
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.report.total_bits, b.report.total_bits);
  EXPECT_EQ(a.corrupt, b.corrupt);
}

TEST(AeRunTest, HonestSlicesProvideRandomBits) {
  // The 2/3 + eps randomness precondition: with t/n = 5%, the corrupt root
  // fraction stays far below 1/3 w.h.p., so most slices are honest-random.
  const AeRunResult result = run_ae(config_for(512, 6));
  EXPECT_GT(result.report.honest_slice_fraction, 2.0 / 3.0);
}

class AeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AeSeedSweep, EquivocationCannotBreakThePrecondition) {
  const AeRunResult result =
      run_ae(config_for(256, GetParam()), ae_equivocate_strategy());
  EXPECT_TRUE(result.report.precondition_met)
      << "knowledgeable " << result.report.knowledgeable_count;
  // Phase king holds committees together: unanimity among correct nodes
  // unless a committee exceeded its corruption tolerance (rare at 5%).
  EXPECT_GE(result.report.knowledgeable_fraction, 0.90);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AeSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(AeRunTest, HigherCorruptionDegradesGracefully) {
  AeConfig cfg = config_for(256, 7);
  cfg.corrupt_fraction = 0.15;
  const AeRunResult result = run_ae(cfg, ae_equivocate_strategy());
  // Committees can fail at 15%, but the plurality string must still
  // dominate: the tournament degrades, it does not collapse.
  EXPECT_GT(result.report.knowledgeable_fraction, 0.5);
}

TEST(AeRunTest, NonRushingRunsToo) {
  const AeRunResult result =
      run_ae(config_for(128, 8), ae_equivocate_strategy(), false);
  EXPECT_TRUE(result.report.precondition_met);
}

TEST(AeRunTest, RejectsTinyNetworks) {
  EXPECT_THROW(run_ae(config_for(8)), ConfigError);
}

}  // namespace
}  // namespace fba::ae
