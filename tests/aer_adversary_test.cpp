// Adversarial AER tests: each strategy in the gallery exercises the attack
// one of the paper's lemmas defends against; agreement and safety must hold
// at the default operating point.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "aer/protocol.h"

namespace fba::aer {
namespace {

AerConfig attack_config(std::uint64_t seed, Model model = Model::kSyncRushing) {
  AerConfig cfg;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.model = model;
  cfg.d_override = 16;  // extra margin: these runs face live adversaries
  return cfg;
}

// ----- crash / silent -----------------------------------------------------------

TEST(AdversaryAerTest, SilentAdversaryIsHarmless) {
  const AerReport report = run_aer(attack_config(1), [](const AerWorldView&) {
    return std::make_unique<adv::SilentStrategy>();
  });
  EXPECT_TRUE(report.agreement);
}

// ----- Lemma 4/5: junk diffusion ---------------------------------------------------

class JunkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JunkSweep, AgreementSurvivesCoordinatedJunk) {
  const AerReport report =
      run_aer(attack_config(GetParam()), [](const AerWorldView& view) {
        return std::make_unique<adv::JunkPushStrategy>(view, 3, 32);
      });
  EXPECT_TRUE(report.agreement);
  EXPECT_EQ(report.nodes_missing_gstring, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JunkSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(AdversaryAerTest, JunkSearchFindsAtMostFewQuorums) {
  // Even with a search budget, the junk strings the adversary diffuses must
  // not blow up candidate lists (Lemma 4's O(mu n) bound).
  const AerReport report =
      run_aer(attack_config(6), [](const AerWorldView& view) {
        return std::make_unique<adv::JunkPushStrategy>(view, 1, 64);
      });
  EXPECT_LE(report.sum_candidate_lists,
            2 * report.correct_count + report.n / 4);
}

// ----- Lemma 7: safety under wrong answers ------------------------------------------

class SafetySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetySweep, NoCorrectNodeDecidesJunk) {
  const AerReport report =
      run_aer(attack_config(GetParam()), [](const AerWorldView& view) {
        return std::make_unique<adv::WrongAnswerStrategy>(view, 16);
      });
  // Liveness AND safety: everyone decides, and only on gstring. A single
  // wrong decision would make decided_gstring < decided_count.
  EXPECT_EQ(report.decided_gstring, report.decided_count);
  EXPECT_TRUE(report.agreement);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----- Lemma 6: poll stuffing / overload ---------------------------------------------

TEST(AdversaryAerTest, PollStuffingCannotStopAgreement) {
  AerConfig cfg = attack_config(7);
  cfg.answer_budget = 8;  // tight budget so the attack actually bites
  std::size_t victims = 0;
  const AerReport report = run_aer(cfg, [&victims](const AerWorldView& view) {
    auto strategy = std::make_unique<adv::PollStuffStrategy>(view, 16, 512);
    return strategy;
  });
  EXPECT_TRUE(report.agreement);
}

TEST(AdversaryAerTest, PollStuffingBurnsBudgetsButDeferralRecovers) {
  // Budget above the honest per-responder load (~d) but low enough that the
  // coalition saturates some victims: deferral must carry those through.
  AerConfig cfg = attack_config(8);
  cfg.answer_budget = 20;
  cfg.defer_answers = true;
  const AerReport report = run_aer(cfg, [](const AerWorldView& view) {
    return std::make_unique<adv::PollStuffStrategy>(view, 20, 512);
  });
  EXPECT_TRUE(report.agreement);
}

TEST(AdversaryAerTest, PollStuffingWinsBelowTheBudgetThreshold) {
  // Lemma 6's quantitative content, seen from the other side: if the answer
  // budget falls below the honest load + per-victim burn, the eager
  // overload attack stalls the network. The paper's log^2 n budget is
  // exactly what rules this regime out asymptotically.
  AerConfig cfg = attack_config(8);
  cfg.answer_budget = 4;  // far below d = 16
  cfg.max_rounds = 60;
  const AerReport report = run_aer(cfg, [](const AerWorldView& view) {
    return std::make_unique<adv::PollStuffStrategy>(view, 4, 512);
  });
  EXPECT_FALSE(report.agreement);
  // Stalls are honest: nobody decided a wrong value.
  EXPECT_EQ(report.decided_gstring, report.decided_count);
}

TEST(AdversaryAerTest, RushingStuffingIsNoWorseThanDelayedAtThisScale) {
  // Lemma 6 vs Lemma 8: the rushing adversary reacts within the round, the
  // non-rushing one a round later. Both must fail to break agreement; the
  // rushing run may take longer.
  AerConfig rushing = attack_config(9, Model::kSyncRushing);
  AerConfig nonrushing = attack_config(9, Model::kSyncNonRushing);
  rushing.answer_budget = nonrushing.answer_budget = 6;
  auto factory = [](const AerWorldView& view) {
    return std::make_unique<adv::PollStuffStrategy>(view, 16, 512);
  };
  const AerReport r1 = run_aer(rushing, factory);
  const AerReport r2 = run_aer(nonrushing, factory);
  EXPECT_TRUE(r1.agreement);
  EXPECT_TRUE(r2.agreement);
  EXPECT_GE(r1.completion_time + 3.0, r2.completion_time);
}

// ----- async delay attacks -----------------------------------------------------------

TEST(AdversaryAerTest, TargetedDelaysSlowButDoNotBreakAsync) {
  AerConfig fast_cfg = attack_config(10, Model::kAsync);
  const AerReport fast = run_aer(fast_cfg);

  AerConfig slow_cfg = attack_config(10, Model::kAsync);
  const AerReport slow =
      run_aer(slow_cfg, [](const AerWorldView& view) {
        return std::make_unique<adv::TargetedDelayStrategy>(view);
      });
  EXPECT_TRUE(slow.agreement);
  // Stretching answers and forwards to the delay bound costs time.
  EXPECT_GT(slow.completion_time, fast.completion_time * 0.8);
}

TEST(AdversaryAerTest, ComboAttackStillLosesAtDefaults) {
  AerConfig cfg = attack_config(11, Model::kAsync);
  cfg.answer_budget = 8;
  const AerReport report = run_aer(cfg, [](const AerWorldView& view) {
    auto combo = std::make_unique<adv::ComboStrategy>();
    combo->add(std::make_unique<adv::JunkPushStrategy>(view, 2, 16));
    combo->add(std::make_unique<adv::WrongAnswerStrategy>(view, 8));
    combo->add(std::make_unique<adv::PollStuffStrategy>(view, 8, 256));
    combo->set_delay_policy(
        std::make_unique<adv::TargetedDelayStrategy>(view));
    return combo;
  });
  EXPECT_TRUE(report.agreement);
}

// ----- load skew (Figure 1a's "not load-balanced") -------------------------------------

TEST(AdversaryAerTest, QuorumSeizureSkewsTheVictimsLoad) {
  // At t/n = 0.30 a constant fraction of random strings has a corrupt
  // majority in I(s, victim): the coalition plants many candidates on the
  // victim, whose verification traffic then dwarfs the mean — the paper's
  // reason AER is not load-balanced.
  AerConfig cfg;
  cfg.n = 256;
  cfg.seed = 3;
  cfg.corrupt_fraction = 0.30;
  cfg.max_rounds = 40;
  std::size_t planted = 0;
  AerWorld world = build_aer_world(cfg);
  const AerReport report = run_aer_world(
      world, [&planted](const AerWorldView& view) {
        auto strategy = std::make_unique<adv::LoadSkewStrategy>(view, 0, 1024);
        planted = strategy->strings_planted();
        return strategy;
      });
  EXPECT_GT(planted, 10u);  // the search succeeds at this corruption level
  EXPECT_GT(report.max_candidate_list, 10u);  // the victim's list blew up
  EXPECT_GT(report.sent_bits.imbalance(), 1.5);
}

// ----- resilience limits ---------------------------------------------------------------

TEST(AdversaryAerTest, HigherCorruptionNeedsBiggerQuorums) {
  // At t/n = 0.20 with large quorums the protocol still clears (the paper's
  // asymptotic t < (1/3 - eps) n needs d beyond laptop scale; see DESIGN.md).
  AerConfig cfg;
  cfg.n = 128;
  cfg.seed = 13;
  cfg.corrupt_fraction = 0.20;
  cfg.knowledgeable_fraction = 0.97;
  cfg.d_override = 24;
  const AerReport report = run_aer(cfg);
  EXPECT_TRUE(report.agreement);
}

TEST(AdversaryAerTest, BeyondHalfBadPrecondViolatedProtocolFailsHonestly) {
  // When the precondition (correct & knowledgeable > 1/2) is violated, the
  // protocol must not fabricate agreement on junk — nodes simply stall.
  AerConfig cfg;
  cfg.n = 128;
  cfg.seed = 14;
  cfg.corrupt_fraction = 0.30;
  cfg.knowledgeable_fraction = 0.60;  // 0.7 * 0.6 = 0.42 < 1/2 knowledgeable
  cfg.d_override = 16;
  cfg.max_rounds = 40;
  const AerReport report = run_aer(cfg);
  EXPECT_FALSE(report.agreement);
  // Safety is never traded: whatever decisions happened are on gstring.
  EXPECT_EQ(report.decided_gstring, report.decided_count);
}

}  // namespace
}  // namespace fba::aer
