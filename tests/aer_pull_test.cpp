// Pull-phase and end-to-end AER tests (Section 3.1.2, Algorithms 1-3,
// Lemmas 6-10): agreement under all three timing models, decision times,
// the answer budget, and the post-decision answering path.
#include <gtest/gtest.h>

#include "aer/protocol.h"

namespace fba::aer {
namespace {

AerConfig config_for(Model model, std::uint64_t seed = 1, std::size_t n = 128) {
  AerConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.model = model;
  cfg.d_override = 14;
  return cfg;
}

// ----- Lemmas 9/10: end-to-end agreement across models ---------------------------

class ModelSweep
    : public ::testing::TestWithParam<std::tuple<Model, std::uint64_t>> {};

TEST_P(ModelSweep, EveryCorrectNodeDecidesGstring) {
  const auto [model, seed] = GetParam();
  const AerReport report = run_aer(config_for(model, seed));
  EXPECT_TRUE(report.everyone_decided);
  EXPECT_TRUE(report.agreement) << "decided=" << report.decided_count
                                << " gstring=" << report.decided_gstring;
  EXPECT_EQ(report.decided_gstring, report.correct_count);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSweep,
    ::testing::Combine(::testing::Values(Model::kSyncNonRushing,
                                         Model::kSyncRushing, Model::kAsync),
                       ::testing::Values(1, 2, 3, 4)));

TEST(PullPhaseTest, SyncDecisionTimeIsSmallConstant) {
  // Lemma 9: constant rounds. The fast path is 5 rounds (push, pull, fw1,
  // fw2, answer); stragglers served post-decision add a few more.
  const AerReport report = run_aer(config_for(Model::kSyncNonRushing, 2));
  EXPECT_LE(report.completion_time, 12.0);
  EXPECT_LE(report.mean_decision_time, 6.0);
}

TEST(PullPhaseTest, AsyncCompletesWithinNormalizedBound) {
  // Lemma 10: async completion in a few normalized delay units at this n.
  const AerReport report = run_aer(config_for(Model::kAsync, 3));
  EXPECT_TRUE(report.agreement);
  EXPECT_LE(report.completion_time, 12.0);
}

TEST(PullPhaseTest, DeterministicGivenSeed) {
  const AerReport a = run_aer(config_for(Model::kSyncRushing, 7));
  const AerReport b = run_aer(config_for(Model::kSyncRushing, 7));
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.decided_gstring, b.decided_gstring);
}

TEST(PullPhaseTest, MessageKindsAllAppear) {
  const AerReport report = run_aer(config_for(Model::kSyncRushing, 1));
  using sim::MessageKind;
  for (const MessageKind kind :
       {MessageKind::kPush, MessageKind::kPoll, MessageKind::kPull,
        MessageKind::kFw1, MessageKind::kFw2, MessageKind::kAnswer}) {
    EXPECT_GT(report.msgs_of(kind), 0u) << sim::kind_name(kind);
  }
  // fw1 dominates: d^2 fan-out per forwarder (the paper's non-load-balanced
  // routing layer).
  EXPECT_GT(report.msgs_of(MessageKind::kFw1),
            report.msgs_of(MessageKind::kFw2));
}

TEST(PullPhaseTest, UnknowledgeableNodesAlsoDecide) {
  // The quorum-majority filters need d scaled to the precondition margin
  // (the sampler lemma's d = O(log(1/delta) / eps^2)); at laptop scale a
  // 12% ignorant population requires a slightly larger d.
  AerConfig cfg = config_for(Model::kSyncRushing, 5);
  cfg.knowledgeable_fraction = 0.88;
  cfg.d_override = 18;
  const AerReport report = run_aer(cfg);
  EXPECT_TRUE(report.agreement);
}

TEST(PullPhaseTest, SucceedsWithZeroByzantineNodes) {
  // "Unlike many randomized protocols, success is guaranteed when there is
  // no Byzantine fault" — the distinctive AER property from the intro.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    AerConfig cfg = config_for(Model::kSyncRushing, seed);
    cfg.explicit_t = 0;
    cfg.knowledgeable_fraction = 0.85;
    cfg.d_override = 18;
    const AerReport report = run_aer(cfg);
    EXPECT_TRUE(report.agreement) << "seed " << seed;
  }
}

TEST(PullPhaseTest, TightAnswerBudgetStillCompletesWithDeferral) {
  // A budget below the natural per-responder load (~d requests) forces the
  // Algorithm 3 deferral path ("Wait for has_decided"): early deciders
  // bootstrap a cascade that serves everyone else after decision.
  AerConfig cfg = config_for(Model::kSyncRushing, 6);
  cfg.answer_budget = 6;
  cfg.defer_answers = true;
  const AerReport report = run_aer(cfg);
  EXPECT_TRUE(report.agreement);
  EXPECT_GT(report.max_deferred_answers, 0u);
}

TEST(PullPhaseTest, BudgetDeferralEngagesAndRecovers) {
  AerConfig cfg = config_for(Model::kSyncRushing, 7, 64);
  cfg.answer_budget = 8;
  const AerReport report = run_aer(cfg);
  EXPECT_TRUE(report.everyone_decided);
  EXPECT_GT(report.msgs_of(sim::MessageKind::kAnswer), 0u);
  EXPECT_GT(report.max_deferred_answers, 0u);
}

TEST(PullPhaseTest, LoadIsNotPerfectlyBalanced) {
  // Figure 1(a): AER trades load balance for total communication. Even
  // without an adversary, per-node sent bits vary (quorum roles differ).
  const AerReport report = run_aer(config_for(Model::kSyncRushing, 8));
  EXPECT_GT(report.sent_bits.imbalance(), 1.05);
}

TEST(PullPhaseTest, LargerNetworkStillAgrees) {
  AerConfig cfg;
  cfg.n = 512;
  cfg.seed = 11;
  cfg.model = Model::kSyncRushing;  // defaults: d = 1.5 log2 n
  const AerReport report = run_aer(cfg);
  EXPECT_TRUE(report.agreement);
  EXPECT_EQ(report.nodes_missing_gstring, 0u);
}

TEST(PullPhaseTest, AmortizedBitsArePolylogNotLinear) {
  // At n = 512 the per-node bit cost must sit far below the flooding cost
  // n * |gstring| (everyone-broadcasts) — the headline communication claim.
  AerConfig cfg;
  cfg.n = 512;
  cfg.seed = 12;
  const AerReport report = run_aer(cfg);
  const double flood_cost = static_cast<double>(cfg.n) *
                            static_cast<double>(cfg.resolved_gstring_bits());
  EXPECT_LT(report.amortized_bits / flood_cost, 50.0);
  EXPECT_TRUE(report.agreement);
}

TEST(RunnerTest, ReportRowsAreWellFormed) {
  const AerReport report = run_aer(config_for(Model::kSyncRushing, 1, 64));
  const auto header = report_header();
  const auto row = report_row("aer", report);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "aer");
  EXPECT_EQ(row[1], "64");
}

TEST(RunnerTest, WorldCanBeRerun) {
  // run_aer_world resets decisions, so a prebuilt world can host several
  // protocol executions (as the BA composition does).
  AerWorld world = build_aer_world(config_for(Model::kSyncRushing, 9, 64));
  const AerReport a = run_aer_world(world);
  const AerReport b = run_aer_world(world);
  EXPECT_EQ(a.decided_count, b.decided_count);
  EXPECT_TRUE(b.agreement);
}

}  // namespace
}  // namespace fba::aer
