// Push-phase tests (Section 3.1.1, Lemmas 3-5): diffusion cost, candidate
// list growth, and gstring reaching every candidate list.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "aer/protocol.h"

namespace fba::aer {
namespace {

AerConfig small_config(std::uint64_t seed = 1) {
  AerConfig cfg;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.model = Model::kSyncRushing;
  cfg.d_override = 14;  // generous quorums for deterministic small-n runs
  return cfg;
}

TEST(AerConfigTest, ResolvedParametersScale) {
  AerConfig cfg;
  cfg.n = 1024;
  EXPECT_EQ(cfg.resolved_t(), 81u);  // floor(0.08 * 1024)
  EXPECT_EQ(cfg.resolved_d(), 15u);  // 1.5 * 10
  EXPECT_EQ(cfg.resolved_answer_budget(), 100u);  // 10^2
  EXPECT_EQ(cfg.resolved_gstring_bits(), 40u);    // 4 * 10

  cfg.explicit_t = 5;
  EXPECT_EQ(cfg.resolved_t(), 5u);
  cfg.d_override = 20;
  EXPECT_EQ(cfg.resolved_d(), 20u);
  cfg.answer_budget = 7;
  EXPECT_EQ(cfg.resolved_answer_budget(), 7u);
}

TEST(AerConfigTest, ModelNames) {
  EXPECT_STREQ(model_name(Model::kSyncNonRushing), "sync-nonrushing");
  EXPECT_STREQ(model_name(Model::kSyncRushing), "sync-rushing");
  EXPECT_STREQ(model_name(Model::kAsync), "async");
}

TEST(AerWorldTest, BuildRespectsConfig) {
  const AerConfig cfg = small_config();
  AerWorld world = build_aer_world(cfg);
  EXPECT_EQ(world.view.initial.size(), cfg.n);
  EXPECT_EQ(world.view.corrupt.size(), cfg.resolved_t());
  EXPECT_EQ(world.correct.size(), cfg.n - cfg.resolved_t());

  // Knowledgeable nodes hold gstring; others hold a distinct string.
  std::size_t knowledgeable = 0;
  for (NodeId id : world.correct) {
    if (world.view.knowledgeable[id]) {
      ++knowledgeable;
      EXPECT_EQ(world.view.initial[id], world.view.gstring);
    } else {
      EXPECT_NE(world.view.initial[id], world.view.gstring);
    }
  }
  // More than half of ALL nodes must be correct and knowledgeable — the
  // paper's precondition.
  EXPECT_GT(knowledgeable * 2, cfg.n);

  // Corrupt nodes get no candidate.
  for (NodeId id : world.view.corrupt) {
    EXPECT_EQ(world.view.initial[id], kNoString);
    EXPECT_FALSE(world.view.knowledgeable[id]);
  }
}

TEST(AerWorldTest, GstringHasConfiguredShape) {
  const AerConfig cfg = small_config();
  AerWorld world = build_aer_world(cfg);
  const BitString& g = world.shared->table.get(world.view.gstring);
  EXPECT_EQ(g.size(), cfg.resolved_gstring_bits());
  // The adversary-controlled prefix (1 - 2/3 of the bits) is all zeros by
  // construction in the synthetic world.
  const auto adversarial = static_cast<std::size_t>(
      g.size() * (1.0 - cfg.gstring_random_fraction));
  for (std::size_t i = 0; i < adversarial; ++i) EXPECT_FALSE(g.bit(i));
}

TEST(AerWorldTest, DeterministicForSameSeed) {
  AerWorld a = build_aer_world(small_config(5));
  AerWorld b = build_aer_world(small_config(5));
  EXPECT_EQ(a.view.corrupt, b.view.corrupt);
  EXPECT_EQ(a.view.initial, b.view.initial);
}

TEST(AerWorldTest, RejectsTinyNetworks) {
  AerConfig cfg;
  cfg.n = 4;
  EXPECT_THROW(build_aer_world(cfg), ConfigError);
}

// ----- Lemma 3: push cost ------------------------------------------------------

TEST(PushPhaseTest, EachCorrectNodeSendsExactlyDPushes) {
  const AerConfig cfg = small_config();
  const AerReport report = run_aer(cfg);
  // n_correct nodes each push to exactly d targets (permutation sampler).
  const auto expected = report.correct_count * report.d;
  EXPECT_EQ(report.msgs_of(sim::MessageKind::kPush), expected);
}

TEST(PushPhaseTest, PushBitsPerNodeAreLogarithmic) {
  // |gstring| * d = Theta(log^2 n) bits of push traffic per node; verify the
  // absolute value matches the formula, not just an asymptotic shape.
  const AerConfig cfg = small_config();
  const AerReport report = run_aer(cfg);
  const std::size_t header = 4 + node_id_bits(cfg.n);
  const double expected_per_node =
      static_cast<double>((cfg.resolved_gstring_bits() + header) *
                          report.d * report.correct_count) /
      static_cast<double>(cfg.n);
  EXPECT_NEAR(report.push_bits_per_node, expected_per_node, 1.0);
}

// ----- Lemma 4: candidate list growth -------------------------------------------

TEST(PushPhaseTest, CandidateListsStayLinearWithoutAdversary) {
  const AerConfig cfg = small_config();
  const AerReport report = run_aer(cfg);
  // Knowledgeable nodes hold {gstring}; the rest {own, gstring}: the sum is
  // at most 2 per node and nothing else can clear a quorum majority.
  EXPECT_LE(report.sum_candidate_lists, 2 * report.correct_count);
  EXPECT_LE(report.max_candidate_list, 2u);
}

TEST(PushPhaseTest, JunkPushInjectsOnlyBoundedCandidates) {
  const AerConfig cfg = small_config(3);
  const AerReport report = run_aer(cfg, [](const AerWorldView& view) {
    return std::make_unique<adv::JunkPushStrategy>(view, 2, 16);
  });
  // The coalition (8%) wins almost no Push Quorums even after searching:
  // lists stay near-linear (slack of n/8 for quorum-tail injections).
  EXPECT_LE(report.sum_candidate_lists,
            2 * report.correct_count + cfg.n / 8);
  EXPECT_TRUE(report.agreement);
}

TEST(PushPhaseTest, BlindFloodingInjectsNothing) {
  const AerConfig cfg = small_config(4);
  const AerReport report = run_aer(cfg, [](const AerWorldView& view) {
    return std::make_unique<adv::PushFloodStrategy>(view, 64);
  });
  // Receivers discard pushes from outside I(s, x): flooding buys the
  // adversary no list growth at all.
  EXPECT_LE(report.sum_candidate_lists, 2 * report.correct_count);
  EXPECT_TRUE(report.agreement);
}

// ----- Lemma 5: gstring reaches every list --------------------------------------

class PushSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PushSeedSweep, NoCorrectNodeMissesGstring) {
  AerConfig cfg = small_config(GetParam());
  const AerReport report = run_aer(cfg);
  EXPECT_EQ(report.nodes_missing_gstring, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PushPhaseTest, CornerPickerOnlyHurtsTargetedNodes) {
  // An informed adversary seizing I(gstring, x) for a few victims x can make
  // exactly those nodes miss gstring — and no others (Lemma 5's locality).
  AerConfig cfg = small_config(9);
  cfg.explicit_t = static_cast<long>(cfg.n / 5);
  const std::size_t victims = 2;
  const AerReport report =
      run_aer(cfg, {}, adv::corner_gstring_picker(victims));
  EXPECT_LE(report.nodes_missing_gstring, victims);
}

}  // namespace
}  // namespace fba::aer
