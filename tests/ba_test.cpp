// Integration tests for the composed Byzantine Agreement protocol
// (BA = AE tournament + AE->E reduction), the paper's headline artifact.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/ba.h"

namespace fba::ba {
namespace {

BaConfig config_for(std::size_t n, std::uint64_t seed = 1) {
  BaConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  return cfg;
}

TEST(BaTest, ReductionNames) {
  EXPECT_STREQ(reduction_name(Reduction::kAer), "AER");
  EXPECT_STREQ(reduction_name(Reduction::kSqrtSample), "sqrt-sample");
  EXPECT_STREQ(reduction_name(Reduction::kFlood), "flood");
}

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<Reduction, std::uint64_t>> {};

TEST_P(ReductionSweep, EndToEndAgreement) {
  const auto [reduction, seed] = GetParam();
  const BaReport r = run_ba(config_for(256, seed), reduction);
  EXPECT_TRUE(r.agreement) << reduction_name(reduction);
  EXPECT_TRUE(r.ae.precondition_met);
  // Total accounting is the sum of the phases.
  EXPECT_EQ(r.total_bits, r.ae.total_bits + r.reduction.total_bits);
  EXPECT_GT(r.total_time, static_cast<double>(r.ae.rounds));
}

INSTANTIATE_TEST_SUITE_P(
    Reductions, ReductionSweep,
    ::testing::Combine(::testing::Values(Reduction::kAer,
                                         Reduction::kSqrtSample,
                                         Reduction::kFlood),
                       ::testing::Values(1, 2, 3)));

TEST(BaTest, AgreementValueComesFromTheTournament) {
  // The decided string is the AE winner: its length matches the AE shape and
  // every correct node decided exactly it (reduction.agreement is defined
  // against the AE winner).
  const BaReport r = run_ba(config_for(128, 4));
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.reduction.decided_gstring, r.reduction.correct_count);
}

TEST(BaTest, AsyncReductionPhase) {
  BaConfig cfg = config_for(256, 5);
  cfg.reduction_model = aer::Model::kAsync;
  const BaReport r = run_ba(cfg);
  EXPECT_TRUE(r.agreement);
  // Async time is normalized delay units, strictly adding to AE rounds.
  EXPECT_GT(r.total_time, static_cast<double>(r.ae.rounds));
}

TEST(BaTest, SurvivesEquivocationPlusReductionAttack) {
  BaConfig cfg = config_for(256, 6);
  cfg.d_override = 16;
  const BaReport r = run_ba(
      cfg, Reduction::kAer, ae::ae_equivocate_strategy(),
      [](const aer::AerWorldView& view) {
        auto combo = std::make_unique<adv::ComboStrategy>();
        combo->add(std::make_unique<adv::JunkPushStrategy>(view, 2, 8));
        combo->add(std::make_unique<adv::WrongAnswerStrategy>(view, 8));
        return combo;
      });
  EXPECT_TRUE(r.agreement);
}

TEST(BaTest, DeterministicAcrossRuns) {
  const BaReport a = run_ba(config_for(128, 7));
  const BaReport b = run_ba(config_for(128, 7));
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(BaTest, UnknowledgeableMinorityFromAeIsAbsorbed) {
  // Push the AE phase harder (15% corruption + equivocation): some
  // committees may fail, leaving nodes with divergent strings; the reduction
  // must still take the winner everywhere it can. We only require the
  // composition to be *safe*: nobody decides a non-winner string.
  BaConfig cfg = config_for(256, 8);
  cfg.corrupt_fraction = 0.10;
  cfg.d_override = 18;
  const BaReport r =
      run_ba(cfg, Reduction::kAer, ae::ae_equivocate_strategy());
  EXPECT_EQ(r.reduction.decided_gstring, r.reduction.decided_count);
}

TEST(BaTest, CostOrderingAtSmallScale) {
  // At n = 256 the reduction cost ordering is sqrt < flood < AER (AER's
  // d^3 relay constant dominates until far larger n — see EXPERIMENTS.md);
  // the composition must reflect the reduction's profile.
  const BaReport aer_run = run_ba(config_for(256, 9), Reduction::kAer);
  const BaReport sqrt_run =
      run_ba(config_for(256, 9), Reduction::kSqrtSample);
  const BaReport flood_run = run_ba(config_for(256, 9), Reduction::kFlood);
  EXPECT_LT(sqrt_run.reduction.amortized_bits,
            flood_run.reduction.amortized_bits);
  EXPECT_GT(aer_run.reduction.amortized_bits,
            flood_run.reduction.amortized_bits);
}

}  // namespace
}  // namespace fba::ba
