// Tests for the baseline AE->E reductions: FLOOD-ALL and SQRT-SAMPLE.
// These are the Figure 1(a) comparators; they must agree under the same
// worlds AER runs in, with their characteristic cost/balance profiles.
#include <gtest/gtest.h>

#include "baseline/flood.h"
#include "baseline/sqrtsample.h"

namespace fba::baseline {
namespace {

aer::AerConfig config_for(std::size_t n, std::uint64_t seed = 1,
                          aer::Model model = aer::Model::kSyncRushing) {
  aer::AerConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.model = model;
  return cfg;
}

// ----- FLOOD-ALL -----------------------------------------------------------------

TEST(FloodTest, EveryoneDecidesGstring) {
  const aer::AerReport r = run_flood(config_for(128));
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.everyone_decided);
}

TEST(FloodTest, OneRoundInSync) {
  const aer::AerReport r = run_flood(config_for(128, 2));
  // Broadcast at round 0, counted at round 1.
  EXPECT_DOUBLE_EQ(r.completion_time, 1.0);
}

TEST(FloodTest, BitsPerNodeAreLinear) {
  const aer::AerReport small = run_flood(config_for(128, 3));
  const aer::AerReport large = run_flood(config_for(512, 3));
  // Bits per node scale ~linearly in n (each node broadcasts to everyone).
  const double ratio = large.amortized_bits / small.amortized_bits;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 6.5);
}

TEST(FloodTest, WorksUnderAsync) {
  const aer::AerReport r =
      run_flood(config_for(128, 4, aer::Model::kAsync));
  EXPECT_TRUE(r.agreement);
  EXPECT_LE(r.completion_time, 1.0);  // a single delay unit
}

TEST(FloodTest, LoadIsBalanced) {
  const aer::AerReport r = run_flood(config_for(256, 5));
  EXPECT_LT(r.sent_bits.imbalance(), 1.10);
}

// ----- SQRT-SAMPLE ---------------------------------------------------------------

TEST(SqrtSampleTest, ParamsScaleAsRootN) {
  const auto p128 = SqrtSampleParams::defaults(128);
  const auto p512 = SqrtSampleParams::defaults(512);
  const auto p2048 = SqrtSampleParams::defaults(2048);
  // Doubling n twice roughly doubles the sample (sqrt(4) = 2, plus log).
  EXPECT_GT(static_cast<double>(p512.sample_size) / p128.sample_size, 1.8);
  EXPECT_GT(static_cast<double>(p2048.sample_size) / p512.sample_size, 1.8);
  EXPECT_EQ(p128.reply_cap, 4 * p128.sample_size);
}

class SqrtSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqrtSeedSweep, EveryoneDecidesGstring) {
  const aer::AerReport r = run_sqrtsample(config_for(256, GetParam()));
  EXPECT_TRUE(r.agreement);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqrtSeedSweep, ::testing::Values(1, 2, 3, 4));

TEST(SqrtSampleTest, WorksUnderAsync) {
  const aer::AerReport r =
      run_sqrtsample(config_for(256, 5, aer::Model::kAsync));
  EXPECT_TRUE(r.agreement);
}

TEST(SqrtSampleTest, JunkRepliesCannotFlipTheMajority) {
  const aer::AerReport r =
      run_sqrtsample(config_for(256, 6), sqrt_junk_reply_strategy());
  EXPECT_TRUE(r.agreement);
  // Safety: nobody decided the junk string.
  EXPECT_EQ(r.decided_gstring, r.decided_count);
}

TEST(SqrtSampleTest, LoadStaysBalancedUnderQueryFlood) {
  // The reply cap bounds each node's outbound traffic even if the adversary
  // concentrates queries (here: natural load only; cap is the invariant).
  const aer::AerReport r = run_sqrtsample(config_for(256, 7));
  EXPECT_LT(r.sent_bits.imbalance(), 1.5);
}

TEST(SqrtSampleTest, BitsSitBetweenAerConstantsAndFlood) {
  // The defining cost shape: ~sqrt(n) polylog bits per node — far below
  // flooding at this n.
  const aer::AerReport sample = run_sqrtsample(config_for(512, 8));
  const aer::AerReport flood = run_flood(config_for(512, 8));
  EXPECT_LT(sample.amortized_bits, flood.amortized_bits / 2);
}

TEST(SqrtSampleTest, GrowthIsSlowerThanFlood) {
  const aer::AerReport s128 = run_sqrtsample(config_for(128, 9));
  const aer::AerReport s512 = run_sqrtsample(config_for(512, 9));
  const aer::AerReport f128 = run_flood(config_for(128, 9));
  const aer::AerReport f512 = run_flood(config_for(512, 9));
  const double sample_growth = s512.amortized_bits / s128.amortized_bits;
  const double flood_growth = f512.amortized_bits / f128.amortized_bits;
  EXPECT_LT(sample_growth, flood_growth);
}

TEST(SqrtSampleTest, ParamsOverrideIsHonored) {
  aer::AerWorld world = aer::build_aer_world(config_for(128, 10));
  SqrtSampleParams params;
  params.sample_size = 32;
  params.reply_cap = 128;
  const aer::AerReport r = run_sqrtsample_world(world, {}, &params);
  EXPECT_TRUE(r.agreement);
  // Query count: every correct node sends exactly sample_size queries.
  EXPECT_EQ(r.msgs_of(sim::MessageKind::kQuery),
            r.correct_count * params.sample_size);
}

}  // namespace
}  // namespace fba::baseline
