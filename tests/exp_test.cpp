// Tests for the exp/ experiment runner: deterministic seeding, grid
// expansion, thread-count-independent aggregation, the statistics helpers,
// and the async-engine accounting fixes that the runner's traffic numbers
// rely on (timer/delivery separation, immediate done re-check).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "fba.h"

namespace fba {
namespace {

// ----- stats -----------------------------------------------------------------

TEST(StatsTest, SummarizeSampleBasics) {
  const auto s = exp::summarize_sample({4, 1, 3, 2});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_GT(s.stddev, 0);
  EXPECT_GT(s.ci95, 0);
  EXPECT_LT(s.ci_lo(), s.mean);
  EXPECT_GT(s.ci_hi(), s.mean);
}

TEST(StatsTest, SummarizeIsOrderInvariant) {
  const std::vector<double> a = {5, 1, 9, 2, 2, 7};
  std::vector<double> b = a;
  std::reverse(b.begin(), b.end());
  const auto sa = exp::summarize_sample(a);
  const auto sb = exp::summarize_sample(b);
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
  EXPECT_DOUBLE_EQ(sa.stddev, sb.stddev);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> sorted = {0, 10};
  EXPECT_DOUBLE_EQ(exp::quantile_sorted(sorted, 0.0), 0);
  EXPECT_DOUBLE_EQ(exp::quantile_sorted(sorted, 0.5), 5);
  EXPECT_DOUBLE_EQ(exp::quantile_sorted(sorted, 1.0), 10);
  EXPECT_DOUBLE_EQ(exp::quantile_sorted({}, 0.5), 0);
}

TEST(StatsTest, EmptyAndSingletonSamples) {
  EXPECT_EQ(exp::summarize_sample({}).count, 0u);
  const auto s = exp::summarize_sample({7});
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.ci95, 0);
}

// ----- seeds and grid --------------------------------------------------------

TEST(SweepTest, TrialSeedsAreDeterministicAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 8; ++p) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      const std::uint64_t s = exp::trial_seed(1, p, t);
      EXPECT_EQ(s, exp::trial_seed(1, p, t));
      EXPECT_NE(s, 0u);
      seen.insert(s);
    }
  }
  EXPECT_EQ(seen.size(), 8u * 64u);  // no collisions across the sweep
  EXPECT_NE(exp::trial_seed(1, 0, 0), exp::trial_seed(2, 0, 0));
}

TEST(SweepTest, GridExpansionCoversCrossProduct) {
  aer::AerConfig base;
  base.n = 64;
  exp::Grid grid;
  grid.ns = {64, 128};
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"none", "wrong"};
  EXPECT_EQ(grid.points(), 8u);
  const auto points = exp::expand_grid(base, grid);
  ASSERT_EQ(points.size(), 8u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_DOUBLE_EQ(points[i].corrupt_fraction, base.corrupt_fraction);
  }
  // n varies fastest; strategy slowest.
  EXPECT_EQ(points[0].n, 64u);
  EXPECT_EQ(points[1].n, 128u);
  EXPECT_EQ(points[0].strategy, "none");
  EXPECT_EQ(points[4].strategy, "wrong");
}

TEST(SweepTest, EmptyGridIsSinglePointFromBase) {
  aer::AerConfig base;
  base.n = 96;
  base.model = aer::Model::kAsync;
  const auto points = exp::expand_grid(base, exp::Grid{});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].n, 96u);
  EXPECT_EQ(points[0].model, aer::Model::kAsync);
  EXPECT_EQ(points[0].strategy, "none");
}

TEST(SweepTest, UnknownAttackThrows) {
  EXPECT_THROW(exp::attack_factory("no-such-attack"), ConfigError);
  for (const std::string& name : exp::known_attacks()) {
    EXPECT_NO_THROW(exp::attack_factory(name));
  }
}

// ----- run_indexed -----------------------------------------------------------

TEST(SweepTest, RunIndexedCoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    exp::run_indexed(hits.size(), threads,
                     [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(SweepTest, RunIndexedPropagatesExceptions) {
  EXPECT_THROW(
      exp::run_indexed(64, 4,
                       [](std::size_t i) {
                         if (i == 13) throw ConfigError("boom");
                       }),
      ConfigError);
}

// ----- the determinism contract ---------------------------------------------

TEST(SweepTest, AggregateBitIdenticalAcrossThreadCounts) {
  aer::AerConfig base;
  base.n = 64;
  base.seed = 20130722;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};

  exp::Sweep serial(base, grid, 4);
  serial.set_threads(1);
  const auto serial_results = serial.run();

  exp::Sweep parallel(base, grid, 4);
  parallel.set_threads(4);
  const auto parallel_results = parallel.run();

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    const exp::Aggregate& a = serial_results[i].aggregate;
    const exp::Aggregate& b = parallel_results[i].aggregate;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_DOUBLE_EQ(a.completion_time.mean, b.completion_time.mean);
    EXPECT_DOUBLE_EQ(a.amortized_bits.p99, b.amortized_bits.p99);
    EXPECT_EQ(a.agreements, b.agreements);
    // Raw outcomes line up trial by trial, including derived seeds.
    ASSERT_EQ(serial_results[i].outcomes.size(),
              parallel_results[i].outcomes.size());
    for (std::size_t t = 0; t < serial_results[i].outcomes.size(); ++t) {
      EXPECT_EQ(serial_results[i].outcomes[t].seed,
                parallel_results[i].outcomes[t].seed);
      EXPECT_DOUBLE_EQ(serial_results[i].outcomes[t].completion_time,
                       parallel_results[i].outcomes[t].completion_time);
    }
  }
}

TEST(SweepTest, ArenaTrialsMatchFreshConstructionBitForBit) {
  // The trial-arena path (Sweep's default: world/engine/actor storage
  // reused across a worker's trials) must reproduce the legacy
  // fresh-construction path exactly — no dependence on arena history.
  aer::AerConfig base;
  base.n = 64;
  base.seed = 20130722;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"none", "junk-light"};

  exp::Sweep arena_sweep(base, grid, 3);
  arena_sweep.set_threads(1);  // one arena, maximally reused
  const auto arena_results = arena_sweep.run();
  EXPECT_TRUE(arena_sweep.timing().available);
  EXPECT_EQ(arena_sweep.timing().trials, arena_sweep.total_trials());
  EXPECT_GT(arena_sweep.timing().setup_seconds, 0.0);
  EXPECT_GT(arena_sweep.timing().run_seconds, 0.0);

  exp::Sweep fresh_sweep(base, grid, 3);
  fresh_sweep.set_threads(1);
  fresh_sweep.set_trial(
      static_cast<exp::TrialOutcome (*)(const aer::AerConfig&,
                                        const exp::GridPoint&)>(
          exp::run_aer_trial));
  const auto fresh_results = fresh_sweep.run();
  EXPECT_FALSE(fresh_sweep.timing().available);

  ASSERT_EQ(arena_results.size(), fresh_results.size());
  for (std::size_t i = 0; i < arena_results.size(); ++i) {
    EXPECT_EQ(arena_results[i].aggregate.fingerprint(),
              fresh_results[i].aggregate.fingerprint())
        << arena_results[i].point.label();
  }
}

TEST(SweepTest, ArenaReusedAcrossGridShapesStaysCorrect) {
  // One arena serves trials of different n / model back to back (grid
  // points resize the world, engines and tables in place).
  aer::AerConfig base;
  base.seed = 7;
  exp::Grid grid;
  grid.ns = {64, 32, 96};
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  exp::Sweep sweep(base, grid, 2);
  sweep.set_threads(1);
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), 6u);
  for (const exp::PointResult& r : results) {
    EXPECT_EQ(r.aggregate.agreements, r.aggregate.trials) << r.point.label();
  }
  // And the same sweep through four workers (four arenas, different trial
  // interleavings) folds to identical fingerprints.
  exp::Sweep parallel(base, grid, 2);
  parallel.set_threads(4);
  const auto parallel_results = parallel.run();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(),
              parallel_results[i].aggregate.fingerprint());
  }
}

TEST(SweepTest, PerKindTrafficAxesArePopulatedAndConsistent) {
  aer::AerConfig base;
  base.n = 64;
  base.seed = 20130722;
  exp::Sweep sweep(base, exp::Grid{}, 3);
  sweep.set_threads(1);
  const exp::Aggregate agg = sweep.run().front().aggregate;

  // All six AER hops carry traffic, and the per-kind means decompose the
  // whole-run totals: sum over kinds == total messages, per trial.
  using sim::MessageKind;
  double msg_sum = 0;
  double bits_mean_sum = 0;
  for (std::size_t k = 0; k < sim::kNumMessageKinds; ++k) {
    msg_sum += agg.msgs_by_kind[k];
    bits_mean_sum += agg.bits_by_kind[k].mean;
  }
  EXPECT_NEAR(msg_sum, agg.total_messages.mean, 1e-6);
  EXPECT_GT(bits_mean_sum, 0);
  for (const MessageKind kind :
       {MessageKind::kPush, MessageKind::kPoll, MessageKind::kPull,
        MessageKind::kFw1, MessageKind::kFw2, MessageKind::kAnswer}) {
    EXPECT_GT(agg.msgs_by_kind[sim::kind_index(kind)], 0)
        << sim::kind_name(kind);
    EXPECT_GT(agg.bits_by_kind[sim::kind_index(kind)].mean, 0)
        << sim::kind_name(kind);
  }
  // Non-AER kinds stay zero in an AER sweep.
  EXPECT_EQ(agg.msgs_by_kind[sim::kind_index(MessageKind::kSnowQuery)], 0);
}

TEST(SweepTest, ProgressCallbackCountsEveryTrial) {
  aer::AerConfig base;
  base.n = 64;
  base.seed = 3;
  for (std::size_t threads : {1u, 4u}) {
    exp::Sweep sweep(base, exp::Grid{}, 6);
    sweep.set_threads(threads);
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    sweep.set_progress([&calls](std::size_t done, std::size_t total) {
      calls.emplace_back(done, total);  // serialized by the sweep
    });
    sweep.run();
    ASSERT_EQ(calls.size(), 6u);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      EXPECT_EQ(calls[i].first, i + 1);  // monotonically counted
      EXPECT_EQ(calls[i].second, 6u);
    }
  }
}

TEST(SweepTest, ModelSweepReachesAgreementWithAllCorrectNodes) {
  aer::AerConfig base;
  base.seed = 7;
  base.corrupt_fraction = 0.0;  // all-correct population
  exp::Grid grid;
  grid.ns = {64, 128};
  grid.models = {aer::Model::kSyncNonRushing, aer::Model::kSyncRushing,
                 aer::Model::kAsync};
  exp::Sweep sweep(base, grid, 3);
  sweep.set_threads(exp::default_threads());
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), 6u);
  for (const exp::PointResult& r : results) {
    EXPECT_EQ(r.aggregate.trials, 3u) << r.point.label();
    EXPECT_EQ(r.aggregate.agreements, 3u) << r.point.label();
    EXPECT_EQ(r.aggregate.wrong_decisions, 0u) << r.point.label();
    EXPECT_EQ(r.aggregate.stalled_nodes, 0u) << r.point.label();
    EXPECT_EQ(r.aggregate.engine_incomplete, 0u) << r.point.label();
    EXPECT_GT(r.aggregate.decision_time.count, 0u) << r.point.label();
  }
}

TEST(SweepTest, CorruptedSweepNeverDecidesWrong) {
  // With the default 8% corruption a correct node can stall (a liveness
  // tail at laptop-scale d — see bench_endtoend's resilience curve), but
  // safety must hold: no correct node ever decides on junk.
  aer::AerConfig base;
  base.seed = 7;
  exp::Grid grid;
  grid.ns = {64, 128};
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"wrong"};
  exp::Sweep sweep(base, grid, 3);
  sweep.set_threads(exp::default_threads());
  for (const exp::PointResult& r : sweep.run()) {
    EXPECT_EQ(r.aggregate.wrong_decisions, 0u) << r.point.label();
    EXPECT_GT(r.aggregate.agreement_rate(), 0.5) << r.point.label();
  }
}

// ----- async engine accounting ----------------------------------------------

sim::Wire count_wire() {
  sim::Wire w;
  w.node_id_bits = 8;
  w.label_bits = 16;
  w.fixed_string_bits = 32;
  return w;
}

sim::Message note_msg() {
  sim::Message m;
  m.kind = sim::MessageKind::kPing;
  return m;
}

/// Sends `sends` messages to node 1 and schedules `timers` timers at start.
struct SenderActor final : sim::Actor {
  SenderActor(int sends, int timers) : sends(sends), timers(timers) {}
  void on_start(sim::Context& ctx) override {
    for (int i = 0; i < sends; ++i) ctx.send(1, note_msg());
    for (int i = 0; i < timers; ++i) {
      ctx.schedule_timer(0.25 * (i + 1), static_cast<std::uint64_t>(i));
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
  int sends;
  int timers;
};

struct SinkActor final : sim::Actor {
  void on_start(sim::Context&) override {}
  void on_message(sim::Context&, const sim::Envelope&) override { ++received; }
  void on_timer(sim::Context&, std::uint64_t) override { ++timer_fires; }
  int received = 0;
  int timer_fires = 0;
};

TEST(AsyncAccountingTest, DeliveriesExcludeTimerFirings) {
  sim::AsyncConfig cfg;
  cfg.n = 2;
  cfg.seed = 11;
  sim::AsyncEngine engine(cfg);
  const sim::Wire wire = count_wire();
  engine.set_wire(&wire);
  auto* sender = new SenderActor(/*sends=*/5, /*timers=*/3);
  engine.set_actor(0, std::unique_ptr<sim::Actor>(sender));
  engine.set_actor(1, std::make_unique<SinkActor>());
  const auto result = engine.run([] { return false; });
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.deliveries, 5u);
  EXPECT_EQ(result.timer_fires, 3u);
  EXPECT_EQ(engine.metrics().total_messages(), 5u);
}

/// Decides on the first delivered message.
struct DecideOnFirstActor final : sim::Actor {
  void on_start(sim::Context&) override {}
  void on_message(sim::Context& ctx, const sim::Envelope&) override {
    if (!decided) {
      decided = true;
      ctx.decide(0);
    }
  }
  bool decided = false;
};

TEST(AsyncAccountingTest, DoneRecheckedImmediatelyAfterDecision) {
  sim::AsyncConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  cfg.done_check_stride = 64;
  sim::AsyncEngine engine(cfg);
  const sim::Wire wire = count_wire();
  engine.set_wire(&wire);
  // 40 in-flight messages; the first delivery decides. With the stride-only
  // check the engine would chew through up to 39 more events before
  // noticing; the decision-triggered re-check must stop it at exactly one.
  engine.set_actor(0, std::make_unique<SenderActor>(/*sends=*/40,
                                                    /*timers=*/0));
  engine.set_actor(1, std::make_unique<DecideOnFirstActor>());
  bool decided = false;
  engine.set_decision_callback(
      [&decided](NodeId, StringId, double) { decided = true; });
  const auto result = engine.run([&decided] { return decided; });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.deliveries, 1u);
  EXPECT_LE(result.time, 1.0);
}

}  // namespace
}  // namespace fba
