// Tests for the later additions: the hash-sampler ablation, the Snowball
// practitioner baseline, histograms, and engine timers.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/flood.h"
#include "baseline/snowball.h"
#include "net/async_engine.h"
#include "net/sync_engine.h"
#include "sampler/hash_sampler.h"
#include "sampler/properties.h"
#include "support/histogram.h"

namespace fba {
namespace {

// ----- HashQuorumSampler (the ablation) -----------------------------------------

TEST(HashSamplerTest, QuorumsAreWellFormed) {
  const auto params = sampler::SamplerParams::defaults(256, 3);
  sampler::HashQuorumSampler sampler(params, 0x77);
  for (NodeId x = 0; x < 64; ++x) {
    const auto q = sampler.quorum(0xfeed, x);
    EXPECT_EQ(q.size(), params.d);
    for (NodeId m : q.members) EXPECT_LT(m, 256u);
  }
}

TEST(HashSamplerTest, TargetsInvertQuorums) {
  const auto params = sampler::SamplerParams::defaults(128, 3);
  sampler::HashQuorumSampler sampler(params, 0x77);
  const auto targets = sampler.targets(0xfeed, 9);
  for (NodeId x : targets) {
    EXPECT_TRUE(sampler.quorum(0xfeed, x).contains(9));
  }
  // And completeness: every quorum containing 9 is in the target list.
  std::size_t expected = 0;
  for (NodeId x = 0; x < 128; ++x) {
    expected += sampler.quorum(0xfeed, x).contains(9) ? 1 : 0;
  }
  EXPECT_EQ(targets.size(), expected);
}

TEST(HashSamplerTest, LoadsSpreadUnlikePermutationSampler) {
  // The design-decision ablation (DESIGN.md §6): hash sampling gives
  // Poisson(d) slot loads — some node is overloaded, some underloaded —
  // while the permutation sampler is exactly d everywhere.
  const auto params = sampler::SamplerParams::defaults(1024, 3);
  sampler::HashQuorumSampler hashed(params, 0x77);
  const auto loads = hashed.slot_loads(0xfeed);
  const auto max_load = *std::max_element(loads.begin(), loads.end());
  const auto min_load = *std::min_element(loads.begin(), loads.end());
  EXPECT_GT(max_load, params.d);      // overload exists...
  EXPECT_LT(min_load, params.d);      // ...and so does underload.
  EXPECT_LT(max_load, 4 * params.d);  // but within the Poisson envelope.

  sampler::QuorumSampler permuted(params, 0x77);
  const auto report = sampler::check_overload(permuted, 0xfeed);
  EXPECT_EQ(report.max_load, params.d);  // exact, by construction
}

// ----- Histogram ------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h(0, 10, 10);
  for (double v : {1.0, 2.0, 2.0, 3.0, 8.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 5);
}

TEST(HistogramTest, QuantilesAreOrderedAndBracketed) {
  Histogram h(0, 100, 50);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform() * 100);
  const double q10 = h.quantile(0.10);
  const double q50 = h.quantile(0.50);
  const double q99 = h.quantile(0.99);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q99);
  EXPECT_NEAR(q50, 50.0, 5.0);
  EXPECT_NEAR(q99, 99.0, 5.0);
}

TEST(HistogramTest, OverflowAndUnderflowCaptured) {
  Histogram h(0, 1, 4);
  h.add(-5);
  h.add(99);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5);
  EXPECT_DOUBLE_EQ(h.max(), 99);
}

TEST(HistogramTest, RenderMentionsRangeAndCount) {
  Histogram h(0, 4, 8);
  h.add(1);
  h.add(1.2);
  const std::string text = h.render();
  EXPECT_NE(text.find("n=2"), std::string::npos);
}

TEST(HistogramTest, RejectsBadConfig) {
  EXPECT_THROW(Histogram(3, 3, 4), ConfigError);
  EXPECT_THROW(Histogram(0, 1, 0), ConfigError);
  Histogram h(0, 1, 4);
  EXPECT_THROW(h.quantile(1.5), ConfigError);
}

// ----- engine timers ---------------------------------------------------------------

sim::Wire timer_wire() {
  sim::Wire w;
  w.node_id_bits = 8;
  w.fixed_string_bits = 8;
  return w;
}

class TimerActor final : public sim::Actor {
 public:
  void on_start(sim::Context& ctx) override {
    ctx.schedule_timer(1.0, 7);
    ctx.schedule_timer(2.5, 8);
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
  void on_timer(sim::Context& ctx, std::uint64_t token) override {
    fired.emplace_back(token, ctx.now());
  }
  std::vector<std::pair<std::uint64_t, double>> fired;
};

TEST(TimerTest, SyncTimersFireAtCeilRounds) {
  sim::SyncConfig cfg;
  cfg.n = 2;
  sim::SyncEngine engine(cfg);
  const sim::Wire wire = timer_wire();
  engine.set_wire(&wire);
  auto* actor = new TimerActor();
  engine.set_actor(0, std::unique_ptr<sim::Actor>(actor));
  engine.set_actor(1, std::make_unique<TimerActor>());
  engine.run([] { return false; });
  ASSERT_EQ(actor->fired.size(), 2u);
  EXPECT_EQ(actor->fired[0].first, 7u);
  EXPECT_DOUBLE_EQ(actor->fired[0].second, 1.0);
  EXPECT_EQ(actor->fired[1].first, 8u);
  EXPECT_DOUBLE_EQ(actor->fired[1].second, 3.0);  // ceil(2.5)
}

TEST(TimerTest, AsyncTimersFireAtExactTime) {
  sim::AsyncConfig cfg;
  cfg.n = 2;
  sim::AsyncEngine engine(cfg);
  const sim::Wire wire = timer_wire();
  engine.set_wire(&wire);
  auto* actor = new TimerActor();
  engine.set_actor(0, std::unique_ptr<sim::Actor>(actor));
  engine.set_actor(1, std::make_unique<TimerActor>());
  engine.run([] { return false; });
  ASSERT_EQ(actor->fired.size(), 2u);
  EXPECT_DOUBLE_EQ(actor->fired[0].second, 1.0);
  EXPECT_DOUBLE_EQ(actor->fired[1].second, 2.5);
}

// ----- Snowball -------------------------------------------------------------------

aer::AerConfig snow_config(std::size_t n, std::uint64_t seed,
                           aer::Model model = aer::Model::kSyncRushing) {
  aer::AerConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.model = model;
  cfg.max_rounds = 400;
  return cfg;
}

class SnowballSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnowballSeedSweep, ConvergesToGstring) {
  const aer::AerReport r =
      baseline::run_snowball(snow_config(256, GetParam()));
  EXPECT_TRUE(r.agreement);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnowballSeedSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(SnowballTest, WorksUnderAsync) {
  const aer::AerReport r =
      baseline::run_snowball(snow_config(128, 5, aer::Model::kAsync));
  EXPECT_TRUE(r.agreement);
}

TEST(SnowballTest, CheaperThanFloodPerNode) {
  aer::AerWorld snow_world = aer::build_aer_world(snow_config(512, 6));
  const aer::AerReport snow = baseline::run_snowball_world(snow_world);
  aer::AerWorld flood_world = aer::build_aer_world(snow_config(512, 6));
  const aer::AerReport flood = baseline::run_flood_world(flood_world);
  EXPECT_TRUE(snow.agreement);
  EXPECT_LT(snow.amortized_bits, flood.amortized_bits / 4);
}

TEST(SnowballTest, LoadBalanced) {
  const aer::AerReport r = baseline::run_snowball(snow_config(256, 7));
  EXPECT_LT(r.sent_bits.imbalance(), 2.0);
}

class SnowJunkReplyStrategy final : public adv::Strategy {
 public:
  explicit SnowJunkReplyStrategy(const aer::AerWorldView& view)
      : shared_(view.shared) {
    const std::size_t bits = shared_->table.get(view.gstring).size();
    Rng rng = Rng(shared_->config.seed).split(0x5e77ull);
    junk_ = shared_->table.intern(BitString::random(bits, rng));
  }

  void on_deliver_to_corrupt(adv::AdvContext& ctx,
                             const sim::Envelope& env) override {
    const auto* q = env.msg.as(sim::MessageKind::kSnowQuery);
    if (q == nullptr) return;
    ctx.send_from(env.dst, env.src, baseline::snow_reply_msg(junk_, q->phase));
  }

 private:
  aer::AerShared* shared_;
  StringId junk_;
};

TEST(SnowballTest, SafetyUnderJunkReplies) {
  // Corrupt nodes answering junk shift confidence but cannot assemble an
  // alpha-quorum for junk at t/n = 8%: nobody decides a wrong value.
  const aer::AerReport r = baseline::run_snowball(
      snow_config(256, 8), [](const aer::AerWorldView& view) {
        return std::make_unique<SnowJunkReplyStrategy>(view);
      });
  EXPECT_EQ(r.decided_gstring, r.decided_count);
}

}  // namespace
}  // namespace fba
