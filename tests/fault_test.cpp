// Tests for the fault-condition layer (net/fault.h): plan/state semantics,
// the engines' shared drop/delay path, per-cause metrics accounting, the
// scenario fault-preset registry and the Grid fault axis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "fba.h"

namespace fba {
namespace {

using sim::FaultCause;
using sim::FaultPlan;
using sim::FaultState;

// ----- FaultPlan / FaultState unit tests -------------------------------------

TEST(FaultPlanTest, EmptyDetectsAnyPerturbation) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.loss = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = FaultPlan{};
  plan.jitter_prob = 0.5;
  EXPECT_FALSE(plan.empty());
  plan = FaultPlan{};
  plan.partitions.push_back({.start = 0, .heal = 1, .cut_fraction = 0.5});
  EXPECT_FALSE(plan.empty());
  plan = FaultPlan{};
  plan.churns.push_back({.down = 0, .up = 1, .fraction = 0.1});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultStateTest, LossIsSeedDeterministicAndNearTheConfiguredRate) {
  FaultPlan plan;
  plan.loss = 0.10;
  FaultState a(plan, 16, 42);
  FaultState b(plan, 16, 42);
  int drops = 0;
  const int kSends = 20000;
  for (int i = 0; i < kSends; ++i) {
    const auto act_a = a.on_send(0, 1, 0.0);
    const auto act_b = b.on_send(0, 1, 0.0);
    EXPECT_EQ(act_a.drop, act_b.drop);  // same seed, same stream
    if (act_a.drop) {
      EXPECT_EQ(act_a.cause, FaultCause::kLoss);
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / kSends;
  EXPECT_NEAR(rate, 0.10, 0.01);

  // A different seed gives a different stream.
  FaultState c(plan, 16, 43);
  int disagreements = 0;
  FaultState a2(plan, 16, 42);
  for (int i = 0; i < 1000; ++i) {
    if (a2.on_send(0, 1, 0.0).drop != c.on_send(0, 1, 0.0).drop) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultStateTest, PartitionCutsOnlyDuringWindowAndAcrossSides) {
  FaultPlan plan;
  plan.partitions.push_back({.start = 2, .heal = 6, .cut_fraction = 0.5});
  const std::size_t n = 64;
  FaultState state(plan, n, 7);

  // Sides are a random even split: exactly n/2 nodes on side A, so across
  // all pairs some are cut and none are cut to themselves.
  std::size_t cut_pairs = 0, total_pairs = 0;
  for (NodeId a = 0; a < n; ++a) {
    EXPECT_FALSE(state.is_cut(a, a, 3.0));
    for (NodeId b = a + 1; b < n; ++b) {
      ++total_pairs;
      if (state.is_cut(a, b, 3.0)) ++cut_pairs;
      // Symmetric and inactive outside [start, heal).
      EXPECT_EQ(state.is_cut(a, b, 3.0), state.is_cut(b, a, 3.0));
      EXPECT_FALSE(state.is_cut(a, b, 1.0));
      EXPECT_FALSE(state.is_cut(a, b, 6.0));  // heal instant is exclusive
    }
  }
  // An even cut separates (n/2)^2 of the n(n-1)/2 unordered pairs.
  EXPECT_EQ(cut_pairs, (n / 2) * (n / 2));
  EXPECT_EQ(total_pairs, n * (n - 1) / 2);
  // Boundary instants: active at start, gone at heal.
  bool any_at_start = false;
  for (NodeId b = 1; b < n; ++b) any_at_start |= state.is_cut(0, b, 2.0);
  EXPECT_TRUE(any_at_start);
}

TEST(FaultStateTest, ChurnRosterMatchesFractionAndWindow) {
  FaultPlan plan;
  plan.churns.push_back({.down = 1, .up = 5, .fraction = 0.25});
  const std::size_t n = 64;
  FaultState state(plan, n, 11);

  std::size_t down_in_window = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (state.is_down(id, 2.0)) ++down_in_window;
    EXPECT_FALSE(state.is_down(id, 0.5));  // before the window
    EXPECT_FALSE(state.is_down(id, 5.0));  // `up` instant is exclusive
  }
  EXPECT_EQ(down_in_window, n / 4);

  // Dropping any message touching a down node, both directions.
  NodeId down_node = 0, up_node = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (state.is_down(id, 2.0)) down_node = id;
    else up_node = id;
  }
  EXPECT_TRUE(state.on_send(down_node, up_node, 2.0).drop);
  EXPECT_TRUE(state.on_send(up_node, down_node, 2.0).drop);
  EXPECT_EQ(state.on_send(up_node, down_node, 2.0).cause, FaultCause::kChurn);
  EXPECT_FALSE(state.on_send(up_node, down_node, 6.0).drop);
}

// Fault windows whose heal/up edge lands exactly on the run horizon: the
// window is [start, end) exclusive, so the fault is active at every
// pre-horizon instant and gone at the edge itself. A window ending at the
// horizon is therefore indistinguishable from one that outlives the run —
// the engine never sends at a time >= the horizon.
TEST(FaultStateTest, WindowEdgeAtRunHorizonIsExclusive) {
  const double kHorizon = 8.0;
  FaultPlan plan;
  plan.partitions.push_back(
      {.start = 0, .heal = kHorizon, .cut_fraction = 0.5});
  plan.churns.push_back({.down = 0, .up = kHorizon, .fraction = 0.25});
  const std::size_t n = 32;
  FaultState state(plan, n, 3);

  NodeId cut_a = 0, cut_b = 0, down_node = n;
  for (NodeId a = 0; a < n && cut_b == 0; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (state.is_cut(a, b, 0.0)) {
        cut_a = a;
        cut_b = b;
        break;
      }
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (state.is_down(id, 0.0)) down_node = id;
  }
  ASSERT_NE(cut_b, 0u);
  ASSERT_NE(down_node, n);

  // Active through the last representable pre-horizon instant...
  const double just_before = std::nextafter(kHorizon, 0.0);
  EXPECT_TRUE(state.is_cut(cut_a, cut_b, just_before));
  EXPECT_TRUE(state.is_down(down_node, just_before));
  // ...and gone at the edge instant exactly ([start, end) exclusive).
  EXPECT_FALSE(state.is_cut(cut_a, cut_b, kHorizon));
  EXPECT_FALSE(state.is_down(down_node, kHorizon));
  EXPECT_FALSE(state.on_send(cut_a, cut_b, kHorizon).drop);
}

TEST(FaultStateTest, JitterDelaysWithoutDropping) {
  FaultPlan plan;
  plan.jitter_prob = 0.5;
  plan.jitter = 2.0;
  FaultState state(plan, 8, 5);
  int delayed = 0;
  const int kSends = 4000;
  for (int i = 0; i < kSends; ++i) {
    const auto act = state.on_send(0, 1, 0.0);
    EXPECT_FALSE(act.drop);
    if (act.extra_delay > 0) {
      EXPECT_DOUBLE_EQ(act.extra_delay, 2.0);
      ++delayed;
    }
  }
  EXPECT_NEAR(static_cast<double>(delayed) / kSends, 0.5, 0.05);
}

// ----- engine integration ----------------------------------------------------

sim::Wire flat_wire() {
  sim::Wire w;
  w.node_id_bits = 8;
  w.label_bits = 16;
  w.fixed_string_bits = 32;
  return w;
}

sim::Message ping() {
  sim::Message m;
  m.kind = sim::MessageKind::kPing;
  return m;
}

/// Sends `count` pings to node 1 at start.
class BurstActor final : public sim::Actor {
 public:
  explicit BurstActor(int count) : count_(count) {}
  void on_start(sim::Context& ctx) override {
    for (int i = 0; i < count_; ++i) ctx.send(1, ping());
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}

 private:
  int count_;
};

class CountingActor final : public sim::Actor {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context&, const sim::Envelope&) override {
    ++received;
  }
  int received = 0;
};

TEST(FaultEngineTest, TotalLossDropsEverythingOnBothEngines) {
  FaultPlan plan;
  plan.loss = 1.0;

  sim::SyncConfig scfg;
  scfg.n = 2;
  scfg.seed = 9;
  sim::SyncEngine sync_engine(scfg);
  const sim::Wire wire = flat_wire();
  sync_engine.set_wire(&wire);
  sync_engine.set_fault_plan(&plan);
  sync_engine.set_actor(0, std::make_unique<BurstActor>(10));
  auto* sync_sink = new CountingActor();
  sync_engine.set_actor(1, std::unique_ptr<sim::Actor>(sync_sink));
  sync_engine.run([] { return false; });
  EXPECT_EQ(sync_sink->received, 0);
  EXPECT_EQ(sync_engine.metrics().fault_dropped_messages(), 10u);
  EXPECT_EQ(sync_engine.metrics().drops_of(FaultCause::kLoss), 10u);
  // Dropped traffic stays charged: the bits left the sender.
  EXPECT_EQ(sync_engine.metrics().total_messages(), 10u);
  EXPECT_GT(sync_engine.metrics().fault_dropped_bits(), 0u);

  sim::AsyncConfig acfg;
  acfg.n = 2;
  acfg.seed = 9;
  sim::AsyncEngine async_engine(acfg);
  async_engine.set_wire(&wire);
  async_engine.set_fault_plan(&plan);
  async_engine.set_actor(0, std::make_unique<BurstActor>(10));
  auto* async_sink = new CountingActor();
  async_engine.set_actor(1, std::unique_ptr<sim::Actor>(async_sink));
  const auto result = async_engine.run([] { return false; });
  EXPECT_EQ(async_sink->received, 0);
  EXPECT_EQ(result.deliveries, 0u);
  EXPECT_EQ(async_engine.metrics().fault_dropped_messages(), 10u);
}

TEST(FaultEngineTest, EmptyOrNullPlanIsDisabled) {
  FaultPlan empty;
  sim::SyncConfig cfg;
  cfg.n = 2;
  sim::SyncEngine engine(cfg);
  const sim::Wire wire = flat_wire();
  engine.set_wire(&wire);
  engine.set_fault_plan(&empty);
  EXPECT_EQ(engine.fault_state(), nullptr);
  engine.set_fault_plan(nullptr);
  EXPECT_EQ(engine.fault_state(), nullptr);
  engine.set_actor(0, std::make_unique<BurstActor>(5));
  auto* sink = new CountingActor();
  engine.set_actor(1, std::unique_ptr<sim::Actor>(sink));
  engine.run([] { return false; });
  EXPECT_EQ(sink->received, 5);
  EXPECT_EQ(engine.metrics().fault_dropped_messages(), 0u);
}

TEST(FaultEngineTest, SyncJitterDefersDeliveryByWholeRounds) {
  FaultPlan plan;
  plan.jitter_prob = 1.0;
  plan.jitter = 2.0;
  sim::SyncConfig cfg;
  cfg.n = 2;
  cfg.max_rounds = 10;
  sim::SyncEngine engine(cfg);
  const sim::Wire wire = flat_wire();
  engine.set_wire(&wire);
  engine.set_fault_plan(&plan);
  engine.set_actor(0, std::make_unique<BurstActor>(1));
  auto* sink = new CountingActor();
  engine.set_actor(1, std::unique_ptr<sim::Actor>(sink));
  bool delivered = false;
  // Sent in round 0: natural delivery round 1, +2 rounds jitter = round 3.
  const auto result = engine.run([&] {
    if (sink->received > 0 && !delivered) delivered = true;
    return delivered;
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_EQ(engine.metrics().fault_delayed_messages(), 1u);
}

// Identical (plan, seed, protocol config) => identical run, on either
// engine: the fault layer must not perturb determinism.
TEST(FaultEngineTest, FaultedAerRunsAreReproducible) {
  for (const aer::Model model :
       {aer::Model::kSyncRushing, aer::Model::kAsync}) {
    aer::AerConfig cfg;
    cfg.n = 64;
    cfg.seed = 20260728;
    cfg.model = model;
    cfg.fault_plan = exp::fault_plan_factory("flaky");
    const aer::AerReport a = aer::run_aer(cfg);
    const aer::AerReport b = aer::run_aer(cfg);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.total_bits, b.total_bits);
    EXPECT_EQ(a.fault_dropped_msgs, b.fault_dropped_msgs);
    EXPECT_EQ(a.fault_delayed_msgs, b.fault_delayed_msgs);
    EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
    EXPECT_EQ(a.decided_count, b.decided_count);
    EXPECT_GT(a.fault_dropped_msgs + a.fault_delayed_msgs, 0u);
  }
}

// A window whose heal/up edge lands exactly on the run horizon behaves as
// a permanent fault: since [start, end) is exclusive and every send the
// engine performs happens strictly before the horizon, the run must be
// bit-identical to one whose window outlives the run — on both engines.
TEST(FaultEngineTest, WindowHealAtHorizonMatchesOutlivingWindow) {
  for (const aer::Model model :
       {aer::Model::kSyncRushing, aer::Model::kAsync}) {
    aer::AerConfig cfg;
    cfg.n = 64;
    cfg.seed = 20260729;
    cfg.model = model;
    cfg.max_rounds = 40;
    cfg.max_time = 40.0;
    cfg.fault_plan.partitions.push_back(
        {.start = 2, .heal = 40.0, .cut_fraction = 0.5});
    cfg.fault_plan.churns.push_back(
        {.down = 1, .up = 40.0, .fraction = 0.1});
    const aer::AerReport edge = aer::run_aer(cfg);

    aer::AerConfig outliving = cfg;
    outliving.fault_plan.partitions[0].heal = 1e9;
    outliving.fault_plan.churns[0].up = 1e9;
    const aer::AerReport forever = aer::run_aer(outliving);

    EXPECT_EQ(edge.total_messages, forever.total_messages)
        << aer::model_name(model);
    EXPECT_EQ(edge.total_bits, forever.total_bits) << aer::model_name(model);
    EXPECT_EQ(edge.fault_dropped_msgs, forever.fault_dropped_msgs)
        << aer::model_name(model);
    EXPECT_EQ(edge.decided_count, forever.decided_count)
        << aer::model_name(model);
    EXPECT_DOUBLE_EQ(edge.completion_time, forever.completion_time)
        << aer::model_name(model);
    EXPECT_GT(edge.fault_dropped_msgs, 0u) << aer::model_name(model);
  }
}

// A healed partition must not break safety: nodes that decide, decide on
// gstring (liveness may degrade; safety must not).
TEST(FaultEngineTest, SplitHealKeepsSafetyOnBothEngines) {
  for (const aer::Model model :
       {aer::Model::kSyncRushing, aer::Model::kAsync}) {
    aer::AerConfig cfg;
    cfg.n = 96;
    cfg.seed = 5;
    cfg.model = model;
    cfg.fault_plan = exp::fault_plan_factory("split-heal");
    const aer::AerReport report = aer::run_aer(cfg);
    EXPECT_EQ(report.decided_count, report.decided_gstring)
        << aer::model_name(model);
    EXPECT_GT(report.fault_drops_by_cause[sim::fault_cause_index(
                  FaultCause::kPartition)],
              0u)
        << aer::model_name(model);
  }
}

// ----- scenario registry and grid axis ---------------------------------------

TEST(FaultScenarioTest, EveryKnownPresetResolvesAndUnknownThrows) {
  for (const std::string& name : exp::known_faults()) {
    EXPECT_NO_THROW(exp::fault_plan_factory(name)) << name;
  }
  EXPECT_TRUE(exp::fault_plan_factory("none").empty());
  EXPECT_TRUE(exp::fault_plan_factory("").empty());
  EXPECT_FALSE(exp::fault_plan_factory("lossy-1pct").empty());
  try {
    exp::fault_plan_factory("no-such-fault");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-fault"), std::string::npos);
    for (const std::string& name : exp::known_faults()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(FaultScenarioTest, AttackFactoryErrorListsAttacksAndFaultPresets) {
  try {
    exp::attack_factory("lossy-1pct");  // a fault name on the attack axis
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    for (const std::string& name : exp::known_attacks()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
    for (const std::string& name : exp::known_faults()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(FaultScenarioTest, GridFaultAxisExpandsOutermost) {
  aer::AerConfig base;
  base.n = 64;
  exp::Grid grid;
  grid.ns = {64, 128};
  grid.strategies = {"none", "wrong"};
  grid.faults = {"none", "lossy-1pct"};
  EXPECT_EQ(grid.points(), 8u);
  const auto points = exp::expand_grid(base, grid);
  ASSERT_EQ(points.size(), 8u);
  EXPECT_EQ(points[0].fault, "none");
  EXPECT_EQ(points[4].fault, "lossy-1pct");  // fault varies slowest
  EXPECT_EQ(points[4].strategy, "none");
  EXPECT_NE(points[4].label().find("fault=lossy-1pct"), std::string::npos);
  // An unset fault axis keeps labels identical to the pre-fault format.
  const auto plain = exp::expand_grid(base, exp::Grid{});
  EXPECT_EQ(plain[0].label().find("fault="), std::string::npos);
}

TEST(FaultScenarioTest, SweepFaultAxisIsDeterministicAcrossThreads) {
  aer::AerConfig base;
  base.n = 64;
  base.seed = 20130722;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.faults = {"lossy-5pct", "churn-10pct"};

  exp::Sweep serial(base, grid, 3);
  serial.set_threads(1);
  const auto serial_results = serial.run();

  exp::Sweep parallel(base, grid, 3);
  parallel.set_threads(4);
  const auto parallel_results = parallel.run();

  ASSERT_EQ(serial_results.size(), 4u);
  ASSERT_EQ(parallel_results.size(), 4u);
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(serial_results[i].aggregate.fingerprint(),
              parallel_results[i].aggregate.fingerprint())
        << serial_results[i].point.label();
    // Faults actually engaged on every point.
    EXPECT_GT(serial_results[i].aggregate.fault_dropped_msgs.mean, 0)
        << serial_results[i].point.label();
  }
}

}  // namespace
}  // namespace fba
