// Golden-fingerprint regression corpus: a small fixed sweep (both engines x
// three attacks x two fault presets) whose Aggregate::fingerprint() values
// are committed below. Any change to simulation behavior — engine
// scheduling, RNG consumption, wire accounting, fault semantics, aggregate
// math — shifts a fingerprint and fails this suite loudly, instead of
// silently drifting every published number.
//
// When a change is INTENTIONAL, regenerate the table: run this binary and
// copy the "expected golden table" block it prints on failure (or run with
// FBA_PRINT_GOLDEN=1 to print it unconditionally).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fba.h"

namespace fba {
namespace {

// The corpus configuration. Do not tweak casually: every value below is
// part of what the fingerprints pin down.
exp::Sweep golden_sweep(std::size_t threads) {
  aer::AerConfig base;
  base.n = 48;
  base.seed = 20130722;
  base.corrupt_fraction = 0.08;
  base.max_rounds = 150;
  base.max_time = 150.0;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"none", "wrong", "stuff"};
  grid.faults = {"none", "lossy-1pct"};
  exp::Sweep sweep(base, grid, /*trials=*/3);
  sweep.set_threads(threads);
  return sweep;
}

// 12 points in expansion order (fault > strategy > model; n fixed).
constexpr std::uint64_t kGolden[] = {
    0x02170775fb6c9662ull,  // n=48 sync-rushing attack=none fault=none
    0xf1bbdf4d53767b2full,  // n=48 async attack=none fault=none
    0x0845003858fd12e2ull,  // n=48 sync-rushing attack=wrong fault=none
    0x459c570b394610ceull,  // n=48 async attack=wrong fault=none
    0xfe2aab916bbcf9b5ull,  // n=48 sync-rushing attack=stuff fault=none
    0x980ff32870fabf0bull,  // n=48 async attack=stuff fault=none
    0xb03a200b06788285ull,  // n=48 sync-rushing attack=none fault=lossy-1pct
    0xd1a6c6aa23658795ull,  // n=48 async attack=none fault=lossy-1pct
    0xe7d06f282aca6de1ull,  // n=48 sync-rushing attack=wrong fault=lossy-1pct
    0x62983c12514affe4ull,  // n=48 async attack=wrong fault=lossy-1pct
    0x525653d266fc08e4ull,  // n=48 sync-rushing attack=stuff fault=lossy-1pct
    0xca578d3496c770d8ull,  // n=48 async attack=stuff fault=lossy-1pct
};

// The adaptive corpus: the same base world, but the adversary spends a
// runtime corruption budget mid-run (adaptive-* strategies, budget axis).
// Pins the whole runtime-corruption path — the corrupt_now silencing on
// both engines, the adaptive RNG substream, greedy spend cadence and the
// correct-set bookkeeping — at two budgets per strategy.
exp::Sweep adaptive_golden_sweep(std::size_t threads) {
  aer::AerConfig base;
  base.n = 48;
  base.seed = 20130722;
  base.corrupt_fraction = 0.08;
  base.max_rounds = 150;
  base.max_time = 150.0;
  base.adaptive_from = 2.0;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.strategies = {"adaptive-degree", "adaptive-quorum", "adaptive-king",
                     "adaptive-random"};
  grid.budgets = {2, 8};
  exp::Sweep sweep(base, grid, /*trials=*/3);
  sweep.set_threads(threads);
  return sweep;
}

// 16 points in expansion order (budget > strategy > model; n fixed).
constexpr std::uint64_t kAdaptiveGolden[] = {
    0x590334e103e0a0f6ull,  // sync-rushing attack=adaptive-degree budget=2
    0x91cbd9b39a07fbe7ull,  // async attack=adaptive-degree budget=2
    0x4bef02ab20a36516ull,  // sync-rushing attack=adaptive-quorum budget=2
    0xc913078cf006281dull,  // async attack=adaptive-quorum budget=2
    0xb41c011ea0ab5d28ull,  // sync-rushing attack=adaptive-king budget=2
    0xe16ef5c1a9913148ull,  // async attack=adaptive-king budget=2
    0x1e38b2cd185f0b32ull,  // sync-rushing attack=adaptive-random budget=2
    0x341bf5cf53baea18ull,  // async attack=adaptive-random budget=2
    0x34cf34e0a07e1351ull,  // sync-rushing attack=adaptive-degree budget=8
    0x1383d00e2dd129e5ull,  // async attack=adaptive-degree budget=8
    0xe54998431a35e200ull,  // sync-rushing attack=adaptive-quorum budget=8
    0x2b9877767960a436ull,  // async attack=adaptive-quorum budget=8
    0x2e656c0151c8f313ull,  // sync-rushing attack=adaptive-king budget=8
    0xbf648db38035d553ull,  // async attack=adaptive-king budget=8
    0x9b82d00a9648744eull,  // sync-rushing attack=adaptive-random budget=8
    0x227db3e849126105ull,  // async attack=adaptive-random budget=8
};

// The recovery corpus: the same base world over a lossy link with the
// ack/retransmit sublayer on. Pins the whole recovery path — send
// tracking, ack traffic and its kind accounting, retransmit timers and
// backoff, receiver dedup, the recovery counters in the aggregate — at
// two presets per engine. (The fingerprint covers the recovery counters
// only through the traffic they generate; the counters themselves stay
// outside it so pre-recovery corpora remain valid.)
exp::Sweep recovery_golden_sweep(std::size_t threads) {
  aer::AerConfig base;
  base.n = 48;
  base.seed = 20130722;
  base.corrupt_fraction = 0.08;
  base.max_rounds = 150;
  base.max_time = 150.0;
  exp::Grid grid;
  grid.models = {aer::Model::kSyncRushing, aer::Model::kAsync};
  grid.faults = {"lossy-5pct"};
  grid.recoveries = {"arq-fast", "arq-patient"};
  exp::Sweep sweep(base, grid, /*trials=*/3);
  sweep.set_threads(threads);
  return sweep;
}

// 4 points in expansion order (recovery > fault > model; n fixed).
constexpr std::uint64_t kRecoveryGolden[] = {
    0x540e563227d4183aull,  // sync-rushing lossy-5pct recovery=arq-fast
    0x8302a533af852e88ull,  // async lossy-5pct recovery=arq-fast
    0x9d1eb6a41bc05d50ull,  // sync-rushing lossy-5pct recovery=arq-patient
    0xd445219ea3a06d43ull,  // async lossy-5pct recovery=arq-patient
};

void print_golden_table(const std::vector<exp::PointResult>& results,
                        const char* table) {
  std::printf("expected golden table (paste into %s):\n", table);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("    0x%016llxull,  // %s\n",
                static_cast<unsigned long long>(
                    results[i].aggregate.fingerprint()),
                results[i].point.label().c_str());
  }
}

void expect_matches(const std::vector<exp::PointResult>& results,
                    const std::uint64_t* golden, std::size_t count,
                    const char* table) {
  if (std::getenv("FBA_PRINT_GOLDEN") != nullptr) {
    print_golden_table(results, table);
  }
  ASSERT_EQ(results.size(), count);
  bool mismatch = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::uint64_t actual = results[i].aggregate.fingerprint();
    EXPECT_EQ(actual, golden[i]) << results[i].point.label();
    mismatch |= actual != golden[i];
  }
  if (mismatch && std::getenv("FBA_PRINT_GOLDEN") == nullptr) {
    print_golden_table(results, table);
  }
}

TEST(GoldenTest, SweepFingerprintsMatchCommittedCorpus) {
  expect_matches(golden_sweep(/*threads=*/1).run(), kGolden,
                 std::size(kGolden), "kGolden");
}

// The corpus is also the thread-count determinism contract for the fault
// axis: the parallel sweep must reproduce the committed serial values.
TEST(GoldenTest, ParallelSweepReproducesGoldenCorpus) {
  const auto results = golden_sweep(/*threads=*/4).run();
  ASSERT_EQ(results.size(), std::size(kGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kGolden[i])
        << results[i].point.label();
  }
}

// And the process-count determinism contract: two forked workers splitting
// the same corpus (faulted lossy-1pct points included) must merge back to
// the committed serial fingerprints.
TEST(GoldenTest, ProcessSweepReproducesGoldenCorpus) {
  exp::Sweep sweep = golden_sweep(/*threads=*/1);
  sweep.set_procs(2);
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), std::size(kGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kGolden[i])
        << results[i].point.label();
  }
}

TEST(GoldenTest, AdaptiveSweepFingerprintsMatchCommittedCorpus) {
  expect_matches(adaptive_golden_sweep(/*threads=*/1).run(), kAdaptiveGolden,
                 std::size(kAdaptiveGolden), "kAdaptiveGolden");
}

// Runtime corruptions draw from their own RNG substream and are spent at
// deterministic points of the event order, so the 4-thread sweep must
// reproduce the serial corpus bit for bit.
TEST(GoldenTest, ParallelAdaptiveSweepReproducesGoldenCorpus) {
  const auto results = adaptive_golden_sweep(/*threads=*/4).run();
  ASSERT_EQ(results.size(), std::size(kAdaptiveGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kAdaptiveGolden[i])
        << results[i].point.label();
  }
}

// Adaptive-budget points exercise the runtime-corruption path; pin that it
// survives the shard round-trip through forked workers too.
TEST(GoldenTest, ProcessAdaptiveSweepReproducesGoldenCorpus) {
  exp::Sweep sweep = adaptive_golden_sweep(/*threads=*/1);
  sweep.set_procs(2);
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), std::size(kAdaptiveGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kAdaptiveGolden[i])
        << results[i].point.label();
  }
}

TEST(GoldenTest, RecoverySweepFingerprintsMatchCommittedCorpus) {
  expect_matches(recovery_golden_sweep(/*threads=*/1).run(), kRecoveryGolden,
                 std::size(kRecoveryGolden), "kRecoveryGolden");
}

// Retransmit timers ride the engines' deterministic event order and the
// ack traffic re-enters the fault layer's RNG stream, so the 4-thread
// sweep must reproduce the serial recovery corpus bit for bit.
TEST(GoldenTest, ParallelRecoverySweepReproducesGoldenCorpus) {
  const auto results = recovery_golden_sweep(/*threads=*/4).run();
  ASSERT_EQ(results.size(), std::size(kRecoveryGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kRecoveryGolden[i])
        << results[i].point.label();
  }
}

// And through forked workers: recovery counters and the ack kind must
// survive the shard round-trip (schema v2) back to the serial values.
TEST(GoldenTest, ProcessRecoverySweepReproducesGoldenCorpus) {
  exp::Sweep sweep = recovery_golden_sweep(/*threads=*/1);
  sweep.set_procs(2);
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), std::size(kRecoveryGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), kRecoveryGolden[i])
        << results[i].point.label();
  }
}

}  // namespace
}  // namespace fba
